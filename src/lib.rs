//! Umbrella crate for the *Internet Routing Instability* reproduction.
//!
//! Re-exports the member crates; see the README for the map. The
//! `examples/` and `tests/` directories of this package exercise the whole
//! stack end to end.

pub use iri_bench as bench;
pub use iri_bgp as bgp;
pub use iri_core as core;
pub use iri_mrt as mrt;
pub use iri_netsim as netsim;
pub use iri_pipeline as pipeline;
pub use iri_rib as rib;
pub use iri_session as session;
pub use iri_topology as topology;
