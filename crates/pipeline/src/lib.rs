//! `iri-pipeline` — sharded parallel streaming analysis.
//!
//! The paper's taxonomy is order-dependent *per (peer, prefix) pair*: an
//! event's class depends on the pair's previous state, never on other
//! pairs. That makes the classification embarrassingly parallel under one
//! invariant — **all events of a pair must reach the same worker, in
//! stream order**. The pipeline:
//!
//! 1. **Ingests** the stream on one thread (an in-memory slice or a
//!    chunked MRT reader), assigns every event to a shard by hashing its
//!    `(peer AS, prefix)` key, and hands fixed-size batches to workers
//!    over bounded channels (backpressure, no unbounded queues).
//! 2. **Workers** each own a private [`Classifier`] and
//!    [`StreamSinks`]; no locks, no shared state.
//! 3. **Merge** folds per-shard classifiers and sinks into totals
//!    identical to a sequential run (`Classifier::merge`, sinks'
//!    `merge`).
//! 4. **Telemetry** ([`PipelineMetrics`]) reports per-stage records/sec,
//!    batch occupancy, queue-full stalls, and worker busy time.
//!
//! Sharding hashes `(peer AS, prefix)` — deliberately *coarser* than the
//! classifier's `(peer, prefix)` state key — because the inter-arrival,
//! episode and CDF statistics key their state by `(prefix, AS)`; the
//! coarser key keeps both granularities shard-local, so the merged report
//! is exactly the sequential one. See DESIGN.md "Parallel analysis
//! pipeline".
//!
//! The discrete-event *simulation* stays single-threaded: its global
//! event queue is causally ordered. Multi-day experiment harnesses
//! parallelise across whole days with [`par_map`] instead.

use iri_bgp::message::Message;
use iri_core::input::{events_from_update, PeerKey, UpdateEvent};
use iri_core::stats::sinks::StreamSinks;
use iri_core::{ClassifiedEvent, Classifier};
use iri_mrt::{MrtReader, MrtRecord};
use iri_obs::Registry;
use std::borrow::Borrow;
use std::io::Read;
use std::time::Instant;

pub mod telemetry;

pub use telemetry::{PipelineMetrics, StageMetrics, WorkerMetrics};

/// Five minutes — the default episode-segmentation quiet threshold.
pub const DEFAULT_QUIET_MS: u64 = 5 * 60 * 1000;

/// A pipeline run that could not produce a result — today that means a
/// worker thread died (panicked) before handing its shard back. Carried
/// as an error instead of propagating the panic so callers holding
/// partial state (open store writers, CLI exit paths) can unwind
/// deliberately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    stage: &'static str,
    detail: String,
}

impl PipelineError {
    fn worker(stage: &'static str, detail: impl Into<String>) -> Self {
        PipelineError {
            stage,
            detail: detail.into(),
        }
    }

    /// Which stage failed (`"worker"`, `"par_map"`).
    #[must_use]
    pub fn stage(&self) -> &str {
        self.stage
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline {} failed: {}", self.stage, self.detail)
    }
}

impl std::error::Error for PipelineError {}

/// Renders a panic payload for [`PipelineError`] without re-panicking.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Worker count (shards). 0 means "one per available CPU".
    pub jobs: usize,
    /// Events per batch handed to a worker.
    pub batch_size: usize,
    /// Batches each worker channel buffers before the ingest stage blocks.
    pub queue_depth: usize,
    /// Episode quiet threshold for the persistence sink (ms).
    pub quiet_ms: u64,
    /// Collect fine-grained observability (per-batch latency histograms)
    /// into [`AnalysisResult::registry`]. Off by default: disabled
    /// registries cost one branch per batch.
    pub obs: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            jobs: 0,
            batch_size: 8192,
            queue_depth: 8,
            quiet_ms: DEFAULT_QUIET_MS,
            obs: false,
        }
    }
}

impl PipelineConfig {
    /// Config with the given worker count. `jobs == 0` is **not** a
    /// zero-worker pipeline: it means "one worker per available CPU",
    /// resolved by [`PipelineConfig::effective_jobs`] at run time. Every
    /// run entry point derives its actual worker count from
    /// `effective_jobs()`, never from the raw field.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        PipelineConfig {
            jobs,
            ..Self::default()
        }
    }

    /// The effective worker count (resolves `jobs == 0` to the CPU count
    /// via [`resolve_jobs`]). Always ≥ 1.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        resolve_jobs(self.jobs)
    }
}

/// Resolves a worker-count knob: positive values pass through, 0 becomes
/// "one per available CPU" (and 1 when parallelism can't be probed). Every
/// place a worker count is derived — [`PipelineConfig::effective_jobs`],
/// [`par_map`], downstream consumers like the store ingest — uses this one
/// resolution, so a `jobs: 0` config means the same thing everywhere.
///
/// Anything that must be *deterministic across machines* (e.g. on-disk
/// layouts) must not key off the resolved value: it varies with the CPU
/// count. The store sink names segments by fixed logical shard instead.
#[must_use]
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// A per-worker consumer of classified events, running inside the shard
/// workers alongside the built-in statistics sinks. The store's segment
/// writers implement this to persist events as they stream past.
///
/// Each worker owns one sink (built by the factory passed to
/// [`analyze_events_with_sink`] / [`analyze_mrt_with_sink`]); `record` sees
/// that worker's events in stream order, and `finish` fires once after the
/// worker's last event. Sinks are returned to the caller in worker order.
pub trait ClassifiedSink: Send {
    /// Called for every classified event, in the worker's stream order.
    fn record(&mut self, event: &UpdateEvent, classified: &ClassifiedEvent);

    /// Called once when the worker's input is exhausted.
    fn finish(&mut self) {}
}

/// The no-op sink behind the plain analysis entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ClassifiedSink for NullSink {
    #[inline]
    fn record(&mut self, _event: &UpdateEvent, _classified: &ClassifiedEvent) {}
}

/// Result of a pipeline run: merged classifier state, merged statistic
/// sinks, and stage telemetry.
pub struct AnalysisResult {
    /// Merged classifier (counts, policy changes, tracked pairs).
    pub classifier: Classifier,
    /// Merged statistic sinks, ready to `finish()`.
    pub sinks: StreamSinks,
    /// Stage telemetry for this run.
    pub metrics: PipelineMetrics,
    /// Merged fine-grained metrics (per-batch latency histograms, stall
    /// times). Empty unless [`PipelineConfig::obs`] was set.
    pub registry: Registry,
}

/// Deterministic shard assignment: all events of one `(peer AS, prefix)`
/// pair — and therefore of one `(peer, prefix)` pair — land in the same
/// shard. SplitMix64 over the packed key; independent of process, platform
/// and `jobs`, so runs are reproducible.
#[must_use]
pub fn shard_of(event: &UpdateEvent, jobs: usize) -> usize {
    let packed = (u64::from(event.peer.asn.0) << 38)
        ^ (u64::from(event.prefix.bits()) << 6)
        ^ u64::from(event.prefix.len());
    let mut z = packed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % jobs.max(1) as u64) as usize
}

/// One worker's loop: classify every event of every batch into the
/// worker-private classifier and sinks, recording busy time. With `obs`
/// set, each batch's classification latency also lands in a worker-private
/// registry histogram (merged after the join — no shared state on the hot
/// path).
fn run_worker<T: Borrow<UpdateEvent>, S: ClassifiedSink>(
    rx: &crossbeam::channel::Receiver<Vec<T>>,
    worker: usize,
    quiet_ms: u64,
    obs: bool,
    mut sink: S,
) -> WorkerResult<S> {
    let mut classifier = Classifier::new();
    let mut sinks = StreamSinks::new(quiet_ms);
    let mut metrics = WorkerMetrics::new(worker);
    let mut registry = if obs {
        Registry::new()
    } else {
        Registry::disabled()
    };
    let batch_us = registry.histogram("pipeline.worker.batch_us");
    let batch_events = registry.histogram("pipeline.worker.batch_events");
    for batch in rx.iter() {
        let t0 = Instant::now();
        for event in &batch {
            let classified = classifier.classify(event.borrow());
            sinks.record(&classified);
            sink.record(event.borrow(), &classified);
        }
        metrics.events += batch.len() as u64;
        metrics.batches += 1;
        metrics.busy_ms += t0.elapsed().as_millis() as u64;
        registry.observe(batch_us, t0.elapsed().as_micros() as u64);
        registry.observe(batch_events, batch.len() as u64);
    }
    sink.finish();
    (classifier, sinks, metrics, registry, sink)
}

/// Sends a full batch, charging any queue-full wait to the ingest stage's
/// stall counter.
fn send_batch<T>(
    tx: &crossbeam::channel::Sender<Vec<T>>,
    batch: Vec<T>,
    ingest: &mut StageMetrics,
) {
    ingest.records += batch.len() as u64;
    ingest.batches += 1;
    match tx.try_send(batch) {
        Ok(()) => {}
        Err(crossbeam::channel::TrySendError::Full(batch)) => {
            let t0 = Instant::now();
            // Blocking send: backpressure from a slow worker.
            let _ = tx.send(batch);
            ingest.stall_ms += t0.elapsed().as_millis() as u64;
        }
        Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
            // Worker panicked; the scope join below will surface it.
        }
    }
}

/// Everything one worker hands back when its queue closes.
type WorkerResult<S> = (Classifier, StreamSinks, WorkerMetrics, Registry, S);

/// Generic core: runs `produce` on the calling thread to feed per-shard
/// batches, with `jobs` workers classifying concurrently. Each worker owns
/// the sink `factory(worker, jobs)` builds; sinks come back in worker
/// order alongside the merged analysis result.
fn run_pipeline<T, F, S, SF>(
    cfg: &PipelineConfig,
    produce: F,
    factory: SF,
) -> Result<(AnalysisResult, Vec<S>), PipelineError>
where
    T: Borrow<UpdateEvent> + Send,
    F: FnOnce(&mut dyn FnMut(usize, T), usize),
    S: ClassifiedSink,
    SF: Fn(usize, usize) -> S + Sync,
{
    let jobs = cfg.effective_jobs();
    let batch_size = cfg.batch_size.max(1);
    let wall = Instant::now();
    let mut ingest = StageMetrics::default();
    let mut results: Vec<Option<WorkerResult<S>>> = Vec::new();
    results.resize_with(jobs, || None);

    let joined = crossbeam::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        let factory = &factory;
        for worker in 0..jobs {
            let (tx, rx) = crossbeam::channel::bounded::<Vec<T>>(cfg.queue_depth.max(1));
            let quiet_ms = cfg.quiet_ms;
            let obs = cfg.obs;
            txs.push(tx);
            handles.push(
                scope.spawn(move |_| run_worker(&rx, worker, quiet_ms, obs, factory(worker, jobs))),
            );
        }

        let ingest_t0 = Instant::now();
        let mut pending: Vec<Vec<T>> = (0..jobs).map(|_| Vec::with_capacity(batch_size)).collect();
        {
            let mut push = |shard: usize, event: T| {
                let batch = &mut pending[shard];
                batch.push(event);
                if batch.len() >= batch_size {
                    let full = std::mem::replace(batch, Vec::with_capacity(batch_size));
                    send_batch(&txs[shard], full, &mut ingest);
                }
            };
            produce(&mut push, jobs);
        }
        for (shard, batch) in pending.into_iter().enumerate() {
            if !batch.is_empty() {
                send_batch(&txs[shard], batch, &mut ingest);
            }
        }
        drop(txs);
        ingest.busy_ms = ingest_t0.elapsed().as_millis() as u64;

        let mut failure = None;
        for (slot, handle) in results.iter_mut().zip(handles) {
            match handle.join() {
                Ok(r) => *slot = Some(r),
                Err(p) => {
                    failure
                        .get_or_insert_with(|| PipelineError::worker("worker", panic_detail(&*p)));
                }
            }
        }
        failure
    })
    .map_err(|p| PipelineError::worker("worker", panic_detail(&*p)))?;
    if let Some(e) = joined {
        return Err(e);
    }

    // Merge in fixed worker order so the result is deterministic.
    let mut classifier = Classifier::new();
    let mut sinks = StreamSinks::new(cfg.quiet_ms);
    let mut workers = Vec::with_capacity(jobs);
    let mut worker_sinks = Vec::with_capacity(jobs);
    let mut registry = if cfg.obs {
        Registry::new()
    } else {
        Registry::disabled()
    };
    for slot in results {
        let Some((c, s, m, r, ws)) = slot else {
            return Err(PipelineError::worker(
                "worker",
                "worker exited without a result",
            ));
        };
        classifier.merge(c);
        sinks.merge(s);
        workers.push(m);
        registry.merge(&r);
        worker_sinks.push(ws);
    }
    let metrics = PipelineMetrics {
        jobs,
        batch_size,
        queue_depth: cfg.queue_depth.max(1),
        wall_ms: wall.elapsed().as_millis() as u64,
        total_events: ingest.records,
        ingest,
        workers,
    };
    if cfg.obs {
        metrics.to_registry(&mut registry);
    }
    Ok((
        AnalysisResult {
            classifier,
            sinks,
            metrics,
            registry,
        },
        worker_sinks,
    ))
}

/// Analyzes an in-memory event stream with `cfg.jobs` workers. The merged
/// result equals a sequential [`Classifier::classify_all`] pass plus the
/// batch statistics functions, for any worker count. Errs only if a
/// worker thread dies.
pub fn analyze_events(
    events: &[UpdateEvent],
    cfg: &PipelineConfig,
) -> Result<AnalysisResult, PipelineError> {
    Ok(analyze_events_with_sink(events, cfg, shard_of, |_, _| NullSink)?.0)
}

/// [`analyze_events`] with a custom per-worker [`ClassifiedSink`] and
/// shard assignment.
///
/// `shard` maps each event to a worker in `0..jobs`; it must keep all
/// events of one `(peer AS, prefix)` pair on one worker ([`shard_of`] does,
/// as does any `fixed_shard % jobs` scheme). `factory(worker, jobs)` builds
/// worker `worker`'s sink; the sinks come back in worker order.
pub fn analyze_events_with_sink<S, SF>(
    events: &[UpdateEvent],
    cfg: &PipelineConfig,
    shard: impl Fn(&UpdateEvent, usize) -> usize,
    factory: SF,
) -> Result<(AnalysisResult, Vec<S>), PipelineError>
where
    S: ClassifiedSink,
    SF: Fn(usize, usize) -> S + Sync,
{
    run_pipeline::<&UpdateEvent, _, S, SF>(
        cfg,
        |push, jobs| {
            for event in events {
                push(shard(event, jobs), event);
            }
        },
        factory,
    )
}

/// Analyzes an MRT stream with chunked ingestion: records are read and
/// decoded incrementally on the ingest thread (never materialising the
/// whole file), sharded, and classified by `cfg.jobs` workers.
///
/// `base_time` anchors relative MRT timestamps, like
/// [`events_from_mrt`](iri_core::input::events_from_mrt); pass the first
/// record's timestamp (or 0 to use it automatically). Returns the result
/// plus the number of MRT records read. Stops at the first malformed
/// record, matching the CLI readers' tolerance.
pub fn analyze_mrt<R: Read>(
    reader: &mut MrtReader<R>,
    base_time: u32,
    cfg: &PipelineConfig,
) -> Result<(AnalysisResult, u64), PipelineError> {
    let (result, _, records) =
        analyze_mrt_with_sink(reader, base_time, cfg, shard_of, |_, _| NullSink)?;
    Ok((result, records))
}

/// [`analyze_mrt`] with a custom per-worker [`ClassifiedSink`] and shard
/// assignment — the store's ingest path. See
/// [`analyze_events_with_sink`] for the `shard` / `factory` contract.
pub fn analyze_mrt_with_sink<R, S, SF>(
    reader: &mut MrtReader<R>,
    base_time: u32,
    cfg: &PipelineConfig,
    shard: impl Fn(&UpdateEvent, usize) -> usize,
    factory: SF,
) -> Result<(AnalysisResult, Vec<S>, u64), PipelineError>
where
    R: Read,
    S: ClassifiedSink,
    SF: Fn(usize, usize) -> S + Sync,
{
    let mut records_read = 0u64;
    let mut base = base_time;
    let (result, sinks) = run_pipeline::<UpdateEvent, _, S, SF>(
        cfg,
        |push, jobs| loop {
            match reader.next_record() {
                Ok(Some(record)) => {
                    records_read += 1;
                    if base == 0 {
                        base = record.timestamp();
                    }
                    if let MrtRecord::Bgp4mpMessage(m) = record {
                        if let Message::Update(update) = &m.message {
                            let time_ms = u64::from(m.timestamp.saturating_sub(base)) * 1000;
                            let peer = PeerKey {
                                asn: m.peer_asn,
                                addr: m.peer_ip,
                            };
                            for event in events_from_update(time_ms, peer, update) {
                                push(shard(&event, jobs), event);
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("pipeline: warning: stopping at malformed record: {e}");
                    break;
                }
            }
        },
        factory,
    )?;
    Ok((result, sinks, records_read))
}

/// Ordered parallel map over independent items — the engine behind the
/// multi-day experiment harness. Items are dealt to `jobs` workers through
/// a bounded queue; results come back in input order. Telemetry reports
/// per-worker busy time and item counts.
pub fn par_map<T, U, F>(
    items: Vec<T>,
    jobs: usize,
    f: F,
) -> Result<(Vec<U>, PipelineMetrics), PipelineError>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len().max(1));
    let n = items.len();
    let wall = Instant::now();
    let mut ingest = StageMetrics::default();
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut worker_metrics: Vec<Option<WorkerMetrics>> = Vec::new();
    worker_metrics.resize_with(jobs, || None);

    let joined = crossbeam::thread::scope(|scope| {
        let (task_tx, task_rx) = crossbeam::channel::bounded::<(usize, T)>(jobs * 2);
        let (out_tx, out_rx) = crossbeam::channel::bounded::<(usize, usize, U, u64)>(jobs * 2);
        let f = &f;
        let mut handles = Vec::with_capacity(jobs);
        for worker in 0..jobs {
            let task_rx = task_rx.clone();
            let out_tx = out_tx.clone();
            handles.push(scope.spawn(move |_| {
                for (idx, item) in task_rx.iter() {
                    let t0 = Instant::now();
                    let out = f(item);
                    let busy = t0.elapsed().as_millis() as u64;
                    if out_tx.send((worker, idx, out, busy)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(task_rx);
        drop(out_tx);

        let ingest_t0 = Instant::now();
        let mut produced = 0usize;
        let mut items = items.into_iter().enumerate();
        let mut collected = 0usize;
        while collected < n {
            // Keep the task queue primed, then drain one result.
            while produced < n {
                let Some((idx, item)) = items.next() else {
                    break;
                };
                ingest.records += 1;
                ingest.batches += 1;
                match task_tx.try_send((idx, item)) {
                    Ok(()) => produced += 1,
                    Err(crossbeam::channel::TrySendError::Full(back)) => {
                        let t0 = Instant::now();
                        let _ = task_tx.send(back);
                        ingest.stall_ms += t0.elapsed().as_millis() as u64;
                        produced += 1;
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                        produced += 1;
                    }
                }
                if produced - collected >= jobs * 2 {
                    break;
                }
            }
            if let Ok((worker, idx, out, busy)) = out_rx.recv() {
                slots[idx] = Some(out);
                let m = worker_metrics[worker].get_or_insert_with(|| WorkerMetrics::new(worker));
                m.events += 1;
                m.batches += 1;
                m.busy_ms += busy;
                collected += 1;
            } else {
                break;
            }
        }
        drop(task_tx);
        ingest.busy_ms = ingest_t0.elapsed().as_millis() as u64;
        let mut failure = None;
        for handle in handles {
            if let Err(p) = handle.join() {
                failure.get_or_insert_with(|| PipelineError::worker("par_map", panic_detail(&*p)));
            }
        }
        failure
    })
    .map_err(|p| PipelineError::worker("par_map", panic_detail(&*p)))?;
    if let Some(e) = joined {
        return Err(e);
    }

    let mut results: Vec<U> = Vec::with_capacity(n);
    for slot in slots {
        match slot {
            Some(v) => results.push(v),
            None => {
                return Err(PipelineError::worker(
                    "par_map",
                    "worker exited without a result",
                ))
            }
        }
    }
    let metrics = PipelineMetrics {
        jobs,
        batch_size: 1,
        queue_depth: jobs * 2,
        wall_ms: wall.elapsed().as_millis() as u64,
        total_events: n as u64,
        ingest,
        workers: (0..jobs)
            .map(|w| {
                worker_metrics[w]
                    .take()
                    .unwrap_or_else(|| WorkerMetrics::new(w))
            })
            .collect(),
    };
    Ok((results, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::{Origin, PathAttributes};
    use iri_bgp::path::AsPath;
    use iri_bgp::types::{Asn, Prefix};
    use iri_core::input::PeerKey;
    use iri_core::stats::daily::provider_daily_totals;
    use iri_core::taxonomy::UpdateClass;
    use std::net::Ipv4Addr;

    fn attrs(asn: u32, hop: u8) -> PathAttributes {
        PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(asn)]),
            Ipv4Addr::new(10, 0, 0, hop),
        )
    }

    fn synthetic_stream(n: u64) -> Vec<UpdateEvent> {
        let mut out = Vec::new();
        for i in 0..n {
            let peer = PeerKey {
                asn: Asn(100 + (i % 5) as u32),
                addr: Ipv4Addr::new(192, 0, 2, (i % 5) as u8),
            };
            let prefix = Prefix::from_raw(0x0a00_0000 | (((i % 97) as u32) << 8), 24);
            let t = i * 250;
            out.push(if i % 3 == 0 {
                UpdateEvent::withdraw(t, peer, prefix)
            } else {
                UpdateEvent::announce(t, peer, prefix, attrs(100 + (i % 5) as u32, (i % 7) as u8))
            });
        }
        out
    }

    #[test]
    fn shard_assignment_is_deterministic_and_complete() {
        let events = synthetic_stream(500);
        for jobs in 1..=8 {
            for e in &events {
                let s = shard_of(e, jobs);
                assert!(s < jobs);
                assert_eq!(s, shard_of(e, jobs));
            }
        }
    }

    #[test]
    fn pair_stays_in_one_shard() {
        let events = synthetic_stream(500);
        for jobs in 2..=6 {
            let mut seen: std::collections::HashMap<(u32, u32, u8), usize> =
                std::collections::HashMap::new();
            for e in &events {
                let key = (e.peer.asn.0, e.prefix.bits(), e.prefix.len());
                let shard = shard_of(e, jobs);
                assert_eq!(*seen.entry(key).or_insert(shard), shard);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_counts() {
        let events = synthetic_stream(10_000);
        let mut seq = Classifier::new();
        let classified = seq.classify_all(&events);
        let seq_rows = provider_daily_totals(&classified);
        for jobs in [1usize, 2, 3, 5, 8] {
            let mut cfg = PipelineConfig::with_jobs(jobs);
            cfg.batch_size = 64; // small batches to exercise backpressure
            cfg.queue_depth = 2;
            let result = analyze_events(&events, &cfg).unwrap();
            assert_eq!(result.classifier.total(), seq.total(), "jobs={jobs}");
            for class in UpdateClass::ALL {
                assert_eq!(
                    result.classifier.count(class),
                    seq.count(class),
                    "jobs={jobs} {class:?}"
                );
            }
            assert_eq!(
                result.classifier.tracked_pairs(),
                seq.tracked_pairs(),
                "jobs={jobs}"
            );
            assert_eq!(result.sinks.daily.finish(), seq_rows, "jobs={jobs}");
            assert_eq!(result.metrics.total_events, events.len() as u64);
            assert_eq!(result.metrics.jobs, jobs);
        }
    }

    #[test]
    fn obs_registry_collects_batch_histograms() {
        let events = synthetic_stream(5_000);
        let mut cfg = PipelineConfig::with_jobs(3);
        cfg.batch_size = 128;
        cfg.obs = true;
        let result = analyze_events(&events, &cfg).unwrap();
        let h = result
            .registry
            .histogram_ref("pipeline.worker.batch_events")
            .expect("histogram registered");
        // Every batch observed once, across all workers.
        assert_eq!(h.count(), result.metrics.ingest.batches);
        assert_eq!(h.sum(), events.len() as u64);
        assert_eq!(
            result.registry.counter_value("pipeline.total_events"),
            Some(events.len() as u64)
        );
        // Off by default: same run without obs yields an empty registry.
        cfg.obs = false;
        let quiet = analyze_events(&events, &cfg).unwrap();
        assert!(!quiet.registry.is_enabled());
        assert_eq!(
            quiet
                .registry
                .histogram_ref("pipeline.worker.batch_events")
                .map_or(0, iri_obs::Histogram::count),
            0
        );
    }

    #[test]
    fn zero_jobs_resolves_to_cpu_count_everywhere() {
        // Satellite contract: `jobs == 0` always resolves through
        // `resolve_jobs`, never runs zero workers, and every derived
        // worker count agrees.
        let resolved = resolve_jobs(0);
        assert!(resolved >= 1);
        assert_eq!(PipelineConfig::with_jobs(0).effective_jobs(), resolved);
        assert_eq!(PipelineConfig::default().effective_jobs(), resolved);
        assert_eq!(PipelineConfig::with_jobs(3).effective_jobs(), 3);
        assert_eq!(resolve_jobs(7), 7);

        let events = synthetic_stream(500);
        let result = analyze_events(&events, &PipelineConfig::with_jobs(0)).unwrap();
        assert_eq!(result.metrics.jobs, resolved);
        assert_eq!(result.metrics.workers.len(), resolved);

        let (_, metrics) = par_map((0..100u64).collect(), 0, |x| x).unwrap();
        assert_eq!(metrics.jobs, resolved.min(100));
    }

    /// A sink that records every event it sees, to check sink wiring:
    /// per-worker stream order, classified classes, and `finish`.
    struct CollectSink {
        worker: usize,
        seen: Vec<(u64, UpdateClass)>,
        finished: bool,
    }

    impl ClassifiedSink for CollectSink {
        fn record(&mut self, event: &UpdateEvent, classified: &ClassifiedEvent) {
            assert_eq!(event.time_ms, classified.time_ms);
            self.seen.push((classified.time_ms, classified.class));
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn sinks_see_every_event_in_worker_order() {
        let events = synthetic_stream(4_000);
        let mut cfg = PipelineConfig::with_jobs(3);
        cfg.batch_size = 128;
        let (result, sinks) =
            analyze_events_with_sink(&events, &cfg, shard_of, |worker, _| CollectSink {
                worker,
                seen: Vec::new(),
                finished: false,
            })
            .unwrap();
        assert_eq!(sinks.len(), 3);
        let mut total = 0;
        for (i, s) in sinks.iter().enumerate() {
            assert_eq!(s.worker, i, "sinks return in worker order");
            assert!(s.finished);
            // Per-worker stream order: times never go backwards.
            assert!(s.seen.windows(2).all(|w| w[0].0 <= w[1].0));
            total += s.seen.len();
        }
        assert_eq!(total as u64, result.classifier.total());
        // Sink classes tally to the classifier's counts.
        for class in UpdateClass::ALL {
            let from_sinks: u64 = sinks
                .iter()
                .flat_map(|s| &s.seen)
                .filter(|(_, c)| *c == class)
                .count() as u64;
            assert_eq!(from_sinks, result.classifier.count(class), "{class:?}");
        }
    }

    #[test]
    fn custom_shard_fn_preserves_equivalence() {
        // The store's scheme: fixed logical shard, then % jobs.
        let events = synthetic_stream(5_000);
        let mut seq = Classifier::new();
        seq.classify_all(&events);
        for jobs in [1usize, 2, 5] {
            let (result, _) = analyze_events_with_sink(
                &events,
                &PipelineConfig::with_jobs(jobs),
                |e, jobs| shard_of(e, 16) % jobs,
                |_, _| NullSink,
            )
            .unwrap();
            assert_eq!(result.classifier.total(), seq.total());
            for class in UpdateClass::ALL {
                assert_eq!(
                    result.classifier.count(class),
                    seq.count(class),
                    "jobs={jobs}"
                );
            }
        }
    }

    /// A sink that panics partway through, to prove worker deaths come
    /// back as [`PipelineError`] instead of unwinding through the caller.
    struct ExplodingSink {
        remaining: u32,
    }

    impl ClassifiedSink for ExplodingSink {
        fn record(&mut self, _event: &UpdateEvent, _classified: &ClassifiedEvent) {
            if self.remaining == 0 {
                panic!("sink exploded");
            }
            self.remaining -= 1;
        }
    }

    #[test]
    fn worker_panic_is_an_error_not_a_panic() {
        let events = synthetic_stream(2_000);
        let err = match analyze_events_with_sink(
            &events,
            &PipelineConfig::with_jobs(2),
            shard_of,
            |_, _| ExplodingSink { remaining: 10 },
        ) {
            Err(e) => e,
            Ok(_) => panic!("expected a pipeline error"),
        };
        assert_eq!(err.stage(), "worker");
        assert!(err.to_string().contains("sink exploded"), "{err}");
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let (out, metrics) = par_map(items, 4, |x| x * x).unwrap();
        assert_eq!(out, (0..200).map(|x| x * x).collect::<Vec<u64>>());
        assert_eq!(metrics.total_events, 200);
        assert_eq!(metrics.workers.len(), 4);
        let done: u64 = metrics.workers.iter().map(|w| w.events).sum();
        assert_eq!(done, 200);
    }

    #[test]
    fn par_map_handles_fewer_items_than_jobs() {
        let (out, metrics) = par_map(vec![7u32], 8, |x| x + 1).unwrap();
        assert_eq!(out, vec![8]);
        assert_eq!(metrics.jobs, 1);
    }
}
