//! Stage telemetry: what the pipeline spent its time on.
//!
//! The per-stage counter types ([`StageMetrics`], [`WorkerMetrics`]) live
//! in `iri-obs` and are shared with the simulator's registry; this module
//! assembles them into a per-run [`PipelineMetrics`] — a serialisable
//! record of per-stage throughput (records/sec), batch occupancy,
//! queue-full stalls (backpressure from slow workers) and per-worker busy
//! time. CLIs print it with [`PipelineMetrics::render`]; automation can
//! serialise it to JSON or fold it into a shared [`Registry`] with
//! [`PipelineMetrics::to_registry`].
//!
//! Unlike the simulator's tracer (which stamps virtual [`SimTime`]
//! timestamps), pipeline telemetry measures *wall* time: host throughput
//! is the quantity under study here, and it is the one deliberate
//! exception to the repo's sim-time-only determinism contract.
//!
//! [`SimTime`]: iri_obs::SimTime

use iri_obs::Registry;
use serde::Serialize;

pub use iri_obs::{StageMetrics, WorkerMetrics};

/// Telemetry for one pipeline run.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineMetrics {
    /// Worker (shard) count.
    pub jobs: usize,
    /// Configured events per batch.
    pub batch_size: usize,
    /// Configured per-worker queue depth (batches).
    pub queue_depth: usize,
    /// End-to-end wall time (ms).
    pub wall_ms: u64,
    /// Total events pushed through the pipeline.
    pub total_events: u64,
    /// Ingest-stage counters.
    pub ingest: StageMetrics,
    /// Per-worker counters, indexed by shard.
    pub workers: Vec<WorkerMetrics>,
}

impl PipelineMetrics {
    /// End-to-end events per second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms == 0 {
            0.0
        } else {
            self.total_events as f64 * 1000.0 / self.wall_ms as f64
        }
    }

    /// Mean batch fill as a fraction of `batch_size` (1.0 = every batch
    /// full). Low occupancy means the stream ended before batches filled
    /// or sharding is too fine for the batch size.
    #[must_use]
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.ingest.batches == 0 || self.batch_size == 0 {
            0.0
        } else {
            self.ingest.records as f64 / (self.ingest.batches as f64 * self.batch_size as f64)
        }
    }

    /// Folds the run's counters into `registry` under `pipeline.*` names,
    /// so a combined metrics dump (simulation + analysis) can come from a
    /// single [`Registry::snapshot`].
    pub fn to_registry(&self, registry: &mut Registry) {
        let pairs: [(&str, u64); 7] = [
            ("pipeline.total_events", self.total_events),
            ("pipeline.wall_ms", self.wall_ms),
            ("pipeline.ingest.records", self.ingest.records),
            ("pipeline.ingest.batches", self.ingest.batches),
            ("pipeline.ingest.stall_ms", self.ingest.stall_ms),
            ("pipeline.ingest.busy_ms", self.ingest.busy_ms),
            (
                "pipeline.worker.events",
                self.workers.iter().map(|w| w.events).sum(),
            ),
        ];
        for (name, value) in pairs {
            let id = registry.counter(name);
            registry.add(id, value);
        }
        let jobs = registry.gauge("pipeline.jobs");
        registry.set(jobs, self.jobs as i64);
        let busy = registry.histogram("pipeline.worker.busy_ms");
        for w in &self.workers {
            registry.observe(busy, w.busy_ms);
        }
    }

    /// Human-readable multi-line report for CLI output.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pipeline: {} workers, batch {}, queue depth {}",
            self.jobs, self.batch_size, self.queue_depth
        );
        let _ = writeln!(
            out,
            "  wall {} ms, {} events ({}/s end-to-end)",
            self.wall_ms,
            self.total_events,
            format_rate(self.events_per_sec())
        );
        let _ = writeln!(
            out,
            "  ingest: {} batches ({:.0}% occupancy), {}/s, stalled {} ms on full queues",
            self.ingest.batches,
            self.mean_batch_occupancy() * 100.0,
            format_rate(self.ingest.records_per_sec()),
            self.ingest.stall_ms
        );
        for w in &self.workers {
            let share = if self.wall_ms == 0 {
                0.0
            } else {
                w.busy_ms as f64 * 100.0 / self.wall_ms as f64
            };
            let _ = writeln!(
                out,
                "  worker {}: {} events in {} batches, busy {} ms ({share:.0}% of wall)",
                w.worker, w.events, w.batches, w.busy_ms
            );
        }
        out
    }
}

/// `12_345_678.0` → `"12.3M"`, etc.
fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineMetrics {
        PipelineMetrics {
            jobs: 2,
            batch_size: 100,
            queue_depth: 4,
            wall_ms: 1000,
            total_events: 1500,
            ingest: StageMetrics {
                records: 1500,
                batches: 20,
                stall_ms: 3,
                busy_ms: 500,
            },
            workers: vec![
                WorkerMetrics {
                    worker: 0,
                    events: 700,
                    batches: 9,
                    busy_ms: 400,
                },
                WorkerMetrics {
                    worker: 1,
                    events: 800,
                    batches: 11,
                    busy_ms: 450,
                },
            ],
        }
    }

    #[test]
    fn rates_and_occupancy() {
        let m = sample();
        assert!((m.events_per_sec() - 1500.0).abs() < 1e-9);
        assert!((m.mean_batch_occupancy() - 0.75).abs() < 1e-9);
        assert!((m.ingest.records_per_sec() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let m = PipelineMetrics {
            jobs: 1,
            batch_size: 0,
            queue_depth: 1,
            wall_ms: 0,
            total_events: 0,
            ingest: StageMetrics::default(),
            workers: vec![],
        };
        assert_eq!(m.events_per_sec(), 0.0);
        assert_eq!(m.mean_batch_occupancy(), 0.0);
        assert_eq!(m.ingest.records_per_sec(), 0.0);
    }

    #[test]
    fn sub_millisecond_ingest_reports_finite_rate() {
        // The shared StageMetrics floors busy time at 1 ms: a stage that
        // processed records faster than the clock resolution must not
        // report 0 records/sec.
        let m = StageMetrics {
            records: 500,
            batches: 1,
            stall_ms: 0,
            busy_ms: 0,
        };
        assert!((m.records_per_sec() - 500_000.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_stage() {
        let text = sample().render();
        assert!(text.contains("2 workers"));
        assert!(text.contains("ingest:"));
        assert!(text.contains("worker 0"));
        assert!(text.contains("worker 1"));
        assert!(text.contains("occupancy"));
    }

    #[test]
    fn serialises_to_json() {
        let json = serde_json::to_string(&sample()).unwrap();
        assert!(json.contains("\"jobs\":2"));
        assert!(json.contains("\"stall_ms\":3"));
        assert!(json.contains("\"workers\":["));
    }

    #[test]
    fn to_registry_exports_run_counters() {
        let mut r = Registry::new();
        sample().to_registry(&mut r);
        assert_eq!(r.counter_value("pipeline.total_events"), Some(1500));
        assert_eq!(r.counter_value("pipeline.ingest.stall_ms"), Some(3));
        assert_eq!(r.counter_value("pipeline.worker.events"), Some(1500));
        assert_eq!(r.gauge_value("pipeline.jobs"), Some(2));
        assert_eq!(
            r.histogram_ref("pipeline.worker.busy_ms").unwrap().count(),
            2
        );
    }
}
