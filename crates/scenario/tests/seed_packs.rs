//! The seed packs shipped under `packs/` must always parse strictly and
//! yield usable graph/scenario configs — the same gate `ci.sh` runs via
//! `run_scenario --check`, kept here so `cargo test` catches a schema
//! drift before CI does.

use iri_scenario::ScenarioPack;
use std::path::PathBuf;

fn packs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../packs")
}

#[test]
fn every_seed_pack_parses_and_configures() {
    let dir = packs_dir();
    let mut seen = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("packs/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        let pack = ScenarioPack::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let graph = pack.graph_config();
        assert!(graph.prefixes > 0, "{}: empty topology", path.display());
        pack.scenario_config()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for t in &pack.ground_truth {
            assert!(
                t.day < pack.run.days,
                "{}: ground truth on day {} outside the {}-day run",
                path.display(),
                t.day,
                pack.run.days
            );
        }
        seen.push(pack.meta.name.clone());
    }
    seen.sort();
    assert_eq!(
        seen,
        vec![
            "community-churn",
            "link-failures",
            "paper-1996",
            "quiet",
            "worm-outbreak"
        ],
        "seed pack set drifted"
    );
}

#[test]
fn baseline_pack_reproduces_the_legacy_experiment() {
    let pack = ScenarioPack::load(&packs_dir().join("paper_1996.toml")).expect("load");
    let legacy = iri_scenario::Experiment::default_at(0.05);
    assert_eq!(pack.graph_config().seed, legacy.graph.seed);
    assert_eq!(pack.graph_config().prefixes, legacy.graph.prefixes);
    let cfg = pack.scenario_config().expect("config");
    assert_eq!(cfg.seed, legacy.scenario.seed);
}
