//! The determinism contract, enforced: record/replay bit-identity, the
//! crash-matrix resume proof, and divergence-as-a-test.
//!
//! The heart of the suite is the crash matrix: a recorded run is killed
//! at sampled operation indices and at every commit-protocol step (first,
//! middle, and last occurrence), then resumed — and the resumed store,
//! chain, and report must be byte-for-byte what the uninterrupted run
//! produced. The injected-nondeterminism tests tamper with the chain and
//! assert the failure names the exact first divergent sequence number.

use iri_chain::{ChainEntry, CHAIN_FILE};
use iri_faults::{CommitStep, FaultPlan, FaultyFs, SharedFs};
use iri_scenario::runner::{ChainMode, RunError, RunnerOptions, ScenarioRunner};
use iri_scenario::ScenarioPack;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "iri-chain-resume-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every store file under `dir`, relative path → contents, excluding
/// crash debris the commit protocol may leave behind (`quarantine/` holds
/// files recovery rejected, `retired/` holds generations a GC had not
/// reclaimed yet) — neither is part of the committed store.
fn store_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(base: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            let rel = path
                .strip_prefix(base)
                .expect("under base")
                .to_string_lossy()
                .into_owned();
            if path.is_dir() {
                if rel != "quarantine" && rel != "retired" {
                    walk(base, &path, out);
                }
            } else {
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn assert_same_files(what: &str, a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{what}: file sets differ"
    );
    for (name, bytes) in a {
        assert_eq!(bytes, &b[name], "{what}: file {name} differs");
    }
}

/// Two measured days, truncated to one hour each, small enough for the
/// matrix but crossing every boundary kind: day starts, fault digests,
/// many batch commits, a cadence compaction, and two checkpoints.
fn chain_pack() -> ScenarioPack {
    let mut pack = ScenarioPack::default_at(0.01);
    pack.meta.seed = 42;
    pack.workload.warmup_minutes = Some(10);
    pack.workload.oscillator_count = Some(2);
    pack.run.days = 2;
    pack.run.chunk_minutes = 15;
    pack.run.batch_events = 64;
    pack.run.segment_rows = 256;
    pack
}

fn opts(chain: ChainMode, fs: SharedFs) -> RunnerOptions {
    RunnerOptions {
        fs,
        hours: Some(1),
        chain,
        ..RunnerOptions::default()
    }
}

/// The deterministic slice of a report: everything that must be
/// identical across record, resume, and replay of one run. Wall-clock
/// and RSS fields are excluded — they are measurements, not results.
fn det_fields(r: &iri_scenario::RunReport) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {:?}",
        r.pack,
        r.days,
        r.hours_per_day,
        r.events_written,
        r.store_generation,
        serde_json::to_string(&r.incidents).expect("incidents"),
        r.scorecard.true_positives,
        r.scorecard.false_positives,
        r.final_census_prefixes,
        serde_json::to_string(&r.spill).expect("spill"),
        r.chain_entries,
        (r.chain_events, &r.chain_head),
    )
}

#[test]
fn record_matches_chain_off_and_replay_is_bit_identical() {
    let pack = chain_pack();
    // Chain off: the pre-chain store bytes.
    let d_off = temp_dir("off");
    let r_off = ScenarioRunner::new(pack.clone(), opts(ChainMode::Off, iri_faults::real_fs()))
        .run(&d_off)
        .expect("off run");
    // Recorded run.
    let d_rec = temp_dir("rec");
    let rec = ScenarioRunner::new(pack.clone(), opts(ChainMode::Record, iri_faults::real_fs()))
        .run(&d_rec)
        .expect("record run");
    assert_eq!(r_off.events_written, rec.events_written);
    assert!(rec.chain_entries > 0 && rec.chain_events == rec.events_written);
    let head = rec.chain_head.clone().expect("recorded head");
    assert_same_files("record vs off", &store_bytes(&d_off), &store_bytes(&d_rec));

    // Replay the chain into a fresh store: bit-identical store, same
    // report, chain file untouched.
    let chain_dir = iri_scenario::chain_dir_for(&d_rec);
    let chain_before = std::fs::read(chain_dir.join(CHAIN_FILE)).expect("chain file");
    let d_rep = temp_dir("rep");
    let rep = ScenarioRunner::new(
        pack,
        RunnerOptions {
            chain_dir: Some(chain_dir.clone()),
            ..opts(ChainMode::Replay, iri_faults::real_fs())
        },
    )
    .run(&d_rep)
    .expect("replay run");
    assert_eq!(det_fields(&rec), det_fields(&rep));
    assert_eq!(rep.chain_head.as_deref(), Some(head.as_str()));
    assert_same_files(
        "replay vs record",
        &store_bytes(&d_rec),
        &store_bytes(&d_rep),
    );
    assert_eq!(
        chain_before,
        std::fs::read(chain_dir.join(CHAIN_FILE)).expect("chain file"),
        "replay must not extend the recording"
    );
    for d in [d_off, d_rec, d_rep] {
        let _ = std::fs::remove_dir_all(iri_scenario::chain_dir_for(&d));
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Runs the pack in record mode against `fs` into `store`/`chain`,
/// returning the error (the matrix expects every kill to surface one).
fn killed_record_run(
    pack: &ScenarioPack,
    fs: SharedFs,
    store: &Path,
    chain: &Path,
) -> Result<iri_scenario::RunReport, RunError> {
    ScenarioRunner::new(
        pack.clone(),
        RunnerOptions {
            chain_dir: Some(chain.to_path_buf()),
            ..opts(ChainMode::Record, fs)
        },
    )
    .run(store)
}

fn resume_run(
    pack: &ScenarioPack,
    store: &Path,
    chain: &Path,
) -> Result<iri_scenario::RunReport, RunError> {
    ScenarioRunner::new(
        pack.clone(),
        RunnerOptions {
            chain_dir: Some(chain.to_path_buf()),
            ..opts(ChainMode::Resume, iri_faults::real_fs())
        },
    )
    .run(store)
}

#[test]
fn crash_matrix_resume_reproduces_the_uninterrupted_run() {
    let pack = chain_pack();

    // Reference pass doubles as the op census: count every filesystem
    // operation and every commit-step occurrence a clean recorded run
    // performs, so the matrix can aim kills at all of them.
    let counter = Arc::new(FaultyFs::counting());
    let d_ref = temp_dir("matrix-ref");
    let c_ref = temp_dir("matrix-ref-chain");
    let ref_report =
        killed_record_run(&pack, counter.clone(), &d_ref, &c_ref).expect("reference recorded run");
    let total_ops = counter.ops();
    assert!(
        total_ops > 100,
        "expected a busy op stream, got {total_ops}"
    );
    let ref_store = store_bytes(&d_ref);
    let ref_chain = store_bytes(&c_ref);
    let ref_det = det_fields(&ref_report);

    // Kill points: a spread across the whole counted op stream, plus the
    // first, middle, and last occurrence of every commit-protocol step.
    let mut plans: Vec<(String, FaultPlan)> = Vec::new();
    let samples = 14u64;
    for i in 0..samples {
        let at = (total_ops * i) / samples + i % 3;
        plans.push((format!("op {at}"), FaultPlan::new().kill_at_op(at)));
    }
    for step in CommitStep::ALL {
        let hits = counter.step_hits(step);
        if hits == 0 {
            continue;
        }
        let mut occurrences = vec![0, hits / 2, hits - 1];
        occurrences.dedup();
        for occ in occurrences {
            plans.push((
                format!("step {step} hit {occ}"),
                FaultPlan::new().kill_at_step_hit(step, occ),
            ));
        }
    }

    let mut resumed_after_kill = 0u32;
    for (label, plan) in plans {
        let store = temp_dir("matrix-store");
        let chain = temp_dir("matrix-chain");
        let fs: SharedFs = Arc::new(FaultyFs::new(plan));
        let err = killed_record_run(&pack, fs, &store, &chain)
            .expect_err(&format!("kill at {label} must fail the run"));
        drop(err);
        if !chain.join(CHAIN_FILE).exists() {
            // Killed before the genesis entry was durable: there is
            // nothing to resume — re-record from scratch is the answer,
            // and only the earliest ops can land here.
            let _ = std::fs::remove_dir_all(&store);
            let _ = std::fs::remove_dir_all(&chain);
            continue;
        }
        let report = resume_run(&pack, &store, &chain)
            .unwrap_or_else(|e| panic!("resume after kill at {label} failed: {e}"));
        resumed_after_kill += 1;
        assert_eq!(
            ref_det,
            det_fields(&report),
            "resume after kill at {label}: report diverged"
        );
        assert_same_files(
            &format!("resume after kill at {label}: store"),
            &ref_store,
            &store_bytes(&store),
        );
        assert_same_files(
            &format!("resume after kill at {label}: chain"),
            &ref_chain,
            &store_bytes(&chain),
        );
        let _ = std::fs::remove_dir_all(&store);
        let _ = std::fs::remove_dir_all(&chain);
    }
    assert!(
        resumed_after_kill >= 15,
        "matrix degenerated: only {resumed_after_kill} kill points were resumable"
    );
    let _ = std::fs::remove_dir_all(&d_ref);
    let _ = std::fs::remove_dir_all(&c_ref);
}

#[test]
fn stop_hook_then_resume_is_byte_identical() {
    let pack = chain_pack();
    let d_ref = temp_dir("stop-ref");
    let c_ref = temp_dir("stop-ref-chain");
    let ref_report =
        killed_record_run(&pack, iri_faults::real_fs(), &d_ref, &c_ref).expect("reference run");

    let store = temp_dir("stop-store");
    let chain = temp_dir("stop-chain");
    let err = ScenarioRunner::new(
        pack.clone(),
        RunnerOptions {
            chain_dir: Some(chain.clone()),
            stop_after_chunks: Some(3),
            ..opts(ChainMode::Record, iri_faults::real_fs())
        },
    )
    .run(&store)
    .expect_err("stop hook must interrupt the run");
    match err {
        RunError::Stopped { chunks } => assert_eq!(chunks, 3),
        other => panic!("expected Stopped, got {other}"),
    }
    let report = resume_run(&pack, &store, &chain).expect("resume after stop");
    assert!(report.resumed_from.is_some());
    assert_eq!(det_fields(&ref_report), det_fields(&report));
    assert_same_files(
        "stop+resume store",
        &store_bytes(&d_ref),
        &store_bytes(&store),
    );
    assert_same_files(
        "stop+resume chain",
        &store_bytes(&c_ref),
        &store_bytes(&chain),
    );
    for d in [d_ref, c_ref, store, chain] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn rss_fail_fast_leaves_a_resumable_store() {
    let pack = chain_pack();
    let d_ref = temp_dir("rss-ref");
    let c_ref = temp_dir("rss-ref-chain");
    let ref_report =
        killed_record_run(&pack, iri_faults::real_fs(), &d_ref, &c_ref).expect("reference run");

    let store = temp_dir("rss-store");
    let chain = temp_dir("rss-chain");
    let err = ScenarioRunner::new(
        pack.clone(),
        RunnerOptions {
            chain_dir: Some(chain.clone()),
            max_rss_mb: 1, // any real process exceeds 1 MiB immediately
            ..opts(ChainMode::Record, iri_faults::real_fs())
        },
    )
    .run(&store)
    .expect_err("1 MiB budget must fail fast");
    assert!(matches!(err, RunError::RssBudget { .. }), "got {err}");
    // The interrupted store recovered and resumed to the exact reference.
    let report = resume_run(&pack, &store, &chain).expect("resume after RSS fail-fast");
    assert_eq!(det_fields(&ref_report), det_fields(&report));
    assert_same_files(
        "rss+resume store",
        &store_bytes(&d_ref),
        &store_bytes(&store),
    );
    for d in [d_ref, c_ref, store, chain] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn resuming_a_completed_run_changes_nothing() {
    let pack = chain_pack();
    let store = temp_dir("done-store");
    let chain = temp_dir("done-chain");
    let rec = killed_record_run(&pack, iri_faults::real_fs(), &store, &chain).expect("record run");
    let before_store = store_bytes(&store);
    let before_chain = store_bytes(&chain);
    let again = resume_run(&pack, &store, &chain).expect("resume of a finished run");
    assert_eq!(again.resumed_from, Some(rec.events_written));
    assert_eq!(det_fields(&rec), det_fields(&again));
    assert_same_files(
        "idempotent resume store",
        &before_store,
        &store_bytes(&store),
    );
    assert_same_files(
        "idempotent resume chain",
        &before_chain,
        &store_bytes(&chain),
    );
    for d in [store, chain] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Rewrites the chain with `mutate` applied to the entry at `seq`,
/// re-linking every hash so the file still loads cleanly — the tamper is
/// only visible as a divergence from what the simulation re-produces.
fn tamper_chain(chain_dir: &Path, seq: u64, mutate: impl Fn(&mut String)) {
    let path = chain_dir.join(CHAIN_FILE);
    let text = std::fs::read_to_string(&path).expect("read chain");
    let mut out = String::new();
    let mut prev = 0u64;
    for line in text.lines() {
        let e = ChainEntry::parse_line(line).expect("valid entry");
        let mut payload = e.payload.clone();
        if e.seq == seq {
            mutate(&mut payload);
        }
        let relinked = ChainEntry::link(e.seq, e.kind, payload, prev);
        prev = relinked.hash;
        out.push_str(&relinked.to_line());
        out.push('\n');
    }
    std::fs::write(&path, out).expect("write tampered chain");
}

#[test]
fn injected_nondeterminism_fails_with_the_first_divergent_seq() {
    let pack = chain_pack();
    let store = temp_dir("div-store");
    let chain = temp_dir("div-chain");
    killed_record_run(&pack, iri_faults::real_fs(), &store, &chain).expect("record run");

    // Flip one recorded event's size field: the replayed simulation will
    // produce the true value and must refuse at exactly that entry.
    let text = std::fs::read_to_string(chain.join(CHAIN_FILE)).expect("chain");
    let victim = text
        .lines()
        .map(|l| ChainEntry::parse_line(l).expect("valid entry"))
        .filter(|e| e.kind == iri_chain::EntryKind::Event)
        .nth(5)
        .expect("at least six events recorded");
    tamper_chain(&chain, victim.seq, |payload| {
        payload.push('9'); // corrupt the trailing size field
    });

    let d_rep = temp_dir("div-replay");
    let err = ScenarioRunner::new(
        pack,
        RunnerOptions {
            chain_dir: Some(chain.clone()),
            ..opts(ChainMode::Replay, iri_faults::real_fs())
        },
    )
    .run(&d_rep)
    .expect_err("tampered chain must fail the replay");
    match err {
        RunError::Chain(iri_chain::ChainError::Divergence { seq, expected, got }) => {
            assert_eq!(seq, victim.seq, "wrong divergence point");
            assert_ne!(expected, got);
        }
        other => panic!("expected Divergence, got {other}"),
    }
    for d in [store, chain, d_rep] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn a_truncated_recording_fails_replay_past_its_end() {
    let pack = chain_pack();
    let store = temp_dir("trunc-store");
    let chain = temp_dir("trunc-chain");
    killed_record_run(&pack, iri_faults::real_fs(), &store, &chain).expect("record run");

    // Keep only the first 10 entries (still a valid hash-linked prefix).
    let path = chain.join(CHAIN_FILE);
    let text = std::fs::read_to_string(&path).expect("chain");
    let kept: Vec<&str> = text.lines().take(10).collect();
    std::fs::write(&path, format!("{}\n", kept.join("\n"))).expect("truncate");

    let d_rep = temp_dir("trunc-replay");
    let err = ScenarioRunner::new(
        pack,
        RunnerOptions {
            chain_dir: Some(chain.clone()),
            ..opts(ChainMode::Replay, iri_faults::real_fs())
        },
    )
    .run(&d_rep)
    .expect_err("replay must refuse to run past a sealed recording");
    match err {
        RunError::Chain(iri_chain::ChainError::PastEnd { seq }) => assert_eq!(seq, 10),
        other => panic!("expected PastEnd, got {other}"),
    }
    for d in [store, chain, d_rep] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
