//! End-to-end scenario-runner tests: determinism, spill equivalence, and
//! the fail-fast RSS guard.
//!
//! All runs use a tiny topology and truncated days so the suite stays in
//! tier-1 time, but they exercise the full streaming path: pack → world →
//! faults → monitor drain → classifier → bounded channel → store commits →
//! watcher polls.

use iri_scenario::runner::{RunError, RunnerOptions, ScenarioRunner};
use iri_scenario::{FaultKind, FaultSpec, ScenarioPack};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "iri-scenario-test-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every file under `dir` (recursively), relative path → contents.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(base: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read_dir") {
            let entry = entry.expect("dir entry");
            let path = entry.path();
            if path.is_dir() {
                walk(base, &path, out);
            } else {
                let rel = path
                    .strip_prefix(base)
                    .expect("under base")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn tiny_pack() -> ScenarioPack {
    let mut pack = ScenarioPack::default_at(0.01);
    pack.meta.seed = 42;
    pack.workload.warmup_minutes = Some(10);
    pack.workload.oscillator_count = Some(2);
    pack.run.chunk_minutes = 15;
    pack.run.batch_events = 64;
    pack.run.segment_rows = 256;
    pack
}

fn run_opts(jobs: usize) -> RunnerOptions {
    RunnerOptions {
        jobs,
        hours: Some(2),
        ..RunnerOptions::default()
    }
}

#[test]
fn streaming_run_commits_events_and_reports() {
    let pack = tiny_pack();
    let dir = temp_dir("smoke");
    let report = ScenarioRunner::new(pack, run_opts(0))
        .run(&dir)
        .expect("run");
    assert!(report.events_written > 0, "no events streamed");
    assert!(report.store_generation > 0, "nothing committed");
    assert!(report.final_census_prefixes > 0, "empty census");
    assert_eq!(report.days, 1);
    assert_eq!(report.hours_per_day, 2);
    // Quiet pack: perfect recall by definition.
    assert_eq!(report.scorecard.recall, 1.0);
    // The store on disk agrees with the report.
    let store = iri_store::LiveStore::open(&dir).expect("reopen");
    assert_eq!(store.manifest().total_events, report.events_written);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_pack_and_seed_give_byte_identical_stores_at_any_jobs() {
    let pack = tiny_pack();
    let d1 = temp_dir("det-jobs1");
    let d4 = temp_dir("det-jobs4");
    let r1 = ScenarioRunner::new(pack.clone(), run_opts(1))
        .run(&d1)
        .expect("run jobs=1");
    let r4 = ScenarioRunner::new(pack, run_opts(4))
        .run(&d4)
        .expect("run jobs=4");
    assert_eq!(r1.events_written, r4.events_written);
    assert_eq!(r1.store_generation, r4.store_generation);
    let b1 = dir_bytes(&d1);
    let b4 = dir_bytes(&d4);
    assert_eq!(
        b1.keys().collect::<Vec<_>>(),
        b4.keys().collect::<Vec<_>>(),
        "store file sets differ"
    );
    for (name, bytes) in &b1 {
        assert_eq!(bytes, &b4[name], "store file {name} differs across --jobs");
    }
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d4);
}

#[test]
fn rib_spill_does_not_change_the_event_stream() {
    // Smaller still than tiny_pack: with a working set below the router
    // count every event pays a table round-trip, so keep tables short.
    let mut base = tiny_pack();
    base.topology.prefixes = Some(30);
    base.workload.warmup_minutes = Some(5);
    base.workload.oscillator_count = Some(1);
    let mut spilling = base.clone();
    spilling.limits.spill_working_set = 2;

    let opts = RunnerOptions {
        hours: Some(1),
        ..RunnerOptions::default()
    };
    let d_plain = temp_dir("spill-off");
    let d_spill = temp_dir("spill-on");
    let plain = ScenarioRunner::new(base, opts.clone())
        .run(&d_plain)
        .expect("run without spill");
    let spilled = ScenarioRunner::new(spilling, opts)
        .run(&d_spill)
        .expect("run with spill");

    assert!(
        spilled.spill.spills > 0,
        "working set 2 on a multi-router world must spill"
    );
    assert_eq!(
        plain.events_written, spilled.events_written,
        "spill changed the event count"
    );
    let b_plain = dir_bytes(&d_plain);
    let b_spill = dir_bytes(&d_spill);
    for (name, bytes) in &b_plain {
        assert_eq!(
            bytes, &b_spill[name],
            "store file {name} differs under spill"
        );
    }
    let _ = std::fs::remove_dir_all(&d_plain);
    let _ = std::fs::remove_dir_all(&d_spill);
}

#[test]
fn faulted_pack_changes_the_stream_deterministically() {
    let mut pack = tiny_pack();
    pack.faults.push(FaultSpec {
        kind: FaultKind::CommunityChurn,
        day: 0,
        every_day: false,
        start_minute: 30,
        duration_minutes: 20,
        prefixes: 4,
        period_seconds: 30,
        ramp_minutes: 10,
        peak_per_minute: 60.0,
        alpha: 1.3,
        min_gap_minutes: 2.0,
        provider: 0,
    });
    let d1 = temp_dir("fault-a");
    let d2 = temp_dir("fault-b");
    let r1 = ScenarioRunner::new(pack.clone(), run_opts(0))
        .run(&d1)
        .expect("faulted run");
    let r2 = ScenarioRunner::new(pack, run_opts(0))
        .run(&d2)
        .expect("faulted rerun");
    assert_eq!(r1.events_written, r2.events_written);
    let b1 = dir_bytes(&d1);
    let b2 = dir_bytes(&d2);
    for (name, bytes) in &b1 {
        assert_eq!(bytes, &b2[name], "faulted store {name} not reproducible");
    }
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

#[test]
fn rss_budget_fails_fast() {
    let pack = tiny_pack();
    let dir = temp_dir("rss");
    let opts = RunnerOptions {
        max_rss_mb: 1, // any real process exceeds 1 MiB immediately
        hours: Some(1),
        ..RunnerOptions::default()
    };
    let err = ScenarioRunner::new(pack, opts).run(&dir).unwrap_err();
    match err {
        RunError::RssBudget { rss_mb, budget_mb } => {
            assert_eq!(budget_mb, 1);
            assert!(rss_mb > 1);
        }
        other => panic!("expected RssBudget, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
