//! The streaming scenario runner: pack → world → store → detectors.
//!
//! [`ScenarioRunner`] executes a [`ScenarioPack`] day by day with bounded
//! memory at every stage:
//!
//! - the simulation advances in `chunk_minutes` steps and the monitor log
//!   is drained after each chunk, so no whole-day MRT log ever
//!   accumulates;
//! - drained updates are flattened, classified, and pushed one event at a
//!   time through a **bounded** crossbeam channel to a writer thread that
//!   commits fixed-size batches to the [`LiveStore`] — batch boundaries
//!   are counted in events, never in wall time, so the store bytes are
//!   identical at any `--jobs` / machine speed;
//! - with `[limits] spill_working_set > 0`, per-router RIB state beyond
//!   the working set spills through the same `StoreFs` as the store
//!   (see `iri_netsim::spill`), bounding simulator-side memory too;
//! - a [`Watcher`] polls the store between chunks (live detection) and
//!   once after the final commit; its cumulative incident list is
//!   deterministic because detectors consume completed bins in event-time
//!   order regardless of poll timing.
//!
//! Event times are rebased so measured day `d` of the run spans
//! `[d·24 h, (d+1)·24 h)`; warmup traffic is classified (to warm the
//! per-day classifier exactly like the batch pipeline) but not stored.
//! The run ends with a [`Scorecard`] matching detected incidents against
//! the pack's `[[ground_truth]]` expectations.

use crate::faults::{apply_faults, DayContext};
use crate::pack::{PackError, ScenarioPack, TruthSpec};
use crate::rss::{current_rss_kb, peak_rss_kb};
use iri_core::input::{events_from_update, PeerKey};
use iri_core::Classifier;
use iri_faults::SharedFs;
use iri_netsim::{SimTime, SpillConfig, HOUR, MINUTE};
use iri_obs::incident::Incident;
use iri_store::{LiveOptions, LiveStore, StoreError, StoredEvent, WatchConfig, Watcher};
use iri_topology::asgraph::AsGraph;
use iri_topology::scenario::build_day_world;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Writer-side compaction cadence, in committed batches. Keyed to the
/// event sequence (never wall time) so store bytes stay identical at any
/// `--jobs`; between compactions the manifest carries at most this many
/// commits' worth of ragged per-shard segments.
const COMPACT_EVERY_COMMITS: u64 = 16;

/// How to execute a pack, beyond what the pack itself says.
#[derive(Clone)]
pub struct RunnerOptions {
    /// Filesystem for the store and the RIB spill directory.
    pub fs: SharedFs,
    /// Store worker threads (0 = one per CPU). Never affects store bytes.
    pub jobs: usize,
    /// Overrides the pack's `[limits] max_rss_mb` when non-zero.
    pub max_rss_mb: u64,
    /// Truncates each simulated day to this many hours (CI smoke runs).
    pub hours: Option<u32>,
    /// Print a per-day progress line to stderr.
    pub verbose: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            fs: iri_faults::real_fs(),
            jobs: 0,
            max_rss_mb: 0,
            hours: None,
            verbose: false,
        }
    }
}

/// A runner failure.
#[derive(Debug)]
pub enum RunError {
    /// The store rejected a commit or scan.
    Store(StoreError),
    /// The pack was semantically unusable (bad exchange, …).
    Pack(PackError),
    /// Resident memory crossed the fail-fast budget.
    RssBudget {
        /// Observed resident set (MiB).
        rss_mb: u64,
        /// The configured ceiling (MiB).
        budget_mb: u64,
    },
    /// The writer thread died (its store error is reported separately).
    Channel(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Store(e) => write!(f, "store error: {e}"),
            RunError::Pack(e) => write!(f, "pack error: {e}"),
            RunError::RssBudget { rss_mb, budget_mb } => write!(
                f,
                "resident memory {rss_mb} MiB exceeded the --max-rss-mb budget of {budget_mb} MiB"
            ),
            RunError::Channel(what) => write!(f, "writer channel failed: {what}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<StoreError> for RunError {
    fn from(e: StoreError) -> Self {
        RunError::Store(e)
    }
}

impl From<PackError> for RunError {
    fn from(e: PackError) -> Self {
        RunError::Pack(e)
    }
}

/// Detector performance against the pack's ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scorecard {
    /// Expected incidents in the pack.
    pub truths: usize,
    /// Detected incidents matched to a truth (kind + onset + lag + cause).
    pub true_positives: usize,
    /// Detected incidents matching no truth.
    pub false_positives: usize,
    /// Truths no incident matched.
    pub false_negatives: usize,
    /// `tp / (tp + fp)`; 1.0 when nothing was detected.
    pub precision: f64,
    /// `tp / truths`; 1.0 when the pack expects nothing.
    pub recall: f64,
}

/// RIB-spill activity, summed over the run's days.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpillSummary {
    /// Router images written out.
    pub spills: u64,
    /// Router images read back.
    pub restores: u64,
    /// Bytes written across all spills.
    pub bytes_written: u64,
    /// Bytes read across all restores.
    pub bytes_read: u64,
}

/// Everything one pack run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// `pack.meta.name`.
    pub pack: String,
    /// Measured days simulated.
    pub days: u32,
    /// Hours per simulated day (24 unless truncated for a smoke run).
    pub hours_per_day: u32,
    /// Classified events committed to the store.
    pub events_written: u64,
    /// Store generation after the final commit.
    pub store_generation: u64,
    /// All incidents the watcher raised, in bin order.
    pub incidents: Vec<Incident>,
    /// Detector score against the pack's ground truth.
    pub scorecard: Scorecard,
    /// Routing-table census prefixes at the end of the last day.
    pub final_census_prefixes: usize,
    /// Process peak resident set (`VmHWM`), KiB, sampled at run end.
    pub peak_rss_kb: u64,
    /// RIB-spill totals (all zero when spill is disabled).
    pub spill: SpillSummary,
    /// Wall-clock run time, milliseconds.
    pub wall_ms: u64,
    /// Events committed per wall-clock second.
    pub events_per_sec: f64,
}

/// Executes scenario packs; see the [module docs](self).
pub struct ScenarioRunner {
    pack: ScenarioPack,
    opts: RunnerOptions,
}

impl ScenarioRunner {
    /// A runner for `pack` with `opts`.
    #[must_use]
    pub fn new(pack: ScenarioPack, opts: RunnerOptions) -> Self {
        ScenarioRunner { pack, opts }
    }

    /// The effective RSS budget (MiB); 0 = unlimited.
    fn rss_budget_mb(&self) -> u64 {
        if self.opts.max_rss_mb > 0 {
            self.opts.max_rss_mb
        } else {
            self.pack.limits.max_rss_mb
        }
    }

    /// Runs the pack, streaming into a [`LiveStore`] at `store_dir`.
    ///
    /// # Errors
    /// On store failures, unusable packs, or a blown RSS budget.
    ///
    /// # Panics
    /// If the writer thread panics (store bugs surface loudly).
    pub fn run(&self, store_dir: &Path) -> Result<RunReport, RunError> {
        let started = std::time::Instant::now();
        let pack = &self.pack;
        let cfg = pack.scenario_config()?;
        let graph = AsGraph::generate(&pack.graph_config());
        let store = LiveStore::open_with(
            store_dir,
            &LiveOptions {
                fs: self.opts.fs.clone(),
                create_segment_rows: Some(pack.run.segment_rows),
                jobs: self.opts.jobs,
                ..LiveOptions::default()
            },
        )?;
        let mut watcher = Watcher::new(WatchConfig {
            bin_ms: pack.watch.bin_ms,
            change_window: pack.watch.change_window,
            change_ratio: pack.watch.change_ratio,
            change_z: pack.watch.change_z,
            min_rate: pack.watch.min_rate,
            period_window: pack.watch.period_window,
            period_min_lag: pack.watch.period_min_lag,
            period_max_lag: pack.watch.period_max_lag,
            period_threshold: pack.watch.period_threshold,
            novelty_warmup: pack.watch.novelty_warmup,
            novelty_min_count: pack.watch.novelty_min_count,
            ..WatchConfig::default()
        });
        // The spill directory sits NEXT TO the store directory: the store's
        // recovery scan owns everything inside its own dir.
        let spill_dir = store_dir.with_file_name(format!(
            "{}-ribspill",
            store_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "store".to_owned())
        ));
        let budget_mb = self.rss_budget_mb();
        let hours = self.opts.hours.unwrap_or(24).clamp(1, 24);
        let warmup_ms = SimTime::from(cfg.warmup_minutes) * MINUTE;
        let lan_base = u32::from(cfg.exchange.lan_base());
        let batch = pack.run.batch_events.max(1);
        let segment_rows = pack.run.segment_rows;

        let (tx, rx) = crossbeam::channel::bounded::<StoredEvent>(pack.run.channel_capacity);
        let mut spill_total = SpillSummary::default();
        let mut final_census_prefixes = 0usize;
        let watcher_ref = &mut watcher;
        let spill_ref = &mut spill_total;
        let census_ref = &mut final_census_prefixes;

        let sim_result: Result<u64, RunError> = crossbeam::thread::scope(|scope| {
            let store_ref = &store;
            let writer = scope.spawn(move |_| -> Result<u64, StoreError> {
                // Exact-count batching: commit generations (and therefore
                // segment boundaries) depend only on the event sequence.
                // Each append leaves a ragged per-shard tail, so the
                // writer also compacts on a fixed commit cadence — keyed
                // to the event sequence, never wall time — which keeps
                // the manifest (and with it resident memory) bounded by
                // the canonical segment count instead of growing with
                // every commit of the run.
                let mut buf: Vec<StoredEvent> = Vec::with_capacity(batch);
                let mut written = 0u64;
                let mut commits = 0u64;
                for ev in rx.iter() {
                    buf.push(ev);
                    if buf.len() == batch {
                        store_ref.append_events(&buf)?;
                        written += buf.len() as u64;
                        buf.clear();
                        commits += 1;
                        if commits.is_multiple_of(COMPACT_EVERY_COMMITS) {
                            store_ref.compact(segment_rows)?;
                        }
                    }
                }
                if !buf.is_empty() {
                    store_ref.append_events(&buf)?;
                    written += buf.len() as u64;
                }
                Ok(written)
            });

            let mut drive = || -> Result<(), RunError> {
                for run_day in 0..pack.run.days {
                    let sim_day = pack.run.start_day + run_day;
                    let (mut world, rs, providers) = build_day_world(&cfg, &graph, sim_day);
                    apply_faults(
                        pack,
                        &mut world,
                        &DayContext {
                            graph: &graph,
                            providers: &providers,
                            lan_base,
                            warmup_ms,
                            run_day,
                        },
                    );
                    if pack.limits.spill_working_set > 0 {
                        world.enable_rib_spill(SpillConfig {
                            fs: self.opts.fs.clone(),
                            dir: spill_dir.clone(),
                            working_set: pack.limits.spill_working_set,
                        });
                    }
                    world.start();
                    // Day `d` of the run lands at [d·24 h, d·24 h + hours).
                    let day_offset = u64::from(run_day) * 24 * HOUR;
                    let day_end = warmup_ms + u64::from(hours) * HOUR;
                    let chunk = u64::from(pack.run.chunk_minutes) * MINUTE;
                    let mut classifier = Classifier::new();
                    let mut t = 0u64;
                    while t < day_end {
                        t = (t + chunk).min(day_end);
                        world.run_until(t);
                        let drained = world
                            .monitor_mut(rs)
                            .map(|m| std::mem::take(&mut m.updates))
                            .unwrap_or_default();
                        for logged in &drained {
                            let iri_bgp::message::Message::Update(up) = &logged.message else {
                                continue;
                            };
                            let peer = PeerKey {
                                asn: logged.peer_asn,
                                addr: logged.peer_addr,
                            };
                            for ev in events_from_update(logged.time_ms, peer, up) {
                                // Warm the classifier on warmup traffic but
                                // only store the measured day.
                                let c = classifier.classify(&ev);
                                if c.time_ms < warmup_ms {
                                    continue;
                                }
                                let mut row = StoredEvent::from_classified(&c, logged.cause);
                                row.time_ms = row.time_ms - warmup_ms + day_offset;
                                tx.send(row)
                                    .map_err(|_| RunError::Channel("writer hung up".to_owned()))?;
                            }
                        }
                        watcher_ref.poll(store_ref)?;
                        if budget_mb > 0 {
                            let rss_mb = current_rss_kb().unwrap_or(0) / 1024;
                            if rss_mb > budget_mb {
                                return Err(RunError::RssBudget { rss_mb, budget_mb });
                            }
                        }
                    }
                    if let Some(stats) = world.spill_stats() {
                        spill_ref.spills += stats.spills;
                        spill_ref.restores += stats.restores;
                        spill_ref.bytes_written += stats.bytes_written;
                        spill_ref.bytes_read += stats.bytes_read;
                    }
                    world.ensure_resident(rs);
                    let census = iri_rib::stats::census(world.router(rs).loc_rib());
                    *census_ref = census.prefixes;
                    if self.opts.verbose {
                        eprintln!(
                            "day {run_day}: sim day {sim_day}, census {} prefixes, rss {} MiB",
                            census.prefixes,
                            current_rss_kb().unwrap_or(0) / 1024
                        );
                    }
                }
                Ok(())
            };
            let drive_result = drive();
            drop(tx);
            let written = writer
                .join()
                .expect("writer thread panicked")
                .map_err(RunError::Store);
            drive_result.and(written)
        })
        .expect("crossbeam scope");
        let events_written = sim_result?;

        // Canonicalize the tail left since the last cadence compaction and
        // reclaim retired generations — no reader is pinned here, so the
        // final store layout is a pure function of the event sequence.
        store.compact(segment_rows)?;

        // Final poll after the last commit; the watcher only ever consumes
        // completed bins in order, so the cumulative incident list does not
        // depend on how polls interleaved with commits.
        watcher.poll(&store)?;
        let incidents = watcher.incidents().to_vec();
        let scorecard = score(&pack.ground_truth, &incidents);
        let wall_ms = started.elapsed().as_millis() as u64;
        Ok(RunReport {
            pack: pack.meta.name.clone(),
            days: pack.run.days,
            hours_per_day: hours,
            events_written,
            store_generation: store.generation(),
            incidents,
            scorecard,
            final_census_prefixes,
            peak_rss_kb: peak_rss_kb().unwrap_or(0),
            spill: spill_total,
            wall_ms,
            events_per_sec: events_written as f64 / (wall_ms.max(1) as f64 / 1000.0),
        })
    }
}

/// Greedy one-to-one matching of incidents to ground truths: a truth
/// accepts the earliest unmatched incident of the same kind whose onset
/// lands within tolerance, whose detection lag is within bound, and whose
/// cause matches (when the truth pins one).
fn score(truths: &[TruthSpec], incidents: &[Incident]) -> Scorecard {
    let mut matched = vec![false; incidents.len()];
    let mut tp = 0usize;
    for t in truths {
        let onset = u64::from(t.day) * 24 * HOUR + u64::from(t.onset_minute) * MINUTE;
        let tol = u64::from(t.onset_tol_minutes) * MINUTE;
        let max_lag = u64::from(t.max_lag_minutes) * MINUTE;
        let hit = incidents.iter().enumerate().find(|(i, inc)| {
            !matched[*i]
                && inc.kind == t.kind
                && inc.onset_ms.abs_diff(onset) <= tol
                && inc.detected_ms.saturating_sub(onset) <= max_lag
                && (t.cause.is_empty() || inc.cause == t.cause)
        });
        if let Some((i, _)) = hit {
            matched[i] = true;
            tp += 1;
        }
    }
    let fp = matched.iter().filter(|m| !**m).count();
    Scorecard {
        truths: truths.len(),
        true_positives: tp,
        false_positives: fp,
        false_negatives: truths.len() - tp,
        precision: if incidents.is_empty() {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        // Recall is about the truths; a quiet pack misses nothing.
        recall: if truths.is_empty() {
            1.0
        } else {
            tp as f64 / truths.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_obs::incident::IncidentKind;

    fn truth(kind: IncidentKind, day: u32, onset_minute: u32) -> TruthSpec {
        TruthSpec {
            kind,
            day,
            onset_minute,
            onset_tol_minutes: 10,
            max_lag_minutes: 30,
            cause: String::new(),
        }
    }

    fn incident(kind: IncidentKind, onset_ms: u64, detected_ms: u64) -> Incident {
        Incident {
            kind,
            onset_ms,
            detected_ms,
            cause: String::new(),
            score: 5.0,
            detail: String::new(),
        }
    }

    #[test]
    fn score_matches_within_tolerance() {
        let truths = vec![truth(IncidentKind::InstabilityOnset, 0, 600)];
        let incidents = vec![incident(
            IncidentKind::InstabilityOnset,
            605 * MINUTE,
            620 * MINUTE,
        )];
        let s = score(&truths, &incidents);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn score_rejects_wrong_kind_late_lag_and_far_onset() {
        let truths = vec![truth(IncidentKind::InstabilityOnset, 0, 600)];
        // Wrong kind.
        let s = score(
            &truths,
            &[incident(
                IncidentKind::NoveltyAlarm,
                600 * MINUTE,
                601 * MINUTE,
            )],
        );
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 1);
        // Onset too far.
        let s = score(
            &truths,
            &[incident(
                IncidentKind::InstabilityOnset,
                700 * MINUTE,
                701 * MINUTE,
            )],
        );
        assert_eq!(s.true_positives, 0);
        // Lag too long.
        let s = score(
            &truths,
            &[incident(
                IncidentKind::InstabilityOnset,
                600 * MINUTE,
                700 * MINUTE,
            )],
        );
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.recall, 0.0);
    }

    #[test]
    fn score_is_perfect_when_quiet() {
        let s = score(&[], &[]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        // Spurious incident on a quiet pack costs precision, not recall.
        let s = score(
            &[],
            &[incident(IncidentKind::NoveltyAlarm, MINUTE, 2 * MINUTE)],
        );
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn cause_pinning_is_enforced() {
        let mut t = truth(IncidentKind::InstabilityOnset, 0, 100);
        t.cause = "LinkFlap".to_owned();
        let mut inc = incident(IncidentKind::InstabilityOnset, 100 * MINUTE, 110 * MINUTE);
        inc.cause = "CsuDrift".to_owned();
        let s = score(&[t.clone()], &[inc.clone()]);
        assert_eq!(s.true_positives, 0);
        inc.cause = "LinkFlap".to_owned();
        let s = score(&[t], &[inc]);
        assert_eq!(s.true_positives, 1);
    }
}
