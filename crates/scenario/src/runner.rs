//! The streaming scenario runner: pack → world → store → detectors.
//!
//! [`ScenarioRunner`] executes a [`ScenarioPack`] day by day with bounded
//! memory at every stage:
//!
//! - the simulation advances in `chunk_minutes` steps and the monitor log
//!   is drained after each chunk, so no whole-day MRT log ever
//!   accumulates;
//! - drained updates are flattened, classified, and pushed one event at a
//!   time through a **bounded** crossbeam channel to a writer thread that
//!   commits fixed-size batches to the [`LiveStore`] — batch boundaries
//!   are counted in events, never in wall time, so the store bytes are
//!   identical at any `--jobs` / machine speed;
//! - with `[limits] spill_working_set > 0`, per-router RIB state beyond
//!   the working set spills through the same `StoreFs` as the store
//!   (see `iri_netsim::spill`), bounding simulator-side memory too;
//! - a [`Watcher`] polls the store between chunks (live detection) and
//!   once after the final commit; its cumulative incident list is
//!   deterministic because detectors consume completed bins in event-time
//!   order regardless of poll timing.
//!
//! Event times are rebased so measured day `d` of the run spans
//! `[d·24 h, (d+1)·24 h)`; warmup traffic is classified (to warm the
//! per-day classifier exactly like the batch pipeline) but not stored.
//! The run ends with a [`Scorecard`] matching detected incidents against
//! the pack's `[[ground_truth]]` expectations.
//!
//! ## The boundary chain
//!
//! With [`ChainMode::Record`], every input crossing into the
//! deterministic core — classified events, per-day fault-draw digests,
//! day boundaries, end-of-day checkpoints — is appended to a hash-linked
//! [`ChainTape`] (see `iri-chain`) owned by the **writer thread**, the
//! single point every crossing already serializes through. The tape is
//! flushed (one durable append) before every store commit, so on any
//! crash the chain on disk covers at least every committed event.
//!
//! [`ChainMode::Resume`] restarts a killed run: the store recovers to its
//! last committed generation, the chain's checkpoints say which days are
//! already fully recorded, committed-but-gone events are tail-fed from
//! the chain, and only the unfinished days are re-simulated — verified
//! against the recorded entries as they cross. [`ChainMode::Replay`]
//! re-derives the whole run against a sealed tape: any divergence fails
//! with the first divergent sequence number, and producing fewer or more
//! crossings than the recording is an error in both modes.

use crate::faults::{apply_faults, DayContext};
use crate::pack::{PackError, ScenarioPack, TruthSpec};
use crate::rss::{current_rss_kb, peak_rss_kb};
use iri_chain::{decode_event, encode_event, ChainError, ChainTape, EntryKind, Genesis, Mark};
use iri_core::fxhash::FxHasher;
use iri_core::input::{events_from_update, PeerKey};
use iri_core::Classifier;
use iri_faults::SharedFs;
use iri_netsim::{SimTime, SpillConfig, HOUR, MINUTE};
use iri_obs::incident::Incident;
use iri_store::{LiveOptions, LiveStore, StoreError, StoredEvent, WatchConfig, Watcher};
use iri_topology::asgraph::AsGraph;
use iri_topology::scenario::build_day_world;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Writer-side compaction cadence, in committed batches. Keyed to the
/// event sequence (never wall time) so store bytes stay identical at any
/// `--jobs`; between compactions the manifest carries at most this many
/// commits' worth of ragged per-shard segments.
const COMPACT_EVERY_COMMITS: u64 = 16;

/// How the runner uses the boundary chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainMode {
    /// No chain: the pre-chain behavior, byte-for-byte.
    #[default]
    Off,
    /// Record every boundary crossing into a fresh chain.
    Record,
    /// Restart a killed recorded run from its last durable state.
    Resume,
    /// Re-derive a recorded run against the sealed chain; diverging from
    /// it, or ending early/late, is an error.
    Replay,
}

/// How to execute a pack, beyond what the pack itself says.
#[derive(Clone)]
pub struct RunnerOptions {
    /// Filesystem for the store, the RIB spill directory, and the chain.
    pub fs: SharedFs,
    /// Store worker threads (0 = one per CPU). Never affects store bytes.
    pub jobs: usize,
    /// Overrides the pack's `[limits] max_rss_mb` when non-zero.
    pub max_rss_mb: u64,
    /// Truncates each simulated day to this many hours (CI smoke runs).
    pub hours: Option<u32>,
    /// Print a per-day progress line to stderr.
    pub verbose: bool,
    /// Boundary-chain mode.
    pub chain: ChainMode,
    /// Chain directory; defaults to `<store>-chain` next to the store.
    pub chain_dir: Option<PathBuf>,
    /// Stop with [`RunError::Stopped`] after this many simulated chunks —
    /// a deterministic in-process stand-in for `kill -9` at a chunk
    /// boundary, used by the CI kill-and-resume smoke.
    pub stop_after_chunks: Option<u64>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            fs: iri_faults::real_fs(),
            jobs: 0,
            max_rss_mb: 0,
            hours: None,
            verbose: false,
            chain: ChainMode::Off,
            chain_dir: None,
            stop_after_chunks: None,
        }
    }
}

/// The default chain directory for a store: `<store>-chain`, a sibling —
/// the store's recovery scan owns everything inside its own dir.
#[must_use]
pub fn chain_dir_for(store_dir: &Path) -> PathBuf {
    store_dir.with_file_name(format!(
        "{}-chain",
        store_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_owned())
    ))
}

/// A runner failure.
#[derive(Debug)]
pub enum RunError {
    /// The store rejected a commit or scan.
    Store(StoreError),
    /// The pack was semantically unusable (bad exchange, …).
    Pack(PackError),
    /// Resident memory crossed the fail-fast budget. The store is left
    /// at its last batch-aligned commit, so a recorded run resumes.
    RssBudget {
        /// Observed resident set (MiB).
        rss_mb: u64,
        /// The configured ceiling (MiB).
        budget_mb: u64,
    },
    /// The writer thread died (its store error is reported separately).
    Channel(String),
    /// The boundary chain failed: corrupt, mismatched, or — the one that
    /// matters — divergent, with the first divergent sequence number.
    Chain(ChainError),
    /// The deliberate `stop_after_chunks` kill hook fired.
    Stopped {
        /// Chunks simulated before stopping.
        chunks: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Store(e) => write!(f, "store error: {e}"),
            RunError::Pack(e) => write!(f, "pack error: {e}"),
            RunError::RssBudget { rss_mb, budget_mb } => write!(
                f,
                "resident memory {rss_mb} MiB exceeded the --max-rss-mb budget of {budget_mb} MiB"
            ),
            RunError::Channel(what) => write!(f, "writer channel failed: {what}"),
            RunError::Chain(e) => write!(f, "chain error: {e}"),
            RunError::Stopped { chunks } => {
                write!(f, "stopped by --kill-after-chunks after {chunks} chunks")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<StoreError> for RunError {
    fn from(e: StoreError) -> Self {
        RunError::Store(e)
    }
}

impl From<PackError> for RunError {
    fn from(e: PackError) -> Self {
        RunError::Pack(e)
    }
}

impl From<ChainError> for RunError {
    fn from(e: ChainError) -> Self {
        RunError::Chain(e)
    }
}

/// Detector performance against the pack's ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scorecard {
    /// Expected incidents in the pack.
    pub truths: usize,
    /// Detected incidents matched to a truth (kind + onset + lag + cause).
    pub true_positives: usize,
    /// Detected incidents matching no truth.
    pub false_positives: usize,
    /// Truths no incident matched.
    pub false_negatives: usize,
    /// `tp / (tp + fp)`; 1.0 when nothing was detected.
    pub precision: f64,
    /// `tp / truths`; 1.0 when the pack expects nothing.
    pub recall: f64,
}

/// RIB-spill activity, summed over the run's days.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpillSummary {
    /// Router images written out.
    pub spills: u64,
    /// Router images read back.
    pub restores: u64,
    /// Bytes written across all spills.
    pub bytes_written: u64,
    /// Bytes read across all restores.
    pub bytes_read: u64,
}

/// Everything one pack run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// `pack.meta.name`.
    pub pack: String,
    /// Measured days simulated.
    pub days: u32,
    /// Hours per simulated day (24 unless truncated for a smoke run).
    pub hours_per_day: u32,
    /// Classified events committed to the store.
    pub events_written: u64,
    /// Store generation after the final commit.
    pub store_generation: u64,
    /// All incidents the watcher raised, in bin order.
    pub incidents: Vec<Incident>,
    /// Detector score against the pack's ground truth.
    pub scorecard: Scorecard,
    /// Routing-table census prefixes at the end of the last day.
    pub final_census_prefixes: usize,
    /// Process peak resident set (`VmHWM`), KiB, sampled at run end.
    pub peak_rss_kb: u64,
    /// RIB-spill totals (all zero when spill is disabled).
    pub spill: SpillSummary,
    /// Chain entries recorded or verified (0 with the chain off).
    pub chain_entries: u64,
    /// Event entries among them.
    pub chain_events: u64,
    /// Chain head hash (hex), committing to the whole recorded input
    /// stream. Stamped into `BENCH_*.json` so every published number
    /// names the exact inputs that produced it.
    pub chain_head: Option<String>,
    /// Events already committed when a resume picked the run up.
    pub resumed_from: Option<u64>,
    /// Wall-clock run time, milliseconds.
    pub wall_ms: u64,
    /// Events committed per wall-clock second.
    pub events_per_sec: f64,
}

/// What crosses the driver → writer channel. Every boundary crossing
/// funnels through here, so the writer thread is the single owner of the
/// chain tape and chain order is the channel order — no racing appends.
enum WriterMsg {
    /// A classified event produced by the simulation: chain it (verify
    /// or append), and store it unless it lands below the resume skip
    /// point.
    Event(StoredEvent),
    /// A committed-but-recovered event tail-fed from the chain during
    /// resume: store it, no chain interaction (it is already recorded).
    Raw(StoredEvent),
    /// A non-event crossing: chain only; a checkpoint also flushes.
    Mark(Mark),
}

/// Everything a resume analysis decides before the run starts.
struct ResumePlan {
    /// Events committed in the recovered store.
    committed: u64,
    /// First day that must be re-simulated (`days` = none).
    start_day: u32,
    /// Events recorded through the last completed day's checkpoint.
    base_events: u64,
    /// Committed-but-recovered events to tail-feed: chain events
    /// `[committed..base_events)`.
    tail: Vec<StoredEvent>,
    /// Entry index verification starts at (the re-simulated day's
    /// `DayStart`, or the chain end).
    cursor: usize,
    /// Spill totals through the skipped days.
    base_spill: SpillSummary,
    /// Census at the last skipped day's end.
    base_census: usize,
    /// The crash landed between a cadence commit and its compaction:
    /// compact once before appending anything.
    catch_up_compact: bool,
    /// The recorded run already ran its final compaction: don't repeat
    /// it (compaction always bumps the generation).
    final_compact_done: bool,
}

impl Default for ResumePlan {
    fn default() -> Self {
        ResumePlan {
            committed: 0,
            start_day: 0,
            base_events: 0,
            tail: Vec::new(),
            cursor: 1,
            base_spill: SpillSummary::default(),
            base_census: 0,
            catch_up_compact: false,
            final_compact_done: false,
        }
    }
}

/// Derives the resume plan from the recovered store and the loaded
/// chain. See the module docs for the invariants this leans on: the
/// chain on disk always covers every committed event, and commits are
/// exact batches, so the recovered store is batch-aligned unless the
/// recorded run finished.
fn plan_resume(
    tape: &ChainTape,
    days: u32,
    batch: u64,
    committed: u64,
    generation: u64,
) -> Result<ResumePlan, RunError> {
    let mismatch = |what: String| RunError::Chain(ChainError::Mismatch { what });
    // Walk the recorded checkpoints; they must cover days 0..k in order.
    let mut ckpts: Vec<Mark> = Vec::new();
    for e in tape.entries() {
        if e.kind == EntryKind::Checkpoint {
            let m = Mark::decode(e.seq, e.kind, &e.payload)?;
            let Mark::Checkpoint { run_day, .. } = m else {
                unreachable!("decode preserves kind")
            };
            if run_day != ckpts.len() as u32 {
                return Err(mismatch(format!(
                    "checkpoint days out of order: found day {run_day}, expected {}",
                    ckpts.len()
                )));
            }
            ckpts.push(m);
        }
    }
    let start_day = (ckpts.len() as u32).min(days);
    let (base_events, base_spill, base_census) = match start_day.checked_sub(1) {
        None => (0, SpillSummary::default(), 0),
        Some(last) => {
            let Mark::Checkpoint {
                events,
                census_prefixes,
                spills,
                restores,
                spill_bytes_written,
                spill_bytes_read,
                ..
            } = ckpts[last as usize]
            else {
                unreachable!("ckpts holds checkpoints")
            };
            (
                events,
                SpillSummary {
                    spills,
                    restores,
                    bytes_written: spill_bytes_written,
                    bytes_read: spill_bytes_read,
                },
                census_prefixes as usize,
            )
        }
    };
    let chain_events = tape.events_len();
    if committed > chain_events {
        return Err(mismatch(format!(
            "store holds {committed} events but the chain records only {chain_events} — \
             the chain is flushed before every commit, so this chain is not this store's"
        )));
    }
    if !committed.is_multiple_of(batch) && start_day != days {
        return Err(mismatch(format!(
            "store holds a partial final batch ({committed} events, batch {batch}) but the \
             chain says the run is incomplete at day {start_day}"
        )));
    }
    // Tail-feed: events recorded (durable in the chain) beyond what the
    // store recovered, up to the checkpoint boundary the re-simulation
    // restarts from. They come back from the chain, not a re-simulation.
    let mut tail = Vec::new();
    if base_events > committed {
        let mut ordinal = 0u64;
        for e in tape.entries() {
            if e.kind != EntryKind::Event {
                continue;
            }
            if ordinal >= base_events {
                break;
            }
            if ordinal >= committed {
                tail.push(decode_event(e.seq, &e.payload)?);
            }
            ordinal += 1;
        }
    }
    let cursor = if start_day < days {
        tape.day_start_index(start_day).unwrap_or(tape.len())
    } else {
        tape.len()
    };
    // Generation arithmetic: a fresh store opens at generation 1, every
    // append commit and every compaction bumps it. The cadence compacts
    // after every COMPACT_EVERY_COMMITS full batches, so the recovered
    // generation tells us whether a cadence compact (or the final one)
    // already happened.
    let appends = committed / batch + u64::from(!committed.is_multiple_of(batch));
    let compacts = generation.checked_sub(1 + appends).ok_or_else(|| {
        mismatch(format!(
            "store generation {generation} is too low for {committed} committed events"
        ))
    })?;
    let cadence = (committed / batch) / COMPACT_EVERY_COMMITS;
    let (catch_up_compact, final_compact_done) = if compacts + 1 == cadence {
        (true, false)
    } else if compacts == cadence {
        (false, false)
    } else if compacts == cadence + 1 && start_day == days {
        (false, true)
    } else {
        return Err(mismatch(format!(
            "store generation {generation} inconsistent with {committed} committed events \
             ({compacts} compactions, expected about {cadence})"
        )));
    };
    Ok(ResumePlan {
        committed,
        start_day,
        base_events,
        tail,
        cursor,
        base_spill,
        base_census,
        catch_up_compact,
        final_compact_done,
    })
}

/// Commits the buffer if it reached one exact batch: chain flush first
/// (the durable chain must always cover every committed event), then the
/// store append, then the cadence compaction.
fn commit_if_full(
    buf: &mut Vec<StoredEvent>,
    batch: usize,
    tape: &mut Option<ChainTape>,
    store: &LiveStore,
    segment_rows: u32,
    written: &mut u64,
    commits: &mut u64,
) -> Result<(), RunError> {
    if buf.len() < batch {
        return Ok(());
    }
    if let Some(t) = tape.as_mut() {
        t.flush()?;
    }
    store.append_events(buf)?;
    *written += buf.len() as u64;
    buf.clear();
    *commits += 1;
    if commits.is_multiple_of(COMPACT_EVERY_COMMITS) {
        store.compact(segment_rows)?;
    }
    Ok(())
}

/// Executes scenario packs; see the [module docs](self).
pub struct ScenarioRunner {
    pack: ScenarioPack,
    opts: RunnerOptions,
}

impl ScenarioRunner {
    /// A runner for `pack` with `opts`.
    #[must_use]
    pub fn new(pack: ScenarioPack, opts: RunnerOptions) -> Self {
        ScenarioRunner { pack, opts }
    }

    /// The effective RSS budget (MiB); 0 = unlimited.
    fn rss_budget_mb(&self) -> u64 {
        if self.opts.max_rss_mb > 0 {
            self.opts.max_rss_mb
        } else {
            self.pack.limits.max_rss_mb
        }
    }

    /// The chain genesis this pack + options pair would record.
    fn genesis(&self, hours: u32) -> Genesis {
        use std::hash::Hasher as _;
        let mut h = FxHasher::default();
        h.write(self.pack.to_toml_string().as_bytes());
        Genesis {
            fingerprint: h.finish(),
            seed: self.pack.meta.seed,
            days: self.pack.run.days,
            hours,
            batch_events: self.pack.run.batch_events.max(1) as u64,
            segment_rows: self.pack.run.segment_rows,
            start_day: self.pack.run.start_day,
            name: self.pack.meta.name.clone(),
        }
    }

    /// Runs the pack, streaming into a [`LiveStore`] at `store_dir`.
    ///
    /// # Errors
    /// On store failures, unusable packs, a blown RSS budget, or — with
    /// the chain on — chain corruption, mismatch, or divergence.
    ///
    /// # Panics
    /// If the writer thread panics (store bugs surface loudly).
    pub fn run(&self, store_dir: &Path) -> Result<RunReport, RunError> {
        let started = std::time::Instant::now();
        let pack = &self.pack;
        let cfg = pack.scenario_config()?;
        let graph = AsGraph::generate(&pack.graph_config());
        let hours = self.opts.hours.unwrap_or(24).clamp(1, 24);
        let batch = pack.run.batch_events.max(1);
        let segment_rows = pack.run.segment_rows;
        let days = pack.run.days;
        let store = LiveStore::open_with(
            store_dir,
            &LiveOptions {
                fs: self.opts.fs.clone(),
                create_segment_rows: Some(segment_rows),
                jobs: self.opts.jobs,
                ..LiveOptions::default()
            },
        )?;
        let mut watcher = Watcher::new(WatchConfig {
            bin_ms: pack.watch.bin_ms,
            change_window: pack.watch.change_window,
            change_ratio: pack.watch.change_ratio,
            change_z: pack.watch.change_z,
            min_rate: pack.watch.min_rate,
            period_window: pack.watch.period_window,
            period_min_lag: pack.watch.period_min_lag,
            period_max_lag: pack.watch.period_max_lag,
            period_threshold: pack.watch.period_threshold,
            novelty_warmup: pack.watch.novelty_warmup,
            novelty_min_count: pack.watch.novelty_min_count,
            ..WatchConfig::default()
        });

        // Chain setup: create, or load + verify against this run.
        let chain_dir = self
            .opts
            .chain_dir
            .clone()
            .unwrap_or_else(|| chain_dir_for(store_dir));
        let genesis = self.genesis(hours);
        let committed0 = store.manifest().total_events;
        let mut plan = ResumePlan::default();
        let tape: Option<ChainTape> = match self.opts.chain {
            ChainMode::Off => None,
            ChainMode::Record => {
                if committed0 != 0 {
                    return Err(RunError::Chain(ChainError::Mismatch {
                        what: format!(
                            "--record needs a fresh store, but {} already holds {committed0} events",
                            store_dir.display()
                        ),
                    }));
                }
                Some(ChainTape::create(
                    self.opts.fs.clone(),
                    &chain_dir,
                    &genesis,
                )?)
            }
            ChainMode::Resume => {
                let mut t = ChainTape::load(self.opts.fs.clone(), &chain_dir)?;
                t.verify_genesis(&genesis)?;
                plan = plan_resume(&t, days, batch as u64, committed0, store.generation())?;
                t.set_cursor(plan.cursor);
                Some(t)
            }
            ChainMode::Replay => {
                if committed0 != 0 {
                    return Err(RunError::Chain(ChainError::Mismatch {
                        what: format!(
                            "--replay needs a fresh store, but {} already holds {committed0} events",
                            store_dir.display()
                        ),
                    }));
                }
                let mut t = ChainTape::load(self.opts.fs.clone(), &chain_dir)?;
                t.verify_genesis(&genesis)?;
                t.seal();
                Some(t)
            }
        };
        let resumed_from = matches!(self.opts.chain, ChainMode::Resume).then_some(plan.committed);
        if self.opts.verbose && plan.start_day > 0 {
            eprintln!(
                "resume: {} events committed, {} days checkpointed, re-simulating day {} on",
                plan.committed, plan.start_day, plan.start_day
            );
        }
        // A crash between a cadence commit and its compaction leaves the
        // generation one short; compact before any new append so the
        // generation sequence matches an uninterrupted run.
        if plan.catch_up_compact {
            store.compact(segment_rows)?;
        }
        // Re-warm the detectors over the recovered prefix. The watcher
        // consumes completed bins in event-time order, so the cumulative
        // incident list is the same as the uninterrupted run's
        // (poll-cadence invariance).
        if plan.committed > 0 {
            watcher.poll(&store)?;
        }

        // The spill directory sits NEXT TO the store directory: the store's
        // recovery scan owns everything inside its own dir. Spill images
        // are per-day working state, re-derived on resume, so they are
        // excluded from checkpoints and comparisons.
        let spill_dir = store_dir.with_file_name(format!(
            "{}-ribspill",
            store_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "store".to_owned())
        ));
        let budget_mb = self.rss_budget_mb();
        let warmup_ms = SimTime::from(cfg.warmup_minutes) * MINUTE;
        let lan_base = u32::from(cfg.exchange.lan_base());

        let (tx, rx) = crossbeam::channel::bounded::<WriterMsg>(pack.run.channel_capacity);
        let mut spill_total = plan.base_spill.clone();
        let mut final_census_prefixes = plan.base_census;
        let mut events_sent = plan.base_events;
        // Raised on a driver error so the writer drops its partial batch:
        // the store stays batch-aligned, which is what makes the
        // interrupted run resumable.
        let abort = AtomicBool::new(false);
        let skip_events = plan.committed.max(plan.base_events);
        let start_written = plan.committed;
        let start_commits = plan.committed / batch as u64;
        let base_events = plan.base_events;
        let start_day = plan.start_day;
        let tail = std::mem::take(&mut plan.tail);

        let watcher_ref = &mut watcher;
        let spill_ref = &mut spill_total;
        let census_ref = &mut final_census_prefixes;
        let events_sent_ref = &mut events_sent;
        let abort_ref = &abort;

        let sim_result: Result<(u64, Option<ChainTape>), RunError> =
            crossbeam::thread::scope(|scope| {
                let store_ref = &store;
                let writer = scope.spawn(move |_| -> Result<(u64, Option<ChainTape>), RunError> {
                    // Exact-count batching: commit generations (and
                    // therefore segment boundaries) depend only on the
                    // event sequence; the cadence compaction keeps the
                    // manifest bounded by the canonical segment count.
                    // This thread also owns the chain tape — crossings
                    // are chained in channel order, and the tape is
                    // flushed before every commit.
                    let mut tape = tape;
                    let mut buf: Vec<StoredEvent> = Vec::with_capacity(batch);
                    let mut written = start_written;
                    let mut commits = start_commits;
                    let mut next_event = base_events;
                    for msg in rx.iter() {
                        match msg {
                            WriterMsg::Event(ev) => {
                                if let Some(t) = tape.as_mut() {
                                    t.cross(EntryKind::Event, encode_event(&ev))?;
                                }
                                if next_event >= skip_events {
                                    buf.push(ev);
                                    commit_if_full(
                                        &mut buf,
                                        batch,
                                        &mut tape,
                                        store_ref,
                                        segment_rows,
                                        &mut written,
                                        &mut commits,
                                    )?;
                                }
                                next_event += 1;
                            }
                            WriterMsg::Raw(ev) => {
                                buf.push(ev);
                                commit_if_full(
                                    &mut buf,
                                    batch,
                                    &mut tape,
                                    store_ref,
                                    segment_rows,
                                    &mut written,
                                    &mut commits,
                                )?;
                            }
                            WriterMsg::Mark(m) => {
                                if let Some(t) = tape.as_mut() {
                                    t.cross(m.kind(), m.encode())?;
                                    if matches!(m, Mark::Checkpoint { .. }) {
                                        t.flush()?;
                                    }
                                }
                            }
                        }
                    }
                    if !buf.is_empty() && !abort_ref.load(Ordering::Relaxed) {
                        if let Some(t) = tape.as_mut() {
                            t.flush()?;
                        }
                        store_ref.append_events(&buf)?;
                        written += buf.len() as u64;
                    }
                    // Flush recorded-but-unflushed marks even on abort:
                    // more durable chain never hurts a resume.
                    if let Some(t) = tape.as_mut() {
                        t.flush()?;
                    }
                    Ok((written, tape))
                });

                let drive = || -> Result<(), RunError> {
                    let hang_up = |_| RunError::Channel("writer hung up".to_owned());
                    // Tail-feed first: events the chain recorded beyond
                    // what the store recovered, up to the checkpoint
                    // boundary the re-simulation restarts from.
                    for ev in tail {
                        tx.send(WriterMsg::Raw(ev)).map_err(hang_up)?;
                    }
                    let mut chunks_done = 0u64;
                    for run_day in start_day..days {
                        let sim_day = pack.run.start_day + run_day;
                        tx.send(WriterMsg::Mark(Mark::DayStart { run_day, sim_day }))
                            .map_err(hang_up)?;
                        let (mut world, rs, providers) = build_day_world(&cfg, &graph, sim_day);
                        let draws = apply_faults(
                            pack,
                            &mut world,
                            &DayContext {
                                graph: &graph,
                                providers: &providers,
                                lan_base,
                                warmup_ms,
                                run_day,
                            },
                        );
                        tx.send(WriterMsg::Mark(Mark::Faults {
                            run_day,
                            scheduled: draws.scheduled,
                            digest: draws.digest,
                        }))
                        .map_err(hang_up)?;
                        if pack.limits.spill_working_set > 0 {
                            world.enable_rib_spill(SpillConfig {
                                fs: self.opts.fs.clone(),
                                dir: spill_dir.clone(),
                                working_set: pack.limits.spill_working_set,
                            });
                        }
                        world.start();
                        // Day `d` of the run lands at [d·24 h, d·24 h + hours).
                        let day_offset = u64::from(run_day) * 24 * HOUR;
                        let day_end = warmup_ms + u64::from(hours) * HOUR;
                        let chunk = u64::from(pack.run.chunk_minutes) * MINUTE;
                        let mut classifier = Classifier::new();
                        let mut t = 0u64;
                        while t < day_end {
                            t = (t + chunk).min(day_end);
                            world.run_until(t);
                            let drained = world
                                .monitor_mut(rs)
                                .map(|m| std::mem::take(&mut m.updates))
                                .unwrap_or_default();
                            for logged in &drained {
                                let iri_bgp::message::Message::Update(up) = &logged.message else {
                                    continue;
                                };
                                let peer = PeerKey {
                                    asn: logged.peer_asn,
                                    addr: logged.peer_addr,
                                };
                                for ev in events_from_update(logged.time_ms, peer, up) {
                                    // Warm the classifier on warmup traffic but
                                    // only store the measured day.
                                    let c = classifier.classify(&ev);
                                    if c.time_ms < warmup_ms {
                                        continue;
                                    }
                                    let mut row = StoredEvent::from_classified(&c, logged.cause);
                                    row.time_ms = row.time_ms - warmup_ms + day_offset;
                                    tx.send(WriterMsg::Event(row)).map_err(hang_up)?;
                                    *events_sent_ref += 1;
                                }
                            }
                            watcher_ref.poll(store_ref)?;
                            if budget_mb > 0 {
                                let rss_mb = current_rss_kb().unwrap_or(0) / 1024;
                                if rss_mb > budget_mb {
                                    return Err(RunError::RssBudget { rss_mb, budget_mb });
                                }
                            }
                            chunks_done += 1;
                            if self.opts.stop_after_chunks == Some(chunks_done) {
                                return Err(RunError::Stopped {
                                    chunks: chunks_done,
                                });
                            }
                        }
                        if let Some(stats) = world.spill_stats() {
                            spill_ref.spills += stats.spills;
                            spill_ref.restores += stats.restores;
                            spill_ref.bytes_written += stats.bytes_written;
                            spill_ref.bytes_read += stats.bytes_read;
                        }
                        world.ensure_resident(rs);
                        let census = iri_rib::stats::census(world.router(rs).loc_rib());
                        *census_ref = census.prefixes;
                        tx.send(WriterMsg::Mark(Mark::Checkpoint {
                            run_day,
                            events: *events_sent_ref,
                            census_prefixes: census.prefixes as u64,
                            spills: spill_ref.spills,
                            restores: spill_ref.restores,
                            spill_bytes_written: spill_ref.bytes_written,
                            spill_bytes_read: spill_ref.bytes_read,
                        }))
                        .map_err(hang_up)?;
                        if self.opts.verbose {
                            eprintln!(
                                "day {run_day}: sim day {sim_day}, census {} prefixes, rss {} MiB",
                                census.prefixes,
                                current_rss_kb().unwrap_or(0) / 1024
                            );
                        }
                    }
                    Ok(())
                };
                let drive_result = drive();
                if drive_result.is_err() {
                    abort_ref.store(true, Ordering::Relaxed);
                }
                drop(tx);
                let writer_result = writer.join().expect("writer thread panicked");
                match (drive_result, writer_result) {
                    (Ok(()), w) => w,
                    // The writer died first; its error (a chain
                    // divergence, a store fault) is the cause — the
                    // driver's hang-up is the symptom.
                    (Err(RunError::Channel(_)), Err(w)) => Err(w),
                    (Err(d), _) => Err(d),
                }
            })
            .expect("crossbeam scope");
        let (events_written, tape) = sim_result?;

        // Canonicalize the tail left since the last cadence compaction and
        // reclaim retired generations — no reader is pinned here, so the
        // final store layout is a pure function of the event sequence.
        // Skipped when a resumed run already did it (compaction always
        // bumps the generation).
        if !plan.final_compact_done {
            store.compact(segment_rows)?;
        }

        // Final poll after the last commit; the watcher only ever consumes
        // completed bins in order, so the cumulative incident list does not
        // depend on how polls interleaved with commits.
        watcher.poll(&store)?;

        // A verified run must consume the whole recording: ending with
        // entries left over means the recorded run saw more inputs.
        if matches!(self.opts.chain, ChainMode::Resume | ChainMode::Replay) {
            if let Some(t) = tape.as_ref() {
                t.expect_consumed()?;
            }
        }

        let incidents = watcher.incidents().to_vec();
        let scorecard = score(&pack.ground_truth, &incidents);
        let wall_ms = started.elapsed().as_millis() as u64;
        let (chain_entries, chain_events, chain_head) = tape
            .as_ref()
            .map(|t| {
                (
                    t.len() as u64,
                    t.events_len(),
                    Some(format!("{:016x}", t.head_hash())),
                )
            })
            .unwrap_or((0, 0, None));
        Ok(RunReport {
            pack: pack.meta.name.clone(),
            days,
            hours_per_day: hours,
            events_written,
            store_generation: store.generation(),
            incidents,
            scorecard,
            final_census_prefixes,
            peak_rss_kb: peak_rss_kb().unwrap_or(0),
            spill: spill_total,
            chain_entries,
            chain_events,
            chain_head,
            resumed_from,
            wall_ms,
            events_per_sec: events_written as f64 / (wall_ms.max(1) as f64 / 1000.0),
        })
    }
}

/// Greedy one-to-one matching of incidents to ground truths: a truth
/// accepts the earliest unmatched incident of the same kind whose onset
/// lands within tolerance, whose detection lag is within bound, and whose
/// cause matches (when the truth pins one).
fn score(truths: &[TruthSpec], incidents: &[Incident]) -> Scorecard {
    let mut matched = vec![false; incidents.len()];
    let mut tp = 0usize;
    for t in truths {
        let onset = u64::from(t.day) * 24 * HOUR + u64::from(t.onset_minute) * MINUTE;
        let tol = u64::from(t.onset_tol_minutes) * MINUTE;
        let max_lag = u64::from(t.max_lag_minutes) * MINUTE;
        let hit = incidents.iter().enumerate().find(|(i, inc)| {
            !matched[*i]
                && inc.kind == t.kind
                && inc.onset_ms.abs_diff(onset) <= tol
                && inc.detected_ms.saturating_sub(onset) <= max_lag
                && (t.cause.is_empty() || inc.cause == t.cause)
        });
        if let Some((i, _)) = hit {
            matched[i] = true;
            tp += 1;
        }
    }
    let fp = matched.iter().filter(|m| !**m).count();
    Scorecard {
        truths: truths.len(),
        true_positives: tp,
        false_positives: fp,
        false_negatives: truths.len() - tp,
        precision: if incidents.is_empty() {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        // Recall is about the truths; a quiet pack misses nothing.
        recall: if truths.is_empty() {
            1.0
        } else {
            tp as f64 / truths.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_obs::incident::IncidentKind;

    fn truth(kind: IncidentKind, day: u32, onset_minute: u32) -> TruthSpec {
        TruthSpec {
            kind,
            day,
            onset_minute,
            onset_tol_minutes: 10,
            max_lag_minutes: 30,
            cause: String::new(),
        }
    }

    fn incident(kind: IncidentKind, onset_ms: u64, detected_ms: u64) -> Incident {
        Incident {
            kind,
            onset_ms,
            detected_ms,
            cause: String::new(),
            score: 5.0,
            detail: String::new(),
        }
    }

    #[test]
    fn score_matches_within_tolerance() {
        let truths = vec![truth(IncidentKind::InstabilityOnset, 0, 600)];
        let incidents = vec![incident(
            IncidentKind::InstabilityOnset,
            605 * MINUTE,
            620 * MINUTE,
        )];
        let s = score(&truths, &incidents);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn score_rejects_wrong_kind_late_lag_and_far_onset() {
        let truths = vec![truth(IncidentKind::InstabilityOnset, 0, 600)];
        // Wrong kind.
        let s = score(
            &truths,
            &[incident(
                IncidentKind::NoveltyAlarm,
                600 * MINUTE,
                601 * MINUTE,
            )],
        );
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 1);
        // Onset too far.
        let s = score(
            &truths,
            &[incident(
                IncidentKind::InstabilityOnset,
                700 * MINUTE,
                701 * MINUTE,
            )],
        );
        assert_eq!(s.true_positives, 0);
        // Lag too long.
        let s = score(
            &truths,
            &[incident(
                IncidentKind::InstabilityOnset,
                600 * MINUTE,
                700 * MINUTE,
            )],
        );
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.recall, 0.0);
    }

    #[test]
    fn score_is_perfect_when_quiet() {
        let s = score(&[], &[]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        // Spurious incident on a quiet pack costs precision, not recall.
        let s = score(
            &[],
            &[incident(IncidentKind::NoveltyAlarm, MINUTE, 2 * MINUTE)],
        );
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn cause_pinning_is_enforced() {
        let mut t = truth(IncidentKind::InstabilityOnset, 0, 100);
        t.cause = "LinkFlap".to_owned();
        let mut inc = incident(IncidentKind::InstabilityOnset, 100 * MINUTE, 110 * MINUTE);
        inc.cause = "CsuDrift".to_owned();
        let s = score(&[t.clone()], &[inc.clone()]);
        assert_eq!(s.true_positives, 0);
        inc.cause = "LinkFlap".to_owned();
        let s = score(&[t], &[inc]);
        assert_eq!(s.true_positives, 1);
    }
}
