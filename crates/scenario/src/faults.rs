//! Pack fault schedules → deterministic world injections.
//!
//! Each `[[faults]]` entry becomes a stream of scheduled events laid onto
//! the day's world after `build_day_world` constructs the baseline
//! workload. Every fault draws from its **own** RNG, seeded from
//! `pack seed ⊕ fault index ⊕ day`, so adding or reordering faults never
//! perturbs the baseline event stream (or the other faults') — the
//! property the seed-determinism tests pin down.
//!
//! The `withdrawal_storm` kind is not injected here: it maps onto the
//! topology layer's [`iri_topology::scenario::IncidentSpec`] and is
//! applied during world construction (the afflicted provider needs its
//! router config patched before the world is built).

use crate::pack::{FaultKind, FaultSpec, ScenarioPack};
use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::path::AsPath;
use iri_core::fxhash::FxHasher;
use iri_netsim::engine::{MINUTE, SECOND};
use iri_netsim::router::RouterId;
use iri_netsim::world::World;
use iri_netsim::SimTime;
use iri_topology::asgraph::AsGraph;
use iri_topology::scenario::poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything an injector needs to address the built world.
pub struct DayContext<'a> {
    /// The AS graph the world was built from.
    pub graph: &'a AsGraph,
    /// Provider router ids, indexed like `graph.providers`.
    pub providers: &'a [RouterId],
    /// The exchange LAN base address (provider i sits at `base + 1 + i`).
    pub lan_base: u32,
    /// Warmup offset: measured minute 0 is at this sim time.
    pub warmup_ms: SimTime,
    /// Day offset within the run (0-based).
    pub run_day: u32,
}

/// Summary of one day's fault-plan draws: how many injections the seeded
/// RNGs scheduled onto the world and a digest over the per-fault
/// breakdown. Recorded into the boundary chain, so a nondeterministic
/// fault draw is caught at the day it happens instead of surfacing as a
/// mystery event diff hours later.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDigest {
    /// World injections scheduled across all faults active this day.
    pub scheduled: u64,
    /// FxHash folding each active fault's `(index, injections)` pair in
    /// schedule order.
    pub digest: u64,
}

/// Applies every fault scheduled for `ctx.run_day` to the world and
/// digests the draws.
pub fn apply_faults(pack: &ScenarioPack, world: &mut World, ctx: &DayContext<'_>) -> FaultDigest {
    use std::hash::Hasher as _;
    let mut h = FxHasher::default();
    let mut scheduled = 0u64;
    for (idx, f) in pack.faults.iter().enumerate() {
        if !f.every_day && f.day != ctx.run_day {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(
            pack.meta.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ ((idx as u64 + 1) << 40)
                ^ (u64::from(ctx.run_day) << 8)
                ^ 0xfau64,
        );
        let before = world.queue_len();
        match f.kind {
            FaultKind::CommunityChurn => community_churn(f, world, ctx, &mut rng),
            FaultKind::WormOutbreak => worm_outbreak(f, world, ctx, &mut rng),
            FaultKind::LinkFailures => link_failures(f, world, ctx, &mut rng),
            FaultKind::WithdrawalStorm => {} // applied via IncidentSpec at build time
        }
        let added = world.queue_len().saturating_sub(before) as u64;
        scheduled += added;
        h.write_u64(idx as u64);
        h.write_u64(added);
    }
    FaultDigest {
        scheduled,
        digest: h.finish(),
    }
}

/// Picks `count` (customer index, prefix) pairs from the customers of
/// `provider` (spilling into the next providers when it runs short).
fn pick_prefixes(
    graph: &AsGraph,
    provider: usize,
    count: usize,
) -> Vec<(usize, iri_bgp::types::Prefix)> {
    let mut out = Vec::with_capacity(count);
    let n = graph.providers.len();
    for shift in 0..n {
        let prov = (provider + shift) % n;
        for (ci, c) in graph.customers.iter().enumerate() {
            if c.primary != prov {
                continue;
            }
            for &p in &c.prefixes {
                if out.len() >= count {
                    return out;
                }
                out.push((ci, p));
            }
        }
    }
    out
}

fn customer_attrs(graph: &AsGraph, ctx: &DayContext<'_>, ci: usize) -> PathAttributes {
    let c = &graph.customers[ci];
    let provider_addr = std::net::Ipv4Addr::from(ctx.lan_base + 1 + c.primary as u32);
    PathAttributes::new(Origin::Igp, AsPath::from_sequence([c.asn]), provider_addr)
}

/// BGP-community churn storm (Krenc et al.): the origin re-announces each
/// afflicted prefix every `period_seconds` with an alternating community
/// value. The forwarding tuple never changes, so the monitor sees a pure
/// policy-fluctuation storm — AADup with `policy_change = true` — and the
/// aggregate rate step trips the change-point detector.
fn community_churn(f: &FaultSpec, world: &mut World, ctx: &DayContext<'_>, rng: &mut StdRng) {
    let targets = pick_prefixes(ctx.graph, f.provider, f.prefixes);
    let start = ctx.warmup_ms + SimTime::from(f.start_minute) * MINUTE;
    let end = start + SimTime::from(f.duration_minutes) * MINUTE;
    let period = f.period_seconds * SECOND;
    for (ci, prefix) in targets {
        let c = &ctx.graph.customers[ci];
        let router = ctx.providers[c.primary];
        let base_attrs = customer_attrs(ctx.graph, ctx, ci);
        // Community pair `asn:100` / `asn:200` in the RFC 1997 encoding.
        let tag = |v: u32| (c.asn.0 << 16) | v;
        let phase: SimTime = rng.random_range(0..period);
        let mut i = 0u64;
        let mut at = start + phase;
        while at < end {
            let mut attrs = base_attrs.clone();
            attrs.communities = vec![tag(if i.is_multiple_of(2) { 100 } else { 200 })];
            world.schedule_originate_with(at, router, prefix, attrs);
            i += 1;
            at += period;
        }
        // Settle back to the canonical (community-free) announcement.
        world.schedule_originate_with(end + SECOND, router, prefix, base_attrs);
    }
}

/// Worm-outbreak update flood (Marais & Marwala): the per-minute flap
/// rate across an afflicted block doubles every `ramp_minutes` until it
/// saturates at `peak_per_minute`, then the outbreak stops cold at the
/// end of the window — an exponential onset the change-point detector
/// should localize.
fn worm_outbreak(f: &FaultSpec, world: &mut World, ctx: &DayContext<'_>, rng: &mut StdRng) {
    let targets = pick_prefixes(ctx.graph, f.provider, f.prefixes);
    if targets.is_empty() {
        return;
    }
    for minute in 0..f.duration_minutes {
        let doublings = f64::from(minute) / f64::from(f.ramp_minutes);
        let rate = (2.0f64.powf(doublings)).min(f.peak_per_minute);
        let n = poisson(rng, rate);
        let minute_start = ctx.warmup_ms + SimTime::from(f.start_minute + minute) * MINUTE;
        for _ in 0..n {
            let (ci, prefix) = targets[rng.random_range(0..targets.len())];
            let c = &ctx.graph.customers[ci];
            let router = ctx.providers[c.primary];
            let at = minute_start + rng.random_range(0..MINUTE);
            let down = rng.random_range(5..30u64) * SECOND;
            world.schedule_withdraw(at, router, prefix);
            world.schedule_originate_with(
                at + down,
                router,
                prefix,
                customer_attrs(ctx.graph, ctx, ci),
            );
        }
    }
}

/// Long-memory link failures (Kitsak et al.): dedicated access links
/// whose outages arrive with Pareto(α) inter-arrival times — heavy-tailed
/// gaps, so failures cluster in bursts separated by long quiet spells.
fn link_failures(f: &FaultSpec, world: &mut World, ctx: &DayContext<'_>, rng: &mut StdRng) {
    let targets = pick_prefixes(ctx.graph, f.provider, f.prefixes);
    let start = ctx.warmup_ms + SimTime::from(f.start_minute) * MINUTE;
    let end = start + SimTime::from(f.duration_minutes) * MINUTE;
    for (ci, prefix) in targets {
        let c = &ctx.graph.customers[ci];
        let link = world.add_access_link(ctx.providers[c.primary], vec![prefix], None);
        let mut at = start;
        loop {
            // Pareto inter-arrival: scale * (1-u)^(-1/α), in minutes.
            let u: f64 = rng.random_range(0.0..1.0);
            let gap_min = f.min_gap_minutes * (1.0 - u).powf(-1.0 / f.alpha);
            // Cap a single gap at a day so the loop always terminates.
            let gap_ms = (gap_min.min(1440.0) * MINUTE as f64) as SimTime;
            at += gap_ms.max(SECOND);
            if at >= end {
                break;
            }
            let down = rng.random_range(30..180u64) * SECOND;
            world.schedule_link_flap(at, link, down);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_topology::scenario::build_day_world;

    fn tiny() -> (ScenarioPack, AsGraph) {
        let mut pack = ScenarioPack::default_at(0.01);
        pack.workload.warmup_minutes = Some(10);
        let graph = AsGraph::generate(&pack.graph_config());
        (pack, graph)
    }

    fn build(pack: &ScenarioPack, graph: &AsGraph) -> (World, RouterId, Vec<RouterId>) {
        let cfg = pack.scenario_config().expect("config");
        build_day_world(&cfg, graph, pack.run.start_day)
    }

    #[test]
    fn churn_fault_schedules_alternating_communities() {
        let (mut pack, graph) = tiny();
        pack.faults.push(FaultSpec {
            kind: FaultKind::CommunityChurn,
            day: 0,
            every_day: false,
            start_minute: 60,
            duration_minutes: 10,
            prefixes: 3,
            period_seconds: 30,
            ramp_minutes: 10,
            peak_per_minute: 60.0,
            alpha: 1.3,
            min_gap_minutes: 2.0,
            provider: 0,
        });
        let (mut world, _rs, providers) = build(&pack, &graph);
        let before = world.queue_len();
        let ctx = DayContext {
            graph: &graph,
            providers: &providers,
            lan_base: u32::from(pack.scenario_config().unwrap().exchange.lan_base()),
            warmup_ms: 10 * MINUTE,
            run_day: 0,
        };
        apply_faults(&pack, &mut world, &ctx);
        // 3 prefixes × (10 min / 30 s) announcements plus settles.
        let added = world.queue_len() - before;
        assert!(added >= 3 * 20, "added only {added} events");
    }

    #[test]
    fn fault_draws_are_independent_of_other_faults() {
        let (mut pack, graph) = tiny();
        let churn = FaultSpec {
            kind: FaultKind::CommunityChurn,
            day: 0,
            every_day: false,
            start_minute: 60,
            duration_minutes: 5,
            prefixes: 2,
            period_seconds: 30,
            ramp_minutes: 10,
            peak_per_minute: 60.0,
            alpha: 1.3,
            min_gap_minutes: 2.0,
            provider: 0,
        };
        pack.faults.push(churn.clone());
        let (mut w1, _, providers1) = build(&pack, &graph);
        let ctx1 = DayContext {
            graph: &graph,
            providers: &providers1,
            lan_base: u32::from(pack.scenario_config().unwrap().exchange.lan_base()),
            warmup_ms: 10 * MINUTE,
            run_day: 0,
        };
        apply_faults(&pack, &mut w1, &ctx1);
        let after_one = w1.queue_len();

        // Same churn fault in slot 0 plus an unrelated fault in slot 1:
        // the churn fault's own schedule must be unchanged (its RNG is
        // keyed by index, not shared).
        let mut pack2 = pack.clone();
        pack2.faults.push(FaultSpec {
            kind: FaultKind::LinkFailures,
            day: 0,
            ..churn
        });
        let (mut w2, _, providers2) = build(&pack2, &graph);
        let ctx2 = DayContext {
            graph: &graph,
            providers: &providers2,
            lan_base: ctx1.lan_base,
            warmup_ms: 10 * MINUTE,
            run_day: 0,
        };
        // Apply only the churn fault from pack2 (index 0) by truncating.
        let mut only_churn = pack2.clone();
        only_churn.faults.truncate(1);
        apply_faults(&only_churn, &mut w2, &ctx2);
        assert_eq!(w2.queue_len(), after_one);
    }
}
