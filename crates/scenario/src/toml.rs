//! A minimal TOML reader producing the workspace's [`serde::Value`] tree.
//!
//! The offline shim set has no TOML crate, so scenario packs carry their
//! own parser. It covers the subset the pack schema needs — and nothing
//! more, so errors stay actionable:
//!
//! - `key = value` pairs with bare keys;
//! - `[table]` and `[[array-of-tables]]` headers (dotted names allowed);
//! - basic strings with the common escapes, integers (`_` separators),
//!   floats, booleans, single- or multi-line arrays, and inline tables;
//! - `#` comments and blank lines.
//!
//! Every error carries the 1-based line number. Duplicate keys and
//! redefined tables are rejected — a pack that says a thing twice is a
//! pack with a typo.

use serde::Value;
use std::fmt;

/// A parse failure, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

/// Parses a TOML document into a [`Value::Map`] tree.
///
/// # Errors
/// On any syntax error, duplicate key, or redefined table, with the line
/// number.
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut root = Value::Map(Vec::new());
    // Path of the table currently being filled; empty = root.
    let mut current: Vec<String> = Vec::new();
    let lines: Vec<&str> = input.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            i += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return err(lineno, "unterminated [[table]] header");
            };
            let path = parse_table_name(name, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            current = path;
            i += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(lineno, "unterminated [table] header");
            };
            let path = parse_table_name(name, lineno)?;
            define_table(&mut root, &path, lineno)?;
            current = path;
            i += 1;
            continue;
        }
        // key = value; the value may span lines (multi-line array).
        let Some(eq) = trimmed.find('=') else {
            return err(lineno, format!("expected `key = value`, got `{trimmed}`"));
        };
        let key = trimmed[..eq].trim();
        if key.is_empty() || !is_bare_key(key) {
            return err(lineno, format!("invalid key `{key}`"));
        }
        let mut value_src = trimmed[eq + 1..].trim().to_owned();
        // Gather continuation lines until brackets balance outside strings.
        while open_brackets(&value_src, lineno)? > 0 {
            i += 1;
            if i >= lines.len() {
                return err(lineno, format!("unterminated array in value of `{key}`"));
            }
            value_src.push(' ');
            value_src.push_str(strip_comment(lines[i]).trim());
        }
        let (value, rest) = parse_value(&value_src, lineno)?;
        if !rest.trim().is_empty() {
            return err(
                lineno,
                format!(
                    "trailing characters after value of `{key}`: `{}`",
                    rest.trim()
                ),
            );
        }
        let table = resolve_mut(&mut root, &current);
        insert_unique(table, key, value, lineno)?;
        i += 1;
    }
    Ok(root)
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (pos, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..pos],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_table_name(name: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let parts: Vec<String> = name
        .trim()
        .split('.')
        .map(|p| p.trim().to_owned())
        .collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return err(lineno, format!("invalid table name `{}`", name.trim()));
    }
    Ok(parts)
}

/// Net open `[`/`{` depth of `src`, ignoring brackets inside strings.
fn open_brackets(src: &str, lineno: usize) -> Result<i32, TomlError> {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in src.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    if in_str {
        return err(lineno, "unterminated string");
    }
    Ok(depth)
}

/// Walks (creating as needed) to the table at `path`. For a path step that
/// lands on an array of tables, descends into the last element.
fn resolve_mut<'a>(root: &'a mut Value, path: &[String]) -> &'a mut Value {
    let mut node = root;
    for step in path {
        // Two-phase borrow dance: ensure the entry exists, then re-find it.
        let entries = match node {
            Value::Map(entries) => entries,
            _ => unreachable!("resolve_mut walks maps only"),
        };
        if !entries.iter().any(|(k, _)| k == step) {
            entries.push((step.clone(), Value::Map(Vec::new())));
        }
        let next = entries
            .iter_mut()
            .find(|(k, _)| k == step)
            .map(|(_, v)| v)
            .expect("just ensured");
        node = match next {
            Value::Array(items) => items.last_mut().expect("array tables are never empty"),
            other => other,
        };
    }
    node
}

/// Declares `[path]`, erroring if that exact table was already defined
/// with keys (redefinition) or is a value.
fn define_table(root: &mut Value, path: &[String], lineno: usize) -> Result<(), TomlError> {
    let (parents, leaf) = path.split_at(path.len() - 1);
    let parent = resolve_mut(root, parents);
    let Value::Map(entries) = parent else {
        return err(lineno, format!("`{}` is not a table", path.join(".")));
    };
    match entries.iter().find(|(k, _)| k == &leaf[0]) {
        None => {
            entries.push((leaf[0].clone(), Value::Map(Vec::new())));
            Ok(())
        }
        Some((_, Value::Map(existing))) if existing.is_empty() => Ok(()),
        Some(_) => err(lineno, format!("table `{}` defined twice", path.join("."))),
    }
}

/// Appends a fresh element to the `[[path]]` array of tables.
fn push_array_table(root: &mut Value, path: &[String], lineno: usize) -> Result<(), TomlError> {
    let (parents, leaf) = path.split_at(path.len() - 1);
    let parent = resolve_mut(root, parents);
    let Value::Map(entries) = parent else {
        return err(lineno, format!("`{}` is not a table", path.join(".")));
    };
    match entries.iter_mut().find(|(k, _)| k == &leaf[0]) {
        None => {
            entries.push((leaf[0].clone(), Value::Array(vec![Value::Map(Vec::new())])));
            Ok(())
        }
        Some((_, Value::Array(items))) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        Some(_) => err(
            lineno,
            format!(
                "`{}` is both a table and an array of tables",
                path.join(".")
            ),
        ),
    }
}

fn insert_unique(
    table: &mut Value,
    key: &str,
    value: Value,
    lineno: usize,
) -> Result<(), TomlError> {
    let Value::Map(entries) = table else {
        return err(lineno, format!("cannot set `{key}` on a non-table"));
    };
    if entries.iter().any(|(k, _)| k == key) {
        return err(lineno, format!("duplicate key `{key}`"));
    }
    entries.push((key.to_owned(), value));
    Ok(())
}

/// Parses one value at the front of `src`, returning it and the unread
/// remainder.
fn parse_value(src: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    let src = src.trim_start();
    let Some(first) = src.chars().next() else {
        return err(lineno, "missing value");
    };
    match first {
        '"' => parse_string(src, lineno),
        '[' => parse_array(src, lineno),
        '{' => parse_inline_table(src, lineno),
        _ => parse_scalar(src, lineno),
    }
}

fn parse_string(src: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    let mut out = String::new();
    let mut chars = src.char_indices().skip(1);
    while let Some((pos, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(out), &src[pos + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => return err(lineno, format!("unsupported escape `\\{other}`")),
                None => return err(lineno, "unterminated escape"),
            },
            _ => out.push(c),
        }
    }
    err(lineno, "unterminated string")
}

fn parse_array(src: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    let mut rest = src[1..].trim_start();
    let mut items = Vec::new();
    loop {
        if let Some(after) = rest.strip_prefix(']') {
            return Ok((Value::Array(items), after));
        }
        let (item, after) = parse_value(rest, lineno)?;
        items.push(item);
        rest = after.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with(']') {
            return err(lineno, "expected `,` or `]` in array");
        }
    }
}

fn parse_inline_table(src: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    let mut rest = src[1..].trim_start();
    let mut table = Value::Map(Vec::new());
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((table, after));
        }
        let Some(eq) = rest.find('=') else {
            return err(lineno, "expected `key = value` in inline table");
        };
        let key = rest[..eq].trim();
        if !is_bare_key(key) {
            return err(lineno, format!("invalid inline-table key `{key}`"));
        }
        let (value, after) = parse_value(&rest[eq + 1..], lineno)?;
        insert_unique(&mut table, key, value, lineno)?;
        rest = after.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with('}') {
            return err(lineno, "expected `,` or `}` in inline table");
        }
    }
}

/// Bare scalar: boolean, integer, or float; ends at `,`, `]`, `}` or EOL.
fn parse_scalar(src: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    let end = src.find([',', ']', '}']).unwrap_or(src.len());
    let token = src[..end].trim();
    let rest = &src[end..];
    let value = match token {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => {
            let clean: String = token.chars().filter(|&c| c != '_').collect();
            if let Ok(u) = clean.parse::<u64>() {
                Value::U64(u)
            } else if let Ok(i) = clean.parse::<i64>() {
                Value::I64(i)
            } else if let Ok(f) = clean.parse::<f64>() {
                if !f.is_finite() {
                    return err(lineno, format!("non-finite number `{token}`"));
                }
                Value::F64(f)
            } else {
                return err(lineno, format!("cannot parse value `{token}`"));
            }
        }
    };
    Ok((value, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_and_scalars() {
        let doc = r#"
            # a pack
            format_version = 1
            [pack]
            name = "demo"        # inline comment
            seed = 0x_bad        # not hex: rejected below — see separate test
        "#;
        // Hex is not supported; this doc must fail on the seed line.
        assert!(parse(doc).is_err());

        let doc = r#"
            format_version = 1
            negative = -4
            ratio = 2.5
            flag = true
            name = "a # not a comment"
            tags = ["x", "y"]
            multi = [
                1,
                2, 3,
            ]
            [table.sub]
            k = 7
            [[events]]
            kind = "a"
            [[events]]
            kind = "b"
            inline = { a = 1, b = "two" }
        "#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("format_version"), Some(&Value::U64(1)));
        assert_eq!(v.get("negative"), Some(&Value::I64(-4)));
        assert_eq!(v.get("ratio"), Some(&Value::F64(2.5)));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("a # not a comment")
        );
        assert_eq!(
            v.get("tags"),
            Some(&Value::Array(vec![
                Value::Str("x".into()),
                Value::Str("y".into())
            ]))
        );
        assert_eq!(
            v.get("multi"),
            Some(&Value::Array(vec![
                Value::U64(1),
                Value::U64(2),
                Value::U64(3)
            ]))
        );
        let sub = v.get("table").and_then(|t| t.get("sub")).expect("sub");
        assert_eq!(sub.get("k"), Some(&Value::U64(7)));
        let events = v.get("events").and_then(Value::as_array).expect("events");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind").and_then(Value::as_str), Some("a"));
        assert_eq!(
            events[1].get("inline").and_then(|t| t.get("b")),
            Some(&Value::Str("two".into()))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb = ???\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("???"), "{e}");

        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("duplicate key `a`"), "{e}");

        let e = parse("[t]\nx = 1\n[t]\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("defined twice"), "{e}");

        let e = parse("x = [1, 2\n").unwrap_err();
        assert!(e.to_string().contains("unterminated array"), "{e}");

        let e = parse("x = \"oops\n").unwrap_err();
        assert!(e.to_string().contains("unterminated string"), "{e}");
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let v = parse(r#"s = "line\nnext\t\"q\" \\ done""#).expect("parses");
        assert_eq!(
            v.get("s").and_then(Value::as_str),
            Some("line\nnext\t\"q\" \\ done")
        );
    }
}
