//! Process-memory introspection via `/proc/self/status`.
//!
//! The runner polls [`current_rss_kb`] between streaming chunks to
//! enforce a pack's `--max-rss-mb` budget, and `bench_scale` reads
//! [`peak_rss_kb`] (`VmHWM`) at exit to record the high-water mark.
//! `VmHWM` is monotone over the process lifetime, which is why
//! `bench_scale` forks one child per measurement point instead of
//! running all durations in-process.

/// Current resident set size in KiB (`VmRSS`), or `None` off-Linux.
#[must_use]
pub fn current_rss_kb() -> Option<u64> {
    proc_status_kb("VmRSS:")
}

/// Peak resident set size in KiB (`VmHWM`), or `None` off-Linux.
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    proc_status_kb("VmHWM:")
}

fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let digits: String = rest.chars().filter(char::is_ascii_digit).collect();
            return digits.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_reads_are_sane_on_linux() {
        let (cur, peak) = (current_rss_kb(), peak_rss_kb());
        if let (Some(cur), Some(peak)) = (cur, peak) {
            assert!(cur > 0);
            assert!(peak >= cur / 2, "peak {peak} vs current {cur}");
        }
    }
}
