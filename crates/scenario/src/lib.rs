//! # iri-scenario — data-driven scenario packs and the streaming runner
//!
//! Everything a simulation run needs — topology generator parameters,
//! workload event mix, fault/pathology schedules, monitor placement,
//! duration, detector tuning, memory limits, and expected-incident
//! ground truth — lives in one versioned **scenario pack** file
//! ([`pack`]), parsed strictly (unknown fields are errors naming the
//! field). The [`runner`] executes a pack through `netsim::World` in
//! **streaming mode**: monitor updates are drained every simulated
//! chunk, classified incrementally, and flow through a bounded channel
//! into the live segment store while the incident detectors poll the
//! committed tail — no whole-run buffering, so peak RSS is set by the
//! topology working set, not the simulated duration.
//!
//! Modules:
//! - [`toml`] — minimal offline TOML parser producing `serde::Value`
//! - [`pack`] — the pack schema, strict parse, and TOML emitter
//! - [`faults`] — pack fault schedules → deterministic world injections
//! - [`runner`] — the streaming `ScenarioRunner` and ground-truth scoring
//! - [`rss`] — `/proc/self/status` memory introspection

pub mod faults;
pub mod pack;
pub mod rss;
pub mod runner;
pub mod toml;

pub use pack::{
    Experiment, FaultKind, FaultSpec, LimitsSpec, PackError, PackMeta, RunSpec, ScenarioPack,
    SyntheticSpec, TopologySpec, TruthSpec, WatchSpec, WorkloadSpec, DEFAULT_PACK_SEED,
    FORMAT_VERSION,
};
pub use runner::{
    chain_dir_for, ChainMode, RunError, RunReport, RunnerOptions, ScenarioRunner, Scorecard,
    SpillSummary,
};
