//! Scenario packs: versioned, data-driven workload descriptions.
//!
//! A pack is one TOML (or JSON) file describing everything a run needs —
//! topology generator parameters, workload event mix, fault/pathology
//! schedules with deterministic seeded draws, monitor placement, duration,
//! detector tuning, memory limits, and the **expected-incident ground
//! truth** the run is scored against. Workloads become data, not code:
//! `run_scenario --pack packs/worm_outbreak.toml`.
//!
//! Parsing is **strict**: any key the schema does not know is an error
//! naming the field and its section, so a typo (`prefices = 40`) fails
//! loudly instead of silently running the default. `format_version` gates
//! future schema evolution.
//!
//! This module is also the single source of truth for scenario
//! construction defaults: `run_scenario`, `mrtgen --pack`, and the
//! fig/table experiment harness all derive their [`GraphConfig`] /
//! [`ScenarioConfig`] (or synthetic-log config) through it.

use crate::toml;
use iri_netsim::ExchangePoint;
use iri_obs::incident::IncidentKind;
use iri_topology::asgraph::GraphConfig;
use iri_topology::scenario::{IncidentSpec, ScenarioConfig};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::path::Path;

/// The one schema version this build reads and writes.
pub const FORMAT_VERSION: u64 = 1;

/// Master seed a pack gets when `[pack] seed` is omitted ("mae_" in
/// ASCII). Also the anchor of the graph-seed derivation: at this seed
/// the derived graph equals the legacy scaled default.
pub const DEFAULT_PACK_SEED: u64 = 0x6d61_655f;

/// A pack-file problem: syntax, schema, or semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackError {
    /// Human-readable description (includes section/field context).
    pub message: String,
}

impl PackError {
    fn new(message: impl Into<String>) -> Self {
        PackError {
            message: message.into(),
        }
    }
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PackError {}

// ---------------------------------------------------------------------
// Strict section reader
// ---------------------------------------------------------------------

/// Walks one `Value::Map`, tracking which keys were consumed so the
/// leftovers can be rejected **by name** — the derive machinery silently
/// ignores unknown fields, which is exactly wrong for config files.
struct Section<'a> {
    ctx: String,
    entries: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> Section<'a> {
    fn new(ctx: &str, v: &'a Value) -> Result<Self, PackError> {
        let entries = v
            .as_map()
            .ok_or_else(|| PackError::new(format!("{ctx}: expected a table")))?;
        Ok(Section {
            ctx: ctx.to_owned(),
            entries,
            used: vec![false; entries.len()],
        })
    }

    fn take(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn u64(&mut self, key: &str, default: u64) -> Result<u64, PackError> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => as_u64(v).ok_or_else(|| self.type_err(key, "an unsigned integer", v)),
        }
    }

    fn u32(&mut self, key: &str, default: u32) -> Result<u32, PackError> {
        let v = self.u64(key, u64::from(default))?;
        u32::try_from(v)
            .map_err(|_| PackError::new(format!("{}: `{key}` = {v} exceeds u32", self.ctx)))
    }

    fn usize(&mut self, key: &str, default: usize) -> Result<usize, PackError> {
        Ok(self.u64(key, default as u64)? as usize)
    }

    fn f64(&mut self, key: &str, default: f64) -> Result<f64, PackError> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => as_f64(v).ok_or_else(|| self.type_err(key, "a number", v)),
        }
    }

    fn bool(&mut self, key: &str, default: bool) -> Result<bool, PackError> {
        match self.take(key) {
            None => Ok(default),
            Some(Value::Bool(b)) => Ok(*b),
            Some(v) => Err(self.type_err(key, "a boolean", v)),
        }
    }

    fn string(&mut self, key: &str, default: &str) -> Result<String, PackError> {
        match self.take(key) {
            None => Ok(default.to_owned()),
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(v) => Err(self.type_err(key, "a string", v)),
        }
    }

    fn type_err(&self, key: &str, what: &str, _v: &Value) -> PackError {
        PackError::new(format!("{}: `{key}` must be {what}", self.ctx))
    }

    /// Errors on the first key no `take` consumed, naming it.
    fn finish(self) -> Result<(), PackError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(PackError::new(format!(
                    "unknown field `{k}` in {}",
                    self.ctx
                )));
            }
        }
        Ok(())
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(u) => Some(*u),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------

/// Identity block (`[pack]`).
#[derive(Debug, Clone, PartialEq)]
pub struct PackMeta {
    /// Short machine-friendly name.
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Master seed: every random draw in the run derives from it.
    pub seed: u64,
}

/// Topology generator parameters (`[topology]`): a scale factor plus
/// per-field overrides of [`GraphConfig::default_scaled`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Scale relative to the 1996 internet (1.0 = 42 000 prefixes).
    pub scale: f64,
    /// Explicit provider count (overrides the scaled default).
    pub providers: Option<usize>,
    /// Explicit prefix count (overrides the scaled default).
    pub prefixes: Option<usize>,
    /// Fraction of providers running the pathological router profile.
    pub pathological_fraction: Option<f64>,
    /// Fraction of prefixes multihomed by end of run.
    pub multihomed_fraction: Option<f64>,
    /// Fraction of swamp (unaggregatable) prefixes.
    pub swamp_fraction: Option<f64>,
    /// Zipf skew of provider table shares.
    pub zipf_skew: Option<f64>,
}

impl TopologySpec {
    /// The effective graph config: scaled defaults, then overrides, with
    /// the graph seed derived from the pack seed. The derivation is
    /// anchored so that [`DEFAULT_PACK_SEED`] keeps the legacy
    /// [`GraphConfig::default_scaled`] seed — the default pack reproduces
    /// the pre-pack experiments bit-for-bit — while any other pack seed
    /// yields its own graph.
    #[must_use]
    pub fn graph_config(&self, pack_seed: u64) -> GraphConfig {
        let mut g = GraphConfig::default_scaled(self.scale);
        g.seed ^= pack_seed ^ DEFAULT_PACK_SEED;
        if let Some(v) = self.providers {
            g.providers = v;
        }
        if let Some(v) = self.prefixes {
            g.prefixes = v;
        }
        if let Some(v) = self.pathological_fraction {
            g.pathological_fraction = v;
        }
        if let Some(v) = self.multihomed_fraction {
            g.multihomed_fraction = v;
        }
        if let Some(v) = self.swamp_fraction {
            g.swamp_fraction = v;
        }
        if let Some(v) = self.zipf_skew {
            g.zipf_skew = v;
        }
        g
    }
}

/// Workload event-mix overrides (`[workload]`) on top of
/// [`ScenarioConfig::default_for`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Exchange the monitor sits at (by name: "MaeEast", "Sprint", …).
    pub exchange: String,
    /// Mean injected events per 10-minute slot at intensity 1.
    pub base_events_per_slot: Option<f64>,
    /// Fraction of MED-oscillation (policy) bursts.
    pub policy_burst_fraction: Option<f64>,
    /// Fraction of withdraw→backup→revert sequences.
    pub path_switch_fraction: Option<f64>,
    /// Fraction of IGP-driven path oscillations.
    pub igp_oscillation_fraction: Option<f64>,
    /// Short-window CSU oscillators per reference day.
    pub oscillator_count: Option<usize>,
    /// Long-window (3–8 h) oscillators per reference day.
    pub long_oscillator_count: Option<usize>,
    /// Settling time before each measured day.
    pub warmup_minutes: Option<u32>,
    /// Inbound route-flap damping on all providers.
    pub damping: Option<bool>,
}

fn exchange_by_name(name: &str) -> Result<ExchangePoint, PackError> {
    ExchangePoint::ALL
        .into_iter()
        .find(|e| {
            e.name().eq_ignore_ascii_case(name) || format!("{e:?}").eq_ignore_ascii_case(name)
        })
        .ok_or_else(|| {
            PackError::new(format!(
                "[workload]: unknown exchange `{name}` (expected one of {:?})",
                ExchangePoint::ALL.map(|e| format!("{e:?}"))
            ))
        })
}

impl WorkloadSpec {
    /// The effective scenario config for a graph of `prefix_count`
    /// prefixes, seeded from the pack seed.
    ///
    /// # Errors
    /// When the exchange name is unknown.
    pub fn scenario_config(
        &self,
        prefix_count: usize,
        pack_seed: u64,
        incident: Option<IncidentSpec>,
    ) -> Result<ScenarioConfig, PackError> {
        let mut c = ScenarioConfig::default_for(prefix_count);
        c.seed = pack_seed;
        c.exchange = exchange_by_name(&self.exchange)?;
        if let Some(v) = self.base_events_per_slot {
            c.base_events_per_slot = v;
        }
        if let Some(v) = self.policy_burst_fraction {
            c.policy_burst_fraction = v;
        }
        if let Some(v) = self.path_switch_fraction {
            c.path_switch_fraction = v;
        }
        if let Some(v) = self.igp_oscillation_fraction {
            c.igp_oscillation_fraction = v;
        }
        if let Some(v) = self.oscillator_count {
            c.oscillator_count = v;
        }
        if let Some(v) = self.long_oscillator_count {
            c.long_oscillator_count = v;
        }
        if let Some(v) = self.warmup_minutes {
            c.warmup_minutes = v;
        }
        if let Some(v) = self.damping {
            c.damping = v;
        }
        c.incident = incident;
        Ok(c)
    }
}

/// Run shape (`[run]`): duration, streaming chunk/batch sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// First simulated day (0 = Monday 1996-04-01).
    pub start_day: u32,
    /// Consecutive days to run.
    pub days: u32,
    /// Simulated minutes advanced per streaming chunk (monitor drained
    /// and detectors polled between chunks).
    pub chunk_minutes: u32,
    /// Bounded-channel capacity, in events, between the simulation and
    /// the store writer.
    pub channel_capacity: usize,
    /// Events per store append commit (deterministic batch boundary).
    pub batch_events: usize,
    /// Segment roll size for the output store.
    pub segment_rows: u32,
}

/// Resource limits (`[limits]`); zero means "no limit / disabled".
#[derive(Debug, Clone, PartialEq)]
pub struct LimitsSpec {
    /// Fail fast when resident memory exceeds this (MiB); 0 = unlimited.
    pub max_rss_mb: u64,
    /// Routers whose RIBs stay resident; beyond that, least-recently
    /// touched routers spill through `StoreFs`. 0 = spill disabled.
    pub spill_working_set: usize,
}

/// Incident-detector tuning (`[watch]`), mirroring
/// `iri_store::WatchConfig` with pack-friendly defaults (1-minute bins:
/// scenario workloads are sparser than the bench_watch microbenches).
#[derive(Debug, Clone, PartialEq)]
pub struct WatchSpec {
    /// Event-time bin width (ms).
    pub bin_ms: u64,
    /// Change-point trailing baseline window (bins).
    pub change_window: usize,
    /// Change-point rate-ratio threshold.
    pub change_ratio: f64,
    /// Change-point z-score threshold.
    pub change_z: f64,
    /// Baseline floor (events/bin) below which change-points never fire.
    pub min_rate: f64,
    /// Periodicity ACF window (bins).
    pub period_window: usize,
    /// Smallest candidate period (bins).
    pub period_min_lag: usize,
    /// Largest candidate period (bins).
    pub period_max_lag: usize,
    /// ACF peak required for a periodic-signal incident.
    pub period_threshold: f64,
    /// Bins observed before the novelty detector may alarm.
    pub novelty_warmup: usize,
    /// Single-bin burst required for a novelty alarm.
    pub novelty_min_count: u64,
}

impl Default for WatchSpec {
    fn default() -> Self {
        WatchSpec {
            bin_ms: 60_000,
            change_window: 30,
            change_ratio: 3.0,
            change_z: 4.0,
            min_rate: 1.0,
            period_window: 120,
            period_min_lag: 5,
            period_max_lag: 60,
            period_threshold: 0.8,
            novelty_warmup: 10,
            novelty_min_count: 50,
        }
    }
}

/// What kind of scheduled pathology a `[[faults]]` entry injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// BGP-community churn storm (Krenc et al.): the origin flips a
    /// community value on a block of prefixes every `period_seconds`,
    /// producing an AADup/policy-fluctuation storm.
    CommunityChurn,
    /// Worm-outbreak update flood (Marais & Marwala): prefix flaps whose
    /// rate doubles every `ramp_minutes` until `peak_per_minute`, then
    /// stops at the end of the window.
    WormOutbreak,
    /// Long-memory link failures (Kitsak et al.): access-link outages
    /// with Pareto(`alpha`) inter-arrival times over the whole day.
    LinkFailures,
    /// The Table 1 "ISP-I" concentrated incident: a misconfigured
    /// provider re-blasts withdrawals all day (maps onto
    /// [`IncidentSpec`]).
    WithdrawalStorm,
}

impl FaultKind {
    fn parse(s: &str) -> Result<Self, PackError> {
        match s {
            "community_churn" => Ok(FaultKind::CommunityChurn),
            "worm_outbreak" => Ok(FaultKind::WormOutbreak),
            "link_failures" => Ok(FaultKind::LinkFailures),
            "withdrawal_storm" => Ok(FaultKind::WithdrawalStorm),
            other => Err(PackError::new(format!(
                "[[faults]]: unknown kind `{other}` (expected community_churn, \
                 worm_outbreak, link_failures, or withdrawal_storm)"
            ))),
        }
    }

    fn label(self) -> &'static str {
        match self {
            FaultKind::CommunityChurn => "community_churn",
            FaultKind::WormOutbreak => "worm_outbreak",
            FaultKind::LinkFailures => "link_failures",
            FaultKind::WithdrawalStorm => "withdrawal_storm",
        }
    }
}

/// One `[[faults]]` schedule entry. Fields irrelevant to a kind keep
/// their defaults and are ignored by the injector.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The pathology family.
    pub kind: FaultKind,
    /// Day offset within the run the fault applies to (0 = first day).
    pub day: u32,
    /// Whether the fault repeats on every day of the run.
    pub every_day: bool,
    /// Start minute within the measured day.
    pub start_minute: u32,
    /// Active window length.
    pub duration_minutes: u32,
    /// Customer prefixes involved.
    pub prefixes: usize,
    /// Churn: seconds between community flips.
    pub period_seconds: u64,
    /// Worm: minutes per rate doubling.
    pub ramp_minutes: u32,
    /// Worm: peak flap rate (events/minute across the block).
    pub peak_per_minute: f64,
    /// Link failures: Pareto shape (1 < α ≤ 2 gives long memory).
    pub alpha: f64,
    /// Link failures: minimum (scale) inter-arrival, minutes.
    pub min_gap_minutes: f64,
    /// Withdrawal storm: afflicted provider index.
    pub provider: usize,
}

/// One `[[ground_truth]]` expected incident, in pack-relative time.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthSpec {
    /// Expected incident kind.
    pub kind: IncidentKind,
    /// Day offset within the run.
    pub day: u32,
    /// True onset minute within that measured day.
    pub onset_minute: u32,
    /// Accepted |reported − true| onset error, minutes.
    pub onset_tol_minutes: u32,
    /// Accepted detection lag past the true onset, minutes.
    pub max_lag_minutes: u32,
    /// Expected cause attribution (empty = don't check).
    pub cause: String,
}

fn incident_kind_parse(s: &str) -> Result<IncidentKind, PackError> {
    match s {
        "instability_onset" => Ok(IncidentKind::InstabilityOnset),
        "periodic_signal" => Ok(IncidentKind::PeriodicSignal),
        "novelty_alarm" => Ok(IncidentKind::NoveltyAlarm),
        other => Err(PackError::new(format!(
            "[[ground_truth]]: unknown kind `{other}` (expected instability_onset, \
             periodic_signal, or novelty_alarm)"
        ))),
    }
}

/// Synthetic-MRT parameters (`[synthetic]`) for `mrtgen --pack`: packs
/// describe log-generator workloads through the same loader.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// MRT records to write.
    pub records: u64,
    /// Distinct peers.
    pub peers: u32,
    /// Distinct prefixes.
    pub prefixes: u32,
}

/// A fully parsed scenario pack.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPack {
    /// Identity and master seed.
    pub meta: PackMeta,
    /// Topology generator parameters.
    pub topology: TopologySpec,
    /// Workload event mix.
    pub workload: WorkloadSpec,
    /// Duration and streaming shape.
    pub run: RunSpec,
    /// Memory limits and spill working set.
    pub limits: LimitsSpec,
    /// Incident-detector tuning.
    pub watch: WatchSpec,
    /// Scheduled pathologies.
    pub faults: Vec<FaultSpec>,
    /// Expected incidents.
    pub ground_truth: Vec<TruthSpec>,
    /// Optional synthetic-MRT workload (for `mrtgen --pack`).
    pub synthetic: Option<SyntheticSpec>,
}

impl ScenarioPack {
    /// The baseline pack at `scale`: 1996 workload defaults, one day, no
    /// faults — the single source of truth `run_scenario --print-default`
    /// and the experiment harness start from.
    #[must_use]
    pub fn default_at(scale: f64) -> Self {
        ScenarioPack {
            meta: PackMeta {
                name: "default".to_owned(),
                description: "baseline 1996-shaped workload".to_owned(),
                seed: DEFAULT_PACK_SEED,
            },
            topology: TopologySpec {
                scale,
                providers: None,
                prefixes: None,
                pathological_fraction: None,
                multihomed_fraction: None,
                swamp_fraction: None,
                zipf_skew: None,
            },
            workload: WorkloadSpec {
                exchange: "MaeEast".to_owned(),
                base_events_per_slot: None,
                policy_burst_fraction: None,
                path_switch_fraction: None,
                igp_oscillation_fraction: None,
                oscillator_count: None,
                long_oscillator_count: None,
                warmup_minutes: None,
                damping: None,
            },
            run: RunSpec {
                start_day: 45,
                days: 1,
                chunk_minutes: 10,
                channel_capacity: 8_192,
                batch_events: 4_096,
                segment_rows: 65_536,
            },
            limits: LimitsSpec {
                max_rss_mb: 0,
                spill_working_set: 0,
            },
            watch: WatchSpec::default(),
            faults: Vec::new(),
            ground_truth: Vec::new(),
            synthetic: None,
        }
    }

    /// The effective graph config.
    #[must_use]
    pub fn graph_config(&self) -> GraphConfig {
        self.topology.graph_config(self.meta.seed)
    }

    /// The effective scenario config (withdrawal-storm faults become the
    /// embedded [`IncidentSpec`]).
    ///
    /// # Errors
    /// When the exchange name is unknown.
    pub fn scenario_config(&self) -> Result<ScenarioConfig, PackError> {
        let incident = self
            .faults
            .iter()
            .find(|f| f.kind == FaultKind::WithdrawalStorm)
            .map(|f| IncidentSpec {
                provider: f.provider,
                prefixes: f.prefixes,
            });
        let graph = self.graph_config();
        self.workload
            .scenario_config(graph.prefixes, self.meta.seed, incident)
    }

    // -----------------------------------------------------------------
    // Strict parse
    // -----------------------------------------------------------------

    /// Parses a pack from its value tree, rejecting unknown fields.
    ///
    /// # Errors
    /// On schema violations, naming the offending field and section.
    pub fn from_value(v: &Value) -> Result<Self, PackError> {
        let mut root = Section::new("the pack root", v)?;
        let version = root.u64("format_version", 0)?;
        if version != FORMAT_VERSION {
            return Err(PackError::new(format!(
                "unsupported format_version {version} (this build reads {FORMAT_VERSION}); \
                 add `format_version = {FORMAT_VERSION}` at the top of the pack"
            )));
        }

        let meta = {
            let mv = root
                .take("pack")
                .ok_or_else(|| PackError::new("missing [pack] section"))?;
            let mut s = Section::new("[pack]", mv)?;
            let meta = PackMeta {
                name: s.string("name", "unnamed")?,
                description: s.string("description", "")?,
                seed: s.u64("seed", DEFAULT_PACK_SEED)?,
            };
            s.finish()?;
            meta
        };

        let topology = match root.take("topology") {
            None => ScenarioPack::default_at(0.05).topology,
            Some(tv) => {
                let mut s = Section::new("[topology]", tv)?;
                let t = TopologySpec {
                    scale: s.f64("scale", 0.05)?,
                    providers: s.take("providers").and_then(as_u64).map(|v| v as usize),
                    prefixes: s.take("prefixes").and_then(as_u64).map(|v| v as usize),
                    pathological_fraction: s.take("pathological_fraction").and_then(as_f64),
                    multihomed_fraction: s.take("multihomed_fraction").and_then(as_f64),
                    swamp_fraction: s.take("swamp_fraction").and_then(as_f64),
                    zipf_skew: s.take("zipf_skew").and_then(as_f64),
                };
                s.finish()?;
                t
            }
        };

        let workload = match root.take("workload") {
            None => ScenarioPack::default_at(0.05).workload,
            Some(wv) => {
                let mut s = Section::new("[workload]", wv)?;
                let w = WorkloadSpec {
                    exchange: s.string("exchange", "MaeEast")?,
                    base_events_per_slot: s.take("base_events_per_slot").and_then(as_f64),
                    policy_burst_fraction: s.take("policy_burst_fraction").and_then(as_f64),
                    path_switch_fraction: s.take("path_switch_fraction").and_then(as_f64),
                    igp_oscillation_fraction: s.take("igp_oscillation_fraction").and_then(as_f64),
                    oscillator_count: s
                        .take("oscillator_count")
                        .and_then(as_u64)
                        .map(|v| v as usize),
                    long_oscillator_count: s
                        .take("long_oscillator_count")
                        .and_then(as_u64)
                        .map(|v| v as usize),
                    warmup_minutes: s.take("warmup_minutes").and_then(as_u64).map(|v| v as u32),
                    damping: s.take("damping").and_then(|v| match v {
                        Value::Bool(b) => Some(*b),
                        _ => None,
                    }),
                };
                // Validate eagerly so a bad exchange name fails at load.
                exchange_by_name(&w.exchange)?;
                s.finish()?;
                w
            }
        };

        let run = {
            let defaults = ScenarioPack::default_at(0.05).run;
            match root.take("run") {
                None => defaults,
                Some(rv) => {
                    let mut s = Section::new("[run]", rv)?;
                    let r = RunSpec {
                        start_day: s.u32("start_day", defaults.start_day)?,
                        days: s.u32("days", defaults.days)?.max(1),
                        chunk_minutes: s.u32("chunk_minutes", defaults.chunk_minutes)?.max(1),
                        channel_capacity: s
                            .usize("channel_capacity", defaults.channel_capacity)?
                            .max(1),
                        batch_events: s.usize("batch_events", defaults.batch_events)?.max(1),
                        segment_rows: s.u32("segment_rows", defaults.segment_rows)?.max(1),
                    };
                    s.finish()?;
                    r
                }
            }
        };

        let limits = match root.take("limits") {
            None => LimitsSpec {
                max_rss_mb: 0,
                spill_working_set: 0,
            },
            Some(lv) => {
                let mut s = Section::new("[limits]", lv)?;
                let l = LimitsSpec {
                    max_rss_mb: s.u64("max_rss_mb", 0)?,
                    spill_working_set: s.usize("spill_working_set", 0)?,
                };
                s.finish()?;
                l
            }
        };

        let watch = match root.take("watch") {
            None => WatchSpec::default(),
            Some(wv) => {
                let d = WatchSpec::default();
                let mut s = Section::new("[watch]", wv)?;
                let w = WatchSpec {
                    bin_ms: s.u64("bin_ms", d.bin_ms)?.max(1),
                    change_window: s.usize("change_window", d.change_window)?,
                    change_ratio: s.f64("change_ratio", d.change_ratio)?,
                    change_z: s.f64("change_z", d.change_z)?,
                    min_rate: s.f64("min_rate", d.min_rate)?,
                    period_window: s.usize("period_window", d.period_window)?,
                    period_min_lag: s.usize("period_min_lag", d.period_min_lag)?,
                    period_max_lag: s.usize("period_max_lag", d.period_max_lag)?,
                    period_threshold: s.f64("period_threshold", d.period_threshold)?,
                    novelty_warmup: s.usize("novelty_warmup", d.novelty_warmup)?,
                    novelty_min_count: s.u64("novelty_min_count", d.novelty_min_count)?,
                };
                s.finish()?;
                w
            }
        };

        let faults = match root.take("faults") {
            None => Vec::new(),
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let ctx = format!("[[faults]] entry {}", i + 1);
                    let mut s = Section::new(&ctx, item)?;
                    let kind_name = s.string("kind", "")?;
                    let kind = FaultKind::parse(&kind_name)?;
                    let f = FaultSpec {
                        kind,
                        day: s.u32("day", 0)?,
                        every_day: s.bool("every_day", false)?,
                        start_minute: s.u32("start_minute", 0)?,
                        duration_minutes: s.u32("duration_minutes", 60)?,
                        prefixes: s.usize("prefixes", 20)?,
                        period_seconds: s.u64("period_seconds", 30)?.max(1),
                        ramp_minutes: s.u32("ramp_minutes", 10)?.max(1),
                        peak_per_minute: s.f64("peak_per_minute", 60.0)?,
                        alpha: s.f64("alpha", 1.3)?,
                        min_gap_minutes: s.f64("min_gap_minutes", 2.0)?,
                        provider: s.usize("provider", 0)?,
                    };
                    s.finish()?;
                    out.push(f);
                }
                out
            }
            Some(_) => {
                return Err(PackError::new(
                    "`faults` must be an array of tables ([[faults]])",
                ))
            }
        };

        let ground_truth = match root.take("ground_truth") {
            None => Vec::new(),
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let ctx = format!("[[ground_truth]] entry {}", i + 1);
                    let mut s = Section::new(&ctx, item)?;
                    let kind = incident_kind_parse(&s.string("kind", "")?)?;
                    let t = TruthSpec {
                        kind,
                        day: s.u32("day", 0)?,
                        onset_minute: s.u32("onset_minute", 0)?,
                        onset_tol_minutes: s.u32("onset_tol_minutes", 10)?,
                        max_lag_minutes: s.u32("max_lag_minutes", 30)?,
                        cause: s.string("cause", "")?,
                    };
                    s.finish()?;
                    out.push(t);
                }
                out
            }
            Some(_) => {
                return Err(PackError::new(
                    "`ground_truth` must be an array of tables ([[ground_truth]])",
                ))
            }
        };

        let synthetic = match root.take("synthetic") {
            None => None,
            Some(sv) => {
                let mut s = Section::new("[synthetic]", sv)?;
                let spec = SyntheticSpec {
                    records: s.u64("records", 1_000_000)?,
                    peers: s.u32("peers", 16)?,
                    prefixes: s.u32("prefixes", 20_000)?,
                };
                s.finish()?;
                Some(spec)
            }
        };

        root.finish()?;
        let pack = ScenarioPack {
            meta,
            topology,
            workload,
            run,
            limits,
            watch,
            faults,
            ground_truth,
            synthetic,
        };
        pack.validate()?;
        Ok(pack)
    }

    /// Semantic checks beyond field shapes.
    fn validate(&self) -> Result<(), PackError> {
        for t in &self.ground_truth {
            if t.day >= self.run.days {
                return Err(PackError::new(format!(
                    "[[ground_truth]]: day {} is outside the run (days = {})",
                    t.day, self.run.days
                )));
            }
        }
        for f in &self.faults {
            if !f.every_day && f.day >= self.run.days {
                return Err(PackError::new(format!(
                    "[[faults]] {}: day {} is outside the run (days = {})",
                    f.kind.label(),
                    f.day,
                    self.run.days
                )));
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Serialize (for round-trips and `--print-default`)
    // -----------------------------------------------------------------

    /// The pack as a value tree (the inverse of [`ScenarioPack::from_value`]).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut root = vec![("format_version".to_owned(), Value::U64(FORMAT_VERSION))];
        root.push((
            "pack".to_owned(),
            Value::Map(vec![
                ("name".to_owned(), Value::Str(self.meta.name.clone())),
                (
                    "description".to_owned(),
                    Value::Str(self.meta.description.clone()),
                ),
                ("seed".to_owned(), Value::U64(self.meta.seed)),
            ]),
        ));
        let mut topo = vec![("scale".to_owned(), Value::F64(self.topology.scale))];
        if let Some(v) = self.topology.providers {
            topo.push(("providers".to_owned(), Value::U64(v as u64)));
        }
        if let Some(v) = self.topology.prefixes {
            topo.push(("prefixes".to_owned(), Value::U64(v as u64)));
        }
        if let Some(v) = self.topology.pathological_fraction {
            topo.push(("pathological_fraction".to_owned(), Value::F64(v)));
        }
        if let Some(v) = self.topology.multihomed_fraction {
            topo.push(("multihomed_fraction".to_owned(), Value::F64(v)));
        }
        if let Some(v) = self.topology.swamp_fraction {
            topo.push(("swamp_fraction".to_owned(), Value::F64(v)));
        }
        if let Some(v) = self.topology.zipf_skew {
            topo.push(("zipf_skew".to_owned(), Value::F64(v)));
        }
        root.push(("topology".to_owned(), Value::Map(topo)));

        let mut wl = vec![(
            "exchange".to_owned(),
            Value::Str(self.workload.exchange.clone()),
        )];
        if let Some(v) = self.workload.base_events_per_slot {
            wl.push(("base_events_per_slot".to_owned(), Value::F64(v)));
        }
        if let Some(v) = self.workload.policy_burst_fraction {
            wl.push(("policy_burst_fraction".to_owned(), Value::F64(v)));
        }
        if let Some(v) = self.workload.path_switch_fraction {
            wl.push(("path_switch_fraction".to_owned(), Value::F64(v)));
        }
        if let Some(v) = self.workload.igp_oscillation_fraction {
            wl.push(("igp_oscillation_fraction".to_owned(), Value::F64(v)));
        }
        if let Some(v) = self.workload.oscillator_count {
            wl.push(("oscillator_count".to_owned(), Value::U64(v as u64)));
        }
        if let Some(v) = self.workload.long_oscillator_count {
            wl.push(("long_oscillator_count".to_owned(), Value::U64(v as u64)));
        }
        if let Some(v) = self.workload.warmup_minutes {
            wl.push(("warmup_minutes".to_owned(), Value::U64(u64::from(v))));
        }
        if let Some(v) = self.workload.damping {
            wl.push(("damping".to_owned(), Value::Bool(v)));
        }
        root.push(("workload".to_owned(), Value::Map(wl)));

        root.push((
            "run".to_owned(),
            Value::Map(vec![
                (
                    "start_day".to_owned(),
                    Value::U64(u64::from(self.run.start_day)),
                ),
                ("days".to_owned(), Value::U64(u64::from(self.run.days))),
                (
                    "chunk_minutes".to_owned(),
                    Value::U64(u64::from(self.run.chunk_minutes)),
                ),
                (
                    "channel_capacity".to_owned(),
                    Value::U64(self.run.channel_capacity as u64),
                ),
                (
                    "batch_events".to_owned(),
                    Value::U64(self.run.batch_events as u64),
                ),
                (
                    "segment_rows".to_owned(),
                    Value::U64(u64::from(self.run.segment_rows)),
                ),
            ]),
        ));
        root.push((
            "limits".to_owned(),
            Value::Map(vec![
                ("max_rss_mb".to_owned(), Value::U64(self.limits.max_rss_mb)),
                (
                    "spill_working_set".to_owned(),
                    Value::U64(self.limits.spill_working_set as u64),
                ),
            ]),
        ));
        root.push((
            "watch".to_owned(),
            Value::Map(vec![
                ("bin_ms".to_owned(), Value::U64(self.watch.bin_ms)),
                (
                    "change_window".to_owned(),
                    Value::U64(self.watch.change_window as u64),
                ),
                (
                    "change_ratio".to_owned(),
                    Value::F64(self.watch.change_ratio),
                ),
                ("change_z".to_owned(), Value::F64(self.watch.change_z)),
                ("min_rate".to_owned(), Value::F64(self.watch.min_rate)),
                (
                    "period_window".to_owned(),
                    Value::U64(self.watch.period_window as u64),
                ),
                (
                    "period_min_lag".to_owned(),
                    Value::U64(self.watch.period_min_lag as u64),
                ),
                (
                    "period_max_lag".to_owned(),
                    Value::U64(self.watch.period_max_lag as u64),
                ),
                (
                    "period_threshold".to_owned(),
                    Value::F64(self.watch.period_threshold),
                ),
                (
                    "novelty_warmup".to_owned(),
                    Value::U64(self.watch.novelty_warmup as u64),
                ),
                (
                    "novelty_min_count".to_owned(),
                    Value::U64(self.watch.novelty_min_count),
                ),
            ]),
        ));
        if !self.faults.is_empty() {
            root.push((
                "faults".to_owned(),
                Value::Array(
                    self.faults
                        .iter()
                        .map(|f| {
                            Value::Map(vec![
                                ("kind".to_owned(), Value::Str(f.kind.label().to_owned())),
                                ("day".to_owned(), Value::U64(u64::from(f.day))),
                                ("every_day".to_owned(), Value::Bool(f.every_day)),
                                (
                                    "start_minute".to_owned(),
                                    Value::U64(u64::from(f.start_minute)),
                                ),
                                (
                                    "duration_minutes".to_owned(),
                                    Value::U64(u64::from(f.duration_minutes)),
                                ),
                                ("prefixes".to_owned(), Value::U64(f.prefixes as u64)),
                                ("period_seconds".to_owned(), Value::U64(f.period_seconds)),
                                (
                                    "ramp_minutes".to_owned(),
                                    Value::U64(u64::from(f.ramp_minutes)),
                                ),
                                ("peak_per_minute".to_owned(), Value::F64(f.peak_per_minute)),
                                ("alpha".to_owned(), Value::F64(f.alpha)),
                                ("min_gap_minutes".to_owned(), Value::F64(f.min_gap_minutes)),
                                ("provider".to_owned(), Value::U64(f.provider as u64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.ground_truth.is_empty() {
            root.push((
                "ground_truth".to_owned(),
                Value::Array(
                    self.ground_truth
                        .iter()
                        .map(|t| {
                            Value::Map(vec![
                                ("kind".to_owned(), Value::Str(t.kind.label().to_owned())),
                                ("day".to_owned(), Value::U64(u64::from(t.day))),
                                (
                                    "onset_minute".to_owned(),
                                    Value::U64(u64::from(t.onset_minute)),
                                ),
                                (
                                    "onset_tol_minutes".to_owned(),
                                    Value::U64(u64::from(t.onset_tol_minutes)),
                                ),
                                (
                                    "max_lag_minutes".to_owned(),
                                    Value::U64(u64::from(t.max_lag_minutes)),
                                ),
                                ("cause".to_owned(), Value::Str(t.cause.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(s) = &self.synthetic {
            root.push((
                "synthetic".to_owned(),
                Value::Map(vec![
                    ("records".to_owned(), Value::U64(s.records)),
                    ("peers".to_owned(), Value::U64(u64::from(s.peers))),
                    ("prefixes".to_owned(), Value::U64(u64::from(s.prefixes))),
                ]),
            ));
        }
        Value::Map(root)
    }

    /// Renders the pack as TOML (the native on-disk syntax).
    #[must_use]
    pub fn to_toml_string(&self) -> String {
        emit_toml(&self.to_value())
    }

    /// Parses a pack from TOML or JSON source (JSON when the first
    /// non-space byte is `{`).
    ///
    /// # Errors
    /// On syntax or schema errors.
    pub fn parse_str(src: &str) -> Result<Self, PackError> {
        let value = if src.trim_start().starts_with('{') {
            serde_json::from_str::<Value>(src)
                .map_err(|e| PackError::new(format!("JSON parse error: {e}")))?
        } else {
            toml::parse(src).map_err(|e| PackError::new(e.to_string()))?
        };
        ScenarioPack::from_value(&value)
    }

    /// Loads a pack file (TOML or JSON, by content).
    ///
    /// # Errors
    /// On I/O, syntax, or schema errors, with the path in the message.
    pub fn load(path: &Path) -> Result<Self, PackError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| PackError::new(format!("{}: {e}", path.display())))?;
        ScenarioPack::parse_str(&src)
            .map_err(|e| PackError::new(format!("{}: {e}", path.display())))
    }
}

/// Renders a pack-shaped value tree as TOML. Handles exactly the shapes
/// [`ScenarioPack::to_value`] emits: root scalars, one level of tables,
/// and arrays of flat tables.
fn emit_toml(root: &Value) -> String {
    fn scalar(v: &Value) -> String {
        match v {
            Value::Null => "\"\"".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::U64(u) => u.to_string(),
            Value::I64(i) => i.to_string(),
            Value::F64(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => format!(
                "\"{}\"",
                s.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            ),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(scalar).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Map(_) => unreachable!("nested inline tables are not emitted"),
        }
    }
    let mut out = String::new();
    let Value::Map(entries) = root else {
        return out;
    };
    for (k, v) in entries {
        match v {
            Value::Map(fields) => {
                out.push_str(&format!("\n[{k}]\n"));
                for (fk, fv) in fields {
                    out.push_str(&format!("{fk} = {}\n", scalar(fv)));
                }
            }
            Value::Array(items) if items.iter().all(|i| matches!(i, Value::Map(_))) => {
                for item in items {
                    out.push_str(&format!("\n[[{k}]]\n"));
                    if let Value::Map(fields) = item {
                        for (fk, fv) in fields {
                            out.push_str(&format!("{fk} = {}\n", scalar(fv)));
                        }
                    }
                }
            }
            other => out.push_str(&format!("{k} = {}\n", scalar(other))),
        }
    }
    out
}

/// The legacy `run_scenario` experiment file (`{graph, scenario}` JSON),
/// kept serde-compatible; its defaults now come from the pack loader.
#[derive(Serialize, Deserialize)]
pub struct Experiment {
    /// Topology generator parameters.
    pub graph: GraphConfig,
    /// Workload configuration.
    pub scenario: ScenarioConfig,
}

impl Experiment {
    /// The default experiment at `scale`, derived from
    /// [`ScenarioPack::default_at`] — one source of truth.
    #[must_use]
    pub fn default_at(scale: f64) -> Self {
        let pack = ScenarioPack::default_at(scale);
        let graph = pack.graph_config();
        let scenario = pack
            .scenario_config()
            .expect("default pack has a valid exchange");
        Experiment { graph, scenario }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pack_round_trips_through_toml() {
        let mut pack = ScenarioPack::default_at(0.02);
        pack.faults.push(FaultSpec {
            kind: FaultKind::CommunityChurn,
            day: 0,
            every_day: false,
            start_minute: 600,
            duration_minutes: 45,
            prefixes: 12,
            period_seconds: 30,
            ramp_minutes: 10,
            peak_per_minute: 60.0,
            alpha: 1.3,
            min_gap_minutes: 2.0,
            provider: 0,
        });
        pack.ground_truth.push(TruthSpec {
            kind: IncidentKind::InstabilityOnset,
            day: 0,
            onset_minute: 600,
            onset_tol_minutes: 10,
            max_lag_minutes: 30,
            cause: String::new(),
        });
        let toml_src = pack.to_toml_string();
        let reparsed = ScenarioPack::parse_str(&toml_src).expect("round-trip parse");
        assert_eq!(pack, reparsed);
        // And once more through JSON.
        let json = serde_json::to_string_pretty(&pack.to_value()).expect("json");
        let rejson = ScenarioPack::parse_str(&json).expect("json parse");
        assert_eq!(pack, rejson);
    }

    #[test]
    fn unknown_field_is_rejected_by_name() {
        let src = "format_version = 1\n[pack]\nname = \"x\"\n[workload]\nprefices = 40\n";
        let e = ScenarioPack::parse_str(src).unwrap_err();
        assert!(
            e.to_string()
                .contains("unknown field `prefices` in [workload]"),
            "{e}"
        );
        let src = "format_version = 1\n[pack]\nname = \"x\"\nbogus_top = 3\n";
        let e = ScenarioPack::parse_str(src).unwrap_err();
        assert!(e.to_string().contains("`bogus_top`"), "{e}");
    }

    #[test]
    fn format_version_is_required_and_checked() {
        let e = ScenarioPack::parse_str("[pack]\nname = \"x\"\n").unwrap_err();
        assert!(e.to_string().contains("format_version"), "{e}");
        let e = ScenarioPack::parse_str("format_version = 9\n[pack]\nname = \"x\"\n").unwrap_err();
        assert!(
            e.to_string().contains("unsupported format_version 9"),
            "{e}"
        );
    }

    #[test]
    fn bad_enum_values_name_the_choices() {
        let src = "format_version = 1\n[pack]\nname = \"x\"\n[workload]\nexchange = \"Mars\"\n";
        let e = ScenarioPack::parse_str(src).unwrap_err();
        assert!(e.to_string().contains("unknown exchange `Mars`"), "{e}");
        let src = "format_version = 1\n[pack]\nname = \"x\"\n[[faults]]\nkind = \"gamma_rays\"\n";
        let e = ScenarioPack::parse_str(src).unwrap_err();
        assert!(e.to_string().contains("unknown kind `gamma_rays`"), "{e}");
    }

    #[test]
    fn ground_truth_outside_run_is_rejected() {
        let src = "format_version = 1\n[pack]\nname = \"x\"\n[run]\ndays = 1\n\
                   [[ground_truth]]\nkind = \"novelty_alarm\"\nday = 3\n";
        let e = ScenarioPack::parse_str(src).unwrap_err();
        assert!(e.to_string().contains("outside the run"), "{e}");
    }

    #[test]
    fn configs_derive_from_pack_seed_and_overrides() {
        let src = "format_version = 1\n[pack]\nname = \"x\"\nseed = 7\n\
                   [topology]\nscale = 0.01\nproviders = 5\n\
                   [workload]\nexchange = \"Sprint\"\nwarmup_minutes = 12\n";
        let pack = ScenarioPack::parse_str(src).expect("parse");
        let g = pack.graph_config();
        assert_eq!(g.providers, 5);
        assert_eq!(g.seed, 0x1996_0401 ^ 7 ^ DEFAULT_PACK_SEED);
        let sc = pack.scenario_config().expect("scenario");
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.warmup_minutes, 12);
        assert_eq!(sc.exchange, ExchangePoint::Sprint);
    }

    #[test]
    fn experiment_defaults_match_legacy_shape() {
        let e = Experiment::default_at(0.05);
        let scaled = GraphConfig::default_scaled(0.05);
        assert_eq!(e.graph.providers, scaled.providers);
        assert_eq!(e.graph.prefixes, scaled.prefixes);
        // Scenario defaults derive from the prefix count and keep the
        // legacy seed via the default pack seed.
        let legacy = ScenarioConfig::default_for(e.graph.prefixes);
        assert_eq!(e.scenario.oscillator_count, legacy.oscillator_count);
        assert_eq!(e.scenario.seed, legacy.seed);
        // The anchored derivation: the default pack seed reproduces the
        // legacy graph seed exactly, so pre-pack experiments are
        // bit-for-bit reproducible through the pack loader.
        assert_eq!(e.graph.seed, scaled.seed);
    }
}
