//! Property tests: arbitrary MRT record sequences round-trip byte-exactly,
//! and the reader never panics on arbitrary byte streams.

use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::message::{Message, Update};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use iri_mrt::{
    Bgp4mpMessage, Bgp4mpStateChange, MrtReader, MrtRecord, MrtWriter, PeerState, TableDumpEntry,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_asn() -> impl Strategy<Value = Asn> {
    (1u32..=65_535).prop_map(Asn)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(b, l)| Prefix::from_raw(b, l))
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        prop::collection::vec(arb_asn(), 1..6),
        arb_ip(),
        proptest::option::of(any::<u32>()),
    )
        .prop_map(|(path, hop, med)| {
            let mut a = PathAttributes::new(Origin::Igp, AsPath::from_sequence(path), hop);
            a.med = med;
            a
        })
}

fn arb_state() -> impl Strategy<Value = PeerState> {
    prop_oneof![
        Just(PeerState::Idle),
        Just(PeerState::Connect),
        Just(PeerState::Active),
        Just(PeerState::OpenSent),
        Just(PeerState::OpenConfirm),
        Just(PeerState::Established),
    ]
}

fn arb_record() -> impl Strategy<Value = MrtRecord> {
    prop_oneof![
        (
            any::<u32>(),
            arb_asn(),
            arb_asn(),
            arb_ip(),
            arb_ip(),
            prop::collection::vec(arb_prefix(), 0..20),
            proptest::option::of((arb_attrs(), prop::collection::vec(arb_prefix(), 1..20))),
        )
            .prop_map(
                |(timestamp, peer_asn, local_asn, peer_ip, local_ip, withdrawn, ann)| {
                    let update = match ann {
                        Some((attrs, nlri)) => Update {
                            withdrawn,
                            attrs: Some(attrs),
                            nlri,
                        },
                        None => Update {
                            withdrawn,
                            attrs: None,
                            nlri: vec![],
                        },
                    };
                    MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                        timestamp,
                        peer_asn,
                        local_asn,
                        peer_ip,
                        local_ip,
                        message: Message::Update(update),
                    })
                }
            ),
        (
            any::<u32>(),
            arb_asn(),
            arb_asn(),
            arb_ip(),
            arb_ip(),
            arb_state(),
            arb_state()
        )
            .prop_map(
                |(timestamp, peer_asn, local_asn, peer_ip, local_ip, old_state, new_state)| {
                    MrtRecord::Bgp4mpStateChange(Bgp4mpStateChange {
                        timestamp,
                        peer_asn,
                        local_asn,
                        peer_ip,
                        local_ip,
                        old_state,
                        new_state,
                    })
                }
            ),
        (
            any::<u32>(),
            any::<u16>(),
            arb_prefix(),
            any::<u32>(),
            arb_ip(),
            arb_asn(),
            arb_attrs()
        )
            .prop_map(
                |(timestamp, sequence, prefix, originated, peer_ip, peer_asn, attrs)| {
                    MrtRecord::TableDump(TableDumpEntry {
                        timestamp,
                        view: 0,
                        sequence,
                        prefix,
                        originated,
                        peer_ip,
                        peer_asn,
                        attrs,
                    })
                }
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn record_sequences_roundtrip(records in prop::collection::vec(arb_record(), 0..20)) {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for r in &records {
            w.write(r).unwrap();
        }
        let mut reader = MrtReader::new(buf.as_slice());
        let back: Vec<MrtRecord> = reader.iter().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = MrtReader::new(bytes.as_slice());
        // Drain until error or EOF; must not panic.
        while let Ok(Some(_)) = reader.next_record() {}
    }

    #[test]
    fn corrupt_length_fields_error_without_panic(
        record in arb_record(),
        claimed_len in any::<u32>(),
    ) {
        // Rewrite the header's length field to an arbitrary value: the
        // reader must return an error (Truncated, Oversized, decode
        // failure, …) or a record — never panic, never huge-allocate.
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf).write(&record).unwrap();
        buf[8..12].copy_from_slice(&claimed_len.to_be_bytes());
        let mut reader = MrtReader::new(buf.as_slice());
        if let Err(iri_mrt::MrtError::Oversized { len }) = reader.next_record() {
            prop_assert!(claimed_len as usize > iri_mrt::MAX_BODY_LEN);
            prop_assert_eq!(len, claimed_len);
        }
    }

    #[test]
    fn reader_never_panics_on_truncated_valid_stream(
        records in prop::collection::vec(arb_record(), 1..5),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for r in &records {
            w.write(r).unwrap();
        }
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        let mut reader = MrtReader::new(&buf[..cut]);
        while let Ok(Some(_)) = reader.next_record() {}
    }
}
