//! # iri-mrt — MRT routing-log format
//!
//! The Routing Arbiter project "amassed 12 gigabytes of compressed data"
//! of BGP packet logs. The de-facto archival format for such logs is MRT
//! (Multi-threaded Routing Toolkit export format, later standardised as
//! RFC 6396). This crate implements the two record families the paper's
//! analysis needs:
//!
//! - **BGP4MP** `MESSAGE` and `STATE_CHANGE` records — timestamped BGP
//!   messages as heard on a peering session, the raw material of every
//!   figure in the paper;
//! - **TABLE_DUMP** records — RIB snapshots, used for the routing-table
//!   census (table share in Figure 6, multihoming in Figure 10).
//!
//! The reader is incremental and never panics on malformed input; the writer
//! produces byte streams the reader round-trips exactly. Records carry
//! second-resolution timestamps like the 1996 logs did; sub-second event
//! ordering inside the simulator is preserved separately by `iri-netsim`.
//!
//! ```
//! use iri_bgp::prelude::*;
//! use iri_mrt::{MrtRecord, MrtWriter, MrtReader, Bgp4mpMessage};
//!
//! let rec = MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
//!     timestamp: 833_155_200, // May 26 1996
//!     peer_asn: Asn(701),
//!     local_asn: Asn(237),
//!     peer_ip: Ipv4Addr::new(192, 41, 177, 1),
//!     local_ip: Ipv4Addr::new(192, 41, 177, 249),
//!     message: Message::Update(Update::withdraw(["192.42.113.0/24".parse().unwrap()])),
//! });
//! let mut buf = Vec::new();
//! MrtWriter::new(&mut buf).write(&rec).unwrap();
//! let mut reader = MrtReader::new(buf.as_slice());
//! assert_eq!(reader.next_record().unwrap().unwrap(), rec);
//! ```

#![warn(missing_docs)]

pub mod read;
pub mod record;
pub mod write;

pub use read::{MrtReader, MAX_BODY_LEN};
pub use record::{
    Bgp4mpMessage, Bgp4mpStateChange, MrtError, MrtRecord, PeerState, TableDumpEntry,
};
pub use write::MrtWriter;
