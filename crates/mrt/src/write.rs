//! MRT stream writer — the simulator's monitor taps use this to persist
//! exchange-point logs the analysis pipeline later replays.

use crate::record::{
    subtype, type_code, Bgp4mpMessage, Bgp4mpStateChange, MrtError, MrtRecord, TableDumpEntry,
};
use bytes::{BufMut, BytesMut};
use iri_bgp::codec::encode_message;
use iri_bgp::message::{Message, Update};
use std::io::Write;

/// Writes MRT records to any [`Write`] sink.
pub struct MrtWriter<W: Write> {
    sink: W,
    records_written: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        MrtWriter {
            sink,
            records_written: 0,
        }
    }

    /// Number of records written so far.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Serialises and writes one record.
    pub fn write(&mut self, rec: &MrtRecord) -> Result<(), MrtError> {
        let (mrt_type, sub, body) = match rec {
            MrtRecord::Bgp4mpMessage(m) => (
                type_code::BGP4MP,
                subtype::BGP4MP_MESSAGE,
                encode_bgp4mp_message(m),
            ),
            MrtRecord::Bgp4mpStateChange(s) => (
                type_code::BGP4MP,
                subtype::BGP4MP_STATE_CHANGE,
                encode_state_change(s),
            ),
            MrtRecord::TableDump(t) => (
                type_code::TABLE_DUMP,
                subtype::AFI_IPV4,
                encode_table_dump(t),
            ),
        };
        let mut header = BytesMut::with_capacity(12);
        header.put_u32(rec.timestamp());
        header.put_u16(mrt_type);
        header.put_u16(sub);
        header.put_u32(body.len() as u32);
        self.sink.write_all(&header)?;
        self.sink.write_all(&body)?;
        self.records_written += 1;
        Ok(())
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> Result<(), MrtError> {
        self.sink.flush()?;
        Ok(())
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

fn put_peering<B: BufMut>(
    buf: &mut B,
    peer_asn: iri_bgp::types::Asn,
    local_asn: iri_bgp::types::Asn,
    peer_ip: std::net::Ipv4Addr,
    local_ip: std::net::Ipv4Addr,
) {
    buf.put_u16(peer_asn.0 as u16);
    buf.put_u16(local_asn.0 as u16);
    buf.put_u16(0); // interface index
    buf.put_u16(subtype::AFI_IPV4);
    buf.put_u32(u32::from(peer_ip));
    buf.put_u32(u32::from(local_ip));
}

fn encode_bgp4mp_message(m: &Bgp4mpMessage) -> BytesMut {
    let mut body = BytesMut::with_capacity(64);
    put_peering(&mut body, m.peer_asn, m.local_asn, m.peer_ip, m.local_ip);
    body.extend_from_slice(&encode_message(&m.message));
    body
}

fn encode_state_change(s: &Bgp4mpStateChange) -> BytesMut {
    let mut body = BytesMut::with_capacity(24);
    put_peering(&mut body, s.peer_asn, s.local_asn, s.peer_ip, s.local_ip);
    body.put_u16(s.old_state.code());
    body.put_u16(s.new_state.code());
    body
}

fn encode_table_dump(t: &TableDumpEntry) -> BytesMut {
    // TABLE_DUMP (RFC 6396 §4.3): view, seq, prefix(4), len, status,
    // originated, peer ip, peer as, attr len, attrs. Attributes are reused
    // from the BGP codec by encoding a minimal UPDATE and slicing out its
    // attribute block.
    let mut body = BytesMut::with_capacity(48);
    body.put_u16(t.view);
    body.put_u16(t.sequence);
    body.put_u32(t.prefix.bits());
    body.put_u8(t.prefix.len());
    body.put_u8(1); // status: valid
    body.put_u32(t.originated);
    body.put_u32(u32::from(t.peer_ip));
    body.put_u16(t.peer_asn.0 as u16);
    let attrs_wire = encode_attr_block(&t.attrs);
    body.put_u16(attrs_wire.len() as u16);
    body.extend_from_slice(&attrs_wire);
    body
}

/// Encodes just the path-attribute block of an UPDATE carrying `attrs`.
/// TABLE_DUMP stores attributes in exactly the UPDATE wire format.
fn encode_attr_block(attrs: &iri_bgp::attrs::PathAttributes) -> Vec<u8> {
    let update = Update {
        withdrawn: vec![],
        attrs: Some(attrs.clone()),
        nlri: vec![iri_bgp::types::Prefix::DEFAULT],
    };
    let wire = encode_message(&Message::Update(update));
    // Layout: 19-byte header, u16 withdrawn-len (0), u16 attr-len, attrs, NLRI.
    let attr_len = usize::from(u16::from_be_bytes([wire[21], wire[22]]));
    wire[23..23 + attr_len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::{Origin, PathAttributes};
    use iri_bgp::path::AsPath;
    use iri_bgp::types::Asn;
    use std::net::Ipv4Addr;

    #[test]
    fn writer_counts_records() {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let rec = MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
            timestamp: 1,
            peer_asn: Asn(701),
            local_asn: Asn(237),
            peer_ip: Ipv4Addr::new(1, 1, 1, 1),
            local_ip: Ipv4Addr::new(2, 2, 2, 2),
            message: Message::Keepalive,
        });
        w.write(&rec).unwrap();
        w.write(&rec).unwrap();
        assert_eq!(w.records_written(), 2);
        w.flush().unwrap();
        assert!(!buf.is_empty());
    }

    #[test]
    fn attr_block_extraction_is_consistent() {
        let attrs = PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(701), Asn(1239)]),
            Ipv4Addr::new(9, 9, 9, 9),
        );
        let block = encode_attr_block(&attrs);
        assert!(!block.is_empty());
        // The block must start with the ORIGIN attribute (flags 0x40 type 1).
        assert_eq!(block[0], 0x40);
        assert_eq!(block[1], 1);
    }
}
