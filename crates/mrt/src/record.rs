//! MRT record model: the typed representation of the log entries the paper's
//! measurement infrastructure captured.

use iri_bgp::attrs::PathAttributes;
use iri_bgp::codec::DecodeError;
use iri_bgp::message::Message;
use iri_bgp::types::{Asn, Prefix};
use std::fmt;
use std::net::Ipv4Addr;

/// MRT top-level type codes (RFC 6396 §4).
pub mod type_code {
    /// RIB snapshots.
    pub const TABLE_DUMP: u16 = 12;
    /// BGP message / state-change records.
    pub const BGP4MP: u16 = 16;
}

/// BGP4MP subtypes.
pub mod subtype {
    /// Session FSM transition.
    pub const BGP4MP_STATE_CHANGE: u16 = 0;
    /// A full BGP message.
    pub const BGP4MP_MESSAGE: u16 = 1;
    /// TABLE_DUMP AFI for IPv4.
    pub const AFI_IPV4: u16 = 1;
}

/// Peering session states as encoded in STATE_CHANGE records (RFC 6396
/// §4.2.1: 1=Idle … 6=Established).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerState {
    /// Session down, not trying.
    Idle,
    /// TCP connect in progress.
    Connect,
    /// Listening after a failed connect.
    Active,
    /// OPEN sent, waiting for peer's OPEN.
    OpenSent,
    /// OPEN accepted, waiting for KEEPALIVE.
    OpenConfirm,
    /// Full routing information flows.
    Established,
}

impl PeerState {
    /// Wire code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            PeerState::Idle => 1,
            PeerState::Connect => 2,
            PeerState::Active => 3,
            PeerState::OpenSent => 4,
            PeerState::OpenConfirm => 5,
            PeerState::Established => 6,
        }
    }

    /// Parses a wire code.
    #[must_use]
    pub fn from_code(c: u16) -> Option<Self> {
        Some(match c {
            1 => PeerState::Idle,
            2 => PeerState::Connect,
            3 => PeerState::Active,
            4 => PeerState::OpenSent,
            5 => PeerState::OpenConfirm,
            6 => PeerState::Established,
            _ => return None,
        })
    }
}

impl fmt::Display for PeerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PeerState::Idle => "Idle",
            PeerState::Connect => "Connect",
            PeerState::Active => "Active",
            PeerState::OpenSent => "OpenSent",
            PeerState::OpenConfirm => "OpenConfirm",
            PeerState::Established => "Established",
        })
    }
}

/// A timestamped BGP message heard on a peering session (BGP4MP MESSAGE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// Seconds since the Unix epoch.
    pub timestamp: u32,
    /// The remote (monitored) peer's AS.
    pub peer_asn: Asn,
    /// The collector's AS (AS 237 / Merit for the Routing Arbiter boxes).
    pub local_asn: Asn,
    /// Remote peer address at the exchange.
    pub peer_ip: Ipv4Addr,
    /// Collector address.
    pub local_ip: Ipv4Addr,
    /// The BGP message itself.
    pub message: Message,
}

/// A session FSM transition (BGP4MP STATE_CHANGE) — how the logs record
/// peering sessions dropping and re-establishing during flap storms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpStateChange {
    /// Seconds since the Unix epoch.
    pub timestamp: u32,
    /// The remote peer's AS.
    pub peer_asn: Asn,
    /// The collector's AS.
    pub local_asn: Asn,
    /// Remote peer address.
    pub peer_ip: Ipv4Addr,
    /// Collector address.
    pub local_ip: Ipv4Addr,
    /// State before the transition.
    pub old_state: PeerState,
    /// State after the transition.
    pub new_state: PeerState,
}

/// One RIB entry from a TABLE_DUMP snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDumpEntry {
    /// Snapshot timestamp.
    pub timestamp: u32,
    /// View number (0 in our logs).
    pub view: u16,
    /// Sequence number within the dump.
    pub sequence: u16,
    /// The route's destination.
    pub prefix: Prefix,
    /// When the route was last updated.
    pub originated: u32,
    /// Which peer advertised it.
    pub peer_ip: Ipv4Addr,
    /// That peer's AS.
    pub peer_asn: Asn,
    /// Full attribute set.
    pub attrs: PathAttributes,
}

/// Any MRT record this crate understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtRecord {
    /// BGP4MP MESSAGE.
    Bgp4mpMessage(Bgp4mpMessage),
    /// BGP4MP STATE_CHANGE.
    Bgp4mpStateChange(Bgp4mpStateChange),
    /// TABLE_DUMP entry.
    TableDump(TableDumpEntry),
}

impl MrtRecord {
    /// The record's timestamp (seconds since epoch).
    #[must_use]
    pub fn timestamp(&self) -> u32 {
        match self {
            MrtRecord::Bgp4mpMessage(m) => m.timestamp,
            MrtRecord::Bgp4mpStateChange(s) => s.timestamp,
            MrtRecord::TableDump(t) => t.timestamp,
        }
    }
}

/// Errors from reading or writing MRT streams.
#[derive(Debug)]
pub enum MrtError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Record body shorter than its header claims, or header truncated
    /// mid-record.
    Truncated,
    /// Unknown (type, subtype) pair.
    UnknownType {
        /// The record's MRT type code.
        mrt_type: u16,
        /// The record's subtype code.
        subtype: u16,
    },
    /// Record body malformed.
    Malformed(&'static str),
    /// The embedded BGP message failed to decode.
    Bgp(DecodeError),
    /// STATE_CHANGE carried an unknown state code.
    BadState(u16),
    /// Record header claims a body larger than
    /// [`MAX_BODY_LEN`](crate::read::MAX_BODY_LEN) — corruption, not a
    /// record this format can produce.
    Oversized {
        /// The length the header claimed.
        len: u32,
    },
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
            MrtError::Truncated => f.write_str("truncated MRT record"),
            MrtError::UnknownType { mrt_type, subtype } => {
                write!(f, "unknown MRT type {mrt_type} subtype {subtype}")
            }
            MrtError::Malformed(what) => write!(f, "malformed MRT record: {what}"),
            MrtError::Bgp(e) => write!(f, "embedded BGP message: {e}"),
            MrtError::BadState(c) => write!(f, "unknown peer state code {c}"),
            MrtError::Oversized { len } => {
                write!(f, "record body length {len} exceeds the format maximum")
            }
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            MrtError::Bgp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MrtError {
    fn from(e: std::io::Error) -> Self {
        MrtError::Io(e)
    }
}

impl From<DecodeError> for MrtError {
    fn from(e: DecodeError) -> Self {
        MrtError::Bgp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_state_codes_roundtrip() {
        for s in [
            PeerState::Idle,
            PeerState::Connect,
            PeerState::Active,
            PeerState::OpenSent,
            PeerState::OpenConfirm,
            PeerState::Established,
        ] {
            assert_eq!(PeerState::from_code(s.code()), Some(s));
        }
        assert_eq!(PeerState::from_code(0), None);
        assert_eq!(PeerState::from_code(7), None);
    }

    #[test]
    fn record_timestamp_accessor() {
        let sc = MrtRecord::Bgp4mpStateChange(Bgp4mpStateChange {
            timestamp: 42,
            peer_asn: Asn(701),
            local_asn: Asn(237),
            peer_ip: Ipv4Addr::LOCALHOST,
            local_ip: Ipv4Addr::LOCALHOST,
            old_state: PeerState::Established,
            new_state: PeerState::Idle,
        });
        assert_eq!(sc.timestamp(), 42);
    }

    #[test]
    fn display_impls() {
        assert_eq!(PeerState::Established.to_string(), "Established");
        let e = MrtError::UnknownType {
            mrt_type: 99,
            subtype: 1,
        };
        assert!(e.to_string().contains("99"));
    }
}
