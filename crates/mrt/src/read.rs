//! MRT stream reader — incremental, non-panicking, suitable for replaying
//! multi-gigabyte exchange-point logs record by record.

use crate::record::{
    subtype, type_code, Bgp4mpMessage, Bgp4mpStateChange, MrtError, MrtRecord, PeerState,
    TableDumpEntry,
};
use bytes::{Buf, BufMut, BytesMut};
use iri_bgp::codec::decode_message;
use iri_bgp::message::Message;
use iri_bgp::types::{Asn, Prefix};
use std::io::Read;
use std::net::Ipv4Addr;

/// Reads MRT records from any [`Read`] source.
///
/// # Performance
///
/// The reader issues at least two small `read` calls per record (a 12-byte
/// header, then the body). On an unbuffered [`std::fs::File`] each becomes
/// its own syscall, which dominates decode time on multi-million-record
/// logs — wrap files in [`std::io::BufReader`] (as every binary in this
/// workspace does) before handing them here. In-memory sources
/// (`&[u8]`) need no wrapping.
pub struct MrtReader<R: Read> {
    source: R,
    records_read: u64,
}

/// Largest record body the reader will accept. A BGP message is at most
/// 4096 bytes and a TABLE_DUMP entry's attribute block at most 64 KiB, so
/// any header claiming more is corruption — without this cap a single
/// flipped length byte makes the reader allocate up to 4 GiB before
/// discovering the body isn't there.
pub const MAX_BODY_LEN: usize = 1 << 20;

impl<R: Read> MrtReader<R> {
    /// Wraps a source. For files, pass `BufReader::new(file)` — see the
    /// type-level performance note.
    pub fn new(source: R) -> Self {
        MrtReader {
            source,
            records_read: 0,
        }
    }

    /// Number of records successfully read.
    #[must_use]
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Reads the next record. `Ok(None)` signals clean end of stream;
    /// a stream that ends mid-record yields [`MrtError::Truncated`]
    /// (the paper's collector "failed for the day after recording 30 million
    /// updates", so truncated logs are a real condition to surface).
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        let mut header = [0u8; 12];
        match read_exact_or_eof(&mut self.source, &mut header)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Err(MrtError::Truncated),
            ReadOutcome::Full => {}
        }
        let mut h = header.as_slice();
        let timestamp = h.get_u32();
        let mrt_type = h.get_u16();
        let sub = h.get_u16();
        let len = h.get_u32() as usize;
        if len > MAX_BODY_LEN {
            return Err(MrtError::Oversized { len: len as u32 });
        }
        let mut body = vec![0u8; len];
        match read_exact_or_eof(&mut self.source, &mut body)? {
            ReadOutcome::Full => {}
            _ => return Err(MrtError::Truncated),
        }
        let rec = decode_record(timestamp, mrt_type, sub, &body)?;
        self.records_read += 1;
        Ok(Some(rec))
    }

    /// Iterates over all records, stopping at the first error.
    pub fn iter(&mut self) -> impl Iterator<Item = Result<MrtRecord, MrtError>> + '_ {
        std::iter::from_fn(move || self.next_record().transpose())
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, MrtError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

fn decode_record(
    timestamp: u32,
    mrt_type: u16,
    sub: u16,
    body: &[u8],
) -> Result<MrtRecord, MrtError> {
    match (mrt_type, sub) {
        (type_code::BGP4MP, subtype::BGP4MP_MESSAGE) => {
            decode_bgp4mp_message(timestamp, body).map(MrtRecord::Bgp4mpMessage)
        }
        (type_code::BGP4MP, subtype::BGP4MP_STATE_CHANGE) => {
            decode_state_change(timestamp, body).map(MrtRecord::Bgp4mpStateChange)
        }
        (type_code::TABLE_DUMP, subtype::AFI_IPV4) => {
            decode_table_dump(timestamp, body).map(MrtRecord::TableDump)
        }
        _ => Err(MrtError::UnknownType {
            mrt_type,
            subtype: sub,
        }),
    }
}

struct Peering {
    peer_asn: Asn,
    local_asn: Asn,
    peer_ip: Ipv4Addr,
    local_ip: Ipv4Addr,
}

fn get_peering(body: &mut &[u8]) -> Result<Peering, MrtError> {
    if body.len() < 16 {
        return Err(MrtError::Truncated);
    }
    let peer_asn = Asn(u32::from(body.get_u16()));
    let local_asn = Asn(u32::from(body.get_u16()));
    let _ifindex = body.get_u16();
    let afi = body.get_u16();
    if afi != subtype::AFI_IPV4 {
        return Err(MrtError::Malformed("non-IPv4 AFI"));
    }
    let peer_ip = Ipv4Addr::from(body.get_u32());
    let local_ip = Ipv4Addr::from(body.get_u32());
    Ok(Peering {
        peer_asn,
        local_asn,
        peer_ip,
        local_ip,
    })
}

fn decode_bgp4mp_message(timestamp: u32, mut body: &[u8]) -> Result<Bgp4mpMessage, MrtError> {
    let p = get_peering(&mut body)?;
    let message = decode_message(body)?;
    Ok(Bgp4mpMessage {
        timestamp,
        peer_asn: p.peer_asn,
        local_asn: p.local_asn,
        peer_ip: p.peer_ip,
        local_ip: p.local_ip,
        message,
    })
}

fn decode_state_change(timestamp: u32, mut body: &[u8]) -> Result<Bgp4mpStateChange, MrtError> {
    let p = get_peering(&mut body)?;
    if body.len() < 4 {
        return Err(MrtError::Truncated);
    }
    let old_raw = body.get_u16();
    let new_raw = body.get_u16();
    let old_state = PeerState::from_code(old_raw).ok_or(MrtError::BadState(old_raw))?;
    let new_state = PeerState::from_code(new_raw).ok_or(MrtError::BadState(new_raw))?;
    Ok(Bgp4mpStateChange {
        timestamp,
        peer_asn: p.peer_asn,
        local_asn: p.local_asn,
        peer_ip: p.peer_ip,
        local_ip: p.local_ip,
        old_state,
        new_state,
    })
}

fn decode_table_dump(timestamp: u32, mut body: &[u8]) -> Result<TableDumpEntry, MrtError> {
    if body.len() < 22 {
        return Err(MrtError::Truncated);
    }
    let view = body.get_u16();
    let sequence = body.get_u16();
    let prefix_bits = body.get_u32();
    let prefix_len = body.get_u8();
    if prefix_len > 32 {
        return Err(MrtError::Malformed("prefix length > 32"));
    }
    let _status = body.get_u8();
    let originated = body.get_u32();
    let peer_ip = Ipv4Addr::from(body.get_u32());
    let peer_asn = Asn(u32::from(body.get_u16()));
    let attr_len = usize::from(body.get_u16());
    if body.len() < attr_len {
        return Err(MrtError::Truncated);
    }
    let attrs = decode_attr_block(&body[..attr_len])?;
    Ok(TableDumpEntry {
        timestamp,
        view,
        sequence,
        prefix: Prefix::from_raw(prefix_bits, prefix_len),
        originated,
        peer_ip,
        peer_asn,
        attrs,
    })
}

/// Decodes a bare path-attribute block by framing it as a minimal UPDATE and
/// reusing the BGP codec — the inverse of the writer's extraction.
fn decode_attr_block(attrs: &[u8]) -> Result<iri_bgp::attrs::PathAttributes, MrtError> {
    let mut body = BytesMut::with_capacity(attrs.len() + 5);
    body.put_u16(0); // withdrawn length
    body.put_u16(attrs.len() as u16);
    body.extend_from_slice(attrs);
    body.put_u8(0); // NLRI: default route
    let mut wire = BytesMut::with_capacity(19 + body.len());
    wire.put_bytes(0xff, 16);
    wire.put_u16((19 + body.len()) as u16);
    wire.put_u8(2);
    wire.extend_from_slice(&body);
    match decode_message(&wire)? {
        Message::Update(u) => u.attrs.ok_or(MrtError::Malformed(
            "TABLE_DUMP entry with empty attributes",
        )),
        _ => unreachable!("framed as UPDATE"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::MrtWriter;
    use iri_bgp::attrs::{Origin, PathAttributes};
    use iri_bgp::message::{Update, UpdateBuilder};
    use iri_bgp::path::AsPath;

    fn msg_record(ts: u32) -> MrtRecord {
        MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
            timestamp: ts,
            peer_asn: Asn(701),
            local_asn: Asn(237),
            peer_ip: Ipv4Addr::new(192, 41, 177, 1),
            local_ip: Ipv4Addr::new(192, 41, 177, 249),
            message: Message::Update(
                UpdateBuilder::new()
                    .announce("192.42.113.0/24".parse().unwrap())
                    .next_hop(Ipv4Addr::new(192, 41, 177, 1))
                    .as_path(AsPath::from_sequence([Asn(701), Asn(1239)]))
                    .origin(Origin::Igp)
                    .build()
                    .unwrap(),
            ),
        })
    }

    fn state_record() -> MrtRecord {
        MrtRecord::Bgp4mpStateChange(Bgp4mpStateChange {
            timestamp: 833_155_300,
            peer_asn: Asn(701),
            local_asn: Asn(237),
            peer_ip: Ipv4Addr::new(192, 41, 177, 1),
            local_ip: Ipv4Addr::new(192, 41, 177, 249),
            old_state: PeerState::Established,
            new_state: PeerState::Idle,
        })
    }

    fn dump_record() -> MrtRecord {
        MrtRecord::TableDump(TableDumpEntry {
            timestamp: 833_155_400,
            view: 0,
            sequence: 7,
            prefix: "198.32.0.0/16".parse().unwrap(),
            originated: 833_100_000,
            peer_ip: Ipv4Addr::new(192, 41, 177, 2),
            peer_asn: Asn(1239),
            attrs: PathAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(1239), Asn(42)]),
                Ipv4Addr::new(192, 41, 177, 2),
            ),
        })
    }

    fn roundtrip(records: &[MrtRecord]) -> Vec<MrtRecord> {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for r in records {
            w.write(r).unwrap();
        }
        let mut reader = MrtReader::new(buf.as_slice());
        let out: Vec<_> = reader.iter().collect::<Result<_, _>>().unwrap();
        out
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let recs = vec![msg_record(1), state_record(), dump_record(), msg_record(2)];
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.records_read(), 0);
    }

    #[test]
    fn truncated_header_is_error() {
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf).write(&msg_record(1)).unwrap();
        let mut r = MrtReader::new(&buf[..6]);
        assert!(matches!(r.next_record(), Err(MrtError::Truncated)));
    }

    #[test]
    fn truncated_body_is_error() {
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf).write(&msg_record(1)).unwrap();
        let mut r = MrtReader::new(&buf[..buf.len() - 3]);
        assert!(matches!(r.next_record(), Err(MrtError::Truncated)));
    }

    #[test]
    fn oversized_length_is_error_not_allocation() {
        // A header claiming a 4 GiB body must fail fast, not allocate.
        let mut buf = BytesMut::new();
        buf.put_u32(833_155_200);
        buf.put_u16(type_code::BGP4MP);
        buf.put_u16(subtype::BGP4MP_MESSAGE);
        buf.put_u32(u32::MAX);
        let mut r = MrtReader::new(&buf[..]);
        match r.next_record() {
            Err(MrtError::Oversized { len }) => assert_eq!(len, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn max_body_len_passes_real_records() {
        // The cap is far above anything the writer can produce.
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf).write(&msg_record(1)).unwrap();
        assert!(buf.len() - 12 < super::MAX_BODY_LEN);
    }

    #[test]
    fn unknown_type_is_error_with_codes() {
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u16(99);
        buf.put_u16(5);
        buf.put_u32(0);
        let mut r = MrtReader::new(&buf[..]);
        match r.next_record() {
            Err(MrtError::UnknownType { mrt_type, subtype }) => {
                assert_eq!((mrt_type, subtype), (99, 5));
            }
            other => panic!("expected UnknownType, got {other:?}"),
        }
    }

    #[test]
    fn bad_state_code_is_error() {
        let mut body = BytesMut::new();
        body.put_u16(701);
        body.put_u16(237);
        body.put_u16(0);
        body.put_u16(1);
        body.put_u32(0);
        body.put_u32(0);
        body.put_u16(9); // bad old state
        body.put_u16(1);
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u16(type_code::BGP4MP);
        buf.put_u16(subtype::BGP4MP_STATE_CHANGE);
        buf.put_u32(body.len() as u32);
        buf.extend_from_slice(&body);
        let mut r = MrtReader::new(&buf[..]);
        assert!(matches!(r.next_record(), Err(MrtError::BadState(9))));
    }

    #[test]
    fn reader_counts_and_iterates() {
        let recs = vec![msg_record(1), msg_record(2), msg_record(3)];
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for r in &recs {
            w.write(r).unwrap();
        }
        let mut reader = MrtReader::new(buf.as_slice());
        let n = reader.iter().count();
        assert_eq!(n, 3);
        assert_eq!(reader.records_read(), 3);
    }

    #[test]
    fn withdrawal_message_roundtrip() {
        let rec = MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
            timestamp: 5,
            peer_asn: Asn(690),
            local_asn: Asn(237),
            peer_ip: Ipv4Addr::new(1, 1, 1, 1),
            local_ip: Ipv4Addr::new(2, 2, 2, 2),
            message: Message::Update(Update::withdraw([
                "192.42.113.0/24".parse().unwrap(),
                "10.0.0.0/8".parse().unwrap(),
            ])),
        });
        assert_eq!(roundtrip(std::slice::from_ref(&rec)), vec![rec]);
    }
}
