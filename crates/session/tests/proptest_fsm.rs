//! Property tests for the session FSM: no event sequence panics, state
//! invariants hold, and Established is only reachable through a complete
//! handshake.

use iri_bgp::message::{Message, Notification, NotificationCode, Open, Update};
use iri_bgp::types::Asn;
use iri_session::fsm::{Action, Event, SessionConfig, SessionFsm, State};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::Start),
        Just(Event::Stop),
        Just(Event::TcpEstablished),
        Just(Event::TcpClosed),
        Just(Event::HoldTimerExpired),
        Just(Event::KeepaliveTimerFired),
        Just(Event::ConnectRetryExpired),
        Just(Event::MessageReceived(Message::Keepalive)),
        (1u32..5, prop_oneof![Just(0u16), 3u16..400]).prop_map(|(asn, hold)| {
            Event::MessageReceived(Message::Open(Open {
                version: 4,
                asn: Asn(asn),
                hold_time: hold,
                router_id: Ipv4Addr::new(1, 1, 1, 1),
            }))
        }),
        Just(Event::MessageReceived(Message::Update(
            Update::withdraw([])
        ))),
        Just(Event::MessageReceived(Message::Notification(
            Notification::new(NotificationCode::Cease)
        ))),
    ]
}

fn config() -> SessionConfig {
    SessionConfig::new(Asn(237), Ipv4Addr::new(9, 9, 9, 9), Asn(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fsm_never_panics_and_invariants_hold(events in prop::collection::vec(arb_event(), 0..200)) {
        let mut fsm = SessionFsm::new(config());
        let mut was_established = false;
        let mut flaps_seen = 0u64;
        for ev in events {
            let pre_state = fsm.state();
            let actions = fsm.handle(ev);
            let post_state = fsm.state();

            // SessionUp exactly on entering Established.
            let up = actions.iter().filter(|a| matches!(a, Action::SessionUp)).count();
            if post_state == State::Established && pre_state != State::Established {
                prop_assert_eq!(up, 1, "entering Established must emit SessionUp");
            } else {
                prop_assert_eq!(up, 0);
            }
            // SessionDown exactly on leaving Established.
            let down = actions
                .iter()
                .filter(|a| matches!(a, Action::SessionDown(_)))
                .count();
            if pre_state == State::Established && post_state != State::Established {
                prop_assert_eq!(down, 1, "leaving Established must emit SessionDown");
                flaps_seen += 1;
            } else {
                prop_assert_eq!(down, 0);
            }
            if post_state == State::Established {
                was_established = true;
                // Hold time in Established is either 0 or ≥ 3s.
                let h = fsm.negotiated_hold();
                prop_assert!(h == 0 || h >= 3_000, "{h}");
            }
            // Timer arms are positive.
            for a in &actions {
                match a {
                    Action::ArmHoldTimer(d) | Action::ArmKeepaliveTimer(d) => {
                        prop_assert!(*d > 0);
                    }
                    Action::ArmConnectRetry(d) => prop_assert!(*d > 0),
                    _ => {}
                }
            }
        }
        prop_assert_eq!(fsm.flap_count(), flaps_seen);
        let _ = was_established;
    }

    #[test]
    fn established_requires_full_handshake(events in prop::collection::vec(arb_event(), 0..100)) {
        // Track the minimal handshake: Established can only be entered
        // from OpenConfirm on a Keepalive.
        let mut fsm = SessionFsm::new(config());
        for ev in events {
            let pre = fsm.state();
            let ev_is_keepalive = matches!(ev, Event::MessageReceived(Message::Keepalive));
            fsm.handle(ev);
            if fsm.state() == State::Established && pre != State::Established {
                prop_assert_eq!(pre, State::OpenConfirm);
                prop_assert!(ev_is_keepalive);
            }
        }
    }

    #[test]
    fn stop_always_returns_to_idle(events in prop::collection::vec(arb_event(), 0..60)) {
        let mut fsm = SessionFsm::new(config());
        for ev in events {
            fsm.handle(ev);
        }
        fsm.handle(Event::Stop);
        prop_assert_eq!(fsm.state(), State::Idle);
    }
}
