//! Session timers against a virtual millisecond clock.
//!
//! [`MraiTimer`] models the update-packing ("MinRouteAdvertisementInterval"
//! -style) timer of §4.2. Real implementations jitter this timer to avoid
//! the self-synchronisation of Floyd & Jacobson (reference 6 of the paper); the vendor implicated
//! by the paper shipped it *unjittered at 30 seconds*, which both imposes
//! the 30/60 s periodicity on update inter-arrivals and can act as "an
//! artificial route dampening mechanism" that converts an A1→A2→A1 flutter
//! into an AADup and a W→A→W flutter into a WWDup.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Milliseconds of virtual time.
pub type Millis = u64;

/// How a router's periodic update timer behaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimerProfile {
    /// The pathological fixed-interval timer (`interval` exactly).
    Unjittered {
        /// Fixed period.
        interval: Millis,
    },
    /// A jittered timer: uniform in `[interval * (1 - jitter), interval]`,
    /// the RFC 4271 §9.2.1.1 recommendation (jitter typically 0.25).
    Jittered {
        /// Base period.
        interval: Millis,
        /// Fractional jitter (0.0–1.0).
        jitter: f64,
    },
    /// No batching at all: every update goes out immediately.
    Immediate,
}

impl TimerProfile {
    /// The classic pathological profile: unjittered 30 s.
    #[must_use]
    pub fn pathological_30s() -> Self {
        TimerProfile::Unjittered { interval: 30_000 }
    }

    /// The post-fix profile: 30 s with 25 % jitter.
    #[must_use]
    pub fn jittered_30s() -> Self {
        TimerProfile::Jittered {
            interval: 30_000,
            jitter: 0.25,
        }
    }

    /// Draws the next firing delay.
    pub fn next_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> Millis {
        match *self {
            TimerProfile::Unjittered { interval } => interval,
            TimerProfile::Jittered { interval, jitter } => {
                let j = jitter.clamp(0.0, 1.0);
                let low = ((interval as f64) * (1.0 - j)) as Millis;
                rng.random_range(low..=interval)
            }
            TimerProfile::Immediate => 0,
        }
    }
}

/// The update-packing timer: outbound route changes accumulate while the
/// timer runs and flush when it fires.
///
/// The **unjittered** profile models the implicated vendor's free-running
/// *interval* timer: firings are locked to a fixed grid
/// (`phase + k·interval`), so everything a router emits is quantised to
/// 30-second boundaries — the direct origin of the exact 30/60-second
/// inter-arrival modes of Figure 8 and a precondition for the
/// Floyd–Jacobson self-synchronisation the paper conjectures. Jittered
/// timers are one-shot (armed relative to the triggering update), as in
/// the fixed implementations.
#[derive(Debug, Clone)]
pub struct MraiTimer {
    profile: TimerProfile,
    /// Grid offset for the free-running (unjittered) profile.
    phase: Millis,
    /// When the running timer fires, if armed.
    deadline: Option<Millis>,
}

impl MraiTimer {
    /// New timer with the given profile, not yet armed, grid phase 0.
    #[must_use]
    pub fn new(profile: TimerProfile) -> Self {
        MraiTimer {
            profile,
            phase: 0,
            deadline: None,
        }
    }

    /// New timer whose free-running grid is offset by `phase_seed`
    /// (reduced modulo the interval; ignored by jittered/immediate
    /// profiles). Real boxes derive this from their boot time.
    #[must_use]
    pub fn with_phase(profile: TimerProfile, phase_seed: Millis) -> Self {
        let phase = match profile {
            TimerProfile::Unjittered { interval } if interval > 0 => phase_seed % interval,
            _ => 0,
        };
        MraiTimer {
            profile,
            phase,
            deadline: None,
        }
    }

    /// The configured profile.
    #[must_use]
    pub fn profile(&self) -> TimerProfile {
        self.profile
    }

    /// Current deadline, if armed.
    #[must_use]
    pub fn deadline(&self) -> Option<Millis> {
        self.deadline
    }

    /// Whether updates should be sent immediately (no batching).
    #[must_use]
    pub fn is_immediate(&self) -> bool {
        matches!(self.profile, TimerProfile::Immediate)
    }

    /// Arms the timer at `now` if not already armed; returns the deadline.
    ///
    /// Unjittered timers snap to the next point of their free-running grid
    /// strictly after `now`; jittered timers fire a drawn delay after the
    /// triggering event.
    pub fn arm<R: Rng + ?Sized>(&mut self, now: Millis, rng: &mut R) -> Millis {
        match self.deadline {
            Some(d) => d,
            None => {
                let d = match self.profile {
                    TimerProfile::Unjittered { interval } if interval > 0 => {
                        if now < self.phase {
                            self.phase
                        } else {
                            let k = (now - self.phase) / interval + 1;
                            self.phase + k * interval
                        }
                    }
                    _ => now + self.profile.next_delay(rng),
                };
                self.deadline = Some(d);
                d
            }
        }
    }

    /// Fires the timer if `now` has reached the deadline; returns whether
    /// it fired (and disarms it).
    pub fn fire(&mut self, now: Millis) -> bool {
        match self.deadline {
            Some(d) if now >= d => {
                self.deadline = None;
                true
            }
            _ => false,
        }
    }

    /// Disarms without firing (session reset).
    pub fn cancel(&mut self) {
        self.deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unjittered_is_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = TimerProfile::pathological_30s();
        for _ in 0..10 {
            assert_eq!(p.next_delay(&mut rng), 30_000);
        }
    }

    #[test]
    fn jittered_is_in_band_and_varies() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = TimerProfile::jittered_30s();
        let draws: Vec<Millis> = (0..100).map(|_| p.next_delay(&mut rng)).collect();
        for &d in &draws {
            assert!((22_500..=30_000).contains(&d), "{d}");
        }
        assert!(draws.iter().any(|&d| d != draws[0]), "must vary");
    }

    #[test]
    fn immediate_is_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(TimerProfile::Immediate.next_delay(&mut rng), 0);
    }

    #[test]
    fn arm_is_idempotent_until_fire() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = MraiTimer::new(TimerProfile::pathological_30s());
        // Free-running grid (phase 0): arming at 1 s fires at the next
        // 30-second boundary.
        let d1 = t.arm(1000, &mut rng);
        assert_eq!(d1, 30_000);
        // Re-arming while armed keeps the original deadline.
        assert_eq!(t.arm(5000, &mut rng), 30_000);
        assert!(!t.fire(29_999));
        assert!(t.fire(30_000));
        assert_eq!(t.deadline(), None);
        // After firing, a new arm snaps to the *next* grid point.
        assert_eq!(t.arm(30_000, &mut rng), 60_000);
        assert!(t.fire(60_000));
        assert_eq!(t.arm(60_001, &mut rng), 90_000);
    }

    #[test]
    fn unjittered_grid_respects_phase() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = MraiTimer::with_phase(TimerProfile::pathological_30s(), 77_012);
        // phase = 77_012 % 30_000 = 17_012; grid = 17_012 + k·30_000.
        assert_eq!(t.arm(0, &mut rng), 47_012 - 30_000);
        t.cancel();
        assert_eq!(t.arm(20_000, &mut rng), 47_012);
        t.cancel();
        assert_eq!(t.arm(47_012, &mut rng), 77_012);
    }

    #[test]
    fn jittered_is_relative_not_grid() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = MraiTimer::with_phase(TimerProfile::jittered_30s(), 12_345);
        let d = t.arm(100_000, &mut rng);
        assert!((122_500..=130_000).contains(&d), "{d}");
    }

    #[test]
    fn cancel_disarms() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = MraiTimer::new(TimerProfile::pathological_30s());
        t.arm(0, &mut rng);
        t.cancel();
        assert!(!t.fire(100_000));
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn jitter_clamped() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = TimerProfile::Jittered {
            interval: 1000,
            jitter: 5.0, // clamped to 1.0 → band [0, 1000]
        };
        for _ in 0..50 {
            assert!(p.next_delay(&mut rng) <= 1000);
        }
    }
}
