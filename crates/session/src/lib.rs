//! # iri-session — BGP peering session machinery
//!
//! The RFC 4271 finite state machine (Idle → Connect → Active → OpenSent →
//! OpenConfirm → Established) and the timers that drive it, written against
//! a *virtual* clock so the deterministic simulator in `iri-netsim` can run
//! thousands of sessions reproducibly.
//!
//! Two timer behaviours from the paper are first-class here:
//!
//! - **Hold-timer expiry under load** — "routers delay routing Keep-Alive
//!   packets and are subsequently flagged as down, or unreachable by other
//!   routers" — the proximate mechanism of route-flap storms. The FSM
//!   emits [`fsm::Action::SessionDown`] with
//!   [`iri_bgp::message::NotificationCode::HoldTimerExpired`] exactly as a
//!   real border router would.
//! - **The unjittered 30-second update-packing timer** of §4.2 — "a popular
//!   router vendor's inclusion of an unjittered 30 second interval timer on
//!   BGP's update processing" — modelled by [`timers::MraiTimer`] in both
//!   jittered and pathological unjittered variants; it is the origin of the
//!   30/60-second inter-arrival modes of Figure 8.

#![warn(missing_docs)]

pub mod fsm;
pub mod selfsync;
pub mod timers;

pub use fsm::{Action, Event, SessionConfig, SessionFsm, State};
pub use timers::{MraiTimer, TimerProfile};
