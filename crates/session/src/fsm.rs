//! The RFC 4271 session finite state machine, virtual-clock driven.
//!
//! The FSM is a pure function of (state, event) → (state, actions): the
//! caller owns transport and scheduling. This keeps it deterministic and
//! unit-testable, and lets `iri-netsim` run thousands of sessions under the
//! simulated clock — including the overload scenario at the heart of route-
//! flap storms: a CPU-starved router stops servicing its keepalive timer,
//! its peers' hold timers expire, sessions drop, "all of the peer's routes
//! are withdrawn", and the resulting state dumps overload the next router.

use iri_bgp::message::{Message, Notification, NotificationCode, Open};
use iri_bgp::types::Asn;
use std::net::Ipv4Addr;

/// Milliseconds of virtual time.
pub type Millis = u64;

/// FSM states (RFC 4271 §8.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// Not trying to connect.
    Idle,
    /// TCP connection attempt in progress.
    Connect,
    /// Waiting to retry after a failed connection.
    Active,
    /// OPEN sent, awaiting the peer's OPEN.
    OpenSent,
    /// OPEN accepted, awaiting first KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

impl State {
    /// RFC state name, for trace events and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            State::Idle => "Idle",
            State::Connect => "Connect",
            State::Active => "Active",
            State::OpenSent => "OpenSent",
            State::OpenConfirm => "OpenConfirm",
            State::Established => "Established",
        }
    }
}

/// Inputs to the FSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Operator/automatic start: begin connecting.
    Start,
    /// Operator stop or local teardown.
    Stop,
    /// The underlying transport came up.
    TcpEstablished,
    /// The underlying transport failed or closed.
    TcpClosed,
    /// A BGP message arrived.
    MessageReceived(Message),
    /// The hold timer expired (no KEEPALIVE/UPDATE within hold time).
    HoldTimerExpired,
    /// Our keepalive timer says it is time to send a KEEPALIVE.
    KeepaliveTimerFired,
    /// Connect-retry timer expired.
    ConnectRetryExpired,
}

/// Outputs: what the caller must do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Open a transport connection to the peer.
    OpenConnection,
    /// Close the transport.
    CloseConnection,
    /// Transmit a message.
    Send(Message),
    /// (Re)arm the hold timer for `Millis` from now.
    ArmHoldTimer(Millis),
    /// (Re)arm the keepalive timer for `Millis` from now.
    ArmKeepaliveTimer(Millis),
    /// Arm the connect-retry timer.
    ArmConnectRetry(Millis),
    /// The session reached Established: the caller should send its initial
    /// table dump ("generating large state dump transmissions").
    SessionUp,
    /// The session left Established: the caller must withdraw everything
    /// learned from this peer. Carries the notification that caused it, if
    /// one was sent or received.
    SessionDown(Option<Notification>),
}

/// Static session parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Our AS.
    pub local_asn: Asn,
    /// Our router ID.
    pub local_router_id: Ipv4Addr,
    /// Expected remote AS.
    pub remote_asn: Asn,
    /// Proposed hold time (seconds, per the OPEN wire field).
    pub hold_time_secs: u16,
    /// Connect-retry interval.
    pub connect_retry: Millis,
}

impl SessionConfig {
    /// Era-typical defaults: 180 s hold, 120 s connect-retry.
    #[must_use]
    pub fn new(local_asn: Asn, local_router_id: Ipv4Addr, remote_asn: Asn) -> Self {
        SessionConfig {
            local_asn,
            local_router_id,
            remote_asn,
            hold_time_secs: 180,
            connect_retry: 120_000,
        }
    }

    fn hold_millis(&self) -> Millis {
        Millis::from(self.hold_time_secs) * 1000
    }

    /// Keepalive interval: one third of hold time (RFC 4271 §4.4 convention).
    #[must_use]
    pub fn keepalive_millis(&self) -> Millis {
        self.hold_millis() / 3
    }
}

/// The session state machine.
#[derive(Debug)]
pub struct SessionFsm {
    config: SessionConfig,
    state: State,
    /// Hold time actually negotiated (min of both OPENs), millis.
    negotiated_hold: Millis,
    /// Count of Established→down transitions, for storm accounting.
    flap_count: u64,
}

impl SessionFsm {
    /// New FSM in Idle.
    #[must_use]
    pub fn new(config: SessionConfig) -> Self {
        let negotiated_hold = config.hold_millis();
        SessionFsm {
            config,
            state: State::Idle,
            negotiated_hold,
            flap_count: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> State {
        self.state
    }

    /// Negotiated hold time in milliseconds (0 = keepalives disabled).
    #[must_use]
    pub fn negotiated_hold(&self) -> Millis {
        self.negotiated_hold
    }

    /// Times the session has fallen out of Established.
    #[must_use]
    pub fn flap_count(&self) -> u64 {
        self.flap_count
    }

    /// Whether the session is up.
    #[must_use]
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    fn our_open(&self) -> Message {
        Message::Open(Open {
            version: 4,
            asn: self.config.local_asn,
            hold_time: self.config.hold_time_secs,
            router_id: self.config.local_router_id,
        })
    }

    fn drop_session(&mut self, notif: Option<Notification>, actions: &mut Vec<Action>) {
        if self.state == State::Established {
            self.flap_count += 1;
            actions.push(Action::SessionDown(notif));
        }
        actions.push(Action::CloseConnection);
        actions.push(Action::ArmConnectRetry(self.config.connect_retry));
        self.state = State::Active;
    }

    /// Feeds one event, returning the required actions.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        let mut actions = Vec::new();
        match (self.state, event) {
            // ----- Idle -----
            (State::Idle, Event::Start) => {
                actions.push(Action::OpenConnection);
                actions.push(Action::ArmConnectRetry(self.config.connect_retry));
                self.state = State::Connect;
            }
            (State::Idle, _) => {}

            // ----- Stop from anywhere -----
            (_, Event::Stop) => {
                let notif = Notification::new(NotificationCode::Cease);
                if self.state == State::Established || self.state == State::OpenConfirm {
                    actions.push(Action::Send(Message::Notification(notif.clone())));
                }
                if self.state == State::Established {
                    self.flap_count += 1;
                    actions.push(Action::SessionDown(Some(notif)));
                }
                actions.push(Action::CloseConnection);
                self.state = State::Idle;
            }

            // ----- Connect / Active -----
            (State::Connect, Event::TcpEstablished) | (State::Active, Event::TcpEstablished) => {
                actions.push(Action::Send(self.our_open()));
                actions.push(Action::ArmHoldTimer(self.config.hold_millis()));
                self.state = State::OpenSent;
            }
            (State::Connect, Event::TcpClosed) => {
                actions.push(Action::ArmConnectRetry(self.config.connect_retry));
                self.state = State::Active;
            }
            (State::Active, Event::ConnectRetryExpired)
            | (State::Connect, Event::ConnectRetryExpired) => {
                actions.push(Action::OpenConnection);
                actions.push(Action::ArmConnectRetry(self.config.connect_retry));
                self.state = State::Connect;
            }
            (State::Connect, _) | (State::Active, _) => {}

            // ----- OpenSent -----
            (State::OpenSent, Event::MessageReceived(Message::Open(open))) => {
                if open.asn != self.config.remote_asn {
                    let notif = Notification::new(NotificationCode::OpenMessageError);
                    actions.push(Action::Send(Message::Notification(notif)));
                    self.drop_session(None, &mut actions);
                } else {
                    // Negotiate hold time: minimum of proposals; 0 disables.
                    let theirs = Millis::from(open.hold_time) * 1000;
                    self.negotiated_hold = if open.hold_time == 0 || self.config.hold_time_secs == 0
                    {
                        0
                    } else {
                        theirs.min(self.config.hold_millis())
                    };
                    actions.push(Action::Send(Message::Keepalive));
                    if self.negotiated_hold > 0 {
                        actions.push(Action::ArmHoldTimer(self.negotiated_hold));
                        actions.push(Action::ArmKeepaliveTimer(self.negotiated_hold / 3));
                    }
                    self.state = State::OpenConfirm;
                }
            }
            (State::OpenSent, Event::TcpClosed) => {
                actions.push(Action::ArmConnectRetry(self.config.connect_retry));
                self.state = State::Active;
            }
            (State::OpenSent, Event::HoldTimerExpired) => {
                let notif = Notification::new(NotificationCode::HoldTimerExpired);
                actions.push(Action::Send(Message::Notification(notif)));
                self.drop_session(None, &mut actions);
            }
            (State::OpenSent, Event::MessageReceived(Message::Notification(_))) => {
                self.drop_session(None, &mut actions);
            }
            (State::OpenSent, _) => {}

            // ----- OpenConfirm -----
            (State::OpenConfirm, Event::MessageReceived(Message::Keepalive)) => {
                if self.negotiated_hold > 0 {
                    actions.push(Action::ArmHoldTimer(self.negotiated_hold));
                }
                actions.push(Action::SessionUp);
                self.state = State::Established;
            }
            (State::OpenConfirm, Event::KeepaliveTimerFired) => {
                actions.push(Action::Send(Message::Keepalive));
                if self.negotiated_hold > 0 {
                    actions.push(Action::ArmKeepaliveTimer(self.negotiated_hold / 3));
                }
            }
            (State::OpenConfirm, Event::HoldTimerExpired) => {
                let notif = Notification::new(NotificationCode::HoldTimerExpired);
                actions.push(Action::Send(Message::Notification(notif)));
                self.drop_session(None, &mut actions);
            }
            (State::OpenConfirm, Event::TcpClosed)
            | (State::OpenConfirm, Event::MessageReceived(Message::Notification(_))) => {
                self.drop_session(None, &mut actions);
            }
            (State::OpenConfirm, _) => {}

            // ----- Established -----
            (State::Established, Event::MessageReceived(msg)) => match msg {
                Message::Keepalive => {
                    if self.negotiated_hold > 0 {
                        actions.push(Action::ArmHoldTimer(self.negotiated_hold));
                    }
                }
                Message::Update(_) => {
                    // The caller processes the update body; the FSM only
                    // restarts the hold timer (UPDATE counts as liveness).
                    if self.negotiated_hold > 0 {
                        actions.push(Action::ArmHoldTimer(self.negotiated_hold));
                    }
                }
                Message::Notification(n) => {
                    self.drop_session(Some(n), &mut actions);
                }
                Message::Open(_) => {
                    // Protocol error: OPEN in Established.
                    let notif = Notification::new(NotificationCode::FiniteStateMachineError);
                    actions.push(Action::Send(Message::Notification(notif.clone())));
                    self.drop_session(Some(notif), &mut actions);
                }
            },
            (State::Established, Event::KeepaliveTimerFired) => {
                actions.push(Action::Send(Message::Keepalive));
                if self.negotiated_hold > 0 {
                    actions.push(Action::ArmKeepaliveTimer(self.negotiated_hold / 3));
                }
            }
            (State::Established, Event::HoldTimerExpired) => {
                // The storm trigger: peer went quiet (usually because its
                // CPU is pinned processing updates).
                let notif = Notification::new(NotificationCode::HoldTimerExpired);
                actions.push(Action::Send(Message::Notification(notif.clone())));
                self.drop_session(Some(notif), &mut actions);
            }
            (State::Established, Event::TcpClosed) => {
                self.drop_session(None, &mut actions);
            }
            (State::Established, _) => {}
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SessionConfig {
        SessionConfig::new(Asn(237), Ipv4Addr::new(192, 41, 177, 249), Asn(701))
    }

    fn peer_open(asn: u32, hold: u16) -> Event {
        Event::MessageReceived(Message::Open(Open {
            version: 4,
            asn: Asn(asn),
            hold_time: hold,
            router_id: Ipv4Addr::new(137, 39, 1, 1),
        }))
    }

    /// Drives a fresh FSM to Established, asserting the happy path.
    fn establish(fsm: &mut SessionFsm) {
        assert_eq!(fsm.state(), State::Idle);
        let a = fsm.handle(Event::Start);
        assert!(a.contains(&Action::OpenConnection));
        assert_eq!(fsm.state(), State::Connect);
        let a = fsm.handle(Event::TcpEstablished);
        assert!(matches!(a[0], Action::Send(Message::Open(_))));
        assert_eq!(fsm.state(), State::OpenSent);
        let a = fsm.handle(peer_open(701, 180));
        assert!(a.contains(&Action::Send(Message::Keepalive)));
        assert_eq!(fsm.state(), State::OpenConfirm);
        let a = fsm.handle(Event::MessageReceived(Message::Keepalive));
        assert!(a.contains(&Action::SessionUp));
        assert_eq!(fsm.state(), State::Established);
    }

    #[test]
    fn happy_path_establishes() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        assert!(fsm.is_established());
        assert_eq!(fsm.flap_count(), 0);
        assert_eq!(fsm.negotiated_hold(), 180_000);
    }

    #[test]
    fn hold_time_negotiates_to_minimum() {
        let mut fsm = SessionFsm::new(config());
        fsm.handle(Event::Start);
        fsm.handle(Event::TcpEstablished);
        fsm.handle(peer_open(701, 90));
        assert_eq!(fsm.negotiated_hold(), 90_000);
    }

    #[test]
    fn zero_hold_time_disables_keepalives() {
        let mut fsm = SessionFsm::new(config());
        fsm.handle(Event::Start);
        fsm.handle(Event::TcpEstablished);
        let a = fsm.handle(peer_open(701, 0));
        assert!(!a.iter().any(|x| matches!(x, Action::ArmHoldTimer(_))));
        assert_eq!(fsm.negotiated_hold(), 0);
    }

    #[test]
    fn wrong_asn_in_open_rejected() {
        let mut fsm = SessionFsm::new(config());
        fsm.handle(Event::Start);
        fsm.handle(Event::TcpEstablished);
        let a = fsm.handle(peer_open(999, 180));
        assert!(matches!(
            a[0],
            Action::Send(Message::Notification(Notification {
                code: NotificationCode::OpenMessageError,
                ..
            }))
        ));
        assert_eq!(fsm.state(), State::Active);
        assert_eq!(fsm.flap_count(), 0, "never established, no flap");
    }

    #[test]
    fn hold_timer_expiry_in_established_is_a_flap() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        let a = fsm.handle(Event::HoldTimerExpired);
        assert!(matches!(
            a[0],
            Action::Send(Message::Notification(Notification {
                code: NotificationCode::HoldTimerExpired,
                ..
            }))
        ));
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::SessionDown(Some(n)) if n.code == NotificationCode::HoldTimerExpired)));
        assert_eq!(fsm.state(), State::Active);
        assert_eq!(fsm.flap_count(), 1);
    }

    #[test]
    fn updates_and_keepalives_refresh_hold_timer() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        let a = fsm.handle(Event::MessageReceived(Message::Keepalive));
        assert_eq!(a, vec![Action::ArmHoldTimer(180_000)]);
        let a = fsm.handle(Event::MessageReceived(Message::Update(
            iri_bgp::message::Update::withdraw([]),
        )));
        assert_eq!(a, vec![Action::ArmHoldTimer(180_000)]);
    }

    #[test]
    fn keepalive_timer_sends_keepalive() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        let a = fsm.handle(Event::KeepaliveTimerFired);
        assert_eq!(a[0], Action::Send(Message::Keepalive));
        assert!(matches!(a[1], Action::ArmKeepaliveTimer(60_000)));
    }

    #[test]
    fn notification_tears_down() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        let notif = Notification::new(NotificationCode::Cease);
        let a = fsm.handle(Event::MessageReceived(Message::Notification(notif.clone())));
        assert!(a.contains(&Action::SessionDown(Some(notif))));
        assert_eq!(fsm.flap_count(), 1);
    }

    #[test]
    fn open_in_established_is_fsm_error() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        let a = fsm.handle(peer_open(701, 180));
        assert!(matches!(
            a[0],
            Action::Send(Message::Notification(Notification {
                code: NotificationCode::FiniteStateMachineError,
                ..
            }))
        ));
        assert_eq!(fsm.flap_count(), 1);
    }

    #[test]
    fn tcp_loss_in_established_flaps_and_retries() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        let a = fsm.handle(Event::TcpClosed);
        assert!(a.contains(&Action::SessionDown(None)));
        assert!(a.iter().any(|x| matches!(x, Action::ArmConnectRetry(_))));
        assert_eq!(fsm.state(), State::Active);
        // Retry re-connects; a full re-establishment is possible.
        let a = fsm.handle(Event::ConnectRetryExpired);
        assert!(a.contains(&Action::OpenConnection));
        assert_eq!(fsm.state(), State::Connect);
        fsm.handle(Event::TcpEstablished);
        fsm.handle(peer_open(701, 180));
        let a = fsm.handle(Event::MessageReceived(Message::Keepalive));
        assert!(a.contains(&Action::SessionUp));
        assert_eq!(fsm.flap_count(), 1);
    }

    #[test]
    fn stop_from_established_sends_cease() {
        let mut fsm = SessionFsm::new(config());
        establish(&mut fsm);
        let a = fsm.handle(Event::Stop);
        assert!(matches!(
            a[0],
            Action::Send(Message::Notification(Notification {
                code: NotificationCode::Cease,
                ..
            }))
        ));
        assert_eq!(fsm.state(), State::Idle);
        assert_eq!(fsm.flap_count(), 1);
    }

    #[test]
    fn repeated_flaps_counted() {
        let mut fsm = SessionFsm::new(config());
        for i in 1..=3 {
            establish(&mut fsm);
            fsm.handle(Event::HoldTimerExpired);
            assert_eq!(fsm.flap_count(), i);
            // drop_session leaves us in Active; go back around.
            fsm.handle(Event::ConnectRetryExpired);
            assert_eq!(fsm.state(), State::Connect);
            // Reset to Idle path for establish(): feed Stop then Start.
            fsm.handle(Event::Stop);
        }
    }

    #[test]
    fn idle_ignores_everything_but_start() {
        let mut fsm = SessionFsm::new(config());
        for ev in [
            Event::TcpEstablished,
            Event::TcpClosed,
            Event::HoldTimerExpired,
            Event::KeepaliveTimerFired,
            Event::MessageReceived(Message::Keepalive),
        ] {
            assert!(fsm.handle(ev).is_empty());
            assert_eq!(fsm.state(), State::Idle);
        }
    }

    #[test]
    fn connect_failure_goes_active_then_retries() {
        let mut fsm = SessionFsm::new(config());
        fsm.handle(Event::Start);
        let a = fsm.handle(Event::TcpClosed);
        assert!(a.iter().any(|x| matches!(x, Action::ArmConnectRetry(_))));
        assert_eq!(fsm.state(), State::Active);
        let a = fsm.handle(Event::ConnectRetryExpired);
        assert!(a.contains(&Action::OpenConnection));
    }
}
