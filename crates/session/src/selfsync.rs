//! Self-synchronisation of periodic routing messages (Floyd & Jacobson),
//! the paper's third conjecture for the 30/60-second periodicity:
//!
//! > "Unjittered timers in a router may also lead to self-synchronization.
//! > … the unjittered interval timer used on a large number of inter-domain
//! > border routers may introduce a weak coupling between those routers
//! > through the periodic transmission of the BGP updates. Our analysis
//! > suggests that these Internet routers will fulfill the requirements of
//! > the Periodic Message model and may undergo abrupt synchronization."
//!
//! This module implements the Floyd–Jacobson **Periodic Message Model**:
//! each router runs a nominal period `T`; when its timer fires it prepares
//! and transmits its update (taking `t_c` of CPU), and any update *received
//! while preparing* must be processed first (adding `t_c2` each), delaying
//! the transmission and thereby shifting the router's next firing toward
//! the cluster that triggered the delay. Weak coupling + unjittered timers
//! ⇒ routers clump into synchronized clusters; sufficient randomisation
//! (jitter) keeps them spread.
//!
//! The observable is the phase-dispersion statistic
//! [`phase_dispersion`] ∈ [0, 1]: 1 = perfectly synchronized (all firings
//! at one phase of the period), ~0 = uniformly spread.

use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of the periodic message model.
#[derive(Debug, Clone, Copy)]
pub struct SelfSyncConfig {
    /// Number of routers.
    pub routers: usize,
    /// Nominal period (ms) — 30 000 for the era's timers.
    pub period_ms: f64,
    /// Time to prepare/transmit one's own update (ms).
    pub prep_ms: f64,
    /// Extra processing time per update received during preparation (ms)
    /// — the weak coupling.
    pub coupling_ms: f64,
    /// Uniform jitter applied to each period, as a fraction of the period
    /// (0 = the pathological unjittered timer).
    pub jitter: f64,
    /// Symmetric per-period load noise (ms): small random variation in a
    /// router's effective period from varying table sizes and CPU load —
    /// the random walk that carries routers into capture range. Distinct
    /// from `jitter`, which is the *deliberate* randomisation of the fixed
    /// timers (Floyd–Jacobson's proposed fix).
    pub drift_ms: f64,
}

impl Default for SelfSyncConfig {
    fn default() -> Self {
        SelfSyncConfig {
            routers: 30,
            period_ms: 30_000.0,
            prep_ms: 120.0,
            coupling_ms: 40.0,
            jitter: 0.0,
            drift_ms: 150.0,
        }
    }
}

/// Result of a run: dispersion sampled once per nominal period.
#[derive(Debug, Clone)]
pub struct SelfSyncRun {
    /// Phase-dispersion trajectory (one sample per period).
    pub dispersion: Vec<f64>,
}

impl SelfSyncRun {
    /// Mean dispersion over the last quarter of the run.
    #[must_use]
    pub fn final_dispersion(&self) -> f64 {
        let n = self.dispersion.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.dispersion[n - (n / 4).max(1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Kuramoto-style order parameter of firing phases within the period:
/// `|Σ e^{2πi·phase/T}| / N`.
#[must_use]
pub fn phase_dispersion(phases: &[f64], period: f64) -> f64 {
    if phases.is_empty() {
        return 0.0;
    }
    let (mut re, mut im) = (0.0f64, 0.0f64);
    for &p in phases {
        let theta = 2.0 * std::f64::consts::PI * (p % period) / period;
        re += theta.cos();
        im += theta.sin();
    }
    (re * re + im * im).sqrt() / phases.len() as f64
}

/// Runs the periodic message model for `periods` nominal periods and
/// returns the dispersion trajectory.
pub fn run_model(cfg: &SelfSyncConfig, periods: usize, rng: &mut StdRng) -> SelfSyncRun {
    // next_fire[i]: absolute time of router i's next timer expiry.
    let mut next_fire: Vec<f64> = (0..cfg.routers)
        .map(|_| rng.random_range(0.0..cfg.period_ms))
        .collect();
    let mut dispersion = Vec::with_capacity(periods);
    let mut sample_at = cfg.period_ms;
    let horizon = cfg.period_ms * periods as f64;
    let mut now;

    loop {
        // Pop the earliest firing.
        let (idx, &t) = next_fire
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        now = t;
        if now >= horizon {
            break;
        }
        while now >= sample_at {
            dispersion.push(phase_dispersion(&next_fire, cfg.period_ms));
            sample_at += cfg.period_ms;
        }
        // A transmission round (Floyd–Jacobson): the leader transmits for
        // `prep_ms`; any router whose own timer expires while a
        // transmission is in flight must first process the incoming
        // update(s) (`coupling_ms`), then transmit its own — so its actual
        // firing, and therefore its re-armed timer, clusters just after
        // the leader's. Joiners are re-armed a full period ahead, so the
        // round terminates (a router joins at most once per round).
        let mut round_end = now + cfg.prep_ms;
        let draw_rearm = |rng: &mut StdRng| {
            let jitter = if cfg.jitter > 0.0 {
                rng.random_range(-cfg.jitter..=0.0) * cfg.period_ms
            } else {
                0.0
            };
            let drift = if cfg.drift_ms > 0.0 {
                rng.random_range(-cfg.drift_ms..=cfg.drift_ms)
            } else {
                0.0
            };
            cfg.period_ms + jitter + drift
        };
        let mut participants = vec![idx];
        loop {
            let joiner = next_fire
                .iter()
                .enumerate()
                .filter(|&(j, &tj)| j != idx && tj > now && tj <= round_end)
                .filter(|(j, _)| !participants.contains(j))
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(j, _)| j);
            let Some(j) = joiner else { break };
            // j processes the in-flight update(s), then transmits its own,
            // extending the round.
            round_end += cfg.coupling_ms + cfg.prep_ms;
            participants.push(j);
        }
        // On the shared exchange LAN every participant hears the whole
        // round; each restarts its interval timer only after processing
        // all of it (the Floyd–Jacobson broadcast coupling) — so the whole
        // cluster re-arms from the round's end, plus its own load noise.
        for j in participants {
            next_fire[j] = round_end + draw_rearm(rng);
        }
    }
    SelfSyncRun { dispersion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dispersion_statistic_extremes() {
        // All at the same phase: 1.
        let sync = vec![5_000.0; 20];
        assert!((phase_dispersion(&sync, 30_000.0) - 1.0).abs() < 1e-12);
        // Evenly spread: ~0.
        let spread: Vec<f64> = (0..20).map(|i| i as f64 * 1_500.0).collect();
        assert!(phase_dispersion(&spread, 30_000.0) < 1e-9);
        assert_eq!(phase_dispersion(&[], 30_000.0), 0.0);
    }

    #[test]
    fn unjittered_routers_synchronize() {
        let mut rng = StdRng::seed_from_u64(1996);
        let cfg = SelfSyncConfig::default();
        let run = run_model(&cfg, 600, &mut rng);
        let early = run.dispersion[..20].iter().sum::<f64>() / 20.0;
        let late = run.final_dispersion();
        assert!(
            late > early + 0.3,
            "coupling must drive synchronization: {early:.2} → {late:.2}"
        );
        assert!(late > 0.6, "final clustering must be strong: {late:.2}");
    }

    #[test]
    fn jitter_prevents_synchronization() {
        let mut rng = StdRng::seed_from_u64(1996);
        let cfg = SelfSyncConfig {
            jitter: 0.25,
            ..SelfSyncConfig::default()
        };
        let run = run_model(&cfg, 600, &mut rng);
        assert!(
            run.final_dispersion() < 0.5,
            "jitter must keep routers spread: {:.2}",
            run.final_dispersion()
        );
    }

    #[test]
    fn no_coupling_no_synchronization() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SelfSyncConfig {
            coupling_ms: 0.0,
            prep_ms: 0.0,
            ..SelfSyncConfig::default()
        };
        let run = run_model(&cfg, 400, &mut rng);
        // Without coupling the initial random phases persist.
        let early = run.dispersion[..10.min(run.dispersion.len())]
            .iter()
            .sum::<f64>()
            / 10.0;
        assert!(
            (run.final_dispersion() - early).abs() < 0.15,
            "no coupling: dispersion must not drift ({early:.2} → {:.2})",
            run.final_dispersion()
        );
    }

    #[test]
    fn determinism() {
        let cfg = SelfSyncConfig::default();
        let a = run_model(&cfg, 100, &mut StdRng::seed_from_u64(3)).dispersion;
        let b = run_model(&cfg, 100, &mut StdRng::seed_from_u64(3)).dispersion;
        assert_eq!(a, b);
    }
}
