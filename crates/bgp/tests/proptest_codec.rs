//! Property-based tests for the BGP wire codec: arbitrary well-formed
//! messages must survive encode→decode unchanged, and the decoder must never
//! panic on arbitrary bytes.

use iri_bgp::attrs::{Aggregator, Origin, PathAttributes};
use iri_bgp::codec::{decode_message, decode_stream_message, encode_message, HEADER_LEN};
use iri_bgp::message::{Message, Notification, NotificationCode, Open, Update};
use iri_bgp::path::{AsPath, PathSegment};
use iri_bgp::types::{Asn, Prefix};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_asn() -> impl Strategy<Value = Asn> {
    (1u32..=65_535).prop_map(Asn)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::from_raw(bits, len))
}

fn arb_segment() -> impl Strategy<Value = PathSegment> {
    prop_oneof![
        prop::collection::vec(arb_asn(), 1..8).prop_map(PathSegment::Sequence),
        prop::collection::vec(arb_asn(), 1..8).prop_map(PathSegment::Set),
    ]
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(arb_segment(), 0..4).prop_map(AsPath::from_segments)
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ],
        arb_path(),
        any::<u32>().prop_map(Ipv4Addr::from),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        any::<bool>(),
        proptest::option::of((arb_asn(), any::<u32>().prop_map(Ipv4Addr::from))),
        prop::collection::vec(any::<u32>(), 0..6),
    )
        .prop_map(
            |(origin, as_path, next_hop, med, local_pref, atomic, agg, communities)| {
                let mut a = PathAttributes::new(origin, as_path, next_hop);
                a.med = med;
                a.local_pref = local_pref;
                a.atomic_aggregate = atomic;
                a.aggregator = agg.map(|(asn, router_id)| Aggregator { asn, router_id });
                a.communities = communities;
                a
            },
        )
}

fn arb_update() -> impl Strategy<Value = Update> {
    (
        prop::collection::vec(arb_prefix(), 0..40),
        proptest::option::of((arb_attrs(), prop::collection::vec(arb_prefix(), 1..40))),
    )
        .prop_map(|(withdrawn, announce)| match announce {
            Some((attrs, nlri)) => Update {
                withdrawn,
                attrs: Some(attrs),
                nlri,
            },
            None => Update {
                withdrawn,
                attrs: None,
                nlri: vec![],
            },
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Keepalive),
        (
            arb_asn(),
            any::<u32>().prop_map(Ipv4Addr::from),
            prop_oneof![Just(0u16), 3u16..=u16::MAX]
        )
            .prop_map(|(asn, router_id, hold_time)| Message::Open(Open {
                version: 4,
                asn,
                hold_time,
                router_id
            })),
        arb_update().prop_map(Message::Update),
        (
            prop_oneof![
                Just(NotificationCode::MessageHeaderError),
                Just(NotificationCode::OpenMessageError),
                Just(NotificationCode::UpdateMessageError),
                Just(NotificationCode::HoldTimerExpired),
                Just(NotificationCode::FiniteStateMachineError),
                Just(NotificationCode::Cease),
            ],
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(|(code, subcode, data)| Message::Notification(Notification {
                code,
                subcode,
                data
            })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip_arbitrary_messages(msg in arb_message()) {
        let wire = encode_message(&msg);
        let back = decode_message(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_message(&bytes);
        let _ = decode_stream_message(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_messages(
        msg in arb_message(),
        idx in any::<prop::sample::Index>(),
        val in any::<u8>(),
    ) {
        let mut wire = encode_message(&msg).to_vec();
        let i = idx.index(wire.len());
        wire[i] = val;
        let _ = decode_message(&wire);
    }

    #[test]
    fn stream_decoding_splits_concatenations(
        msgs in prop::collection::vec(arb_message(), 1..8)
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_message(m));
        }
        let mut rest = stream.as_slice();
        let mut decoded = Vec::new();
        while !rest.is_empty() {
            let (m, used) = decode_stream_message(rest).unwrap();
            prop_assert!(used >= HEADER_LEN);
            decoded.push(m);
            rest = &rest[used..];
        }
        prop_assert_eq!(decoded, msgs);
    }

    #[test]
    fn prefix_parse_display_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn prefix_parent_contains_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.contains(p));
            if let Some(sib) = p.sibling() {
                prop_assert!(parent.contains(sib));
                prop_assert_eq!(sib.parent().unwrap(), parent);
            }
        }
    }

    #[test]
    fn path_prepend_preserves_suffix_and_adds_head(path in arb_path(), asn in arb_asn()) {
        let prepended = path.prepend(asn);
        prop_assert_eq!(prepended.first(), Some(asn));
        let orig: Vec<Asn> = path.iter().collect();
        let new: Vec<Asn> = prepended.iter().collect();
        prop_assert_eq!(&new[1..], orig.as_slice());
        prop_assert!(prepended.contains(asn));
    }

    #[test]
    fn aggregate_is_commutative_in_membership(a in arb_path(), b in arb_path()) {
        let ab = a.aggregate_with(&b);
        let ba = b.aggregate_with(&a);
        for asn in a.iter().chain(b.iter()) {
            prop_assert!(ab.contains(asn));
            prop_assert!(ba.contains(asn));
        }
    }
}
