//! The `AS_PATH` attribute: ordered record of the autonomous systems a route
//! announcement has traversed.
//!
//! The paper leans on two properties of the AS path:
//!
//! 1. It is one third of the **(Prefix, NextHop, ASPATH)** tuple whose change
//!    (or non-change) defines the update taxonomy.
//! 2. Loop suppression — "upon receipt of an update every BGP router performs
//!    loop verification by testing if its own autonomous system number
//!    already exists in the ASPATH" — which we implement in
//!    [`AsPath::contains`] and which `iri-netsim` routers apply verbatim.

use crate::types::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One segment of an AS path (RFC 4271 §4.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathSegment {
    /// An ordered sequence of ASes the update traversed.
    Sequence(Vec<Asn>),
    /// An unordered set, produced by route aggregation.
    Set(Vec<Asn>),
}

impl PathSegment {
    /// Wire type code for the segment.
    #[must_use]
    pub fn type_code(&self) -> u8 {
        match self {
            PathSegment::Set(_) => 1,
            PathSegment::Sequence(_) => 2,
        }
    }

    /// The ASes in the segment, in stored order.
    #[must_use]
    pub fn asns(&self) -> &[Asn] {
        match self {
            PathSegment::Sequence(v) | PathSegment::Set(v) => v,
        }
    }

    /// Path-length contribution for the BGP decision process: a SEQUENCE
    /// counts each AS, a SET counts as one hop regardless of size (RFC 4271
    /// §9.1.2.2).
    #[must_use]
    pub fn decision_len(&self) -> usize {
        match self {
            PathSegment::Sequence(v) => v.len(),
            PathSegment::Set(v) => usize::from(!v.is_empty()),
        }
    }
}

/// A complete `AS_PATH`: a list of segments.
///
/// The common case in the measured data is a single `Sequence`; sets appear
/// only on aggregated routes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<PathSegment>,
}

impl AsPath {
    /// An empty path, as originated inside the local AS before export.
    #[must_use]
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// A path consisting of a single ordered sequence.
    pub fn from_sequence<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        let v: Vec<Asn> = asns.into_iter().collect();
        if v.is_empty() {
            AsPath::default()
        } else {
            AsPath {
                segments: vec![PathSegment::Sequence(v)],
            }
        }
    }

    /// Builds a path from raw segments, dropping empty ones.
    pub fn from_segments<I: IntoIterator<Item = PathSegment>>(segments: I) -> Self {
        AsPath {
            segments: segments
                .into_iter()
                .filter(|s| !s.asns().is_empty())
                .collect(),
        }
    }

    /// The underlying segments.
    #[must_use]
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// True for the empty (locally originated, pre-export) path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Loop check: does `asn` appear anywhere in the path?
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| s.asns().contains(&asn))
    }

    /// Path length as used by the decision process.
    #[must_use]
    pub fn decision_len(&self) -> usize {
        self.segments.iter().map(PathSegment::decision_len).sum()
    }

    /// Total number of ASNs stored (wire size driver).
    #[must_use]
    pub fn asn_count(&self) -> usize {
        self.segments.iter().map(|s| s.asns().len()).sum()
    }

    /// The leftmost AS — the neighbor that sent us the route — or `None` for
    /// an empty path.
    #[must_use]
    pub fn first(&self) -> Option<Asn> {
        self.segments
            .first()
            .and_then(|s| s.asns().first().copied())
    }

    /// The rightmost AS of the final sequence — the route's **origin AS**.
    ///
    /// The paper aggregates instability per origin AS (Figure 6); an
    /// aggregated route ending in an AS_SET has no single origin and yields
    /// `None`.
    #[must_use]
    pub fn origin_as(&self) -> Option<Asn> {
        match self.segments.last()? {
            PathSegment::Sequence(v) => v.last().copied(),
            PathSegment::Set(_) => None,
        }
    }

    /// Returns a new path with `asn` prepended, as done by each border router
    /// on export ("each router along a path adds its autonomous system number
    /// to a list in the BGP message").
    #[must_use]
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(PathSegment::Sequence(v)) => v.insert(0, asn),
            _ => segments.insert(0, PathSegment::Sequence(vec![asn])),
        }
        AsPath { segments }
    }

    /// All ASNs in order of appearance (sets flattened in stored order).
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// Merges paths for aggregation (RFC 4271 §9.2.2.2, simplified): the
    /// longest common leading sequence is kept, all remaining ASes are
    /// folded into a trailing AS_SET.
    #[must_use]
    pub fn aggregate_with(&self, other: &AsPath) -> AsPath {
        let a: Vec<Asn> = self.iter().collect();
        let b: Vec<Asn> = other.iter().collect();
        let common: Vec<Asn> = a
            .iter()
            .zip(b.iter())
            .take_while(|(x, y)| x == y)
            .map(|(x, _)| *x)
            .collect();
        let mut rest: Vec<Asn> = a
            .into_iter()
            .skip(common.len())
            .chain(b.into_iter().skip(common.len()))
            .collect();
        rest.sort_unstable();
        rest.dedup();
        let mut segments = Vec::new();
        if !common.is_empty() {
            segments.push(PathSegment::Sequence(common));
        }
        if !rest.is_empty() {
            segments.push(PathSegment::Set(rest));
        }
        AsPath { segments }
    }
}

impl fmt::Display for AsPath {
    /// Renders like classic `show ip bgp`: `701 3561 {1239,1800}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                PathSegment::Sequence(v) => {
                    let mut inner = true;
                    for a in v {
                        if !std::mem::take(&mut inner) {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", a.0)?;
                    }
                }
                PathSegment::Set(v) => {
                    write!(f, "{{")?;
                    let mut inner = true;
                    for a in v {
                        if !std::mem::take(&mut inner) {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", a.0)?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsPath::from_sequence(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(asns: &[u32]) -> AsPath {
        AsPath::from_sequence(asns.iter().map(|&a| Asn(a)))
    }

    #[test]
    fn empty_path() {
        let p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.decision_len(), 0);
        assert_eq!(p.first(), None);
        assert_eq!(p.origin_as(), None);
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn sequence_basics() {
        let p = seq(&[701, 3561, 1239]);
        assert_eq!(p.decision_len(), 3);
        assert_eq!(p.first(), Some(Asn(701)));
        assert_eq!(p.origin_as(), Some(Asn(1239)));
        assert!(p.contains(Asn(3561)));
        assert!(!p.contains(Asn(9999)));
        assert_eq!(p.to_string(), "701 3561 1239");
    }

    #[test]
    fn prepend_grows_leading_sequence() {
        let p = seq(&[3561]).prepend(Asn(701));
        assert_eq!(p.to_string(), "701 3561");
        assert_eq!(p.segments().len(), 1);
        // Prepending onto a path that starts with a set creates a new segment.
        let setty = AsPath::from_segments([PathSegment::Set(vec![Asn(1), Asn(2)])]);
        let q = setty.prepend(Asn(701));
        assert_eq!(q.segments().len(), 2);
        assert_eq!(q.first(), Some(Asn(701)));
    }

    #[test]
    fn set_counts_one_hop() {
        let p = AsPath::from_segments([
            PathSegment::Sequence(vec![Asn(701)]),
            PathSegment::Set(vec![Asn(1), Asn(2), Asn(3)]),
        ]);
        assert_eq!(p.decision_len(), 2);
        assert_eq!(p.asn_count(), 4);
        assert_eq!(p.origin_as(), None);
        assert_eq!(p.to_string(), "701 {1,2,3}");
    }

    #[test]
    fn from_segments_drops_empty() {
        let p = AsPath::from_segments([PathSegment::Sequence(vec![]), PathSegment::Set(vec![])]);
        assert!(p.is_empty());
    }

    #[test]
    fn aggregation_common_head_plus_set() {
        let a = seq(&[701, 1239, 42]);
        let b = seq(&[701, 1800, 43]);
        let agg = a.aggregate_with(&b);
        assert_eq!(agg.to_string(), "701 {42,43,1239,1800}");
        assert_eq!(agg.decision_len(), 2);
    }

    #[test]
    fn aggregation_identical_paths_is_identity() {
        let a = seq(&[701, 1239]);
        assert_eq!(a.aggregate_with(&a), a);
    }

    #[test]
    fn aggregation_disjoint_paths_is_pure_set() {
        let a = seq(&[1, 2]);
        let b = seq(&[3]);
        let agg = a.aggregate_with(&b);
        assert_eq!(agg.segments().len(), 1);
        assert!(matches!(agg.segments()[0], PathSegment::Set(_)));
    }

    #[test]
    fn loop_detection_in_sets() {
        let p = AsPath::from_segments([PathSegment::Set(vec![Asn(7), Asn(8)])]);
        assert!(p.contains(Asn(7)));
    }
}
