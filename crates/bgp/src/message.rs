//! The four BGP-4 message kinds: OPEN, UPDATE, NOTIFICATION and KEEPALIVE.
//!
//! UPDATE is the protagonist of the paper — "routing information in BGP has
//! two forms: announcements and withdrawals. A BGP update may contain
//! multiple route announcements and withdrawals." [`Update`] models exactly
//! that: a set of withdrawn prefixes plus one attribute set shared by all
//! announced prefixes (NLRI), per RFC 4271 §4.3.

use crate::attrs::PathAttributes;
use crate::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A BGP OPEN message (RFC 4271 §4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Open {
    /// Protocol version; always 4 in this model.
    pub version: u8,
    /// The sender's AS number (classic 2-byte field).
    pub asn: Asn,
    /// Proposed hold time in seconds; 0 disables keepalives, otherwise must
    /// be ≥ 3.
    pub hold_time: u16,
    /// The sender's BGP identifier.
    pub router_id: Ipv4Addr,
}

impl Open {
    /// A conventional OPEN with the era-typical 180 s hold time.
    #[must_use]
    pub fn new(asn: Asn, router_id: Ipv4Addr) -> Self {
        Open {
            version: 4,
            asn,
            hold_time: 180,
            router_id,
        }
    }
}

/// A BGP UPDATE message: withdrawals plus announcements sharing one
/// attribute set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Update {
    /// Prefixes explicitly withdrawn ("a route withdrawal is sent when a
    /// router makes a new local decision that a network is no longer
    /// reachable").
    pub withdrawn: Vec<Prefix>,
    /// Attributes for all `nlri` prefixes; `None` iff `nlri` is empty.
    pub attrs: Option<PathAttributes>,
    /// Announced prefixes (Network Layer Reachability Information).
    pub nlri: Vec<Prefix>,
}

impl Update {
    /// A pure-withdrawal UPDATE.
    #[must_use]
    pub fn withdraw<I: IntoIterator<Item = Prefix>>(prefixes: I) -> Self {
        Update {
            withdrawn: prefixes.into_iter().collect(),
            attrs: None,
            nlri: Vec::new(),
        }
    }

    /// A pure-announcement UPDATE.
    #[must_use]
    pub fn announce<I: IntoIterator<Item = Prefix>>(attrs: PathAttributes, prefixes: I) -> Self {
        Update {
            withdrawn: Vec::new(),
            attrs: Some(attrs),
            nlri: prefixes.into_iter().collect(),
        }
    }

    /// Total prefix events carried (the unit the paper counts: "routers in
    /// the Internet core currently exchange between three and six million
    /// routing prefix updates each day").
    #[must_use]
    pub fn prefix_event_count(&self) -> usize {
        self.withdrawn.len() + self.nlri.len()
    }

    /// Whether the message carries nothing (legal but vacuous).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.nlri.is_empty()
    }
}

/// Builder for [`Update`] used throughout examples and tests.
#[derive(Debug, Default, Clone)]
pub struct UpdateBuilder {
    withdrawn: Vec<Prefix>,
    nlri: Vec<Prefix>,
    origin: crate::attrs::Origin,
    as_path: crate::path::AsPath,
    next_hop: Option<Ipv4Addr>,
    med: Option<u32>,
    local_pref: Option<u32>,
    communities: Vec<u32>,
}

/// Error from [`UpdateBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Announcing NLRI requires a NEXT_HOP.
    MissingNextHop,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingNextHop => f.write_str("announcement requires a next hop"),
        }
    }
}

impl std::error::Error for BuildError {}

impl UpdateBuilder {
    /// Starts an empty builder.
    #[must_use]
    pub fn new() -> Self {
        UpdateBuilder::default()
    }

    /// Adds an announced prefix.
    #[must_use]
    pub fn announce(mut self, p: Prefix) -> Self {
        self.nlri.push(p);
        self
    }

    /// Adds a withdrawn prefix.
    #[must_use]
    pub fn withdraw(mut self, p: Prefix) -> Self {
        self.withdrawn.push(p);
        self
    }

    /// Sets ORIGIN.
    #[must_use]
    pub fn origin(mut self, o: crate::attrs::Origin) -> Self {
        self.origin = o;
        self
    }

    /// Sets AS_PATH.
    #[must_use]
    pub fn as_path(mut self, p: crate::path::AsPath) -> Self {
        self.as_path = p;
        self
    }

    /// Sets NEXT_HOP.
    #[must_use]
    pub fn next_hop(mut self, h: Ipv4Addr) -> Self {
        self.next_hop = Some(h);
        self
    }

    /// Sets MED.
    #[must_use]
    pub fn med(mut self, m: u32) -> Self {
        self.med = Some(m);
        self
    }

    /// Sets LOCAL_PREF.
    #[must_use]
    pub fn local_pref(mut self, lp: u32) -> Self {
        self.local_pref = Some(lp);
        self
    }

    /// Appends a community.
    #[must_use]
    pub fn community(mut self, c: u32) -> Self {
        self.communities.push(c);
        self
    }

    /// Finalises the UPDATE.
    pub fn build(self) -> Result<Update, BuildError> {
        let attrs = if self.nlri.is_empty() {
            None
        } else {
            let next_hop = self.next_hop.ok_or(BuildError::MissingNextHop)?;
            let mut a = PathAttributes::new(self.origin, self.as_path, next_hop);
            a.med = self.med;
            a.local_pref = self.local_pref;
            a.communities = self.communities;
            Some(a)
        };
        Ok(Update {
            withdrawn: self.withdrawn,
            attrs,
            nlri: self.nlri,
        })
    }
}

/// NOTIFICATION error codes (RFC 4271 §4.5), the messages that tear a
/// peering session down — the proximate trigger of the paper's route-flap
/// storms when hold timers expire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NotificationCode {
    /// Problems with the 19-byte header.
    MessageHeaderError,
    /// Problems with an OPEN.
    OpenMessageError,
    /// Problems with an UPDATE.
    UpdateMessageError,
    /// The hold timer expired without a KEEPALIVE/UPDATE — the storm trigger.
    HoldTimerExpired,
    /// An event arrived in a state that cannot accept it.
    FiniteStateMachineError,
    /// Administrative or resource-driven teardown.
    Cease,
}

impl NotificationCode {
    /// Wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            NotificationCode::MessageHeaderError => 1,
            NotificationCode::OpenMessageError => 2,
            NotificationCode::UpdateMessageError => 3,
            NotificationCode::HoldTimerExpired => 4,
            NotificationCode::FiniteStateMachineError => 5,
            NotificationCode::Cease => 6,
        }
    }

    /// Parses a wire code.
    #[must_use]
    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            1 => NotificationCode::MessageHeaderError,
            2 => NotificationCode::OpenMessageError,
            3 => NotificationCode::UpdateMessageError,
            4 => NotificationCode::HoldTimerExpired,
            5 => NotificationCode::FiniteStateMachineError,
            6 => NotificationCode::Cease,
            _ => return None,
        })
    }
}

/// A BGP NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Notification {
    /// Major error code.
    pub code: NotificationCode,
    /// Code-specific subcode (0 = unspecific).
    pub subcode: u8,
    /// Diagnostic payload.
    pub data: Vec<u8>,
}

impl Notification {
    /// A NOTIFICATION with no subcode or data.
    #[must_use]
    pub fn new(code: NotificationCode) -> Self {
        Notification {
            code,
            subcode: 0,
            data: Vec::new(),
        }
    }
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Session establishment.
    Open(Open),
    /// Reachability information.
    Update(Update),
    /// Error + teardown.
    Notification(Notification),
    /// Liveness ("routers delay routing Keep-Alive packets and are
    /// subsequently flagged as down").
    Keepalive,
}

impl Message {
    /// RFC 4271 type code.
    #[must_use]
    pub fn type_code(&self) -> u8 {
        match self {
            Message::Open(_) => 1,
            Message::Update(_) => 2,
            Message::Notification(_) => 3,
            Message::Keepalive => 4,
        }
    }

    /// Short human name for logs and reports.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Open(_) => "OPEN",
            Message::Update(_) => "UPDATE",
            Message::Notification(_) => "NOTIFICATION",
            Message::Keepalive => "KEEPALIVE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Origin;
    use crate::path::AsPath;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn update_builder_announce_and_withdraw() {
        let u = UpdateBuilder::new()
            .announce(p("10.0.0.0/8"))
            .announce(p("11.0.0.0/8"))
            .withdraw(p("12.0.0.0/8"))
            .next_hop(Ipv4Addr::new(1, 1, 1, 1))
            .origin(Origin::Igp)
            .as_path(AsPath::from_sequence([Asn(701)]))
            .med(10)
            .community(0x02bd_0001)
            .build()
            .unwrap();
        assert_eq!(u.nlri.len(), 2);
        assert_eq!(u.withdrawn.len(), 1);
        assert_eq!(u.prefix_event_count(), 3);
        assert!(!u.is_empty());
        let a = u.attrs.unwrap();
        assert_eq!(a.med, Some(10));
        assert_eq!(a.communities, vec![0x02bd_0001]);
    }

    #[test]
    fn builder_requires_next_hop_only_for_announcements() {
        let err = UpdateBuilder::new().announce(p("10.0.0.0/8")).build();
        assert_eq!(err.unwrap_err(), BuildError::MissingNextHop);
        let ok = UpdateBuilder::new()
            .withdraw(p("10.0.0.0/8"))
            .build()
            .unwrap();
        assert!(ok.attrs.is_none());
    }

    #[test]
    fn pure_withdrawal_constructor() {
        let u = Update::withdraw([p("10.0.0.0/8")]);
        assert!(u.attrs.is_none());
        assert_eq!(u.prefix_event_count(), 1);
    }

    #[test]
    fn empty_update_is_empty() {
        let u = Update::withdraw([]);
        assert!(u.is_empty());
        assert_eq!(u.prefix_event_count(), 0);
    }

    #[test]
    fn notification_codes_roundtrip() {
        for c in [
            NotificationCode::MessageHeaderError,
            NotificationCode::OpenMessageError,
            NotificationCode::UpdateMessageError,
            NotificationCode::HoldTimerExpired,
            NotificationCode::FiniteStateMachineError,
            NotificationCode::Cease,
        ] {
            assert_eq!(NotificationCode::from_code(c.code()), Some(c));
        }
        assert_eq!(NotificationCode::from_code(0), None);
        assert_eq!(NotificationCode::from_code(7), None);
    }

    #[test]
    fn message_type_codes() {
        assert_eq!(
            Message::Open(Open::new(Asn(1), Ipv4Addr::LOCALHOST)).type_code(),
            1
        );
        assert_eq!(Message::Update(Update::withdraw([])).type_code(), 2);
        assert_eq!(
            Message::Notification(Notification::new(NotificationCode::Cease)).type_code(),
            3
        );
        assert_eq!(Message::Keepalive.type_code(), 4);
        assert_eq!(Message::Keepalive.kind_name(), "KEEPALIVE");
    }
}
