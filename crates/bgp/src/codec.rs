//! RFC 4271 binary wire codec for BGP messages.
//!
//! This plays the role of the decoder stages of the paper's "XYZ toolkit"
//! (the Multithreaded Routing Toolkit): turning raw BGP packet logs into
//! typed messages. Encoding is used by the simulator's monitor taps to write
//! MRT files, and decoding by the analysis pipeline to read them back.
//!
//! The codec implements the classic 2-byte-ASN BGP-4 of the paper's era.
//! Attribute order on encode is canonical (ascending type code) so that
//! encode∘decode∘encode is a fixed point, a property the round-trip
//! property tests rely on.

use crate::attrs::{Aggregator, Origin, PathAttributes};
use crate::message::{Message, Notification, NotificationCode, Open, Update};
use crate::path::{AsPath, PathSegment};
use crate::types::{Asn, Prefix};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// Fixed 19-byte BGP header: 16-byte marker + 2-byte length + 1-byte type.
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message size (RFC 4271 §4.1).
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Attribute type codes.
mod attr_type {
    pub const ORIGIN: u8 = 1;
    pub const AS_PATH: u8 = 2;
    pub const NEXT_HOP: u8 = 3;
    pub const MED: u8 = 4;
    pub const LOCAL_PREF: u8 = 5;
    pub const ATOMIC_AGGREGATE: u8 = 6;
    pub const AGGREGATOR: u8 = 7;
    pub const COMMUNITIES: u8 = 8;
}

/// Attribute flag bits.
mod attr_flag {
    pub const OPTIONAL: u8 = 0x80;
    pub const TRANSITIVE: u8 = 0x40;
    pub const EXTENDED_LENGTH: u8 = 0x10;
}

/// Decoding errors. Each maps onto an RFC 4271 NOTIFICATION subcode family;
/// [`DecodeError::notification`] performs that mapping for FSM use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a header, or body shorter than the header claims.
    Truncated,
    /// Marker bytes were not all ones.
    BadMarker,
    /// Header length field outside `[19, 4096]` or inconsistent with type.
    BadLength(u16),
    /// Unknown message type code.
    BadType(u8),
    /// OPEN with an unsupported version.
    UnsupportedVersion(u8),
    /// OPEN hold time 1 or 2 (RFC 4271 forbids 0 < ht < 3).
    BadHoldTime(u16),
    /// Prefix length byte greater than 32.
    BadPrefixLength(u8),
    /// Malformed path attribute (bad flags, length, or value).
    BadAttribute(&'static str),
    /// A mandatory attribute was missing from an announcing UPDATE.
    MissingMandatoryAttribute(&'static str),
    /// NOTIFICATION carried an unknown error code.
    BadNotificationCode(u8),
    /// AS_PATH segment with an unknown segment type.
    BadSegmentType(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("message truncated"),
            DecodeError::BadMarker => f.write_str("header marker not all-ones"),
            DecodeError::BadLength(l) => write!(f, "bad message length {l}"),
            DecodeError::BadType(t) => write!(f, "unknown message type {t}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported BGP version {v}"),
            DecodeError::BadHoldTime(h) => write!(f, "illegal hold time {h}"),
            DecodeError::BadPrefixLength(l) => write!(f, "prefix length {l} > 32"),
            DecodeError::BadAttribute(which) => write!(f, "malformed attribute: {which}"),
            DecodeError::MissingMandatoryAttribute(which) => {
                write!(f, "missing mandatory attribute {which}")
            }
            DecodeError::BadNotificationCode(c) => write!(f, "unknown notification code {c}"),
            DecodeError::BadSegmentType(t) => write!(f, "unknown AS_PATH segment type {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// The NOTIFICATION a receiver should send for this error.
    #[must_use]
    pub fn notification(&self) -> Notification {
        use DecodeError::*;
        let code = match self {
            Truncated | BadMarker | BadLength(_) | BadType(_) => {
                NotificationCode::MessageHeaderError
            }
            UnsupportedVersion(_) | BadHoldTime(_) => NotificationCode::OpenMessageError,
            _ => NotificationCode::UpdateMessageError,
        };
        Notification::new(code)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes a message, header included.
///
/// # Panics
/// Panics if the encoded message would exceed [`MAX_MESSAGE_LEN`]; callers
/// producing large UPDATEs should split NLRI with [`split_update`] first.
#[must_use]
pub fn encode_message(msg: &Message) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    match msg {
        Message::Open(o) => encode_open(o, &mut body),
        Message::Update(u) => encode_update(u, &mut body),
        Message::Notification(n) => encode_notification(n, &mut body),
        Message::Keepalive => {}
    }
    let total = HEADER_LEN + body.len();
    assert!(
        total <= MAX_MESSAGE_LEN,
        "encoded BGP message {total} bytes exceeds {MAX_MESSAGE_LEN}"
    );
    let mut out = BytesMut::with_capacity(total);
    out.put_bytes(0xff, 16);
    out.put_u16(total as u16);
    out.put_u8(msg.type_code());
    out.extend_from_slice(&body);
    out.freeze()
}

fn encode_open(o: &Open, out: &mut BytesMut) {
    out.put_u8(o.version);
    out.put_u16(o.asn.0 as u16);
    out.put_u16(o.hold_time);
    out.put_u32(u32::from(o.router_id));
    out.put_u8(0); // no optional parameters
}

fn encode_prefix(p: Prefix, out: &mut BytesMut) {
    out.put_u8(p.len());
    let nbytes = usize::from(p.len().div_ceil(8));
    let be = p.bits().to_be_bytes();
    out.extend_from_slice(&be[..nbytes]);
}

fn encoded_prefix_len(p: Prefix) -> usize {
    1 + usize::from(p.len().div_ceil(8))
}

fn encode_update(u: &Update, out: &mut BytesMut) {
    let mut withdrawn = BytesMut::new();
    for p in &u.withdrawn {
        encode_prefix(*p, &mut withdrawn);
    }
    out.put_u16(withdrawn.len() as u16);
    out.extend_from_slice(&withdrawn);

    let mut attrs = BytesMut::new();
    if let Some(a) = &u.attrs {
        encode_attrs(a, &mut attrs);
    }
    out.put_u16(attrs.len() as u16);
    out.extend_from_slice(&attrs);

    for p in &u.nlri {
        encode_prefix(*p, out);
    }
}

fn put_attr(out: &mut BytesMut, flags: u8, type_code: u8, value: &[u8]) {
    if value.len() > 255 {
        out.put_u8(flags | attr_flag::EXTENDED_LENGTH);
        out.put_u8(type_code);
        out.put_u16(value.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(type_code);
        out.put_u8(value.len() as u8);
    }
    out.extend_from_slice(value);
}

fn encode_attrs(a: &PathAttributes, out: &mut BytesMut) {
    use attr_flag::{OPTIONAL, TRANSITIVE};
    put_attr(out, TRANSITIVE, attr_type::ORIGIN, &[a.origin.code()]);

    let mut path = BytesMut::new();
    for seg in a.as_path.segments() {
        path.put_u8(seg.type_code());
        path.put_u8(seg.asns().len() as u8);
        for asn in seg.asns() {
            path.put_u16(asn.0 as u16);
        }
    }
    put_attr(out, TRANSITIVE, attr_type::AS_PATH, &path);

    put_attr(
        out,
        TRANSITIVE,
        attr_type::NEXT_HOP,
        &u32::from(a.next_hop).to_be_bytes(),
    );
    if let Some(med) = a.med {
        put_attr(out, OPTIONAL, attr_type::MED, &med.to_be_bytes());
    }
    if let Some(lp) = a.local_pref {
        put_attr(out, TRANSITIVE, attr_type::LOCAL_PREF, &lp.to_be_bytes());
    }
    if a.atomic_aggregate {
        put_attr(out, TRANSITIVE, attr_type::ATOMIC_AGGREGATE, &[]);
    }
    if let Some(agg) = &a.aggregator {
        let mut v = BytesMut::with_capacity(6);
        v.put_u16(agg.asn.0 as u16);
        v.put_u32(u32::from(agg.router_id));
        put_attr(out, OPTIONAL | TRANSITIVE, attr_type::AGGREGATOR, &v);
    }
    if !a.communities.is_empty() {
        let mut v = BytesMut::with_capacity(4 * a.communities.len());
        for c in &a.communities {
            v.put_u32(*c);
        }
        put_attr(out, OPTIONAL | TRANSITIVE, attr_type::COMMUNITIES, &v);
    }
}

fn encode_notification(n: &Notification, out: &mut BytesMut) {
    out.put_u8(n.code.code());
    out.put_u8(n.subcode);
    out.extend_from_slice(&n.data);
}

/// Splits an UPDATE whose encoding would exceed [`MAX_MESSAGE_LEN`] into
/// several wire-legal UPDATEs carrying the same information, preserving
/// withdrawal-before-announcement order within the batch.
#[must_use]
pub fn split_update(u: &Update) -> Vec<Update> {
    // Conservative per-message budget for prefix bytes, leaving generous
    // room for header and attributes (attribute block is ≤ ~1 KiB for sane
    // paths; we budget 2 KiB of prefixes per message).
    const PREFIX_BUDGET: usize = 2048;
    let mut out = Vec::new();
    let mut w_iter = u.withdrawn.iter().copied().peekable();
    while w_iter.peek().is_some() {
        let mut used = 0;
        let mut chunk = Vec::new();
        while let Some(&p) = w_iter.peek() {
            let l = encoded_prefix_len(p);
            if used + l > PREFIX_BUDGET && !chunk.is_empty() {
                break;
            }
            used += l;
            chunk.push(p);
            w_iter.next();
        }
        out.push(Update::withdraw(chunk));
    }
    if let Some(attrs) = &u.attrs {
        let mut n_iter = u.nlri.iter().copied().peekable();
        while n_iter.peek().is_some() {
            let mut used = 0;
            let mut chunk = Vec::new();
            while let Some(&p) = n_iter.peek() {
                let l = encoded_prefix_len(p);
                if used + l > PREFIX_BUDGET && !chunk.is_empty() {
                    break;
                }
                used += l;
                chunk.push(p);
                n_iter.next();
            }
            out.push(Update::announce(attrs.clone(), chunk));
        }
    }
    if out.is_empty() {
        out.push(Update::withdraw([]));
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes one complete message from `buf` (which must contain exactly one
/// message; see [`decode_stream_message`] for framing).
pub fn decode_message(buf: &[u8]) -> Result<Message, DecodeError> {
    let (msg, used) = decode_stream_message(buf)?;
    if used != buf.len() {
        return Err(DecodeError::BadLength(
            buf.len().min(u16::MAX as usize) as u16
        ));
    }
    Ok(msg)
}

/// Decodes the first message from a byte stream, returning it and the number
/// of bytes consumed. Useful when reading concatenated messages from a log.
pub fn decode_stream_message(buf: &[u8]) -> Result<(Message, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    if buf[..16].iter().any(|&b| b != 0xff) {
        return Err(DecodeError::BadMarker);
    }
    let mut hdr = &buf[16..];
    let len = hdr.get_u16();
    let type_code = hdr.get_u8();
    let len_usize = usize::from(len);
    if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len_usize) {
        return Err(DecodeError::BadLength(len));
    }
    if buf.len() < len_usize {
        return Err(DecodeError::Truncated);
    }
    let body = &buf[HEADER_LEN..len_usize];
    let msg = match type_code {
        1 => Message::Open(decode_open(body)?),
        2 => Message::Update(decode_update(body)?),
        3 => Message::Notification(decode_notification(body)?),
        4 => {
            if !body.is_empty() {
                return Err(DecodeError::BadLength(len));
            }
            Message::Keepalive
        }
        t => return Err(DecodeError::BadType(t)),
    };
    Ok((msg, len_usize))
}

fn need(buf: &[u8], n: usize) -> Result<(), DecodeError> {
    if buf.len() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn decode_open(mut body: &[u8]) -> Result<Open, DecodeError> {
    need(body, 10)?;
    let version = body.get_u8();
    if version != 4 {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let asn = Asn(u32::from(body.get_u16()));
    let hold_time = body.get_u16();
    if hold_time == 1 || hold_time == 2 {
        return Err(DecodeError::BadHoldTime(hold_time));
    }
    let router_id = Ipv4Addr::from(body.get_u32());
    let opt_len = body.get_u8();
    need(body, usize::from(opt_len))?;
    // Optional parameters (capabilities) are tolerated and skipped; the
    // 1996-era protocol model carries none.
    Ok(Open {
        version,
        asn,
        hold_time,
        router_id,
    })
}

fn decode_prefix(body: &mut &[u8]) -> Result<Prefix, DecodeError> {
    need(body, 1)?;
    let len = body.get_u8();
    if len > 32 {
        return Err(DecodeError::BadPrefixLength(len));
    }
    let nbytes = usize::from(len.div_ceil(8));
    need(body, nbytes)?;
    let mut be = [0u8; 4];
    be[..nbytes].copy_from_slice(&body[..nbytes]);
    body.advance(nbytes);
    Ok(Prefix::from_raw(u32::from_be_bytes(be), len))
}

fn decode_prefix_list(mut body: &[u8]) -> Result<Vec<Prefix>, DecodeError> {
    let mut out = Vec::new();
    while !body.is_empty() {
        out.push(decode_prefix(&mut body)?);
    }
    Ok(out)
}

fn decode_update(mut body: &[u8]) -> Result<Update, DecodeError> {
    need(body, 2)?;
    let wlen = usize::from(body.get_u16());
    need(body, wlen)?;
    let withdrawn = decode_prefix_list(&body[..wlen])?;
    body.advance(wlen);

    need(body, 2)?;
    let alen = usize::from(body.get_u16());
    need(body, alen)?;
    let attrs_raw = &body[..alen];
    body.advance(alen);
    let nlri = decode_prefix_list(body)?;

    let attrs = if alen == 0 {
        None
    } else {
        Some(decode_attrs(attrs_raw)?)
    };
    if !nlri.is_empty() {
        match &attrs {
            None => return Err(DecodeError::MissingMandatoryAttribute("ORIGIN")),
            Some(a) => {
                if a.next_hop == Ipv4Addr::UNSPECIFIED && a.as_path.is_empty() {
                    // Tolerated: locally-originated route before export.
                }
            }
        }
    }
    Ok(Update {
        withdrawn,
        attrs,
        nlri,
    })
}

fn decode_attrs(mut body: &[u8]) -> Result<PathAttributes, DecodeError> {
    let mut origin: Option<Origin> = None;
    let mut as_path: Option<AsPath> = None;
    let mut next_hop: Option<Ipv4Addr> = None;
    let mut med = None;
    let mut local_pref = None;
    let mut atomic_aggregate = false;
    let mut aggregator = None;
    let mut communities = Vec::new();

    while !body.is_empty() {
        need(body, 2)?;
        let flags = body.get_u8();
        let type_code = body.get_u8();
        let vlen = if flags & attr_flag::EXTENDED_LENGTH != 0 {
            need(body, 2)?;
            usize::from(body.get_u16())
        } else {
            need(body, 1)?;
            usize::from(body.get_u8())
        };
        need(body, vlen)?;
        let mut value = &body[..vlen];
        body.advance(vlen);

        match type_code {
            attr_type::ORIGIN => {
                if vlen != 1 {
                    return Err(DecodeError::BadAttribute("ORIGIN length"));
                }
                origin = Some(
                    Origin::from_code(value.get_u8())
                        .ok_or(DecodeError::BadAttribute("ORIGIN value"))?,
                );
            }
            attr_type::AS_PATH => {
                let mut segments = Vec::new();
                while !value.is_empty() {
                    need(value, 2)?;
                    let seg_type = value.get_u8();
                    let count = usize::from(value.get_u8());
                    need(value, 2 * count)?;
                    let mut asns = Vec::with_capacity(count);
                    for _ in 0..count {
                        asns.push(Asn(u32::from(value.get_u16())));
                    }
                    segments.push(match seg_type {
                        1 => PathSegment::Set(asns),
                        2 => PathSegment::Sequence(asns),
                        t => return Err(DecodeError::BadSegmentType(t)),
                    });
                }
                as_path = Some(AsPath::from_segments(segments));
            }
            attr_type::NEXT_HOP => {
                if vlen != 4 {
                    return Err(DecodeError::BadAttribute("NEXT_HOP length"));
                }
                next_hop = Some(Ipv4Addr::from(value.get_u32()));
            }
            attr_type::MED => {
                if vlen != 4 {
                    return Err(DecodeError::BadAttribute("MED length"));
                }
                med = Some(value.get_u32());
            }
            attr_type::LOCAL_PREF => {
                if vlen != 4 {
                    return Err(DecodeError::BadAttribute("LOCAL_PREF length"));
                }
                local_pref = Some(value.get_u32());
            }
            attr_type::ATOMIC_AGGREGATE => {
                if vlen != 0 {
                    return Err(DecodeError::BadAttribute("ATOMIC_AGGREGATE length"));
                }
                atomic_aggregate = true;
            }
            attr_type::AGGREGATOR => {
                if vlen != 6 {
                    return Err(DecodeError::BadAttribute("AGGREGATOR length"));
                }
                aggregator = Some(Aggregator {
                    asn: Asn(u32::from(value.get_u16())),
                    router_id: Ipv4Addr::from(value.get_u32()),
                });
            }
            attr_type::COMMUNITIES => {
                if vlen % 4 != 0 {
                    return Err(DecodeError::BadAttribute("COMMUNITIES length"));
                }
                while !value.is_empty() {
                    communities.push(value.get_u32());
                }
            }
            _ => {
                // Unknown optional attributes are skipped (partial bit
                // handling elided); unknown well-known attributes are an
                // error per RFC 4271.
                if flags & attr_flag::OPTIONAL == 0 {
                    return Err(DecodeError::BadAttribute("unknown well-known attribute"));
                }
            }
        }
    }

    let origin = origin.ok_or(DecodeError::MissingMandatoryAttribute("ORIGIN"))?;
    let as_path = as_path.ok_or(DecodeError::MissingMandatoryAttribute("AS_PATH"))?;
    let next_hop = next_hop.ok_or(DecodeError::MissingMandatoryAttribute("NEXT_HOP"))?;
    let mut a = PathAttributes::new(origin, as_path, next_hop);
    a.med = med;
    a.local_pref = local_pref;
    a.atomic_aggregate = atomic_aggregate;
    a.aggregator = aggregator;
    a.communities = communities;
    Ok(a)
}

fn decode_notification(mut body: &[u8]) -> Result<Notification, DecodeError> {
    need(body, 2)?;
    let code_raw = body.get_u8();
    let code =
        NotificationCode::from_code(code_raw).ok_or(DecodeError::BadNotificationCode(code_raw))?;
    let subcode = body.get_u8();
    Ok(Notification {
        code,
        subcode,
        data: body.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::UpdateBuilder;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample_update() -> Update {
        UpdateBuilder::new()
            .withdraw(p("192.42.113.0/24"))
            .announce(p("10.0.0.0/8"))
            .announce(p("198.32.0.0/16"))
            .next_hop(Ipv4Addr::new(192, 41, 177, 1))
            .as_path(AsPath::from_sequence([Asn(3561), Asn(701), Asn(1239)]))
            .origin(Origin::Igp)
            .med(100)
            .community(0x02bd_022a)
            .build()
            .unwrap()
    }

    #[test]
    fn keepalive_is_19_bytes() {
        let wire = encode_message(&Message::Keepalive);
        assert_eq!(wire.len(), HEADER_LEN);
        assert_eq!(decode_message(&wire).unwrap(), Message::Keepalive);
    }

    #[test]
    fn open_roundtrip() {
        let open = Open::new(Asn(701), Ipv4Addr::new(137, 39, 1, 1));
        let wire = encode_message(&Message::Open(open.clone()));
        assert_eq!(decode_message(&wire).unwrap(), Message::Open(open));
    }

    #[test]
    fn update_roundtrip() {
        let u = sample_update();
        let wire = encode_message(&Message::Update(u.clone()));
        assert_eq!(decode_message(&wire).unwrap(), Message::Update(u));
    }

    #[test]
    fn notification_roundtrip() {
        let n = Notification {
            code: NotificationCode::HoldTimerExpired,
            subcode: 0,
            data: vec![1, 2, 3],
        };
        let wire = encode_message(&Message::Notification(n.clone()));
        assert_eq!(decode_message(&wire).unwrap(), Message::Notification(n));
    }

    #[test]
    fn empty_withdrawal_roundtrip() {
        let u = Update::withdraw([]);
        let wire = encode_message(&Message::Update(u.clone()));
        assert_eq!(decode_message(&wire).unwrap(), Message::Update(u));
        // Header + two zero u16 length fields.
        assert_eq!(wire.len(), HEADER_LEN + 4);
    }

    #[test]
    fn default_route_roundtrip() {
        let u = UpdateBuilder::new()
            .announce(Prefix::DEFAULT)
            .next_hop(Ipv4Addr::new(1, 2, 3, 4))
            .as_path(AsPath::from_sequence([Asn(1)]))
            .build()
            .unwrap();
        let wire = encode_message(&Message::Update(u.clone()));
        assert_eq!(decode_message(&wire).unwrap(), Message::Update(u));
    }

    #[test]
    fn as_set_roundtrip() {
        let path = AsPath::from_segments([
            PathSegment::Sequence(vec![Asn(701)]),
            PathSegment::Set(vec![Asn(1239), Asn(1800)]),
        ]);
        let u = UpdateBuilder::new()
            .announce(p("198.32.0.0/16"))
            .next_hop(Ipv4Addr::new(1, 2, 3, 4))
            .as_path(path)
            .build()
            .unwrap();
        let wire = encode_message(&Message::Update(u.clone()));
        assert_eq!(decode_message(&wire).unwrap(), Message::Update(u));
    }

    #[test]
    fn bad_marker_rejected() {
        let mut wire = encode_message(&Message::Keepalive).to_vec();
        wire[3] = 0;
        assert_eq!(decode_message(&wire).unwrap_err(), DecodeError::BadMarker);
    }

    #[test]
    fn truncation_rejected() {
        let wire = encode_message(&Message::Update(sample_update()));
        for cut in [0, 5, HEADER_LEN - 1, HEADER_LEN + 1, wire.len() - 1] {
            assert_eq!(
                decode_message(&wire[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_type_rejected() {
        let mut wire = encode_message(&Message::Keepalive).to_vec();
        wire[18] = 9;
        assert_eq!(decode_message(&wire).unwrap_err(), DecodeError::BadType(9));
    }

    #[test]
    fn bad_length_rejected() {
        let mut wire = encode_message(&Message::Keepalive).to_vec();
        wire[16] = 0;
        wire[17] = 5; // length 5 < 19
        assert_eq!(
            decode_message(&wire).unwrap_err(),
            DecodeError::BadLength(5)
        );
    }

    #[test]
    fn keepalive_with_body_rejected() {
        let mut wire = encode_message(&Message::Keepalive).to_vec();
        wire.push(0);
        wire[17] = 20;
        assert!(matches!(
            decode_message(&wire).unwrap_err(),
            DecodeError::BadLength(20)
        ));
    }

    #[test]
    fn bad_prefix_length_rejected() {
        // Hand-build an UPDATE with a withdrawn prefix of length 33.
        let mut body = BytesMut::new();
        body.put_u16(2); // withdrawn len
        body.put_u8(33);
        body.put_u8(0);
        body.put_u16(0); // attr len
        let mut wire = BytesMut::new();
        wire.put_bytes(0xff, 16);
        wire.put_u16((HEADER_LEN + body.len()) as u16);
        wire.put_u8(2);
        wire.extend_from_slice(&body);
        assert_eq!(
            decode_message(&wire).unwrap_err(),
            DecodeError::BadPrefixLength(33)
        );
    }

    #[test]
    fn nlri_without_attrs_rejected() {
        let mut body = BytesMut::new();
        body.put_u16(0); // withdrawn
        body.put_u16(0); // attrs
        body.put_u8(8); // NLRI 10/8
        body.put_u8(10);
        let mut wire = BytesMut::new();
        wire.put_bytes(0xff, 16);
        wire.put_u16((HEADER_LEN + body.len()) as u16);
        wire.put_u8(2);
        wire.extend_from_slice(&body);
        assert!(matches!(
            decode_message(&wire).unwrap_err(),
            DecodeError::MissingMandatoryAttribute(_)
        ));
    }

    #[test]
    fn open_bad_version_and_holdtime() {
        let open = Open::new(Asn(1), Ipv4Addr::LOCALHOST);
        let mut wire = encode_message(&Message::Open(open)).to_vec();
        wire[HEADER_LEN] = 3; // version 3
        assert_eq!(
            decode_message(&wire).unwrap_err(),
            DecodeError::UnsupportedVersion(3)
        );
        let mut wire2 = encode_message(&Message::Open(Open {
            version: 4,
            asn: Asn(1),
            hold_time: 180,
            router_id: Ipv4Addr::LOCALHOST,
        }))
        .to_vec();
        wire2[HEADER_LEN + 3] = 0;
        wire2[HEADER_LEN + 4] = 2; // hold time 2
        assert_eq!(
            decode_message(&wire2).unwrap_err(),
            DecodeError::BadHoldTime(2)
        );
    }

    #[test]
    fn stream_decoding_consumes_exact_lengths() {
        let m1 = Message::Keepalive;
        let m2 = Message::Update(sample_update());
        let mut stream = encode_message(&m1).to_vec();
        stream.extend_from_slice(&encode_message(&m2));
        let (d1, used1) = decode_stream_message(&stream).unwrap();
        assert_eq!(d1, m1);
        let (d2, used2) = decode_stream_message(&stream[used1..]).unwrap();
        assert_eq!(d2, m2);
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn trailing_garbage_rejected_by_decode_message() {
        let mut wire = encode_message(&Message::Keepalive).to_vec();
        wire.push(0xab);
        assert!(decode_message(&wire).is_err());
    }

    #[test]
    fn split_update_respects_budget_and_preserves_content() {
        let withdrawn: Vec<Prefix> = (0..2000u32)
            .map(|i| Prefix::from_raw(0x0a00_0000 | (i << 8), 24))
            .collect();
        let attrs = PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(701)]),
            Ipv4Addr::new(1, 1, 1, 1),
        );
        let nlri: Vec<Prefix> = (0..2000u32)
            .map(|i| Prefix::from_raw(0xc000_0000 | (i << 8), 24))
            .collect();
        let big = Update {
            withdrawn: withdrawn.clone(),
            attrs: Some(attrs),
            nlri: nlri.clone(),
        };
        let parts = split_update(&big);
        assert!(parts.len() > 2);
        let mut got_w = Vec::new();
        let mut got_n = Vec::new();
        for part in &parts {
            // Every part must be encodable within the size limit.
            let wire = encode_message(&Message::Update(part.clone()));
            assert!(wire.len() <= MAX_MESSAGE_LEN);
            got_w.extend_from_slice(&part.withdrawn);
            got_n.extend_from_slice(&part.nlri);
        }
        assert_eq!(got_w, withdrawn);
        assert_eq!(got_n, nlri);
    }

    #[test]
    fn unknown_optional_attribute_skipped() {
        // Append an unknown optional attribute (type 200) after a valid set.
        let u = UpdateBuilder::new()
            .announce(p("10.0.0.0/8"))
            .next_hop(Ipv4Addr::new(1, 1, 1, 1))
            .as_path(AsPath::from_sequence([Asn(1)]))
            .build()
            .unwrap();
        let mut attrs = BytesMut::new();
        encode_attrs(u.attrs.as_ref().unwrap(), &mut attrs);
        attrs.put_u8(attr_flag::OPTIONAL | attr_flag::TRANSITIVE);
        attrs.put_u8(200);
        attrs.put_u8(2);
        attrs.put_u16(0xbeef);
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs.len() as u16);
        body.extend_from_slice(&attrs);
        body.put_u8(8);
        body.put_u8(10);
        let mut wire = BytesMut::new();
        wire.put_bytes(0xff, 16);
        wire.put_u16((HEADER_LEN + body.len()) as u16);
        wire.put_u8(2);
        wire.extend_from_slice(&body);
        let decoded = decode_message(&wire).unwrap();
        assert_eq!(decoded, Message::Update(u));
    }

    #[test]
    fn unknown_wellknown_attribute_rejected() {
        let mut attrs = BytesMut::new();
        attrs.put_u8(attr_flag::TRANSITIVE); // well-known
        attrs.put_u8(99);
        attrs.put_u8(0);
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs.len() as u16);
        body.extend_from_slice(&attrs);
        let mut wire = BytesMut::new();
        wire.put_bytes(0xff, 16);
        wire.put_u16((HEADER_LEN + body.len()) as u16);
        wire.put_u8(2);
        wire.extend_from_slice(&body);
        assert!(matches!(
            decode_message(&wire).unwrap_err(),
            DecodeError::BadAttribute(_)
        ));
    }

    #[test]
    fn decode_error_notification_mapping() {
        assert_eq!(
            DecodeError::BadMarker.notification().code,
            NotificationCode::MessageHeaderError
        );
        assert_eq!(
            DecodeError::UnsupportedVersion(3).notification().code,
            NotificationCode::OpenMessageError
        );
        assert_eq!(
            DecodeError::BadPrefixLength(40).notification().code,
            NotificationCode::UpdateMessageError
        );
    }
}
