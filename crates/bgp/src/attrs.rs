//! BGP path attributes and the paper's **(Prefix, NextHop, ASPATH)** route
//! key.
//!
//! The taxonomy in §4.1 of the paper hinges on a distinction this module
//! makes explicit:
//!
//! > "A BGP update may contain additional attributes (MED, communities,
//! > localpref, etc.), but only changes in the (Prefix, NextHop, ASPATH)
//! > tuple will reflect network topological changes, or forwarding
//! > instability. Succeeding prefix advertisements with differences in other
//! > attributes may reflect routing policy changes."
//!
//! [`RouteKey`] is that tuple; [`PathAttributes::forwarding_key`] extracts it.

use crate::path::AsPath;
use crate::types::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The ORIGIN attribute (RFC 4271 §4.3): how the originating AS learned the
/// route. Ordered so that `Igp < Egp < Incomplete` matches decision-process
/// preference.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Origin {
    /// Interior to the originating AS.
    #[default]
    Igp,
    /// Learned via the (historic) EGP protocol.
    Egp,
    /// Learned by some other means, typically redistribution.
    Incomplete,
}

impl Origin {
    /// Wire code (0 = IGP, 1 = EGP, 2 = INCOMPLETE).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Parses a wire code.
    #[must_use]
    pub fn from_code(c: u8) -> Option<Origin> {
        match c {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Igp => "IGP",
            Origin::Egp => "EGP",
            Origin::Incomplete => "incomplete",
        })
    }
}

/// The AGGREGATOR attribute: which AS and router formed an aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Aggregator {
    /// The aggregating AS.
    pub asn: crate::types::Asn,
    /// The aggregating router's identifier.
    pub router_id: Ipv4Addr,
}

/// The attribute set carried by an UPDATE's announced routes.
///
/// Fields beyond the forwarding tuple (MED, LOCAL_PREF, communities,
/// ATOMIC_AGGREGATE, AGGREGATOR) exist so the classifier can distinguish
/// *policy fluctuation* (attribute churn with a stable forwarding tuple)
/// from forwarding instability.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathAttributes {
    /// Mandatory ORIGIN.
    pub origin: Origin,
    /// Mandatory AS_PATH (may be empty only on IBGP-originated routes).
    pub as_path: AsPath,
    /// Mandatory NEXT_HOP.
    pub next_hop: Ipv4Addr,
    /// Optional MULTI_EXIT_DISC.
    pub med: Option<u32>,
    /// Optional LOCAL_PREF (IBGP only in real deployments; carried here for
    /// policy-fluctuation experiments).
    pub local_pref: Option<u32>,
    /// Whether ATOMIC_AGGREGATE is attached.
    pub atomic_aggregate: bool,
    /// Optional AGGREGATOR.
    pub aggregator: Option<Aggregator>,
    /// RFC 1997 communities, each a 32-bit value conventionally rendered
    /// `asn:value`.
    pub communities: Vec<u32>,
}

impl PathAttributes {
    /// Minimal valid attribute set for an EBGP announcement.
    #[must_use]
    pub fn new(origin: Origin, as_path: AsPath, next_hop: Ipv4Addr) -> Self {
        PathAttributes {
            origin,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: Vec::new(),
        }
    }

    /// Extracts the forwarding-relevant key for `prefix`: the tuple the paper
    /// compares to classify successive updates.
    #[must_use]
    pub fn forwarding_key(&self, prefix: Prefix) -> RouteKey {
        RouteKey {
            prefix,
            next_hop: self.next_hop,
            as_path: self.as_path.clone(),
        }
    }

    /// Whether two attribute sets differ *only* in non-forwarding fields —
    /// the signature of a routing-policy fluctuation.
    #[must_use]
    pub fn same_forwarding(&self, other: &PathAttributes) -> bool {
        self.next_hop == other.next_hop && self.as_path == other.as_path
    }
}

/// The **(Prefix, NextHop, ASPATH)** tuple of §4.1.
///
/// Two successive announcements with equal `RouteKey`s are a *duplicate*
/// (`AADup`) regardless of any other attribute differences at the forwarding
/// level; the `iri-core` classifier additionally consults full attributes to
/// separate policy fluctuation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteKey {
    /// Destination block.
    pub prefix: Prefix,
    /// Forwarding next hop at the exchange.
    pub next_hop: Ipv4Addr,
    /// AS-level path.
    pub as_path: AsPath,
}

impl fmt::Display for RouteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} path [{}]",
            self.prefix, self.next_hop, self.as_path
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Asn;

    fn attrs(path: &[u32], hop: [u8; 4]) -> PathAttributes {
        PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence(path.iter().map(|&a| Asn(a))),
            Ipv4Addr::from(hop),
        )
    }

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
    }

    #[test]
    fn origin_preference_order() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn forwarding_key_ignores_policy_attributes() {
        let p: Prefix = "192.42.113.0/24".parse().unwrap();
        let a = attrs(&[701], [10, 0, 0, 1]);
        let mut b = a.clone();
        b.med = Some(50);
        b.communities = vec![0x02bd_0001];
        b.local_pref = Some(200);
        assert!(a.same_forwarding(&b));
        assert_eq!(a.forwarding_key(p), b.forwarding_key(p));
    }

    #[test]
    fn forwarding_key_sees_topology_change() {
        let p: Prefix = "192.42.113.0/24".parse().unwrap();
        let a = attrs(&[701], [10, 0, 0, 1]);
        let b = attrs(&[1239, 701], [10, 0, 0, 1]);
        let c = attrs(&[701], [10, 0, 0, 2]);
        assert_ne!(a.forwarding_key(p), b.forwarding_key(p));
        assert_ne!(a.forwarding_key(p), c.forwarding_key(p));
        assert!(!a.same_forwarding(&b));
        assert!(!a.same_forwarding(&c));
    }

    #[test]
    fn route_key_display() {
        let p: Prefix = "192.42.113.0/24".parse().unwrap();
        let k = attrs(&[701, 1239], [10, 0, 0, 1]).forwarding_key(p);
        assert_eq!(
            k.to_string(),
            "192.42.113.0/24 via 10.0.0.1 path [701 1239]"
        );
    }
}
