//! Fundamental inter-domain routing types: autonomous system numbers and
//! IPv4 prefixes.
//!
//! The 1996/97 Internet measured by the paper was IPv4-only with 16-bit AS
//! numbers; we keep [`Asn`] as a `u32` newtype so the same model also covers
//! the modern 32-bit space, but the codec rejects values that do not fit the
//! classic 2-byte encoding.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An autonomous system number.
///
/// In the paper's era these were 16-bit ("the default-free tables contain
/// roughly 1,300 different autonomous systems"); the type is wide enough for
/// 4-byte ASNs but [`crate::codec`] enforces the 2-byte wire encoding used by
/// classic BGP-4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved ASN 0, never valid on the wire.
    pub const RESERVED: Asn = Asn(0);

    /// Whether this ASN fits the classic 2-byte encoding.
    #[must_use]
    pub fn is_classic(self) -> bool {
        self.0 <= u32::from(u16::MAX)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u16> for Asn {
    fn from(v: u16) -> Self {
        Asn(u32::from(v))
    }
}

/// Errors produced when parsing a [`Prefix`] from text or constructing one
/// from raw parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length was greater than 32.
    LengthOutOfRange(u8),
    /// The textual form was not `a.b.c.d/len`.
    Malformed(String),
    /// Host bits below the mask were set (e.g. `10.0.0.1/8`).
    HostBitsSet,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange(l) => write!(f, "prefix length {l} out of range 0..=32"),
            PrefixError::Malformed(s) => write!(f, "malformed prefix {s:?}"),
            PrefixError::HostBitsSet => write!(f, "host bits set below the prefix mask"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// An IPv4 CIDR prefix — the unit of reachability in every BGP update the
/// paper analyses (e.g. `192.42.113.0/24` from the May 25 1996 trace).
///
/// Internally stored as a masked `u32` network address plus a length, so
/// equality, ordering and hashing are cheap; the classifier keeps per-prefix
/// state for tens of thousands of prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// `0.0.0.0/0`, the default route.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// Builds a prefix, masking off any host bits below `len`.
    ///
    /// Returns an error only if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange(len));
        }
        let bits = u32::from(addr) & mask(len);
        Ok(Prefix { bits, len })
    }

    /// Builds a prefix, rejecting inputs with host bits set below the mask.
    pub fn new_strict(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange(len));
        }
        let raw = u32::from(addr);
        if raw & !mask(len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Prefix { bits: raw, len })
    }

    /// Builds a prefix from a raw network-order `u32`, masking host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`; this constructor is for internal generated data
    /// where the length is known valid.
    #[must_use]
    pub fn from_raw(bits: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            bits: bits & mask(len),
            len,
        }
    }

    /// The network address.
    #[must_use]
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The raw network address bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The prefix length in bits.
    ///
    /// (No `is_empty` counterpart: a CIDR prefix length is a mask width,
    /// not a collection size.)
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    #[must_use]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `self` contains `other` (i.e. is an equal-or-less-specific
    /// covering aggregate).
    #[must_use]
    pub fn contains(self, other: Prefix) -> bool {
        self.len <= other.len && (other.bits & mask(self.len)) == self.bits
    }

    /// Whether `addr` falls inside this prefix.
    #[must_use]
    pub fn contains_addr(self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & mask(self.len)) == self.bits
    }

    /// The immediate parent aggregate (one bit shorter), or `None` for the
    /// default route.
    #[must_use]
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::from_raw(self.bits, self.len - 1))
        }
    }

    /// The sibling prefix differing only in the last masked bit, or `None`
    /// for the default route. Supernetting two siblings yields their parent.
    #[must_use]
    pub fn sibling(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            let bit = 1u32 << (32 - self.len);
            Some(Prefix {
                bits: self.bits ^ bit,
                len: self.len,
            })
        }
    }

    /// The two children one bit longer, or `None` for a /32.
    #[must_use]
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix {
            bits: self.bits,
            len: self.len + 1,
        };
        let right = Prefix {
            bits: self.bits | (1u32 << (31 - self.len)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// Number of host addresses covered (saturating at `u64` range; a /0
    /// covers 2^32).
    #[must_use]
    pub fn size(self) -> u64 {
        1u64 << (32 - u64::from(self.len))
    }

    /// The value of bit `i` (0 = most significant) of the network address.
    /// Used by the radix trie in `iri-rib`.
    #[must_use]
    pub fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        self.bits & (1u32 << (31 - i)) != 0
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_owned()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_owned()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_owned()))?;
        Prefix::new(addr, len)
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display_and_classic() {
        assert_eq!(Asn(701).to_string(), "AS701");
        assert!(Asn(65_535).is_classic());
        assert!(!Asn(70_000).is_classic());
    }

    #[test]
    fn prefix_parse_roundtrip() {
        let p: Prefix = "192.42.113.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "192.42.113.0/24");
        assert_eq!(p.len(), 24);
        assert_eq!(p.network(), Ipv4Addr::new(192, 42, 113, 0));
    }

    #[test]
    fn prefix_parse_masks_host_bits() {
        let p: Prefix = "10.1.2.3/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn prefix_strict_rejects_host_bits() {
        let e = Prefix::new_strict(Ipv4Addr::new(10, 1, 2, 3), 8).unwrap_err();
        assert_eq!(e, PrefixError::HostBitsSet);
        assert!(Prefix::new_strict(Ipv4Addr::new(10, 0, 0, 0), 8).is_ok());
    }

    #[test]
    fn prefix_parse_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn default_route() {
        let d: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(d.is_default());
        assert_eq!(d, Prefix::DEFAULT);
        assert!(d.contains("192.0.2.0/24".parse().unwrap()));
        assert_eq!(d.parent(), None);
        assert_eq!(d.sibling(), None);
    }

    #[test]
    fn containment() {
        let agg: Prefix = "198.32.0.0/16".parse().unwrap();
        let more: Prefix = "198.32.5.0/24".parse().unwrap();
        assert!(agg.contains(more));
        assert!(!more.contains(agg));
        assert!(agg.contains(agg));
        assert!(agg.contains_addr(Ipv4Addr::new(198, 32, 200, 1)));
        assert!(!agg.contains_addr(Ipv4Addr::new(198, 33, 0, 1)));
    }

    #[test]
    fn parent_sibling_children() {
        let p: Prefix = "192.42.112.0/23".parse().unwrap();
        let (l, r) = p.children().unwrap();
        assert_eq!(l.to_string(), "192.42.112.0/24");
        assert_eq!(r.to_string(), "192.42.113.0/24");
        assert_eq!(l.sibling().unwrap(), r);
        assert_eq!(r.sibling().unwrap(), l);
        assert_eq!(l.parent().unwrap(), p);
        assert_eq!(r.parent().unwrap(), p);
        let host: Prefix = "1.2.3.4/32".parse().unwrap();
        assert!(host.children().is_none());
    }

    #[test]
    fn sizes_and_bits() {
        let p: Prefix = "128.0.0.0/1".parse().unwrap();
        assert_eq!(p.size(), 1u64 << 31);
        assert!(p.bit(0));
        let q: Prefix = "64.0.0.0/2".parse().unwrap();
        assert!(!q.bit(0));
        assert!(q.bit(1));
        assert_eq!(Prefix::DEFAULT.size(), 1u64 << 32);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v: Vec<Prefix> = ["10.0.0.0/8", "10.0.0.0/16", "9.0.0.0/8"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        v.sort();
        assert_eq!(v[0].to_string(), "9.0.0.0/8");
        assert_eq!(v[1].to_string(), "10.0.0.0/8");
        assert_eq!(v[2].to_string(), "10.0.0.0/16");
    }
}
