//! # iri-bgp — BGP-4 message model and wire codec
//!
//! This crate is the lowest substrate of the *Internet Routing Instability*
//! reproduction: a faithful model of the Border Gateway Protocol version 4
//! messages that the paper's measurement apparatus logged at the U.S. public
//! exchange points, together with an RFC 4271 wire codec.
//!
//! The paper (Labovitz, Malan, Jahanian; SIGCOMM 1997) classifies routing
//! updates by comparing the **(Prefix, NextHop, ASPATH)** tuple of successive
//! announcements; everything in this crate exists to represent and transport
//! that tuple plus the surrounding protocol machinery (OPEN negotiation,
//! KEEPALIVE liveness, NOTIFICATION errors).
//!
//! ## Layout
//!
//! - [`types`] — autonomous system numbers, IPv4 addresses and prefixes.
//! - [`path`] — `AS_PATH` segments and loop detection.
//! - [`attrs`] — path attributes and the [`attrs::RouteKey`] tuple.
//! - [`message`] — the four BGP message kinds.
//! - [`codec`] — binary encode/decode over [`bytes`].
//! - [`validate`] — semantic message validation.
//!
//! ## Quick example
//!
//! ```
//! use iri_bgp::prelude::*;
//!
//! let prefix: Prefix = "192.42.113.0/24".parse().unwrap();
//! let update = UpdateBuilder::new()
//!     .announce(prefix)
//!     .next_hop(Ipv4Addr::new(192, 41, 177, 1))
//!     .as_path(AsPath::from_sequence([Asn(3561), Asn(701)]))
//!     .origin(Origin::Igp)
//!     .build()
//!     .unwrap();
//! let wire = iri_bgp::codec::encode_message(&Message::Update(update.clone()));
//! let back = iri_bgp::codec::decode_message(&wire).unwrap();
//! assert_eq!(back, Message::Update(update));
//! ```

#![warn(missing_docs)]

pub mod attrs;
pub mod codec;
pub mod message;
pub mod path;
pub mod types;
pub mod validate;

pub use attrs::{Origin, PathAttributes, RouteKey};
pub use message::{Message, Notification, Open, Update, UpdateBuilder};
pub use path::{AsPath, PathSegment};
pub use types::{Asn, Prefix};

/// Convenience glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::attrs::{Origin, PathAttributes, RouteKey};
    pub use crate::message::{Message, Notification, Open, Update, UpdateBuilder};
    pub use crate::path::{AsPath, PathSegment};
    pub use crate::types::{Asn, Prefix};
    pub use std::net::Ipv4Addr;
}
