//! Semantic validation of BGP messages beyond what the wire codec enforces.
//!
//! The codec rejects syntactically malformed input; this module checks
//! *protocol* rules a receiving border router applies before accepting an
//! update — most importantly the AS-path loop check the paper describes:
//! "upon receipt of an update every BGP router performs loop verification by
//! testing if its own autonomous system number already exists in the ASPATH
//! of an incoming update."

use crate::message::{Message, Open, Update};
use crate::types::Asn;
use std::fmt;
use std::net::Ipv4Addr;

/// Semantic violations found by [`validate_inbound`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Our own ASN appears in the AS_PATH (routing-loop suppression).
    AsPathLoop(Asn),
    /// EBGP peer's leftmost AS does not match its configured ASN.
    FirstAsMismatch {
        /// The configured remote AS.
        expected: Asn,
        /// The leftmost AS actually present (None for an empty path).
        got: Option<Asn>,
    },
    /// NEXT_HOP is unspecified (0.0.0.0) or a martian on an announcing update.
    BadNextHop(Ipv4Addr),
    /// OPEN carried an ASN different from the configured remote ASN.
    OpenAsnMismatch {
        /// The configured remote AS.
        expected: Asn,
        /// The AS the OPEN carried.
        got: Asn,
    },
    /// OPEN carried a zero router ID.
    ZeroRouterId,
    /// The same prefix is both announced and withdrawn in one message;
    /// RFC 4271 says the announcement wins, but we surface it as a warning-
    /// grade error because the paper treats it as update pathology.
    AnnounceWithdrawOverlap,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::AsPathLoop(asn) => write!(f, "AS path loop: {asn} already in path"),
            ValidationError::FirstAsMismatch { expected, got } => {
                write!(f, "first AS mismatch: expected {expected}, got {got:?}")
            }
            ValidationError::BadNextHop(h) => write!(f, "bad next hop {h}"),
            ValidationError::OpenAsnMismatch { expected, got } => {
                write!(f, "OPEN ASN mismatch: expected {expected}, got {got}")
            }
            ValidationError::ZeroRouterId => f.write_str("OPEN router id is zero"),
            ValidationError::AnnounceWithdrawOverlap => {
                f.write_str("prefix both announced and withdrawn in one UPDATE")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Peering-session context used when validating inbound messages.
#[derive(Debug, Clone, Copy)]
pub struct PeerContext {
    /// Our own AS number.
    pub local_asn: Asn,
    /// The configured remote AS number.
    pub remote_asn: Asn,
    /// Whether the session is external (EBGP). First-AS and loop checks only
    /// apply to EBGP.
    pub ebgp: bool,
}

/// Validates an inbound message against session context.
///
/// Returns all violations found (empty means acceptable). The simulator's
/// routers drop updates with any violation; the analysis pipeline calls this
/// to count protocol-invalid messages separately.
#[must_use]
pub fn validate_inbound(ctx: &PeerContext, msg: &Message) -> Vec<ValidationError> {
    match msg {
        Message::Open(o) => validate_open(ctx, o),
        Message::Update(u) => validate_update(ctx, u),
        Message::Notification(_) | Message::Keepalive => Vec::new(),
    }
}

fn validate_open(ctx: &PeerContext, o: &Open) -> Vec<ValidationError> {
    let mut errs = Vec::new();
    if o.asn != ctx.remote_asn {
        errs.push(ValidationError::OpenAsnMismatch {
            expected: ctx.remote_asn,
            got: o.asn,
        });
    }
    if o.router_id == Ipv4Addr::UNSPECIFIED {
        errs.push(ValidationError::ZeroRouterId);
    }
    errs
}

fn validate_update(ctx: &PeerContext, u: &Update) -> Vec<ValidationError> {
    let mut errs = Vec::new();
    if let Some(attrs) = &u.attrs {
        if !u.nlri.is_empty() {
            if ctx.ebgp {
                if attrs.as_path.contains(ctx.local_asn) {
                    errs.push(ValidationError::AsPathLoop(ctx.local_asn));
                }
                let first = attrs.as_path.first();
                if first != Some(ctx.remote_asn) {
                    errs.push(ValidationError::FirstAsMismatch {
                        expected: ctx.remote_asn,
                        got: first,
                    });
                }
            }
            if attrs.next_hop == Ipv4Addr::UNSPECIFIED
                || attrs.next_hop.is_loopback()
                || attrs.next_hop.is_broadcast()
            {
                errs.push(ValidationError::BadNextHop(attrs.next_hop));
            }
        }
    }
    if u.nlri.iter().any(|p| u.withdrawn.contains(p)) {
        errs.push(ValidationError::AnnounceWithdrawOverlap);
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Origin;
    use crate::message::UpdateBuilder;
    use crate::path::AsPath;
    use crate::types::Prefix;

    fn ctx() -> PeerContext {
        PeerContext {
            local_asn: Asn(237), // Merit
            remote_asn: Asn(701),
            ebgp: true,
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(path: &[u32]) -> Message {
        Message::Update(
            UpdateBuilder::new()
                .announce(p("10.0.0.0/8"))
                .next_hop(Ipv4Addr::new(192, 41, 177, 1))
                .as_path(AsPath::from_sequence(path.iter().map(|&a| Asn(a))))
                .origin(Origin::Igp)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn clean_update_passes() {
        assert!(validate_inbound(&ctx(), &announce(&[701, 1239])).is_empty());
    }

    #[test]
    fn loop_detected() {
        let errs = validate_inbound(&ctx(), &announce(&[701, 237, 1239]));
        assert!(errs.contains(&ValidationError::AsPathLoop(Asn(237))));
    }

    #[test]
    fn first_as_mismatch_detected() {
        let errs = validate_inbound(&ctx(), &announce(&[1239, 701]));
        assert!(matches!(
            errs[0],
            ValidationError::FirstAsMismatch {
                expected: Asn(701),
                ..
            }
        ));
    }

    #[test]
    fn ibgp_skips_path_checks() {
        let mut c = ctx();
        c.ebgp = false;
        // Path starting with a foreign AS and even containing our ASN is
        // fine over IBGP (route reflection scenarios).
        assert!(validate_inbound(&c, &announce(&[1239, 237])).is_empty());
    }

    #[test]
    fn bad_next_hop_detected() {
        let msg = Message::Update(
            UpdateBuilder::new()
                .announce(p("10.0.0.0/8"))
                .next_hop(Ipv4Addr::UNSPECIFIED)
                .as_path(AsPath::from_sequence([Asn(701)]))
                .build()
                .unwrap(),
        );
        let errs = validate_inbound(&ctx(), &msg);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::BadNextHop(_))));
    }

    #[test]
    fn withdrawals_are_not_path_checked() {
        let msg = Message::Update(Update::withdraw([p("10.0.0.0/8")]));
        assert!(validate_inbound(&ctx(), &msg).is_empty());
    }

    #[test]
    fn announce_withdraw_overlap_detected() {
        let msg = Message::Update(
            UpdateBuilder::new()
                .announce(p("10.0.0.0/8"))
                .withdraw(p("10.0.0.0/8"))
                .next_hop(Ipv4Addr::new(1, 1, 1, 1))
                .as_path(AsPath::from_sequence([Asn(701)]))
                .build()
                .unwrap(),
        );
        let errs = validate_inbound(&ctx(), &msg);
        assert!(errs.contains(&ValidationError::AnnounceWithdrawOverlap));
    }

    #[test]
    fn open_mismatch_and_zero_id() {
        let o = Open::new(Asn(702), Ipv4Addr::UNSPECIFIED);
        let errs = validate_inbound(&ctx(), &Message::Open(o));
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn keepalive_and_notification_always_valid() {
        use crate::message::{Notification, NotificationCode};
        assert!(validate_inbound(&ctx(), &Message::Keepalive).is_empty());
        assert!(validate_inbound(
            &ctx(),
            &Message::Notification(Notification::new(NotificationCode::Cease))
        )
        .is_empty());
    }
}
