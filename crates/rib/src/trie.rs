//! A binary radix (Patricia-style) trie keyed by IPv4 prefix.
//!
//! Every RIB in the system is built on this structure: exact-match for
//! update processing, longest-prefix-match for the forwarding path of the
//! router model's cache architecture, and ordered traversal for table dumps
//! and the aggregation walk.
//!
//! The implementation is a straightforward bit trie (one level per prefix
//! bit, nodes allocated in a `Vec` arena with `u32` indices). Depth is
//! bounded at 32, so operations are O(32) without path compression; for the
//! ~40k-prefix tables of the paper's era this is comfortably fast (see the
//! `trie_ops` micro-benchmarks in `iri-bench`).

use iri_bgp::types::Prefix;

const NO_NODE: u32 = u32::MAX;

struct Node<T> {
    children: [u32; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            children: [NO_NODE, NO_NODE],
            value: None,
        }
    }
}

/// A map from [`Prefix`] to `T` supporting exact and longest-prefix match.
///
/// ```
/// use iri_rib::trie::PrefixTrie;
/// use iri_bgp::types::Prefix;
///
/// let mut table: PrefixTrie<&str> = PrefixTrie::new();
/// table.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// table.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let dest: Prefix = "10.1.2.3/32".parse().unwrap();
/// let (matched, &value) = table.longest_match(dest).unwrap();
/// assert_eq!(value, "fine");
/// assert_eq!(matched.to_string(), "10.1.0.0/16");
/// ```
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
    /// Free list of recycled node slots (all-leaf subtrees pruned on remove).
    free: Vec<u32>,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    #[must_use]
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            len: 0,
            free: Vec::new(),
        }
    }

    /// Number of stored prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no prefixes are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node::new();
            i
        } else {
            self.nodes.push(Node::new());
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut idx = 0u32;
        for i in 0..prefix.len() {
            let bit = usize::from(prefix.bit(i));
            let child = self.nodes[idx as usize].children[bit];
            idx = if child == NO_NODE {
                let new = self.alloc();
                self.nodes[idx as usize].children[bit] = new;
                new
            } else {
                child
            };
        }
        let old = self.nodes[idx as usize].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at exactly `prefix`.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        // Walk down recording the path so empty leaves can be pruned.
        let mut path: Vec<(u32, usize)> = Vec::with_capacity(usize::from(prefix.len()));
        let mut idx = 0u32;
        for i in 0..prefix.len() {
            let bit = usize::from(prefix.bit(i));
            let child = self.nodes[idx as usize].children[bit];
            if child == NO_NODE {
                return None;
            }
            path.push((idx, bit));
            idx = child;
        }
        let removed = self.nodes[idx as usize].value.take()?;
        self.len -= 1;
        // Prune childless, valueless nodes bottom-up.
        let mut cur = idx;
        while let Some((parent, bit)) = path.pop() {
            let node = &self.nodes[cur as usize];
            if node.value.is_some() || node.children != [NO_NODE, NO_NODE] {
                break;
            }
            self.nodes[parent as usize].children[bit] = NO_NODE;
            self.free.push(cur);
            cur = parent;
        }
        Some(removed)
    }

    fn find(&self, prefix: Prefix) -> Option<u32> {
        let mut idx = 0u32;
        for i in 0..prefix.len() {
            let bit = usize::from(prefix.bit(i));
            let child = self.nodes[idx as usize].children[bit];
            if child == NO_NODE {
                return None;
            }
            idx = child;
        }
        Some(idx)
    }

    /// Exact-match lookup.
    #[must_use]
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        self.find(prefix)
            .and_then(|i| self.nodes[i as usize].value.as_ref())
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        self.find(prefix)
            .and_then(|i| self.nodes[i as usize].value.as_mut())
    }

    /// Returns the entry for `prefix`, inserting `default()` if vacant.
    pub fn get_or_insert_with(&mut self, prefix: Prefix, default: impl FnOnce() -> T) -> &mut T {
        if self.get(prefix).is_none() {
            self.insert(prefix, default());
        }
        self.get_mut(prefix).expect("just inserted")
    }

    /// Whether `prefix` is stored.
    #[must_use]
    pub fn contains(&self, prefix: Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Longest-prefix match for a destination address expressed as a /32
    /// (or any prefix): the most specific stored prefix covering it.
    ///
    /// This is the lookup a router's forwarding cache performs per packet.
    #[must_use]
    pub fn longest_match(&self, dest: Prefix) -> Option<(Prefix, &T)> {
        let mut idx = 0u32;
        let mut best: Option<(Prefix, &T)> = None;
        if let Some(v) = self.nodes[0].value.as_ref() {
            best = Some((Prefix::DEFAULT, v));
        }
        for i in 0..dest.len() {
            let bit = usize::from(dest.bit(i));
            let child = self.nodes[idx as usize].children[bit];
            if child == NO_NODE {
                break;
            }
            idx = child;
            if let Some(v) = self.nodes[idx as usize].value.as_ref() {
                best = Some((Prefix::from_raw(dest.bits(), i + 1), v));
            }
        }
        best
    }

    /// Iterates all `(prefix, value)` pairs in lexicographic (numeric
    /// network, then length) trie order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            trie: self,
            stack: vec![(0u32, 0u32, 0u8, 0u8)],
        }
    }

    /// All stored prefixes covered by `covering` (including itself).
    /// Drives the aggregation walk: "an autonomous system will maintain a
    /// path to an aggregate supernet prefix as long as a path to one or more
    /// of the component prefixes is available".
    pub fn covered_by(&self, covering: Prefix) -> Vec<(Prefix, &T)> {
        let Some(start) = self.find(covering) else {
            // The covering prefix itself has no node; descend manually.
            return self.iter().filter(|(p, _)| covering.contains(*p)).collect();
        };
        let mut out = Vec::new();
        let mut stack = vec![(start, covering.bits(), covering.len())];
        while let Some((idx, bits, len)) = stack.pop() {
            let node = &self.nodes[idx as usize];
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::from_raw(bits, len), v));
            }
            for bit in [1usize, 0] {
                let child = node.children[bit];
                if child != NO_NODE {
                    let nbits = if bit == 1 {
                        bits | (1u32 << (31 - len))
                    } else {
                        bits
                    };
                    stack.push((child, nbits, len + 1));
                }
            }
        }
        out.sort_by_key(|(p, _)| (p.bits(), p.len()));
        out
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::new());
        self.free.clear();
        self.len = 0;
    }
}

/// Depth-first iterator over `(Prefix, &T)`.
pub struct Iter<'a, T> {
    trie: &'a PrefixTrie<T>,
    /// (node index, accumulated bits, depth, next child to visit 0..=2)
    stack: Vec<(u32, u32, u8, u8)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(top) = self.stack.last_mut() {
            let (idx, bits, depth, stage) = *top;
            let node = &self.trie.nodes[idx as usize];
            match stage {
                0 => {
                    top.3 = 1;
                    if let Some(v) = node.value.as_ref() {
                        return Some((Prefix::from_raw(bits, depth), v));
                    }
                }
                1 => {
                    top.3 = 2;
                    if node.children[0] != NO_NODE {
                        self.stack.push((node.children[0], bits, depth + 1, 0));
                    }
                }
                2 => {
                    top.3 = 3;
                    if node.children[1] != NO_NODE {
                        let nbits = bits | (1u32 << (31 - depth));
                        self.stack.push((node.children[1], nbits, depth + 1, 0));
                    }
                }
                _ => {
                    self.stack.pop();
                }
            }
        }
        None
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&"b"));
        assert_eq!(t.remove(p("10.0.0.0/8")), Some("b"));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn exact_match_does_not_cover() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(p("10.0.0.0/16")), None);
        assert_eq!(t.get(p("10.0.0.0/7")), None);
    }

    #[test]
    fn longest_match_picks_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        let addr = p("10.1.2.3/32");
        assert_eq!(t.longest_match(addr).unwrap().1, &"sixteen");
        assert_eq!(t.longest_match(p("10.2.0.0/32")).unwrap().1, &"eight");
        assert_eq!(t.longest_match(p("11.0.0.0/32")).unwrap().1, &"default");
    }

    #[test]
    fn longest_match_none_without_default() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.longest_match(p("11.0.0.0/32")).is_none());
    }

    #[test]
    fn default_route_storable() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, 42);
        assert_eq!(t.get(Prefix::DEFAULT), Some(&42));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(Prefix::DEFAULT), Some(42));
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let prefixes = [
            "10.0.0.0/8",
            "9.0.0.0/8",
            "10.128.0.0/9",
            "10.0.0.0/16",
            "0.0.0.0/0",
        ];
        let mut t = PrefixTrie::new();
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(pfx, _)| pfx).collect();
        assert_eq!(got.len(), prefixes.len());
        let mut expected: Vec<Prefix> = prefixes.iter().map(|s| p(s)).collect();
        expected.sort_by_key(|q| (q.bits(), q.len()));
        // Trie order: parent before child, 0-branch before 1-branch — which
        // equals (bits, len) sort for prefixes.
        assert_eq!(got, expected);
    }

    #[test]
    fn covered_by_returns_subtree() {
        let mut t = PrefixTrie::new();
        for s in ["10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16", "11.0.0.0/8"] {
            t.insert(p(s), ());
        }
        let covered: Vec<Prefix> = t
            .covered_by(p("10.0.0.0/8"))
            .into_iter()
            .map(|(q, _)| q)
            .collect();
        assert_eq!(
            covered,
            vec![p("10.0.0.0/8"), p("10.0.0.0/16"), p("10.1.0.0/16")]
        );
        // Covering prefix that isn't itself stored.
        let covered2: Vec<Prefix> = t
            .covered_by(p("10.0.0.0/9"))
            .into_iter()
            .map(|(q, _)| q)
            .collect();
        assert_eq!(covered2, vec![p("10.0.0.0/16"), p("10.1.0.0/16")]);
    }

    #[test]
    fn remove_prunes_and_recycles_nodes() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.0/24"), ());
        let allocated = t.nodes.len();
        t.remove(p("10.1.2.0/24"));
        assert!(
            t.free.len() >= 23,
            "expected pruned chain, got {}",
            t.free.len()
        );
        t.insert(p("10.1.2.0/24"), ());
        assert_eq!(t.nodes.len(), allocated, "slots must be recycled");
    }

    #[test]
    fn remove_keeps_shared_branches() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.0.0.0/16"), 2);
        t.remove(p("10.0.0.0/8"));
        assert_eq!(t.get(p("10.0.0.0/16")), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_or_insert_with() {
        let mut t: PrefixTrie<Vec<u32>> = PrefixTrie::new();
        t.get_or_insert_with(p("10.0.0.0/8"), Vec::new).push(1);
        t.get_or_insert_with(p("10.0.0.0/8"), Vec::new).push(2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&vec![1, 2]));
    }

    #[test]
    fn clear_resets() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(p("10.0.0.0/8")), None);
        t.insert(p("10.0.0.0/8"), ());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dense_sibling_prefixes() {
        let mut t = PrefixTrie::new();
        for i in 0u32..256 {
            t.insert(Prefix::from_raw(0xc0a8_0000 | (i << 8), 24), i);
        }
        assert_eq!(t.len(), 256);
        for i in 0u32..256 {
            let q = Prefix::from_raw(0xc0a8_0000 | (i << 8), 24);
            assert_eq!(t.get(q), Some(&i));
        }
        let all = t.covered_by(p("192.168.0.0/16"));
        assert_eq!(all.len(), 256);
    }
}
