//! Loc-RIB: the router's own view of best routes, produced by running the
//! decision process over all peers' candidates.
//!
//! The Loc-RIB is where forwarding instability becomes visible: each best-
//! route change here churns the forwarding cache of the route-caching
//! architecture (§3 of the paper) and is propagated to peers via
//! Adj-RIB-Out.

use crate::decision::{best_route, RouteCandidate};
use crate::trie::PrefixTrie;
use iri_bgp::types::Prefix;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Identifies a peer within a Loc-RIB by session address (unique per
/// router).
pub type PeerId = Ipv4Addr;

/// Per-prefix candidate set plus the current best selection.
struct Entry {
    candidates: BTreeMap<PeerId, RouteCandidate>,
    best: Option<RouteCandidate>,
}

/// How a prefix's best route changed after an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BestChange {
    /// The prefix became reachable (no previous best).
    NewBest(RouteCandidate),
    /// The best route was replaced by a different one.
    Replaced {
        /// The previous best.
        old: Box<RouteCandidate>,
        /// The new best.
        new: Box<RouteCandidate>,
    },
    /// The prefix became unreachable.
    Unreachable(RouteCandidate),
    /// Candidates changed but the best selection is identical.
    Unchanged,
}

impl BestChange {
    /// Whether forwarding actually changed.
    #[must_use]
    pub fn is_forwarding_change(&self) -> bool {
        !matches!(self, BestChange::Unchanged)
    }
}

/// The local routing table.
#[derive(Default)]
pub struct LocRib {
    entries: PrefixTrie<Entry>,
    /// Count of prefixes with a current best route.
    reachable: usize,
}

impl LocRib {
    /// An empty Loc-RIB.
    #[must_use]
    pub fn new() -> Self {
        LocRib {
            entries: PrefixTrie::new(),
            reachable: 0,
        }
    }

    /// Number of reachable prefixes (with a best route).
    #[must_use]
    pub fn reachable_count(&self) -> usize {
        self.reachable
    }

    /// The current best route for `prefix`.
    #[must_use]
    pub fn best(&self, prefix: Prefix) -> Option<&RouteCandidate> {
        self.entries.get(prefix).and_then(|e| e.best.as_ref())
    }

    /// Number of distinct candidate paths stored for `prefix` — the
    /// multihoming degree the paper tracks in Figure 10.
    #[must_use]
    pub fn path_count(&self, prefix: Prefix) -> usize {
        self.entries.get(prefix).map_or(0, |e| e.candidates.len())
    }

    /// Iterates `(prefix, best)` for all reachable prefixes.
    pub fn iter_best(&self) -> impl Iterator<Item = (Prefix, &RouteCandidate)> {
        self.entries
            .iter()
            .filter_map(|(p, e)| e.best.as_ref().map(|b| (p, b)))
    }

    /// Iterates `(prefix, number-of-paths)` over all prefixes with ≥1
    /// candidate.
    pub fn iter_path_counts(&self) -> impl Iterator<Item = (Prefix, usize)> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| !e.candidates.is_empty())
            .map(|(p, e)| (p, e.candidates.len()))
    }

    /// Longest-prefix match against current best routes — the forwarding
    /// lookup.
    #[must_use]
    pub fn lookup(&self, dest: Prefix) -> Option<(Prefix, &RouteCandidate)> {
        // Walk specific-to-broad: longest_match on the trie finds the most
        // specific entry, but that entry may currently have no best route;
        // fall back by popping one bit at a time.
        let mut probe = dest;
        loop {
            if let Some((p, e)) = self.entries.longest_match(probe) {
                if let Some(b) = e.best.as_ref() {
                    return Some((p, b));
                }
                // Entry exists but unreachable: retry one level up.
                match p.parent() {
                    Some(parent) => probe = parent,
                    None => return None,
                }
            } else {
                return None;
            }
        }
    }

    fn recompute(&mut self, prefix: Prefix) -> BestChange {
        let entry = self
            .entries
            .get_mut(prefix)
            .expect("recompute on existing entry");
        let new_best = best_route(entry.candidates.values()).cloned();
        let old_best = entry.best.clone();
        let change = match (&old_best, &new_best) {
            (None, None) => BestChange::Unchanged,
            (None, Some(n)) => BestChange::NewBest(n.clone()),
            (Some(o), None) => BestChange::Unreachable(o.clone()),
            (Some(o), Some(n)) if o == n => BestChange::Unchanged,
            (Some(o), Some(n)) => BestChange::Replaced {
                old: Box::new(o.clone()),
                new: Box::new(n.clone()),
            },
        };
        match (&old_best, &new_best) {
            (None, Some(_)) => self.reachable += 1,
            (Some(_), None) => self.reachable -= 1,
            _ => {}
        }
        entry.best = new_best;
        if entry.candidates.is_empty() && entry.best.is_none() {
            self.entries.remove(prefix);
        }
        change
    }

    /// Installs or replaces `peer`'s candidate for `prefix` and re-runs the
    /// decision process.
    pub fn upsert(&mut self, prefix: Prefix, peer: PeerId, cand: RouteCandidate) -> BestChange {
        let entry = self.entries.get_or_insert_with(prefix, || Entry {
            candidates: BTreeMap::new(),
            best: None,
        });
        entry.candidates.insert(peer, cand);
        self.recompute(prefix)
    }

    /// Removes `peer`'s candidate for `prefix` (withdrawal) and re-runs the
    /// decision process.
    pub fn withdraw(&mut self, prefix: Prefix, peer: PeerId) -> BestChange {
        match self.entries.get_mut(prefix) {
            Some(entry) => {
                if entry.candidates.remove(&peer).is_none() {
                    return BestChange::Unchanged;
                }
                self.recompute(prefix)
            }
            None => BestChange::Unchanged,
        }
    }

    /// Exports every candidate as flat `(prefix, peer, candidate)` rows —
    /// the spillable image of the table. Best selections are *not*
    /// exported: [`LocRib::import_candidates`] reruns the deterministic
    /// decision process, so they reconstruct bit-for-bit.
    #[must_use]
    pub fn export_candidates(&self) -> Vec<(Prefix, PeerId, RouteCandidate)> {
        self.entries
            .iter()
            .flat_map(|(p, e)| {
                e.candidates
                    .iter()
                    .map(move |(peer, cand)| (p, *peer, cand.clone()))
            })
            .collect()
    }

    /// Rebuilds the table from exported rows (the inverse of
    /// [`LocRib::export_candidates`]). The table must be empty.
    pub fn import_candidates(&mut self, rows: Vec<(Prefix, PeerId, RouteCandidate)>) {
        debug_assert_eq!(self.reachable, 0, "import into a non-empty Loc-RIB");
        for (prefix, peer, cand) in rows {
            self.upsert(prefix, peer, cand);
        }
    }

    /// Removes every candidate learned from `peer` (session loss), returning
    /// each affected prefix with its best-route change.
    pub fn drop_peer(&mut self, peer: PeerId) -> Vec<(Prefix, BestChange)> {
        let affected: Vec<Prefix> = self
            .entries
            .iter()
            .filter(|(_, e)| e.candidates.contains_key(&peer))
            .map(|(p, _)| p)
            .collect();
        affected
            .into_iter()
            .map(|p| (p, self.withdraw(p, peer)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::{Origin, PathAttributes};
    use iri_bgp::path::AsPath;
    use iri_bgp::types::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cand(path: &[u32], rid: u8) -> RouteCandidate {
        RouteCandidate {
            attrs: PathAttributes::new(
                Origin::Igp,
                AsPath::from_sequence(path.iter().map(|&a| Asn(a))),
                Ipv4Addr::new(10, 0, 0, rid),
            ),
            peer_asn: Asn(path[0]),
            peer_router_id: Ipv4Addr::new(rid, rid, rid, rid),
            peer_addr: Ipv4Addr::new(rid, rid, rid, rid),
        }
    }

    fn peer(rid: u8) -> PeerId {
        Ipv4Addr::new(rid, rid, rid, rid)
    }

    #[test]
    fn first_announcement_is_new_best() {
        let mut rib = LocRib::new();
        let c = cand(&[701], 1);
        match rib.upsert(p("10.0.0.0/8"), peer(1), c.clone()) {
            BestChange::NewBest(b) => assert_eq!(b, c),
            other => panic!("{other:?}"),
        }
        assert_eq!(rib.reachable_count(), 1);
    }

    #[test]
    fn better_route_replaces() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(2), cand(&[1239, 701], 2));
        let c = cand(&[701], 1);
        match rib.upsert(p("10.0.0.0/8"), peer(1), c.clone()) {
            BestChange::Replaced { new, .. } => assert_eq!(*new, c),
            other => panic!("{other:?}"),
        }
        assert_eq!(rib.path_count(p("10.0.0.0/8")), 2);
        assert_eq!(rib.reachable_count(), 1);
    }

    #[test]
    fn worse_route_is_unchanged() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        let change = rib.upsert(p("10.0.0.0/8"), peer(2), cand(&[1239, 3, 701], 2));
        assert_eq!(change, BestChange::Unchanged);
        assert!(!change.is_forwarding_change());
    }

    #[test]
    fn withdrawal_falls_back_to_alternative() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        rib.upsert(p("10.0.0.0/8"), peer(2), cand(&[1239, 701], 2));
        match rib.withdraw(p("10.0.0.0/8"), peer(1)) {
            BestChange::Replaced { new, .. } => {
                assert_eq!(new.peer_router_id, Ipv4Addr::new(2, 2, 2, 2));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rib.reachable_count(), 1);
    }

    #[test]
    fn last_withdrawal_makes_unreachable() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        match rib.withdraw(p("10.0.0.0/8"), peer(1)) {
            BestChange::Unreachable(_) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(rib.reachable_count(), 0);
        assert!(rib.best(p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn withdraw_unknown_is_unchanged() {
        let mut rib = LocRib::new();
        assert_eq!(
            rib.withdraw(p("10.0.0.0/8"), peer(1)),
            BestChange::Unchanged
        );
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        assert_eq!(
            rib.withdraw(p("10.0.0.0/8"), peer(9)),
            BestChange::Unchanged
        );
    }

    #[test]
    fn duplicate_upsert_is_unchanged() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        assert_eq!(
            rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1)),
            BestChange::Unchanged
        );
    }

    #[test]
    fn drop_peer_withdraws_everything_learned() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        rib.upsert(p("11.0.0.0/8"), peer(1), cand(&[701], 1));
        rib.upsert(p("10.0.0.0/8"), peer(2), cand(&[1239, 701], 2));
        let changes = rib.drop_peer(peer(1));
        assert_eq!(changes.len(), 2);
        assert_eq!(rib.reachable_count(), 1); // 10/8 survives via peer 2
        assert!(rib.best(p("11.0.0.0/8")).is_none());
    }

    #[test]
    fn lookup_longest_match_with_fallback() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        rib.upsert(p("10.1.0.0/16"), peer(2), cand(&[1239], 2));
        let (got, _) = rib.lookup(p("10.1.2.3/32")).unwrap();
        assert_eq!(got, p("10.1.0.0/16"));
        // Withdraw the /16; lookup falls back to /8.
        rib.withdraw(p("10.1.0.0/16"), peer(2));
        let (got, _) = rib.lookup(p("10.1.2.3/32")).unwrap();
        assert_eq!(got, p("10.0.0.0/8"));
        assert!(rib.lookup(p("11.0.0.0/32")).is_none());
    }

    #[test]
    fn path_counts_track_multihoming() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701], 1));
        rib.upsert(p("10.0.0.0/8"), peer(2), cand(&[1239, 701], 2));
        rib.upsert(p("11.0.0.0/8"), peer(1), cand(&[701], 1));
        let multi: Vec<_> = rib
            .iter_path_counts()
            .filter(|&(_, n)| n > 1)
            .map(|(p, _)| p)
            .collect();
        assert_eq!(multi, vec![p("10.0.0.0/8")]);
    }
}
