//! # iri-rib — routing information bases and route processing
//!
//! The substrate every BGP speaker in the reproduction stands on: prefix
//! tries, the three conceptual RIBs of RFC 4271 (Adj-RIB-In, Loc-RIB,
//! Adj-RIB-Out), the best-path decision process, routing policy, CIDR
//! aggregation, and route-flap damping.
//!
//! Two pieces are direct embodiments of mechanisms the paper discusses:
//!
//! - [`adj_out`] implements **both** a stateful Adj-RIB-Out and the
//!   **stateless BGP** variant of §4.2 — the router implementation that
//!   "will transmit withdrawals to all BGP peers regardless of whether they
//!   had previously sent the peer an announcement for the route", the
//!   identified source of the WWDup pathology.
//! - [`damping`] implements the route-dampening hold-down of reference 24
//!   (draft-ietf-idr-route-dampen, later RFC 2439), which the paper
//!   evaluates as "not a panacea".

#![warn(missing_docs)]

pub mod adj_in;
pub mod adj_out;
pub mod aggregate;
pub mod damping;
pub mod decision;
pub mod loc_rib;
pub mod policy;
pub mod stats;
pub mod trie;

pub use adj_in::AdjRibIn;
pub use adj_out::{AdjRibOut, ExportDelta, ExportEvent, StatefulAdjOut, StatelessAdjOut};
pub use decision::{best_route, compare_routes, RouteCandidate};
pub use loc_rib::LocRib;
pub use policy::{Policy, PolicyAction, PolicyRule, RouteMatcher};
pub use trie::PrefixTrie;
