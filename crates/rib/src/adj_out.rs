//! Adj-RIB-Out: what a router advertises to one peer — in two flavours, the
//! heart of the paper's §4.2 pathology analysis.
//!
//! - [`StatefulAdjOut`] remembers what was **put on the wire** to the peer
//!   and emits an update only when the advertisement actually changes.
//!   "Several products from other router vendors do maintain knowledge of
//!   the information transmitted to BGP peers and will only transmit updates
//!   when topology changes affect a route between the local and peer
//!   routers."
//!
//! - [`StatelessAdjOut`] is the time–space trade-off implementation: it
//!   keeps **no** per-peer state, re-announcing every flush and transmitting
//!   withdrawals "to all BGP peers regardless of whether they had previously
//!   sent the peer an announcement for the route", for every explicitly
//!   *and implicitly* withdrawn prefix. This is the identified origin of the
//!   WWDup floods (ISP-I's 2.4 million withdrawals for 14,112 prefixes in
//!   Table 1) and is, as the paper notes, *compliant* with the BGP standard.
//!
//! The processor is invoked at **flush time** (when the update-packing/MRAI
//! timer fires), after per-prefix squashing of intra-window changes. This
//! placement matters: a route that went A1→A2→A1 inside one timer window
//! squashes to a net re-announcement of A1, which the stateful
//! implementation suppresses against its wire state and the stateless one
//! transmits — producing exactly the AADup (and, for W→A→W, the WWDup)
//! pathology the paper attributes to the timer/statelessness interaction.
//!
//! Both flavours implement [`AdjRibOut`], so the simulator's router model
//! can A/B them (the `ablation_stateless` bench).

use crate::trie::PrefixTrie;
use iri_bgp::attrs::PathAttributes;
use iri_bgp::types::Prefix;

/// The net, squashed effect of one timer window on one prefix, as handed to
/// the export processor at flush time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportEvent {
    /// The prefix ends the window reachable with these post-policy
    /// attributes. `replaced` records whether the window contained an
    /// implicit or explicit withdrawal of a previous route (the A→A′ or
    /// W→A shapes), which a stateless implementation propagates as an
    /// explicit withdrawal.
    Reachable {
        /// Post-policy attributes to advertise.
        attrs: PathAttributes,
        /// Whether an (implicit) withdrawal occurred within the window.
        replaced: bool,
    },
    /// The prefix ends the window unreachable (or newly policy-filtered for
    /// this peer).
    Unreachable,
}

/// What a router should transmit to a peer after a flush event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExportDelta {
    /// Prefix announcements to send (prefix + post-policy attributes).
    pub announce: Vec<(Prefix, PathAttributes)>,
    /// Prefix withdrawals to send.
    pub withdraw: Vec<Prefix>,
}

impl ExportDelta {
    /// Whether nothing needs to be sent.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.announce.is_empty() && self.withdraw.is_empty()
    }

    /// Total prefix events carried.
    #[must_use]
    pub fn len(&self) -> usize {
        self.announce.len() + self.withdraw.len()
    }
}

/// Per-peer export behaviour.
pub trait AdjRibOut {
    /// Processes the net effect of one flush window for `prefix`, returning
    /// what to put on the wire.
    fn on_export(&mut self, prefix: Prefix, event: &ExportEvent) -> ExportDelta;

    /// Full-table dump at session establishment ("generating large state
    /// dump transmissions"). `routes` is the post-policy view of the
    /// Loc-RIB.
    fn initial_dump(&mut self, routes: &[(Prefix, PathAttributes)]) -> ExportDelta;

    /// Forget all wire state (session dropped).
    fn reset(&mut self);

    /// Number of prefixes this peer is currently known to hold
    /// (0 for the stateless implementation, by construction).
    fn advertised_count(&self) -> usize;

    /// Human-readable implementation name for reports.
    fn name(&self) -> &'static str;

    /// Exports the wire state as owned rows, for spill-to-disk. The
    /// stateless implementation has no per-prefix state and returns the
    /// default empty vec.
    fn export_advertised(&self) -> Vec<(Prefix, PathAttributes)> {
        Vec::new()
    }

    /// Restores wire state exported by
    /// [`AdjRibOut::export_advertised`]. A no-op for stateless
    /// implementations.
    fn import_advertised(&mut self, _rows: Vec<(Prefix, PathAttributes)>) {}
}

/// The well-behaved implementation: remembers the last advertisement put on
/// the wire per prefix and suppresses no-ops.
#[derive(Default)]
pub struct StatefulAdjOut {
    advertised: PrefixTrie<PathAttributes>,
}

impl StatefulAdjOut {
    /// New empty state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AdjRibOut for StatefulAdjOut {
    fn on_export(&mut self, prefix: Prefix, event: &ExportEvent) -> ExportDelta {
        let mut delta = ExportDelta::default();
        match event {
            ExportEvent::Reachable { attrs, .. } => {
                if self.advertised.get(prefix) != Some(attrs) {
                    self.advertised.insert(prefix, attrs.clone());
                    delta.announce.push((prefix, attrs.clone()));
                }
            }
            ExportEvent::Unreachable => {
                // Withdraw only if the peer was actually told about the
                // route.
                if self.advertised.remove(prefix).is_some() {
                    delta.withdraw.push(prefix);
                }
            }
        }
        delta
    }

    fn initial_dump(&mut self, routes: &[(Prefix, PathAttributes)]) -> ExportDelta {
        let mut delta = ExportDelta::default();
        for (prefix, attrs) in routes {
            self.advertised.insert(*prefix, attrs.clone());
            delta.announce.push((*prefix, attrs.clone()));
        }
        delta
    }

    fn reset(&mut self) {
        self.advertised.clear();
    }

    fn advertised_count(&self) -> usize {
        self.advertised.len()
    }

    fn name(&self) -> &'static str {
        "stateful"
    }

    fn export_advertised(&self) -> Vec<(Prefix, PathAttributes)> {
        self.advertised
            .iter()
            .map(|(p, a)| (p, a.clone()))
            .collect()
    }

    fn import_advertised(&mut self, rows: Vec<(Prefix, PathAttributes)>) {
        self.advertised.clear();
        for (prefix, attrs) in rows {
            self.advertised.insert(prefix, attrs);
        }
    }
}

/// The pathological stateless implementation of §4.2.
///
/// No memory of what the peer was told. Every flush transmits the net
/// result verbatim: re-announcements go out even when identical to what the
/// peer already holds (AADup at the receiver), withdrawals go out even to
/// peers that never heard an announcement (WWDup at the receiver), and a
/// replacement within the window emits an explicit withdrawal *plus* the
/// announcement.
#[derive(Default)]
pub struct StatelessAdjOut {
    /// Counts messages for diagnostics only — deliberately no per-prefix
    /// state.
    withdrawals_sent: u64,
}

impl StatelessAdjOut {
    /// New instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total withdrawals blasted so far.
    #[must_use]
    pub fn withdrawals_sent(&self) -> u64 {
        self.withdrawals_sent
    }
}

impl AdjRibOut for StatelessAdjOut {
    fn on_export(&mut self, prefix: Prefix, event: &ExportEvent) -> ExportDelta {
        let mut delta = ExportDelta::default();
        match event {
            ExportEvent::Reachable { attrs, replaced } => {
                if *replaced {
                    // Implicit withdrawal propagated explicitly — blind.
                    self.withdrawals_sent += 1;
                    delta.withdraw.push(prefix);
                }
                delta.announce.push((prefix, attrs.clone()));
            }
            ExportEvent::Unreachable => {
                // Withdraw regardless of whether this peer ever heard an
                // announcement — the WWDup engine.
                self.withdrawals_sent += 1;
                delta.withdraw.push(prefix);
            }
        }
        delta
    }

    fn initial_dump(&mut self, routes: &[(Prefix, PathAttributes)]) -> ExportDelta {
        ExportDelta {
            announce: routes.to_vec(),
            withdraw: Vec::new(),
        }
    }

    fn reset(&mut self) {}

    fn advertised_count(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "stateless"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::Origin;
    use iri_bgp::path::AsPath;
    use iri_bgp::types::Asn;
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u32]) -> PathAttributes {
        PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence(path.iter().map(|&a| Asn(a))),
            Ipv4Addr::new(10, 0, 0, 1),
        )
    }

    fn reachable(path: &[u32], replaced: bool) -> ExportEvent {
        ExportEvent::Reachable {
            attrs: attrs(path),
            replaced,
        }
    }

    #[test]
    fn stateful_announces_once() {
        let mut out = StatefulAdjOut::new();
        let d1 = out.on_export(p("10.0.0.0/8"), &reachable(&[701], false));
        assert_eq!(d1.announce.len(), 1);
        assert_eq!(d1.len(), 1);
        // Identical net result next window (the A1→A2→A1 squash): suppressed.
        let d2 = out.on_export(p("10.0.0.0/8"), &reachable(&[701], true));
        assert!(d2.is_empty());
        assert_eq!(out.advertised_count(), 1);
    }

    #[test]
    fn stateful_withdraws_only_if_advertised() {
        let mut out = StatefulAdjOut::new();
        // Never announced → no withdrawal on unreachable.
        let d = out.on_export(p("10.0.0.0/8"), &ExportEvent::Unreachable);
        assert!(d.is_empty());
        // Announce then unreachable → exactly one withdrawal.
        out.on_export(p("10.0.0.0/8"), &reachable(&[701], false));
        let d = out.on_export(p("10.0.0.0/8"), &ExportEvent::Unreachable);
        assert_eq!(d.withdraw, vec![p("10.0.0.0/8")]);
        assert_eq!(out.advertised_count(), 0);
        // Second unreachable in a row: nothing (no WWDup from stateful).
        let d = out.on_export(p("10.0.0.0/8"), &ExportEvent::Unreachable);
        assert!(d.is_empty());
    }

    #[test]
    fn stateful_replacement_announces_new_attrs_without_withdraw() {
        let mut out = StatefulAdjOut::new();
        out.on_export(p("10.0.0.0/8"), &reachable(&[701], false));
        let d = out.on_export(p("10.0.0.0/8"), &reachable(&[1239], true));
        assert_eq!(d.announce.len(), 1);
        assert!(d.withdraw.is_empty(), "stateful uses implicit withdrawal");
    }

    #[test]
    fn stateful_reset_forgets_wire_state() {
        let mut out = StatefulAdjOut::new();
        out.on_export(p("10.0.0.0/8"), &reachable(&[701], false));
        out.reset();
        assert_eq!(out.advertised_count(), 0);
        // After reset the same route is announced again (fresh session).
        let d = out.on_export(p("10.0.0.0/8"), &reachable(&[701], false));
        assert_eq!(d.announce.len(), 1);
    }

    #[test]
    fn stateless_withdraws_blindly() {
        let mut out = StatelessAdjOut::new();
        let d = out.on_export(p("10.0.0.0/8"), &ExportEvent::Unreachable);
        assert_eq!(d.withdraw, vec![p("10.0.0.0/8")]);
        assert_eq!(out.withdrawals_sent(), 1);
    }

    #[test]
    fn stateless_replacement_sends_withdraw_plus_announce() {
        let mut out = StatelessAdjOut::new();
        let d = out.on_export(p("10.0.0.0/8"), &reachable(&[1239], true));
        assert_eq!(d.withdraw, vec![p("10.0.0.0/8")]);
        assert_eq!(d.announce.len(), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn stateless_reannounces_identical_route() {
        // The AADup engine: the A1→A2→A1 squash transmits A1 although the
        // peer already holds it.
        let mut out = StatelessAdjOut::new();
        let d1 = out.on_export(p("10.0.0.0/8"), &reachable(&[701], false));
        assert_eq!(d1.announce.len(), 1);
        let d2 = out.on_export(p("10.0.0.0/8"), &reachable(&[701], true));
        assert_eq!(d2.announce.len(), 1, "duplicate announcement transmitted");
    }

    #[test]
    fn stateless_repeats_identical_unreachable() {
        let mut out = StatelessAdjOut::new();
        for _ in 0..6 {
            let d = out.on_export(p("192.42.113.0/24"), &ExportEvent::Unreachable);
            assert_eq!(d.withdraw.len(), 1);
        }
        // Six withdrawals for a prefix the peer never saw announced —
        // exactly the ISP-Y trace of May 25 1996.
        assert_eq!(out.withdrawals_sent(), 6);
    }

    #[test]
    fn initial_dump_both_flavours() {
        let routes = vec![
            (p("10.0.0.0/8"), attrs(&[701])),
            (p("11.0.0.0/8"), attrs(&[1239])),
        ];
        let mut sf = StatefulAdjOut::new();
        let d = sf.initial_dump(&routes);
        assert_eq!(d.announce.len(), 2);
        assert_eq!(sf.advertised_count(), 2);

        let mut sl = StatelessAdjOut::new();
        let d = sl.initial_dump(&routes);
        assert_eq!(d.announce.len(), 2);
        assert_eq!(sl.advertised_count(), 0);
    }

    #[test]
    fn names() {
        assert_eq!(StatefulAdjOut::new().name(), "stateful");
        assert_eq!(StatelessAdjOut::new().name(), "stateless");
    }
}
