//! CIDR route aggregation ("supernetting").
//!
//! "Aggregation is a powerful tool to combat instability because it can
//! reduce the overall number of networks visible in the core Internet" and
//! it "effectively limits the visibility of instability stemming from
//! unstable customer circuits or routers to the scope of a single autonomous
//! system." This module provides the two operations the simulator's
//! provider-edge routers use:
//!
//! - [`aggregate_set`]: collapse a set of prefixes into the minimal covering
//!   set by merging complete sibling pairs bottom-up (exact aggregation —
//!   no over-claiming of address space).
//! - [`Aggregator`]: a configured supernet that is advertised as long as at
//!   least one component prefix is reachable, hiding component-level flaps.

use crate::trie::PrefixTrie;
use iri_bgp::types::Prefix;
use std::collections::BTreeSet;

/// Collapses `prefixes` into the minimal exact covering set: merges sibling
/// pairs into parents repeatedly and removes prefixes covered by another
/// member. The result covers exactly the same address space.
///
/// ```
/// use iri_rib::aggregate::aggregate_set;
/// use iri_bgp::types::Prefix;
///
/// let parts: Vec<Prefix> = ["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// let agg = aggregate_set(parts);
/// assert_eq!(agg.len(), 1);
/// assert_eq!(agg[0].to_string(), "10.0.0.0/22");
/// ```
#[must_use]
pub fn aggregate_set<I: IntoIterator<Item = Prefix>>(prefixes: I) -> Vec<Prefix> {
    let mut set: BTreeSet<(u8, u32)> = prefixes.into_iter().map(|p| (p.len(), p.bits())).collect();

    // Iterate longest-first so sibling merges cascade upward in one pass
    // per level.
    loop {
        let mut changed = false;
        // Remove covered prefixes: build a trie of current members and keep
        // only those without a shorter covering member.
        let trie: PrefixTrie<()> = set
            .iter()
            .map(|&(l, b)| (Prefix::from_raw(b, l), ()))
            .collect();
        let mut next: BTreeSet<(u8, u32)> = BTreeSet::new();
        for &(l, b) in &set {
            let p = Prefix::from_raw(b, l);
            let covered_by_other = match trie.longest_match(p) {
                // longest_match(p) finds most specific stored prefix along
                // p's own bit path, which may be p itself.
                Some((m, ())) if m != p => true,
                _ => {
                    // Check all shorter lengths along the path explicitly:
                    // longest_match returns the most specific, which is p
                    // itself when stored; probe the parent chain instead.
                    let mut q = p.parent();
                    let mut found = false;
                    while let Some(anc) = q {
                        if trie.contains(anc) {
                            found = true;
                            break;
                        }
                        q = anc.parent();
                    }
                    found
                }
            };
            if covered_by_other {
                changed = true;
            } else {
                next.insert((l, b));
            }
        }
        set = next;

        // Merge complete sibling pairs.
        let mut merged: BTreeSet<(u8, u32)> = BTreeSet::new();
        let mut consumed: BTreeSet<(u8, u32)> = BTreeSet::new();
        for &(l, b) in &set {
            if consumed.contains(&(l, b)) {
                continue;
            }
            let p = Prefix::from_raw(b, l);
            if let Some(sib) = p.sibling() {
                let sib_key = (sib.len(), sib.bits());
                if set.contains(&sib_key) && !consumed.contains(&sib_key) {
                    let parent = p.parent().expect("len>0 since sibling exists");
                    merged.insert((parent.len(), parent.bits()));
                    consumed.insert((l, b));
                    consumed.insert(sib_key);
                    changed = true;
                    continue;
                }
            }
            merged.insert((l, b));
        }
        set = merged;
        if !changed {
            break;
        }
    }
    set.into_iter()
        .map(|(l, b)| Prefix::from_raw(b, l))
        .collect()
}

/// A configured aggregate: a supernet advertised while any component is
/// reachable.
#[derive(Debug, Clone)]
pub struct Aggregator {
    /// The advertised supernet.
    pub supernet: Prefix,
    /// Currently reachable component prefixes.
    components: BTreeSet<Prefix>,
}

/// Visible effect of a component change on the aggregate advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateChange {
    /// The supernet just became advertisable.
    Appeared,
    /// The supernet just lost its last component.
    Vanished,
    /// No externally visible change — instability absorbed. This case is
    /// the whole point of aggregation: component flaps stay invisible.
    Hidden,
    /// The prefix is not covered by this aggregate.
    NotCovered,
}

impl Aggregator {
    /// New aggregate with no reachable components.
    #[must_use]
    pub fn new(supernet: Prefix) -> Self {
        Aggregator {
            supernet,
            components: BTreeSet::new(),
        }
    }

    /// Whether the supernet is currently advertised.
    #[must_use]
    pub fn advertised(&self) -> bool {
        !self.components.is_empty()
    }

    /// Number of reachable components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// A component became reachable.
    pub fn component_up(&mut self, prefix: Prefix) -> AggregateChange {
        if !self.supernet.contains(prefix) {
            return AggregateChange::NotCovered;
        }
        let was_empty = self.components.is_empty();
        self.components.insert(prefix);
        if was_empty {
            AggregateChange::Appeared
        } else {
            AggregateChange::Hidden
        }
    }

    /// A component became unreachable.
    pub fn component_down(&mut self, prefix: Prefix) -> AggregateChange {
        if !self.supernet.contains(prefix) {
            return AggregateChange::NotCovered;
        }
        self.components.remove(&prefix);
        if self.components.is_empty() {
            AggregateChange::Vanished
        } else {
            AggregateChange::Hidden
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn agg(input: &[&str]) -> Vec<String> {
        aggregate_set(input.iter().map(|s| p(s)))
            .into_iter()
            .map(|q| q.to_string())
            .collect()
    }

    #[test]
    fn sibling_pair_merges() {
        assert_eq!(agg(&["10.0.0.0/24", "10.0.1.0/24"]), vec!["10.0.0.0/23"]);
    }

    #[test]
    fn cascade_merges_to_single_supernet() {
        assert_eq!(
            agg(&["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"]),
            vec!["10.0.0.0/22"]
        );
    }

    #[test]
    fn non_siblings_stay_separate() {
        // /24s at 1 and 2 are not siblings (sibling pairs are (0,1),(2,3)).
        assert_eq!(
            agg(&["10.0.1.0/24", "10.0.2.0/24"]),
            vec!["10.0.1.0/24", "10.0.2.0/24"]
        );
    }

    #[test]
    fn covered_prefixes_are_absorbed() {
        assert_eq!(agg(&["10.0.0.0/8", "10.1.0.0/16"]), vec!["10.0.0.0/8"]);
    }

    #[test]
    fn duplicates_collapse() {
        assert_eq!(agg(&["10.0.0.0/8", "10.0.0.0/8"]), vec!["10.0.0.0/8"]);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(agg(&[]).is_empty());
    }

    #[test]
    fn mixed_scenario() {
        // Two mergeable /24s + one covered /25 + one lone /24 elsewhere.
        assert_eq!(
            agg(&[
                "10.0.0.0/24",
                "10.0.1.0/24",
                "10.0.0.0/25",
                "192.168.5.0/24"
            ]),
            vec!["10.0.0.0/23", "192.168.5.0/24"]
        );
    }

    #[test]
    fn aggregation_preserves_coverage() {
        let input: Vec<Prefix> = (0u32..64)
            .map(|i| Prefix::from_raw(0x0a00_0000 | (i << 10), 22))
            .collect();
        let out = aggregate_set(input.iter().copied());
        assert_eq!(out, vec![p("10.0.0.0/16")]);
        for q in &input {
            assert!(out.iter().any(|o| o.contains(*q)));
        }
    }

    #[test]
    fn aggregator_hides_component_flaps() {
        let mut a = Aggregator::new(p("198.32.0.0/16"));
        assert!(!a.advertised());
        assert_eq!(
            a.component_up(p("198.32.1.0/24")),
            AggregateChange::Appeared
        );
        assert_eq!(a.component_up(p("198.32.2.0/24")), AggregateChange::Hidden);
        // One component flaps: externally invisible.
        assert_eq!(
            a.component_down(p("198.32.2.0/24")),
            AggregateChange::Hidden
        );
        assert_eq!(a.component_up(p("198.32.2.0/24")), AggregateChange::Hidden);
        // Last component gone: aggregate vanishes.
        assert_eq!(
            a.component_down(p("198.32.2.0/24")),
            AggregateChange::Hidden
        );
        assert_eq!(
            a.component_down(p("198.32.1.0/24")),
            AggregateChange::Vanished
        );
        assert!(!a.advertised());
    }

    #[test]
    fn aggregator_rejects_uncovered() {
        let mut a = Aggregator::new(p("198.32.0.0/16"));
        assert_eq!(
            a.component_up(p("10.0.0.0/24")),
            AggregateChange::NotCovered
        );
        assert_eq!(a.component_count(), 0);
    }

    #[test]
    fn aggregator_idempotent_component_up() {
        let mut a = Aggregator::new(p("198.32.0.0/16"));
        a.component_up(p("198.32.1.0/24"));
        assert_eq!(a.component_up(p("198.32.1.0/24")), AggregateChange::Hidden);
        assert_eq!(a.component_count(), 1);
    }
}
