//! Routing policy: the filters and attribute rewrites a border router
//! applies on import and export.
//!
//! "A routing policy may specify the filtering of specific routes, or the
//! modification of path attributes sent to neighbor routers." Policies are
//! ordered rule lists (route-map style): the first matching rule decides.
//! Also included is the "draconian" mitigation the paper mentions — ISPs
//! "filtering all route announcements longer than a given prefix length"
//! ([`Policy::max_prefix_len`]).

use iri_bgp::attrs::PathAttributes;
use iri_bgp::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};

/// Matching condition for one rule. All present conditions must hold.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RouteMatcher {
    /// Prefix must be covered by one of these (empty = any prefix).
    pub prefix_in: Vec<Prefix>,
    /// Prefix must equal one of these exactly (empty = no constraint).
    pub prefix_exact: Vec<Prefix>,
    /// Prefix length must be at most this (route-length filtering).
    pub max_len: Option<u8>,
    /// AS path must contain this AS.
    pub path_contains: Option<Asn>,
    /// Route's origin AS must be this.
    pub origin_as: Option<Asn>,
    /// Attributes must carry this community.
    pub has_community: Option<u32>,
}

impl RouteMatcher {
    /// Matches everything.
    #[must_use]
    pub fn any() -> Self {
        RouteMatcher::default()
    }

    /// Whether `(prefix, attrs)` satisfies all conditions.
    #[must_use]
    pub fn matches(&self, prefix: Prefix, attrs: &PathAttributes) -> bool {
        if !self.prefix_in.is_empty() && !self.prefix_in.iter().any(|c| c.contains(prefix)) {
            return false;
        }
        if !self.prefix_exact.is_empty() && !self.prefix_exact.contains(&prefix) {
            return false;
        }
        if let Some(max) = self.max_len {
            if prefix.len() > max {
                return false;
            }
        }
        if let Some(asn) = self.path_contains {
            if !attrs.as_path.contains(asn) {
                return false;
            }
        }
        if let Some(asn) = self.origin_as {
            if attrs.as_path.origin_as() != Some(asn) {
                return false;
            }
        }
        if let Some(c) = self.has_community {
            if !attrs.communities.contains(&c) {
                return false;
            }
        }
        true
    }
}

/// What to do with a matched route.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Accept unchanged.
    Accept,
    /// Drop the route.
    Reject,
    /// Accept with attribute modifications.
    Modify {
        /// Set LOCAL_PREF.
        set_local_pref: Option<u32>,
        /// Set MED.
        set_med: Option<u32>,
        /// Add a community.
        add_community: Option<u32>,
        /// Prepend own AS this many extra times (path poisoning / traffic
        /// engineering — a policy fluctuation generator in experiments).
        prepend: u8,
    },
}

/// One ordered rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Condition.
    pub matcher: RouteMatcher,
    /// Action on match.
    pub action: PolicyAction,
}

/// An ordered rule list with a default action.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Policy {
    /// Rules evaluated in order; first match wins.
    pub rules: Vec<PolicyRule>,
    /// Whether unmatched routes are accepted.
    pub default_accept: bool,
}

impl Default for Policy {
    fn default() -> Self {
        Policy::accept_all()
    }
}

impl Policy {
    /// Accepts everything unchanged.
    #[must_use]
    pub fn accept_all() -> Self {
        Policy {
            rules: Vec::new(),
            default_accept: true,
        }
    }

    /// Rejects everything (e.g. a customer-only export to a peer).
    #[must_use]
    pub fn reject_all() -> Self {
        Policy {
            rules: Vec::new(),
            default_accept: false,
        }
    }

    /// The "draconian" length filter: rejects announcements more specific
    /// than `/max_len`, accepts the rest.
    #[must_use]
    pub fn max_prefix_len(max_len: u8, asn: Asn) -> Self {
        // The matcher keys on length only; `asn` documents whose policy this
        // is for debugging (carried in a community tag).
        Policy {
            rules: vec![
                PolicyRule {
                    matcher: RouteMatcher {
                        max_len: Some(max_len),
                        ..RouteMatcher::any()
                    },
                    action: PolicyAction::Modify {
                        set_local_pref: None,
                        set_med: None,
                        add_community: Some(asn.0 << 16),
                        prepend: 0,
                    },
                },
                PolicyRule {
                    matcher: RouteMatcher::any(),
                    action: PolicyAction::Reject,
                },
            ],
            default_accept: false,
        }
    }

    /// Applies the policy. Returns the (possibly rewritten) attributes, or
    /// `None` if the route is filtered. `local_asn` is used for prepending.
    #[must_use]
    pub fn apply(
        &self,
        prefix: Prefix,
        attrs: &PathAttributes,
        local_asn: Asn,
    ) -> Option<PathAttributes> {
        for rule in &self.rules {
            if rule.matcher.matches(prefix, attrs) {
                return match &rule.action {
                    PolicyAction::Accept => Some(attrs.clone()),
                    PolicyAction::Reject => None,
                    PolicyAction::Modify {
                        set_local_pref,
                        set_med,
                        add_community,
                        prepend,
                    } => {
                        let mut out = attrs.clone();
                        if let Some(lp) = set_local_pref {
                            out.local_pref = Some(*lp);
                        }
                        if let Some(med) = set_med {
                            out.med = Some(*med);
                        }
                        if let Some(c) = add_community {
                            if !out.communities.contains(c) {
                                out.communities.push(*c);
                            }
                        }
                        for _ in 0..*prepend {
                            out.as_path = out.as_path.prepend(local_asn);
                        }
                        Some(out)
                    }
                };
            }
        }
        if self.default_accept {
            Some(attrs.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::Origin;
    use iri_bgp::path::AsPath;
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u32]) -> PathAttributes {
        PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence(path.iter().map(|&a| Asn(a))),
            Ipv4Addr::new(10, 0, 0, 1),
        )
    }

    #[test]
    fn accept_all_and_reject_all() {
        let a = attrs(&[701]);
        assert!(Policy::accept_all()
            .apply(p("10.0.0.0/8"), &a, Asn(1))
            .is_some());
        assert!(Policy::reject_all()
            .apply(p("10.0.0.0/8"), &a, Asn(1))
            .is_none());
    }

    #[test]
    fn first_match_wins() {
        let policy = Policy {
            rules: vec![
                PolicyRule {
                    matcher: RouteMatcher {
                        prefix_in: vec![p("10.0.0.0/8")],
                        ..RouteMatcher::any()
                    },
                    action: PolicyAction::Reject,
                },
                PolicyRule {
                    matcher: RouteMatcher::any(),
                    action: PolicyAction::Accept,
                },
            ],
            default_accept: false,
        };
        assert!(policy
            .apply(p("10.1.0.0/16"), &attrs(&[701]), Asn(1))
            .is_none());
        assert!(policy
            .apply(p("11.0.0.0/8"), &attrs(&[701]), Asn(1))
            .is_some());
    }

    #[test]
    fn max_prefix_len_filter() {
        let policy = Policy::max_prefix_len(24, Asn(690));
        assert!(policy
            .apply(p("10.0.0.0/24"), &attrs(&[701]), Asn(690))
            .is_some());
        assert!(policy
            .apply(p("10.0.0.0/25"), &attrs(&[701]), Asn(690))
            .is_none());
        assert!(policy
            .apply(p("10.0.0.0/8"), &attrs(&[701]), Asn(690))
            .is_some());
    }

    #[test]
    fn matcher_path_and_origin_as() {
        let m = RouteMatcher {
            path_contains: Some(Asn(701)),
            origin_as: Some(Asn(1239)),
            ..RouteMatcher::any()
        };
        assert!(m.matches(p("10.0.0.0/8"), &attrs(&[3561, 701, 1239])));
        assert!(!m.matches(p("10.0.0.0/8"), &attrs(&[3561, 1239])));
        assert!(!m.matches(p("10.0.0.0/8"), &attrs(&[701, 42])));
    }

    #[test]
    fn matcher_exact_prefix_and_community() {
        let m = RouteMatcher {
            prefix_exact: vec![p("192.42.113.0/24")],
            has_community: Some(7),
            ..RouteMatcher::any()
        };
        let mut a = attrs(&[701]);
        assert!(!m.matches(p("192.42.113.0/24"), &a));
        a.communities.push(7);
        assert!(m.matches(p("192.42.113.0/24"), &a));
        assert!(!m.matches(p("192.42.112.0/24"), &a));
    }

    #[test]
    fn modify_rewrites_attributes() {
        let policy = Policy {
            rules: vec![PolicyRule {
                matcher: RouteMatcher::any(),
                action: PolicyAction::Modify {
                    set_local_pref: Some(200),
                    set_med: Some(5),
                    add_community: Some(0xdead),
                    prepend: 2,
                },
            }],
            default_accept: false,
        };
        let out = policy
            .apply(p("10.0.0.0/8"), &attrs(&[701]), Asn(690))
            .unwrap();
        assert_eq!(out.local_pref, Some(200));
        assert_eq!(out.med, Some(5));
        assert!(out.communities.contains(&0xdead));
        assert_eq!(out.as_path.to_string(), "690 690 701");
        // Modification is a *policy fluctuation* signature: forwarding tuple
        // changed here because of the prepend, but a community-only change
        // keeps it.
        let policy2 = Policy {
            rules: vec![PolicyRule {
                matcher: RouteMatcher::any(),
                action: PolicyAction::Modify {
                    set_local_pref: None,
                    set_med: None,
                    add_community: Some(1),
                    prepend: 0,
                },
            }],
            default_accept: false,
        };
        let out2 = policy2
            .apply(p("10.0.0.0/8"), &attrs(&[701]), Asn(690))
            .unwrap();
        assert!(out2.same_forwarding(&attrs(&[701])));
    }

    #[test]
    fn modify_does_not_duplicate_community() {
        let policy = Policy {
            rules: vec![PolicyRule {
                matcher: RouteMatcher::any(),
                action: PolicyAction::Modify {
                    set_local_pref: None,
                    set_med: None,
                    add_community: Some(9),
                    prepend: 0,
                },
            }],
            default_accept: false,
        };
        let mut a = attrs(&[701]);
        a.communities.push(9);
        let out = policy.apply(p("10.0.0.0/8"), &a, Asn(690)).unwrap();
        assert_eq!(out.communities, vec![9]);
    }
}
