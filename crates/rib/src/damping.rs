//! Route-flap damping (Villamizar/Chandra/Govindan, reference 24 of the
//! paper; standardised later as RFC 2439).
//!
//! "These algorithms 'hold-down', or refuse to believe, updates about routes
//! that exceed certain parameters of instability … Route dampening
//! algorithms, however, are not a panacea. Dampening algorithms can
//! introduce artificial connectivity problems, as 'legitimate' announcements
//! about a new network may be delayed due to earlier dampened instability."
//!
//! The implementation is the classic penalty model: each flap adds a fixed
//! penalty; the penalty decays exponentially with a configurable half-life;
//! a route whose penalty exceeds the *suppress* threshold is held down until
//! decay brings it under the *reuse* threshold (bounded by a maximum
//! suppress time). The `ablation_damping` bench measures both sides of the
//! trade-off: updates saved vs reachability delay added.

use iri_bgp::types::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Milliseconds of simulated time (matches `iri-netsim`'s clock).
pub type Millis = u64;

/// Damping parameters. Defaults mirror the classic Cisco values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DampingConfig {
    /// Penalty added per withdrawal flap.
    pub withdrawal_penalty: f64,
    /// Penalty added per re-announcement or attribute-change flap.
    pub announcement_penalty: f64,
    /// Penalty above which a route is suppressed.
    pub suppress_threshold: f64,
    /// Penalty below which a suppressed route is reusable.
    pub reuse_threshold: f64,
    /// Exponential decay half-life.
    pub half_life: Millis,
    /// Hard cap on suppression time.
    pub max_suppress: Millis,
    /// Penalty ceiling (prevents unbounded accumulation).
    pub max_penalty: f64,
}

impl Default for DampingConfig {
    fn default() -> Self {
        DampingConfig {
            withdrawal_penalty: 1000.0,
            announcement_penalty: 500.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            half_life: 15 * 60 * 1000,
            max_suppress: 60 * 60 * 1000,
            max_penalty: 12_000.0,
        }
    }
}

/// The kind of flap being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapKind {
    /// Route withdrawn.
    Withdrawal,
    /// Route announced or re-announced with changed attributes.
    Announcement,
}

/// Verdict for an arriving update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DampingVerdict {
    /// Propagate normally.
    Pass,
    /// Hold down: the route is suppressed until roughly the given time.
    Suppressed {
        /// Earliest estimated reuse time.
        reuse_at: Millis,
    },
}

#[derive(Debug, Clone)]
struct FlapState {
    penalty: f64,
    last_update: Millis,
    suppressed_since: Option<Millis>,
}

/// Per-peer (or per-session) damping engine tracking penalties per prefix.
///
/// ```
/// use iri_rib::damping::{DampingConfig, DampingVerdict, FlapKind, RouteDamper};
///
/// let mut damper = RouteDamper::new(DampingConfig::default());
/// let prefix = "192.42.113.0/24".parse().unwrap();
/// // The first flaps pass; sustained flapping crosses the suppress
/// // threshold and the route is held down.
/// assert_eq!(damper.record_flap(prefix, FlapKind::Withdrawal, 0), DampingVerdict::Pass);
/// assert_eq!(damper.record_flap(prefix, FlapKind::Withdrawal, 1_000), DampingVerdict::Pass);
/// assert!(matches!(
///     damper.record_flap(prefix, FlapKind::Withdrawal, 2_000),
///     DampingVerdict::Suppressed { .. }
/// ));
/// // The penalty decays; after enough quiet time the route is reusable.
/// assert!(!damper.is_suppressed(prefix, 2 * 3_600_000));
/// ```
#[derive(Debug, Clone)]
pub struct RouteDamper {
    config: DampingConfig,
    state: HashMap<Prefix, FlapState>,
    /// Updates suppressed so far (for reports).
    suppressed_count: u64,
}

impl RouteDamper {
    /// New engine with the given parameters.
    #[must_use]
    pub fn new(config: DampingConfig) -> Self {
        RouteDamper {
            config,
            state: HashMap::new(),
            suppressed_count: 0,
        }
    }

    /// Total updates suppressed so far.
    #[must_use]
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed_count
    }

    /// Number of prefixes currently tracked.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.state.len()
    }

    /// Current (decayed) penalty for a prefix.
    #[must_use]
    pub fn penalty(&self, prefix: Prefix, now: Millis) -> f64 {
        self.state.get(&prefix).map_or(0.0, |s| {
            decay(
                s.penalty,
                now.saturating_sub(s.last_update),
                self.config.half_life,
            )
        })
    }

    /// Whether the prefix is currently suppressed.
    #[must_use]
    pub fn is_suppressed(&self, prefix: Prefix, now: Millis) -> bool {
        match self.state.get(&prefix) {
            Some(s) if s.suppressed_since.is_some() => {
                let pen = decay(
                    s.penalty,
                    now.saturating_sub(s.last_update),
                    self.config.half_life,
                );
                let since = s.suppressed_since.expect("checked");
                pen >= self.config.reuse_threshold
                    && now.saturating_sub(since) < self.config.max_suppress
            }
            _ => false,
        }
    }

    /// Records a flap at `now` and returns the verdict for this update.
    pub fn record_flap(&mut self, prefix: Prefix, kind: FlapKind, now: Millis) -> DampingVerdict {
        let add = match kind {
            FlapKind::Withdrawal => self.config.withdrawal_penalty,
            FlapKind::Announcement => self.config.announcement_penalty,
        };
        let entry = self.state.entry(prefix).or_insert(FlapState {
            penalty: 0.0,
            last_update: now,
            suppressed_since: None,
        });
        let decayed = decay(
            entry.penalty,
            now.saturating_sub(entry.last_update),
            self.config.half_life,
        );
        // A hold-down already released by decay (or by the max-suppress cap)
        // stays released: a fresh flap must re-cross the *suppress*
        // threshold, not merely the reuse threshold (RFC 2439 semantics).
        let still_held = match entry.suppressed_since {
            Some(since) => {
                decayed >= self.config.reuse_threshold
                    && now.saturating_sub(since) < self.config.max_suppress
            }
            None => false,
        };
        if !still_held {
            entry.suppressed_since = None;
        }
        entry.penalty = (decayed + add).min(self.config.max_penalty);
        entry.last_update = now;

        let currently_suppressed = still_held;
        let newly_suppressed =
            !currently_suppressed && entry.penalty >= self.config.suppress_threshold;

        if currently_suppressed || newly_suppressed {
            if newly_suppressed {
                entry.suppressed_since = Some(now);
            } else {
                // Flapping while held down does not extend the max-suppress
                // window start, matching deployed implementations.
            }
            let penalty = entry.penalty;
            self.suppressed_count += 1;
            let reuse_at = now + self.time_to_reuse(penalty);
            DampingVerdict::Suppressed { reuse_at }
        } else {
            entry.suppressed_since = None;
            DampingVerdict::Pass
        }
    }

    /// Exports the damper's state into an observability registry under
    /// `scope` (e.g. `"damping.as690.peer_as701"`): cumulative suppressed
    /// updates, tracked prefixes, and how many are held down at `now`.
    pub fn export_metrics(&self, registry: &mut iri_obs::Registry, scope: &str, now: Millis) {
        let suppressed = registry.counter(&format!("{scope}.suppressed_updates"));
        registry.add(suppressed, self.suppressed_count);
        let tracked = registry.gauge(&format!("{scope}.tracked_prefixes"));
        registry.set(tracked, self.tracked() as i64);
        let held = self
            .state
            .keys()
            .filter(|&&pfx| self.is_suppressed(pfx, now))
            .count();
        let held_down = registry.gauge(&format!("{scope}.held_down"));
        registry.set(held_down, held as i64);
    }

    /// Sweeps fully-decayed entries (penalty < half the reuse threshold) to
    /// bound memory, as real implementations do on their reuse lists.
    pub fn sweep(&mut self, now: Millis) {
        let half_life = self.config.half_life;
        let floor = self.config.reuse_threshold / 2.0;
        self.state
            .retain(|_, s| decay(s.penalty, now.saturating_sub(s.last_update), half_life) >= floor);
    }

    fn time_to_reuse(&self, penalty: f64) -> Millis {
        if penalty <= self.config.reuse_threshold {
            return 0;
        }
        // penalty * 2^(-t/half_life) = reuse  =>  t = half_life * log2(p/r)
        let ratio = penalty / self.config.reuse_threshold;
        let t = (self.config.half_life as f64) * ratio.log2();
        (t as Millis).min(self.config.max_suppress)
    }
}

fn decay(penalty: f64, elapsed: Millis, half_life: Millis) -> f64 {
    if half_life == 0 {
        return 0.0;
    }
    penalty * (-(elapsed as f64) / (half_life as f64) * std::f64::consts::LN_2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cfg() -> DampingConfig {
        DampingConfig::default()
    }

    #[test]
    fn single_flap_passes() {
        let mut d = RouteDamper::new(cfg());
        assert_eq!(
            d.record_flap(p("10.0.0.0/8"), FlapKind::Withdrawal, 0),
            DampingVerdict::Pass
        );
        assert!(!d.is_suppressed(p("10.0.0.0/8"), 1));
    }

    #[test]
    fn rapid_flaps_suppress() {
        // Three withdrawals in quick succession cross the 2000 threshold
        // (two cannot: 1000 + decayed-just-under-1000 < 2000) — matching the
        // deployed defaults where the third flap suppresses.
        let mut d = RouteDamper::new(cfg());
        let pfx = p("10.0.0.0/8");
        assert_eq!(
            d.record_flap(pfx, FlapKind::Withdrawal, 0),
            DampingVerdict::Pass
        );
        assert_eq!(
            d.record_flap(pfx, FlapKind::Withdrawal, 1000),
            DampingVerdict::Pass
        );
        let v = d.record_flap(pfx, FlapKind::Withdrawal, 2000);
        assert!(matches!(v, DampingVerdict::Suppressed { .. }), "{v:?}");
        assert!(d.is_suppressed(pfx, 3000));
        assert_eq!(d.suppressed_count(), 1);
    }

    #[test]
    fn penalty_decays_with_half_life() {
        let mut d = RouteDamper::new(cfg());
        let pfx = p("10.0.0.0/8");
        d.record_flap(pfx, FlapKind::Withdrawal, 0);
        let p0 = d.penalty(pfx, 0);
        let p1 = d.penalty(pfx, cfg().half_life);
        assert!((p0 - 1000.0).abs() < 1e-9);
        assert!((p1 - 500.0).abs() < 1.0, "after one half-life: {p1}");
    }

    #[test]
    fn suppressed_route_reused_after_decay() {
        let mut d = RouteDamper::new(cfg());
        let pfx = p("10.0.0.0/8");
        for i in 0..3 {
            d.record_flap(pfx, FlapKind::Withdrawal, i * 100);
        }
        assert!(d.is_suppressed(pfx, 300));
        // Penalty ≈ 3000; needs 2 half-lives to fall below reuse 750.
        let later = 300 + 2 * cfg().half_life + 60_000;
        assert!(!d.is_suppressed(pfx, later));
        // A single new flap after decay passes again.
        assert_eq!(
            d.record_flap(pfx, FlapKind::Announcement, later),
            DampingVerdict::Pass
        );
    }

    #[test]
    fn max_suppress_bounds_holddown() {
        let mut c = cfg();
        c.max_suppress = 10_000;
        c.half_life = 100 * 60 * 1000; // very slow decay
        let mut d = RouteDamper::new(c);
        let pfx = p("10.0.0.0/8");
        for i in 0..5 {
            d.record_flap(pfx, FlapKind::Withdrawal, i);
        }
        assert!(d.is_suppressed(pfx, 100));
        assert!(
            !d.is_suppressed(pfx, 10_010),
            "max_suppress must cap holddown"
        );
    }

    #[test]
    fn penalty_is_capped() {
        let mut d = RouteDamper::new(cfg());
        let pfx = p("10.0.0.0/8");
        for i in 0..100 {
            d.record_flap(pfx, FlapKind::Withdrawal, i);
        }
        assert!(d.penalty(pfx, 100) <= cfg().max_penalty);
    }

    #[test]
    fn announcement_penalty_is_smaller() {
        let mut d = RouteDamper::new(cfg());
        d.record_flap(p("10.0.0.0/8"), FlapKind::Announcement, 0);
        let pa = d.penalty(p("10.0.0.0/8"), 0);
        d.record_flap(p("11.0.0.0/8"), FlapKind::Withdrawal, 0);
        let pw = d.penalty(p("11.0.0.0/8"), 0);
        assert!(pa < pw);
    }

    #[test]
    fn reuse_at_estimate_is_monotonic_in_penalty() {
        let d = RouteDamper::new(cfg());
        let t1 = d.time_to_reuse(2000.0);
        let t2 = d.time_to_reuse(4000.0);
        assert!(t2 > t1);
        assert_eq!(d.time_to_reuse(500.0), 0);
    }

    #[test]
    fn sweep_drops_cold_entries() {
        let mut d = RouteDamper::new(cfg());
        d.record_flap(p("10.0.0.0/8"), FlapKind::Withdrawal, 0);
        d.record_flap(p("11.0.0.0/8"), FlapKind::Withdrawal, 0);
        assert_eq!(d.tracked(), 2);
        // After ~3 half-lives penalty is 125 < 375 floor.
        d.sweep(3 * cfg().half_life);
        assert_eq!(d.tracked(), 0);
    }

    #[test]
    fn distinct_prefixes_tracked_independently() {
        let mut d = RouteDamper::new(cfg());
        let a = p("10.0.0.0/8");
        let b = p("11.0.0.0/8");
        d.record_flap(a, FlapKind::Withdrawal, 0);
        d.record_flap(a, FlapKind::Withdrawal, 10);
        d.record_flap(a, FlapKind::Withdrawal, 20);
        assert!(d.is_suppressed(a, 30));
        assert!(!d.is_suppressed(b, 30));
        assert_eq!(
            d.record_flap(b, FlapKind::Withdrawal, 30),
            DampingVerdict::Pass
        );
    }

    #[test]
    fn legitimate_announcement_delayed_by_prior_instability() {
        // The "not a panacea" behaviour: after a burst of flaps, even a
        // legitimate announcement is suppressed.
        let mut d = RouteDamper::new(cfg());
        let pfx = p("192.42.113.0/24");
        for i in 0..4 {
            d.record_flap(pfx, FlapKind::Withdrawal, i * 50);
        }
        let v = d.record_flap(pfx, FlapKind::Announcement, 300);
        match v {
            DampingVerdict::Suppressed { reuse_at } => assert!(reuse_at > 300),
            DampingVerdict::Pass => panic!("expected suppression"),
        }
    }
}
