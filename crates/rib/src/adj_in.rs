//! Adj-RIB-In: per-peer store of routes as received, pre-decision.
//!
//! One instance exists per peering session. Applying an UPDATE produces the
//! set of prefixes whose candidate route changed, which feeds the decision
//! process in [`crate::loc_rib`].

use crate::decision::RouteCandidate;
use crate::trie::PrefixTrie;
use iri_bgp::message::Update;
use iri_bgp::types::{Asn, Prefix};
use std::net::Ipv4Addr;

/// Routes received from a single peer.
pub struct AdjRibIn {
    /// The peer's AS (copied into candidates).
    peer_asn: Asn,
    /// The peer's router ID.
    peer_router_id: Ipv4Addr,
    /// The peer's session address.
    peer_addr: Ipv4Addr,
    routes: PrefixTrie<RouteCandidate>,
}

/// Effect of applying one UPDATE to an Adj-RIB-In.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct InDelta {
    /// Prefixes whose stored candidate changed or appeared.
    pub changed: Vec<Prefix>,
    /// Prefixes removed by explicit withdrawal.
    pub withdrawn: Vec<Prefix>,
    /// Withdrawals for prefixes this peer never announced — the raw signal
    /// behind the paper's WWDup pathology, counted here so router models can
    /// report it.
    pub spurious_withdrawals: usize,
    /// Announcements identical to what was already stored (AADup signal at
    /// the single-session level).
    pub duplicate_announcements: usize,
}

impl AdjRibIn {
    /// Creates an empty Adj-RIB-In for a peer.
    #[must_use]
    pub fn new(peer_asn: Asn, peer_router_id: Ipv4Addr, peer_addr: Ipv4Addr) -> Self {
        AdjRibIn {
            peer_asn,
            peer_router_id,
            peer_addr,
            routes: PrefixTrie::new(),
        }
    }

    /// The peer's AS.
    #[must_use]
    pub fn peer_asn(&self) -> Asn {
        self.peer_asn
    }

    /// Number of routes currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the RIB holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Current candidate for `prefix`, if any.
    #[must_use]
    pub fn get(&self, prefix: Prefix) -> Option<&RouteCandidate> {
        self.routes.get(prefix)
    }

    /// Iterates all held routes.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &RouteCandidate)> {
        self.routes.iter()
    }

    /// Applies an UPDATE, returning what changed.
    pub fn apply(&mut self, update: &Update) -> InDelta {
        let mut delta = InDelta::default();
        for &prefix in &update.withdrawn {
            if self.routes.remove(prefix).is_some() {
                delta.withdrawn.push(prefix);
            } else {
                delta.spurious_withdrawals += 1;
            }
        }
        if let Some(attrs) = &update.attrs {
            for &prefix in &update.nlri {
                let cand = RouteCandidate {
                    attrs: attrs.clone(),
                    peer_asn: self.peer_asn,
                    peer_router_id: self.peer_router_id,
                    peer_addr: self.peer_addr,
                };
                match self.routes.get(prefix) {
                    Some(existing) if *existing == cand => {
                        delta.duplicate_announcements += 1;
                        // Still counts as a (redundant) change for re-export
                        // decisions? No: a byte-identical candidate changes
                        // nothing downstream; stateful routers suppress it.
                    }
                    _ => {
                        self.routes.insert(prefix, cand);
                        delta.changed.push(prefix);
                    }
                }
            }
        }
        delta
    }

    /// Exports all held routes as owned rows — the spillable image.
    #[must_use]
    pub fn export_routes(&self) -> Vec<(Prefix, RouteCandidate)> {
        self.routes.iter().map(|(p, c)| (p, c.clone())).collect()
    }

    /// Rebuilds the table from exported rows (inverse of
    /// [`AdjRibIn::export_routes`]); peer identity is unchanged.
    pub fn import_routes(&mut self, rows: Vec<(Prefix, RouteCandidate)>) {
        self.routes.clear();
        for (prefix, cand) in rows {
            self.routes.insert(prefix, cand);
        }
    }

    /// Drops every route, as happens when the peering session falls —
    /// "once a BGP connection is severed, all of the peer's routes are
    /// withdrawn". Returns the withdrawn prefixes.
    pub fn clear_session(&mut self) -> Vec<Prefix> {
        let prefixes: Vec<Prefix> = self.routes.iter().map(|(p, _)| p).collect();
        self.routes.clear();
        prefixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::Origin;
    use iri_bgp::message::UpdateBuilder;
    use iri_bgp::path::AsPath;

    fn rib() -> AdjRibIn {
        AdjRibIn::new(
            Asn(701),
            Ipv4Addr::new(137, 39, 1, 1),
            Ipv4Addr::new(192, 41, 177, 1),
        )
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(prefix: &str, path: &[u32]) -> Update {
        UpdateBuilder::new()
            .announce(p(prefix))
            .next_hop(Ipv4Addr::new(192, 41, 177, 1))
            .as_path(AsPath::from_sequence(path.iter().map(|&a| Asn(a))))
            .origin(Origin::Igp)
            .build()
            .unwrap()
    }

    #[test]
    fn announce_then_withdraw() {
        let mut r = rib();
        let d1 = r.apply(&announce("10.0.0.0/8", &[701]));
        assert_eq!(d1.changed, vec![p("10.0.0.0/8")]);
        assert_eq!(r.len(), 1);
        let d2 = r.apply(&Update::withdraw([p("10.0.0.0/8")]));
        assert_eq!(d2.withdrawn, vec![p("10.0.0.0/8")]);
        assert!(r.is_empty());
    }

    #[test]
    fn spurious_withdrawal_counted() {
        let mut r = rib();
        let d = r.apply(&Update::withdraw([p("192.42.113.0/24")]));
        assert_eq!(d.spurious_withdrawals, 1);
        assert!(d.withdrawn.is_empty());
    }

    #[test]
    fn duplicate_announcement_detected() {
        let mut r = rib();
        r.apply(&announce("10.0.0.0/8", &[701]));
        let d = r.apply(&announce("10.0.0.0/8", &[701]));
        assert_eq!(d.duplicate_announcements, 1);
        assert!(d.changed.is_empty());
    }

    #[test]
    fn implicit_replacement_is_change() {
        let mut r = rib();
        r.apply(&announce("10.0.0.0/8", &[701]));
        let d = r.apply(&announce("10.0.0.0/8", &[701, 1239]));
        assert_eq!(d.changed, vec![p("10.0.0.0/8")]);
        assert_eq!(
            r.get(p("10.0.0.0/8")).unwrap().attrs.as_path,
            AsPath::from_sequence([Asn(701), Asn(1239)])
        );
    }

    #[test]
    fn policy_only_change_is_still_change() {
        let mut r = rib();
        r.apply(&announce("10.0.0.0/8", &[701]));
        let mut u = announce("10.0.0.0/8", &[701]);
        u.attrs.as_mut().unwrap().med = Some(50);
        let d = r.apply(&u);
        assert_eq!(d.changed, vec![p("10.0.0.0/8")]);
    }

    #[test]
    fn session_clear_returns_all() {
        let mut r = rib();
        r.apply(&announce("10.0.0.0/8", &[701]));
        r.apply(&announce("11.0.0.0/8", &[701]));
        let dropped = r.clear_session();
        assert_eq!(dropped.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn candidate_carries_peer_identity() {
        let mut r = rib();
        r.apply(&announce("10.0.0.0/8", &[701]));
        let c = r.get(p("10.0.0.0/8")).unwrap();
        assert_eq!(c.peer_asn, Asn(701));
        assert_eq!(c.peer_router_id, Ipv4Addr::new(137, 39, 1, 1));
    }

    #[test]
    fn mixed_update_processes_withdrawals_and_nlri() {
        let mut r = rib();
        r.apply(&announce("10.0.0.0/8", &[701]));
        let mixed = UpdateBuilder::new()
            .withdraw(p("10.0.0.0/8"))
            .announce(p("11.0.0.0/8"))
            .next_hop(Ipv4Addr::new(192, 41, 177, 1))
            .as_path(AsPath::from_sequence([Asn(701)]))
            .build()
            .unwrap();
        let d = r.apply(&mixed);
        assert_eq!(d.withdrawn, vec![p("10.0.0.0/8")]);
        assert_eq!(d.changed, vec![p("11.0.0.0/8")]);
        assert_eq!(r.len(), 1);
    }
}
