//! The BGP best-path decision process (RFC 4271 §9.1, era-appropriate
//! subset).
//!
//! "After each router makes a new local decision on the best route to a
//! destination, the router will send that route … to each of its peers."
//! The decision process is therefore the engine that converts topology
//! events into the update streams the paper measures. The tie-breaking
//! ladder implemented here:
//!
//! 1. highest LOCAL_PREF (default 100),
//! 2. shortest AS path (AS_SET counts 1),
//! 3. lowest ORIGIN (IGP < EGP < INCOMPLETE),
//! 4. lowest MED (only compared between routes from the same neighbor AS;
//!    missing MED treated as 0, the common vendor default of the era),
//! 5. lowest peer router ID,
//! 6. lowest peer address (as a final total-order guarantee).

use iri_bgp::attrs::PathAttributes;
use iri_bgp::types::Asn;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::net::Ipv4Addr;

/// Default LOCAL_PREF applied when the attribute is absent.
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// A route under consideration: attributes plus bookkeeping about the peer
/// that advertised it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteCandidate {
    /// Full attribute set as received (after inbound policy).
    pub attrs: PathAttributes,
    /// Advertising peer's AS.
    pub peer_asn: Asn,
    /// Advertising peer's router ID (tie-breaker 5).
    pub peer_router_id: Ipv4Addr,
    /// Advertising peer's session address (tie-breaker 6).
    pub peer_addr: Ipv4Addr,
}

impl RouteCandidate {
    /// Effective LOCAL_PREF.
    #[must_use]
    pub fn local_pref(&self) -> u32 {
        self.attrs.local_pref.unwrap_or(DEFAULT_LOCAL_PREF)
    }

    /// Effective MED (missing treated as 0).
    #[must_use]
    pub fn med(&self) -> u32 {
        self.attrs.med.unwrap_or(0)
    }
}

/// Compares two candidates; `Ordering::Less` means `a` is **preferred**.
///
/// The order is total: two distinct candidates from distinct peers never
/// compare equal, which guarantees deterministic convergence in the
/// simulator ("only the severely restrictive shortest-path route selection
/// algorithm is provably safe" — we keep policies inside the safe subset by
/// default and let experiments opt into unconstrained ones).
#[must_use]
pub fn compare_routes(a: &RouteCandidate, b: &RouteCandidate) -> Ordering {
    // 1. Highest LOCAL_PREF wins.
    b.local_pref()
        .cmp(&a.local_pref())
        // 2. Shortest AS path wins.
        .then_with(|| {
            a.attrs
                .as_path
                .decision_len()
                .cmp(&b.attrs.as_path.decision_len())
        })
        // 3. Lowest origin wins.
        .then_with(|| a.attrs.origin.cmp(&b.attrs.origin))
        // 4. Lowest MED, same-neighbor-AS only.
        .then_with(|| {
            if a.peer_asn == b.peer_asn {
                a.med().cmp(&b.med())
            } else {
                Ordering::Equal
            }
        })
        // 5. Lowest router ID.
        .then_with(|| a.peer_router_id.cmp(&b.peer_router_id))
        // 6. Lowest peer address.
        .then_with(|| a.peer_addr.cmp(&b.peer_addr))
}

/// Selects the best route from a candidate set, or `None` if empty.
#[must_use]
pub fn best_route<'a, I>(candidates: I) -> Option<&'a RouteCandidate>
where
    I: IntoIterator<Item = &'a RouteCandidate>,
{
    candidates.into_iter().min_by(|a, b| compare_routes(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::Origin;
    use iri_bgp::path::AsPath;

    fn cand(path: &[u32], peer: u32, rid: [u8; 4]) -> RouteCandidate {
        RouteCandidate {
            attrs: PathAttributes::new(
                Origin::Igp,
                AsPath::from_sequence(path.iter().map(|&a| Asn(a))),
                Ipv4Addr::new(10, 0, 0, 1),
            ),
            peer_asn: Asn(peer),
            peer_router_id: Ipv4Addr::from(rid),
            peer_addr: Ipv4Addr::from(rid),
        }
    }

    #[test]
    fn shorter_path_preferred() {
        let a = cand(&[701], 701, [1, 1, 1, 1]);
        let b = cand(&[1239, 701], 1239, [2, 2, 2, 2]);
        assert_eq!(compare_routes(&a, &b), Ordering::Less);
        assert_eq!(best_route([&a, &b]), Some(&a));
    }

    #[test]
    fn local_pref_beats_path_length() {
        let mut long = cand(&[1239, 701, 42], 1239, [2, 2, 2, 2]);
        long.attrs.local_pref = Some(200);
        let short = cand(&[701], 701, [1, 1, 1, 1]);
        assert_eq!(compare_routes(&long, &short), Ordering::Less);
    }

    #[test]
    fn origin_breaks_equal_length() {
        let igp = cand(&[701], 701, [2, 2, 2, 2]);
        let mut inc = cand(&[1239], 1239, [1, 1, 1, 1]);
        inc.attrs.origin = Origin::Incomplete;
        assert_eq!(compare_routes(&igp, &inc), Ordering::Less);
    }

    #[test]
    fn med_compared_within_same_neighbor_as_only() {
        let mut a = cand(&[701, 5], 701, [2, 2, 2, 2]);
        a.attrs.med = Some(10);
        let mut b = cand(&[701, 6], 701, [1, 1, 1, 1]);
        b.attrs.med = Some(20);
        // Same neighbor AS: lower MED wins despite higher router id.
        assert_eq!(compare_routes(&a, &b), Ordering::Less);

        let mut c = cand(&[1239, 6], 1239, [1, 1, 1, 1]);
        c.attrs.med = Some(20);
        // Different neighbor AS: MED skipped, falls to router id.
        assert_eq!(compare_routes(&a, &c), Ordering::Greater);
    }

    #[test]
    fn missing_med_is_zero() {
        let a = cand(&[701, 5], 701, [2, 2, 2, 2]); // no MED = 0
        let mut b = cand(&[701, 6], 701, [1, 1, 1, 1]);
        b.attrs.med = Some(1);
        assert_eq!(compare_routes(&a, &b), Ordering::Less);
    }

    #[test]
    fn router_id_then_addr_total_order() {
        let a = cand(&[701], 701, [1, 1, 1, 1]);
        let mut b = cand(&[702], 702, [1, 1, 1, 1]);
        b.peer_addr = Ipv4Addr::new(9, 9, 9, 9);
        // Same path length, origin; MED skipped (different AS); same router
        // id; falls to peer addr.
        assert_eq!(compare_routes(&a, &b), Ordering::Less);
        assert_eq!(compare_routes(&b, &a), Ordering::Greater);
    }

    #[test]
    fn as_set_counts_one() {
        use iri_bgp::path::PathSegment;
        let mut a = cand(&[], 701, [1, 1, 1, 1]);
        a.attrs.as_path = AsPath::from_segments([
            PathSegment::Sequence(vec![Asn(701)]),
            PathSegment::Set(vec![Asn(1), Asn(2), Asn(3)]),
        ]);
        let b = cand(&[1239, 42, 7], 1239, [2, 2, 2, 2]);
        // a has decision length 2, b has 3.
        assert_eq!(compare_routes(&a, &b), Ordering::Less);
    }

    #[test]
    fn best_route_empty_is_none() {
        let v: Vec<RouteCandidate> = vec![];
        assert_eq!(best_route(v.iter()), None);
    }

    #[test]
    fn best_route_single() {
        let v = [cand(&[701], 701, [1, 1, 1, 1])];
        assert_eq!(best_route(v.iter()), Some(&v[0]));
    }

    #[test]
    fn decision_is_deterministic_under_permutation() {
        let cands = vec![
            cand(&[701, 2], 701, [3, 3, 3, 3]),
            cand(&[1239, 2], 1239, [2, 2, 2, 2]),
            cand(&[3561, 2], 3561, [1, 1, 1, 1]),
        ];
        let best1 = best_route(cands.iter()).unwrap().clone();
        let mut rev = cands.clone();
        rev.reverse();
        let best2 = best_route(rev.iter()).unwrap().clone();
        assert_eq!(best1, best2);
        assert_eq!(best1.peer_router_id, Ipv4Addr::new(1, 1, 1, 1));
    }
}
