//! Default-free routing-table census.
//!
//! Produces the table-level denominators the paper's figures divide by:
//! "The Internet 'default-free' routing tables currently contain
//! approximately 42,000 prefixes with 1500 unique ASPATHs interconnecting
//! 1300 different autonomous systems" — plus the multihoming census of
//! Figure 10 ("more than 25 percent of prefixes are currently multi-homed").

use crate::loc_rib::LocRib;
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// A snapshot census of a default-free table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableCensus {
    /// Total reachable prefixes.
    pub prefixes: usize,
    /// Distinct AS paths among best routes.
    pub unique_paths: usize,
    /// Distinct ASes appearing anywhere in best-route paths.
    pub autonomous_systems: usize,
    /// Prefixes with more than one available path (multihomed).
    pub multihomed: usize,
    /// Prefixes per origin AS (for table-share computations, Figure 6).
    pub per_origin: BTreeMap<Asn, usize>,
}

impl TableCensus {
    /// Fraction of prefixes that are multihomed.
    #[must_use]
    pub fn multihomed_fraction(&self) -> f64 {
        if self.prefixes == 0 {
            0.0
        } else {
            self.multihomed as f64 / self.prefixes as f64
        }
    }

    /// The table share of `asn`: fraction of prefixes it originates.
    #[must_use]
    pub fn table_share(&self, asn: Asn) -> f64 {
        if self.prefixes == 0 {
            return 0.0;
        }
        *self.per_origin.get(&asn).unwrap_or(&0) as f64 / self.prefixes as f64
    }
}

/// Computes a census from a Loc-RIB.
#[must_use]
pub fn census(rib: &LocRib) -> TableCensus {
    let mut unique_paths: HashSet<&AsPath> = HashSet::new();
    let mut ases: HashSet<Asn> = HashSet::new();
    let mut per_origin: BTreeMap<Asn, usize> = BTreeMap::new();
    let mut prefixes = 0usize;
    for (_, best) in rib.iter_best() {
        prefixes += 1;
        unique_paths.insert(&best.attrs.as_path);
        for asn in best.attrs.as_path.iter() {
            ases.insert(asn);
        }
        if let Some(origin) = best.attrs.as_path.origin_as() {
            *per_origin.entry(origin).or_default() += 1;
        }
    }
    let multihomed = rib.iter_path_counts().filter(|&(_, n)| n > 1).count();
    TableCensus {
        prefixes,
        unique_paths: unique_paths.len(),
        autonomous_systems: ases.len(),
        multihomed,
        per_origin,
    }
}

/// Aggregation-quality census (§4.1): "portions of the Internet address
/// space are not well-aggregated and contain considerably more routes than
/// theoretically necessary."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationQuality {
    /// Globally visible prefixes as announced.
    pub visible: usize,
    /// Prefixes after ideal exact aggregation (per origin AS).
    pub minimal: usize,
}

impl AggregationQuality {
    /// `visible / minimal` — 1.0 is perfect aggregation; the mid-90s
    /// Internet sat well above it.
    #[must_use]
    pub fn excess_ratio(&self) -> f64 {
        if self.minimal == 0 {
            1.0
        } else {
            self.visible as f64 / self.minimal as f64
        }
    }
}

/// Measures aggregation quality over a table: prefixes are grouped by
/// origin AS (aggregation across ASes is not legitimate) and each group is
/// collapsed with exact CIDR aggregation.
#[must_use]
pub fn aggregation_quality<I>(entries: I) -> AggregationQuality
where
    I: IntoIterator<Item = (Prefix, Option<Asn>)>,
{
    let mut by_origin: BTreeMap<Option<Asn>, Vec<Prefix>> = BTreeMap::new();
    let mut visible = 0usize;
    for (p, origin) in entries {
        by_origin.entry(origin).or_default().push(p);
        visible += 1;
    }
    let minimal = by_origin
        .into_values()
        .map(|v| crate::aggregate::aggregate_set(v).len())
        .sum();
    AggregationQuality { visible, minimal }
}

/// Census over an explicit `(prefix, path, path_count)` list — used when the
/// table view comes from MRT TABLE_DUMP records rather than a live RIB.
#[must_use]
pub fn census_from_entries<'a, I>(entries: I) -> TableCensus
where
    I: IntoIterator<Item = (Prefix, &'a AsPath, usize)>,
{
    let mut unique_paths: HashSet<&AsPath> = HashSet::new();
    let mut ases: HashSet<Asn> = HashSet::new();
    let mut per_origin: BTreeMap<Asn, usize> = BTreeMap::new();
    let mut prefixes = 0usize;
    let mut multihomed = 0usize;
    for (_, path, path_count) in entries {
        prefixes += 1;
        unique_paths.insert(path);
        for asn in path.iter() {
            ases.insert(asn);
        }
        if let Some(origin) = path.origin_as() {
            *per_origin.entry(origin).or_default() += 1;
        }
        if path_count > 1 {
            multihomed += 1;
        }
    }
    TableCensus {
        prefixes,
        unique_paths: unique_paths.len(),
        autonomous_systems: ases.len(),
        multihomed,
        per_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::RouteCandidate;
    use iri_bgp::attrs::{Origin, PathAttributes};
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cand(path: &[u32], rid: u8) -> RouteCandidate {
        RouteCandidate {
            attrs: PathAttributes::new(
                Origin::Igp,
                AsPath::from_sequence(path.iter().map(|&a| Asn(a))),
                Ipv4Addr::new(10, 0, 0, rid),
            ),
            peer_asn: Asn(path[0]),
            peer_router_id: Ipv4Addr::new(rid, rid, rid, rid),
            peer_addr: Ipv4Addr::new(rid, rid, rid, rid),
        }
    }

    fn peer(rid: u8) -> Ipv4Addr {
        Ipv4Addr::new(rid, rid, rid, rid)
    }

    #[test]
    fn census_counts_everything() {
        let mut rib = LocRib::new();
        rib.upsert(p("10.0.0.0/8"), peer(1), cand(&[701, 100], 1));
        rib.upsert(p("10.0.0.0/8"), peer(2), cand(&[1239, 100], 2)); // multihomed
        rib.upsert(p("11.0.0.0/8"), peer(1), cand(&[701, 100], 1)); // same path as 10/8 best
        rib.upsert(p("12.0.0.0/8"), peer(2), cand(&[1239, 200], 2));
        let c = census(&rib);
        assert_eq!(c.prefixes, 3);
        assert_eq!(c.multihomed, 1);
        assert!((c.multihomed_fraction() - 1.0 / 3.0).abs() < 1e-12);
        // Best for 10/8 is 701 100 (shorter tie by router id 1); paths:
        // {701 100} (x2) and {1239 200} → 2 unique.
        assert_eq!(c.unique_paths, 2);
        assert_eq!(c.autonomous_systems, 4); // 701, 100, 1239, 200
        assert_eq!(c.per_origin[&Asn(100)], 2);
        assert_eq!(c.per_origin[&Asn(200)], 1);
        assert!((c.table_share(Asn(100)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.table_share(Asn(999)), 0.0);
    }

    #[test]
    fn empty_rib_census() {
        let c = census(&LocRib::new());
        assert_eq!(c.prefixes, 0);
        assert_eq!(c.multihomed_fraction(), 0.0);
        assert_eq!(c.table_share(Asn(1)), 0.0);
    }

    #[test]
    fn aggregation_quality_census() {
        // Four sibling /24s of one AS collapse to one /22; a swamp /24 of
        // another AS stands alone.
        let entries = vec![
            (p("24.0.0.0/24"), Some(Asn(100))),
            (p("24.0.1.0/24"), Some(Asn(100))),
            (p("24.0.2.0/24"), Some(Asn(100))),
            (p("24.0.3.0/24"), Some(Asn(100))),
            (p("192.0.5.0/24"), Some(Asn(200))),
        ];
        let q = aggregation_quality(entries);
        assert_eq!(q.visible, 5);
        assert_eq!(q.minimal, 2);
        assert!((q.excess_ratio() - 2.5).abs() < 1e-12);
        // Same prefixes under *different* origins must not merge.
        let entries = vec![
            (p("24.0.0.0/24"), Some(Asn(100))),
            (p("24.0.1.0/24"), Some(Asn(101))),
        ];
        let q = aggregation_quality(entries);
        assert_eq!(q.minimal, 2);
        // Empty table.
        let q = aggregation_quality(Vec::<(Prefix, Option<Asn>)>::new());
        assert_eq!(q.excess_ratio(), 1.0);
    }

    #[test]
    fn census_from_entries_matches_live() {
        let path_a = AsPath::from_sequence([Asn(701), Asn(100)]);
        let path_b = AsPath::from_sequence([Asn(1239), Asn(200)]);
        let c = census_from_entries([
            (p("10.0.0.0/8"), &path_a, 2),
            (p("11.0.0.0/8"), &path_a, 1),
            (p("12.0.0.0/8"), &path_b, 1),
        ]);
        assert_eq!(c.prefixes, 3);
        assert_eq!(c.multihomed, 1);
        assert_eq!(c.unique_paths, 2);
        assert_eq!(c.autonomous_systems, 4);
    }
}
