//! Property tests on the core routing data structures: trie consistency
//! against a model map, aggregation exactness, decision-process totality,
//! and damping invariants.

use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use iri_rib::aggregate::aggregate_set;
use iri_rib::damping::{DampingConfig, FlapKind, RouteDamper};
use iri_rib::decision::{best_route, compare_routes, RouteCandidate};
use iri_rib::loc_rib::LocRib;
use iri_rib::trie::PrefixTrie;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    // Bias toward short prefixes so containment actually occurs.
    (any::<u32>(), 0u8..=24).prop_map(|(b, l)| Prefix::from_raw(b, l))
}

fn small_prefix() -> impl Strategy<Value = Prefix> {
    // A small universe (few distinct networks) to force collisions.
    (0u32..16, 20u8..=24).prop_map(|(i, l)| Prefix::from_raw(0x0a00_0000 | (i << 8), l))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Prefix, u32),
    Remove(Prefix),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (small_prefix(), any::<u32>()).prop_map(|(p, v)| Op::Insert(p, v)),
            small_prefix().prop_map(Op::Remove),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn trie_matches_model_map(ops in arb_ops()) {
        let mut trie = PrefixTrie::new();
        let mut model: BTreeMap<(u32, u8), u32> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(p, v) => {
                    let got = trie.insert(p, v);
                    let want = model.insert((p.bits(), p.len()), v);
                    prop_assert_eq!(got, want);
                }
                Op::Remove(p) => {
                    let got = trie.remove(p);
                    let want = model.remove(&(p.bits(), p.len()));
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(trie.len(), model.len());
        }
        // Full-content equality and sorted iteration order.
        let got: Vec<((u32, u8), u32)> =
            trie.iter().map(|(p, &v)| ((p.bits(), p.len()), v)).collect();
        let want: Vec<((u32, u8), u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn trie_longest_match_agrees_with_linear_scan(
        entries in prop::collection::btree_map(arb_prefix().prop_map(|p| (p.bits(), p.len())), any::<u32>(), 0..50),
        dest in any::<u32>(),
    ) {
        let trie: PrefixTrie<u32> = entries
            .iter()
            .map(|(&(b, l), &v)| (Prefix::from_raw(b, l), v))
            .collect();
        let dest_p = Prefix::from_raw(dest, 32);
        let got = trie.longest_match(dest_p).map(|(p, &v)| (p, v));
        let want = entries
            .iter()
            .map(|(&(b, l), &v)| (Prefix::from_raw(b, l), v))
            .filter(|(p, _)| p.contains_addr(Ipv4Addr::from(dest)))
            .max_by_key(|(p, _)| p.len());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn aggregation_exactly_preserves_address_space(
        prefixes in prop::collection::vec(small_prefix(), 0..40)
    ) {
        let out = aggregate_set(prefixes.iter().copied());
        // 1. Every input is covered by some output.
        for p in &prefixes {
            prop_assert!(out.iter().any(|o| o.contains(*p)), "{p} uncovered");
        }
        // 2. No over-claiming: every output address is in some input.
        //    Check by sampling output corner addresses.
        for o in &out {
            let lo = o.bits();
            let hi = o.bits() | !(if o.len() == 0 { 0 } else { u32::MAX << (32 - o.len()) });
            for addr in [lo, hi, lo + (hi - lo) / 2] {
                let covered = prefixes.iter().any(|p| p.contains_addr(Ipv4Addr::from(addr)));
                prop_assert!(covered, "aggregate {o} claims {}", Ipv4Addr::from(addr));
            }
        }
        // 3. Minimality: no two outputs are sibling pairs, none covered by another.
        for (i, a) in out.iter().enumerate() {
            for (j, b) in out.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.contains(*b));
                    prop_assert_ne!(Some(*b), a.sibling());
                }
            }
        }
        // 4. Idempotence.
        let again = aggregate_set(out.iter().copied());
        prop_assert_eq!(again, out);
    }

    #[test]
    fn decision_total_order_and_permutation_invariance(
        seed_paths in prop::collection::vec((1u32..100, 1usize..5), 1..8)
    ) {
        let cands: Vec<RouteCandidate> = seed_paths
            .iter()
            .enumerate()
            .map(|(i, &(asn, len))| RouteCandidate {
                attrs: PathAttributes::new(
                    Origin::Igp,
                    AsPath::from_sequence((0..len).map(|k| Asn(asn + k as u32))),
                    Ipv4Addr::new(10, 0, 0, i as u8),
                ),
                peer_asn: Asn(asn),
                peer_router_id: Ipv4Addr::new(10, 0, 1, i as u8),
                peer_addr: Ipv4Addr::new(10, 0, 2, i as u8),
            })
            .collect();
        let best = best_route(cands.iter()).unwrap();
        // Best is minimal against every candidate.
        for c in &cands {
            prop_assert_ne!(compare_routes(c, best), std::cmp::Ordering::Less);
        }
        // Reversal produces the same best.
        let mut rev = cands.clone();
        rev.reverse();
        prop_assert_eq!(best_route(rev.iter()).unwrap(), best);
        // Antisymmetry on every pair.
        for a in &cands {
            for b in &cands {
                let ab = compare_routes(a, b);
                let ba = compare_routes(b, a);
                prop_assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn loc_rib_reachable_count_matches_iteration(
        events in prop::collection::vec(
            (0u8..4, 0u8..3, any::<bool>()),
            0..100,
        )
    ) {
        // events: (prefix index, peer index, announce?)
        let mut rib = LocRib::new();
        let prefixes: Vec<Prefix> = (0..4u32)
            .map(|i| Prefix::from_raw(0x0a00_0000 | (i << 16), 16))
            .collect();
        for (pi, peer_i, announce) in events {
            let prefix = prefixes[pi as usize];
            let peer = Ipv4Addr::new(10, 9, 9, peer_i);
            if announce {
                let cand = RouteCandidate {
                    attrs: PathAttributes::new(
                        Origin::Igp,
                        AsPath::from_sequence([Asn(u32::from(peer_i) + 1)]),
                        peer,
                    ),
                    peer_asn: Asn(u32::from(peer_i) + 1),
                    peer_router_id: peer,
                    peer_addr: peer,
                };
                rib.upsert(prefix, peer, cand);
            } else {
                rib.withdraw(prefix, peer);
            }
            prop_assert_eq!(rib.reachable_count(), rib.iter_best().count());
        }
    }

    #[test]
    fn damping_penalty_never_negative_or_above_cap(
        flaps in prop::collection::vec((0u64..100_000, any::<bool>()), 1..100)
    ) {
        let cfg = DampingConfig::default();
        let cap = cfg.max_penalty;
        let mut d = RouteDamper::new(cfg);
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut sorted = flaps.clone();
        sorted.sort_by_key(|&(t, _)| t);
        for (t, w) in sorted {
            let kind = if w { FlapKind::Withdrawal } else { FlapKind::Announcement };
            d.record_flap(pfx, kind, t);
            let p = d.penalty(pfx, t);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= cap + 1e-9);
        }
    }

    #[test]
    fn damping_eventually_releases(
        n_flaps in 1usize..20,
    ) {
        let cfg = DampingConfig::default();
        let max_suppress = cfg.max_suppress;
        let half_life = cfg.half_life;
        let mut d = RouteDamper::new(cfg);
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        for i in 0..n_flaps {
            d.record_flap(pfx, FlapKind::Withdrawal, i as u64 * 10);
        }
        let last = n_flaps as u64 * 10;
        // After max_suppress plus several half-lives, always released.
        let horizon = last + max_suppress + 10 * half_life;
        prop_assert!(!d.is_suppressed(pfx, horizon));
    }

    #[test]
    fn loc_rib_drop_peer_equals_individual_withdrawals(
        prefixes in prop::collection::btree_set(0u32..8, 1..6)
    ) {
        let mk = |i: u32| Prefix::from_raw(0x0a00_0000 | (i << 16), 16);
        let peer1 = Ipv4Addr::new(1, 1, 1, 1);
        let peer2 = Ipv4Addr::new(2, 2, 2, 2);
        let cand = |asn: u32, addr: Ipv4Addr| RouteCandidate {
            attrs: PathAttributes::new(Origin::Igp, AsPath::from_sequence([Asn(asn)]), addr),
            peer_asn: Asn(asn),
            peer_router_id: addr,
            peer_addr: addr,
        };
        let mut a = LocRib::new();
        let mut b = LocRib::new();
        for &i in &prefixes {
            a.upsert(mk(i), peer1, cand(1, peer1));
            a.upsert(mk(i), peer2, cand(2, peer2));
            b.upsert(mk(i), peer1, cand(1, peer1));
            b.upsert(mk(i), peer2, cand(2, peer2));
        }
        a.drop_peer(peer1);
        for &i in &prefixes {
            b.withdraw(mk(i), peer1);
        }
        let va: HashMap<Prefix, Asn> = a.iter_best().map(|(p, c)| (p, c.peer_asn)).collect();
        let vb: HashMap<Prefix, Asn> = b.iter_best().map(|(p, c)| (p, c.peer_asn)).collect();
        prop_assert_eq!(va, vb);
        prop_assert_eq!(a.reachable_count(), prefixes.len());
    }
}
