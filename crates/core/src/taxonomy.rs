//! The update taxonomy of §4.
//!
//! > *"We distinguish between three classes of routing information:
//! > forwarding instability, policy fluctuation, and pathologic (or
//! > redundant) updates."*
//!
//! Announcements are classified against the last state of the same
//! **(peer, prefix)** pair:
//!
//! - **WADiff** — "a route is explicitly withdrawn … and later replaced
//!   with an alternative route" (forwarding instability);
//! - **AADiff** — "a route is implicitly withdrawn and replaced by an
//!   alternative route" (forwarding instability);
//! - **WADup** — "a route is explicitly withdrawn and then re-announced as
//!   reachable" (forwarding instability *or* pathology);
//! - **AADup** — "a route is implicitly withdrawn and replaced with a
//!   duplicate of the original route" (pathology, possibly policy
//!   fluctuation);
//!
//! withdrawals divide into legitimate [`UpdateClass::Withdraw`] and
//!
//! - **WWDup** — "the repeated transmission of BGP withdrawals for a prefix
//!   that is currently unreachable" (pathology);
//!
//! and the first announcement ever seen for a pair is
//! [`UpdateClass::NewAnnounce`] (the paper's "Uncategorized").

use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of one update event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UpdateClass {
    /// Explicit withdrawal, later replaced by a *different* route.
    WaDiff,
    /// Implicit withdrawal: replaced in place by a *different* route.
    AaDiff,
    /// Explicit withdrawal then re-announcement of the *same* route.
    WaDup,
    /// Duplicate announcement of the route already held.
    AaDup,
    /// Withdrawal of a prefix that is already unreachable (or was never
    /// announced by this peer) — the §4 signature pathology.
    WwDup,
    /// Legitimate explicit withdrawal of an announced route.
    Withdraw,
    /// First announcement seen for this (peer, prefix) pair.
    NewAnnounce,
}

impl UpdateClass {
    /// Number of classes (the length of [`UpdateClass::ALL`]).
    pub const COUNT: usize = 7;

    /// Dense index in `0..COUNT`, for array-backed per-class tables.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`UpdateClass::index`], for decoding persisted class
    /// columns. Note [`UpdateClass::ALL`] is in *reporting* order, not
    /// index order, so this is the only safe index-to-class mapping.
    #[must_use]
    pub fn from_index(i: usize) -> Option<UpdateClass> {
        Some(match i {
            0 => UpdateClass::WaDiff,
            1 => UpdateClass::AaDiff,
            2 => UpdateClass::WaDup,
            3 => UpdateClass::AaDup,
            4 => UpdateClass::WwDup,
            5 => UpdateClass::Withdraw,
            6 => UpdateClass::NewAnnounce,
            _ => return None,
        })
    }

    /// All classes, in the paper's reporting order.
    pub const ALL: [UpdateClass; 7] = [
        UpdateClass::AaDiff,
        UpdateClass::WaDiff,
        UpdateClass::WaDup,
        UpdateClass::AaDup,
        UpdateClass::WwDup,
        UpdateClass::Withdraw,
        UpdateClass::NewAnnounce,
    ];

    /// The four announcement-classification categories plotted in
    /// Figures 2, 6, 7 and 8.
    pub const FIGURE_CATEGORIES: [UpdateClass; 4] = [
        UpdateClass::AaDiff,
        UpdateClass::WaDiff,
        UpdateClass::WaDup,
        UpdateClass::AaDup,
    ];

    /// "We will refer to AADiff, WADiff and WADup as instability."
    #[must_use]
    pub fn is_instability(self) -> bool {
        matches!(
            self,
            UpdateClass::AaDiff | UpdateClass::WaDiff | UpdateClass::WaDup
        )
    }

    /// "We will refer to AADup and WWDup as pathological instability."
    #[must_use]
    pub fn is_pathological(self) -> bool {
        matches!(self, UpdateClass::AaDup | UpdateClass::WwDup)
    }

    /// Forwarding instability in the strict sense (may change data paths).
    #[must_use]
    pub fn is_forwarding_instability(self) -> bool {
        matches!(self, UpdateClass::AaDiff | UpdateClass::WaDiff)
    }

    /// Whether the event was an announcement.
    #[must_use]
    pub fn is_announcement(self) -> bool {
        !matches!(self, UpdateClass::Withdraw | UpdateClass::WwDup)
    }

    /// Paper-style label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            UpdateClass::WaDiff => "WADiff",
            UpdateClass::AaDiff => "AADiff",
            UpdateClass::WaDup => "WADup",
            UpdateClass::AaDup => "AADup",
            UpdateClass::WwDup => "WWDup",
            UpdateClass::Withdraw => "Withdraw",
            UpdateClass::NewAnnounce => "Uncategorized",
        }
    }
}

impl fmt::Display for UpdateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instability_and_pathology_partitions() {
        use UpdateClass::*;
        for c in UpdateClass::ALL {
            // Nothing is both instability and pathology.
            assert!(!(c.is_instability() && c.is_pathological()), "{c}");
        }
        assert!(WaDiff.is_instability() && AaDiff.is_instability() && WaDup.is_instability());
        assert!(AaDup.is_pathological() && WwDup.is_pathological());
        assert!(!Withdraw.is_instability() && !Withdraw.is_pathological());
        assert!(!NewAnnounce.is_instability());
    }

    #[test]
    fn from_index_round_trips() {
        for c in UpdateClass::ALL {
            assert_eq!(UpdateClass::from_index(c.index()), Some(c));
        }
        assert_eq!(UpdateClass::from_index(UpdateClass::COUNT), None);
    }

    #[test]
    fn forwarding_instability_subset() {
        use UpdateClass::*;
        assert!(AaDiff.is_forwarding_instability());
        assert!(WaDiff.is_forwarding_instability());
        assert!(!WaDup.is_forwarding_instability());
        for c in UpdateClass::ALL {
            if c.is_forwarding_instability() {
                assert!(c.is_instability());
            }
        }
    }

    #[test]
    fn announcement_flag() {
        use UpdateClass::*;
        assert!(
            AaDiff.is_announcement() && WaDup.is_announcement() && NewAnnounce.is_announcement()
        );
        assert!(!Withdraw.is_announcement() && !WwDup.is_announcement());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(UpdateClass::WwDup.to_string(), "WWDup");
        assert_eq!(UpdateClass::NewAnnounce.to_string(), "Uncategorized");
        assert_eq!(UpdateClass::FIGURE_CATEGORIES.len(), 4);
    }
}
