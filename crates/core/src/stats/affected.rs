//! Figure 9: proportion of Internet routes affected by routing updates.
//!
//! "Only between 3 and 10 percent of routes exhibit one or more WADiff per
//! day, and between 5 and 20 percent exhibit one or more AADiff each day.
//! … between 35 and 100 percent (50 percent median) of prefix+AS tuples are
//! involved in at least one category of routing update each day. …
//! Discounting the contribution of redundant updates, the majority (over 80
//! percent) of Internet routes exhibits a high degree of stability."

use crate::classifier::ClassifiedEvent;
use crate::taxonomy::UpdateClass;
use iri_bgp::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One day's affected-route proportions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AffectedDay {
    /// Day index.
    pub day: u32,
    /// Routing-table size (denominator).
    pub table_size: usize,
    /// Fraction of routes with ≥1 event, per class.
    pub per_class: Vec<(UpdateClass, f64)>,
    /// Fraction of routes with ≥1 event of *any* category.
    pub any_category: f64,
    /// Fraction with ≥1 *instability* event (AADiff/WADiff/WADup).
    pub any_instability: f64,
    /// Fraction with ≥1 *forwarding-instability* event (AADiff/WADiff) —
    /// the denominator of the paper's stability claim.
    pub any_forwarding: f64,
}

impl AffectedDay {
    /// Fraction for one class.
    #[must_use]
    pub fn fraction(&self, class: UpdateClass) -> f64 {
        self.per_class
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0.0, |&(_, f)| f)
    }

    /// The paper's stability headline — "if we ignore the impact of
    /// redundant updates and other pathological behaviors … most (80
    /// percent) of Internet routes exhibit a relatively high level of
    /// stability": the fraction of routes with no *forwarding-instability*
    /// (AADiff/WADiff) event.
    #[must_use]
    pub fn stable_fraction(&self) -> f64 {
        1.0 - self.any_forwarding
    }
}

/// Computes one day's affected-route proportions. `table_size` is the
/// default-free table size that day (unique prefixes). Proportions are over
/// distinct *prefixes* (the paper's "routes"; the per-(prefix,AS) variant
/// produces its "prefix+AS tuples" line — both provided).
#[must_use]
pub fn affected_day(events: &[ClassifiedEvent], table_size: usize, day: u32) -> AffectedDay {
    let denom = table_size.max(1) as f64;
    let mut per_class = Vec::new();
    for class in UpdateClass::ALL {
        let prefixes: HashSet<Prefix> = events
            .iter()
            .filter(|e| e.class == class)
            .map(|e| e.prefix)
            .collect();
        per_class.push((class, prefixes.len() as f64 / denom));
    }
    let any: HashSet<Prefix> = events
        .iter()
        .filter(|e| !matches!(e.class, UpdateClass::NewAnnounce))
        .map(|e| e.prefix)
        .collect();
    let unstable: HashSet<Prefix> = events
        .iter()
        .filter(|e| e.class.is_instability())
        .map(|e| e.prefix)
        .collect();
    let forwarding: HashSet<Prefix> = events
        .iter()
        .filter(|e| e.class.is_forwarding_instability())
        .map(|e| e.prefix)
        .collect();
    AffectedDay {
        day,
        table_size,
        per_class,
        any_category: (any.len() as f64 / denom).min(1.0),
        any_instability: (unstable.len() as f64 / denom).min(1.0),
        any_forwarding: (forwarding.len() as f64 / denom).min(1.0),
    }
}

/// Fraction of (prefix, AS) tuples involved in ≥1 update, over
/// `tuple_count` known tuples — Figure 9's upper band.
#[must_use]
pub fn affected_tuples(events: &[ClassifiedEvent], tuple_count: usize) -> f64 {
    let tuples: HashSet<(Prefix, Asn)> = events
        .iter()
        .filter(|e| !matches!(e.class, UpdateClass::NewAnnounce))
        .map(|e| (e.prefix, e.peer.asn))
        .collect();
    (tuples.len() as f64 / tuple_count.max(1) as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use std::net::Ipv4Addr;

    fn ev(asn: u32, prefix_idx: u32, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: 0,
            peer: PeerKey {
                asn: Asn(asn),
                addr: Ipv4Addr::new(1, 1, 1, asn as u8),
            },
            prefix: Prefix::from_raw(0x0a00_0000 | (prefix_idx << 8), 24),
            class,
            policy_change: false,
        }
    }

    #[test]
    fn fractions_over_table() {
        // Table of 100 prefixes; 5 see WADiff, 10 see AADiff, 3 see WWDup.
        let mut events = Vec::new();
        for i in 0..5 {
            events.push(ev(1, i, UpdateClass::WaDiff));
        }
        for i in 10..20 {
            events.push(ev(1, i, UpdateClass::AaDiff));
        }
        for i in 30..33 {
            events.push(ev(2, i, UpdateClass::WwDup));
        }
        let a = affected_day(&events, 100, 7);
        assert!((a.fraction(UpdateClass::WaDiff) - 0.05).abs() < 1e-12);
        assert!((a.fraction(UpdateClass::AaDiff) - 0.10).abs() < 1e-12);
        assert!((a.any_category - 0.18).abs() < 1e-12);
        assert!((a.any_instability - 0.15).abs() < 1e-12);
        assert!((a.any_forwarding - 0.15).abs() < 1e-12);
        assert!((a.stable_fraction() - 0.85).abs() < 1e-12);
        assert_eq!(a.day, 7);
    }

    #[test]
    fn repeated_events_count_prefix_once() {
        let events = vec![
            ev(1, 0, UpdateClass::WaDup),
            ev(1, 0, UpdateClass::WaDup),
            ev(1, 0, UpdateClass::WaDup),
        ];
        let a = affected_day(&events, 10, 0);
        assert!((a.fraction(UpdateClass::WaDup) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn new_announce_not_counted_as_affected() {
        let events = vec![ev(1, 0, UpdateClass::NewAnnounce)];
        let a = affected_day(&events, 10, 0);
        assert_eq!(a.any_category, 0.0);
    }

    #[test]
    fn tuples_variant() {
        let events = vec![
            ev(1, 0, UpdateClass::WaDup),
            ev(2, 0, UpdateClass::WaDup), // same prefix, different AS
        ];
        assert!((affected_tuples(&events, 4) - 0.5).abs() < 1e-12);
        assert_eq!(affected_tuples(&[], 4), 0.0);
    }

    #[test]
    fn zero_table_guarded() {
        let a = affected_day(&[], 0, 0);
        assert_eq!(a.any_category, 0.0);
        assert_eq!(a.stable_fraction(), 1.0);
    }
}
