//! Figure 7: cumulative distribution of Prefix+AS update counts.
//!
//! "A Prefix+AS represents a set of routes that an AS announces for a given
//! destination. … the horizontal axes represent the number of Prefix+AS
//! pairs that exhibited a specific number of BGP instability events; the
//! vertical axes show the cumulative proportion of all such events. …
//! from 80 to 100 percent of the daily instability is contributed by
//! Prefix+AS pairs announced less than fifty times."

use crate::classifier::ClassifiedEvent;
use crate::taxonomy::UpdateClass;
use iri_bgp::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The cumulative distribution of per-(Prefix, AS) event counts for one
/// class on one day.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixAsCdf {
    /// Which class.
    pub class: UpdateClass,
    /// Sorted per-pair event counts (ascending).
    pub pair_counts: Vec<u64>,
    /// Total events.
    pub total: u64,
}

impl PrefixAsCdf {
    /// Cumulative proportion of events contributed by pairs with at most
    /// `count` events — the curve of Figure 7.
    #[must_use]
    pub fn cumulative_at(&self, count: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let contributed: u64 = self.pair_counts.iter().take_while(|&&c| c <= count).sum();
        contributed as f64 / self.total as f64
    }

    /// Number of distinct (prefix, AS) pairs.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.pair_counts.len()
    }

    /// The largest single pair's share of events (dominance check, like the
    /// August 11 ISP-A day where seven routes carried ~40 % of AADiffs).
    #[must_use]
    pub fn max_pair_share(&self) -> f64 {
        match (self.pair_counts.last(), self.total) {
            (Some(&m), t) if t > 0 => m as f64 / t as f64,
            _ => 0.0,
        }
    }
}

/// Builds the Prefix+AS distribution for one class from one day's events.
#[must_use]
pub fn prefix_as_cdf(events: &[ClassifiedEvent], class: UpdateClass) -> PrefixAsCdf {
    let mut per_pair: BTreeMap<(Prefix, Asn), u64> = BTreeMap::new();
    for e in events {
        if e.class == class {
            *per_pair.entry((e.prefix, e.peer.asn)).or_default() += 1;
        }
    }
    let mut pair_counts: Vec<u64> = per_pair.into_values().collect();
    pair_counts.sort_unstable();
    let total = pair_counts.iter().sum();
    PrefixAsCdf {
        class,
        pair_counts,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use std::net::Ipv4Addr;

    fn ev(asn: u32, prefix_idx: u32, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: 0,
            peer: PeerKey {
                asn: Asn(asn),
                addr: Ipv4Addr::new(1, 1, 1, asn as u8),
            },
            prefix: Prefix::from_raw(0x0a00_0000 | (prefix_idx << 8), 24),
            class,
            policy_change: false,
        }
    }

    #[test]
    fn basic_distribution() {
        // Pair (p0, AS1): 3 events; pair (p1, AS1): 1; pair (p0, AS2): 1.
        let events = vec![
            ev(1, 0, UpdateClass::AaDiff),
            ev(1, 0, UpdateClass::AaDiff),
            ev(1, 0, UpdateClass::AaDiff),
            ev(1, 1, UpdateClass::AaDiff),
            ev(2, 0, UpdateClass::AaDiff),
            ev(2, 0, UpdateClass::WaDup), // other class
        ];
        let cdf = prefix_as_cdf(&events, UpdateClass::AaDiff);
        assert_eq!(cdf.pair_count(), 3);
        assert_eq!(cdf.total, 5);
        assert_eq!(cdf.pair_counts, vec![1, 1, 3]);
        assert!((cdf.cumulative_at(1) - 0.4).abs() < 1e-12);
        assert!((cdf.cumulative_at(3) - 1.0).abs() < 1e-12);
        assert!((cdf.max_pair_share() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn heavy_tail_detected() {
        // One pair with 200 events + 50 pairs with 1 event each.
        let mut events: Vec<ClassifiedEvent> =
            (0..200).map(|_| ev(9, 0, UpdateClass::AaDup)).collect();
        for i in 1..=50 {
            events.push(ev(1, i, UpdateClass::AaDup));
        }
        let cdf = prefix_as_cdf(&events, UpdateClass::AaDup);
        // Pairs under 50 events contribute only 20 %.
        assert!(cdf.cumulative_at(49) < 0.25);
        assert!(cdf.max_pair_share() > 0.7);
    }

    #[test]
    fn well_distributed_mass_under_fifty() {
        // 100 pairs with 5 events each — "80 to 100 percent … less than
        // fifty times".
        let events: Vec<ClassifiedEvent> = (0..100u32)
            .flat_map(|i| (0..5).map(move |_| ev(1 + i % 7, i, UpdateClass::WaDup)))
            .collect();
        let cdf = prefix_as_cdf(&events, UpdateClass::WaDup);
        assert!((cdf.cumulative_at(49) - 1.0).abs() < 1e-12);
        assert!(cdf.max_pair_share() < 0.05);
    }

    #[test]
    fn empty_and_missing_class() {
        let cdf = prefix_as_cdf(&[], UpdateClass::WaDiff);
        assert_eq!(cdf.total, 0);
        assert_eq!(cdf.cumulative_at(100), 0.0);
        assert_eq!(cdf.max_pair_share(), 0.0);
    }

    #[test]
    fn same_prefix_different_as_are_distinct_pairs() {
        let events = vec![
            ev(1, 0, UpdateClass::WaDup),
            ev(2, 0, UpdateClass::WaDup),
            ev(3, 0, UpdateClass::WaDup),
        ];
        let cdf = prefix_as_cdf(&events, UpdateClass::WaDup);
        assert_eq!(cdf.pair_count(), 3);
    }
}
