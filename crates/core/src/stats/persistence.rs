//! Instability-episode persistence (§4.1).
//!
//! "We define the persistence of instability and pathologies as the
//! duration of time routing information fluctuates before it stabilizes.
//! Our data indicate that the persistence of most pathological BGP
//! behaviors is under five minutes." An *episode* for a Prefix+AS pair is a
//! maximal run of events whose consecutive gaps never exceed a quiet
//! threshold.

use crate::classifier::ClassifiedEvent;
use iri_bgp::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One fluctuation episode of a Prefix+AS pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// Affected prefix.
    pub prefix: Prefix,
    /// Sending AS.
    pub asn: Asn,
    /// First event time (ms).
    pub start_ms: u64,
    /// Last event time (ms).
    pub end_ms: u64,
    /// Events in the episode.
    pub events: u32,
}

impl Episode {
    /// Duration in milliseconds.
    #[must_use]
    pub fn duration_ms(&self) -> u64 {
        self.end_ms - self.start_ms
    }
}

/// Segments time-sorted events into episodes: a gap larger than
/// `quiet_ms` closes the current episode for that pair. Single-event
/// episodes (isolated updates) are included with zero duration.
#[must_use]
pub fn episodes(events: &[ClassifiedEvent], quiet_ms: u64) -> Vec<Episode> {
    let mut open: HashMap<(Prefix, Asn), Episode> = HashMap::new();
    let mut done = Vec::new();
    for e in events {
        let key = (e.prefix, e.peer.asn);
        match open.get_mut(&key) {
            Some(ep) if e.time_ms.saturating_sub(ep.end_ms) <= quiet_ms => {
                ep.end_ms = e.time_ms;
                ep.events += 1;
            }
            existing => {
                if let Some(ep) = existing {
                    done.push(*ep);
                }
                open.insert(
                    key,
                    Episode {
                        prefix: e.prefix,
                        asn: e.peer.asn,
                        start_ms: e.time_ms,
                        end_ms: e.time_ms,
                        events: 1,
                    },
                );
            }
        }
    }
    done.extend(open.into_values());
    done.sort_by_key(|ep| (ep.start_ms, ep.prefix.bits(), ep.asn.0));
    done
}

/// Fraction of multi-event episodes whose duration is below `limit_ms` —
/// the paper's "persistence … under five minutes" claim is
/// `persistence_below(episodes, 5 * 60 * 1000) > 0.5`.
#[must_use]
pub fn persistence_below(episodes: &[Episode], limit_ms: u64) -> f64 {
    let multi: Vec<&Episode> = episodes.iter().filter(|e| e.events > 1).collect();
    if multi.is_empty() {
        return 1.0;
    }
    let under = multi.iter().filter(|e| e.duration_ms() < limit_ms).count();
    under as f64 / multi.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use crate::taxonomy::UpdateClass;
    use std::net::Ipv4Addr;

    fn ev(t: u64, prefix_idx: u32) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: t,
            peer: PeerKey {
                asn: Asn(1),
                addr: Ipv4Addr::LOCALHOST,
            },
            prefix: Prefix::from_raw(0x0a00_0000 | (prefix_idx << 8), 24),
            class: UpdateClass::WaDup,
            policy_change: false,
        }
    }

    #[test]
    fn gap_splits_episodes() {
        // Events at 0, 30s, 60s, then quiet, then 20min, 20.5min.
        let events = vec![
            ev(0, 0),
            ev(30_000, 0),
            ev(60_000, 0),
            ev(1_200_000, 0),
            ev(1_230_000, 0),
        ];
        let eps = episodes(&events, 300_000); // 5-minute quiet threshold
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].events, 3);
        assert_eq!(eps[0].duration_ms(), 60_000);
        assert_eq!(eps[1].events, 2);
        assert_eq!(eps[1].duration_ms(), 30_000);
    }

    #[test]
    fn pairs_tracked_independently() {
        let events = vec![ev(0, 0), ev(1_000, 1), ev(2_000, 0)];
        let eps = episodes(&events, 10_000);
        assert_eq!(eps.len(), 2);
        let p0 = eps.iter().find(|e| e.prefix.bits() == 0x0a00_0000).unwrap();
        assert_eq!(p0.events, 2);
    }

    #[test]
    fn persistence_fraction() {
        // Two short multi-event episodes + one long one + one singleton.
        let mut events = vec![
            ev(0, 0),
            ev(60_000, 0), // 1 min episode
            ev(10_000_000, 1),
            ev(10_060_000, 1), // 1 min episode
            ev(20_000_000, 2),
            ev(20_200_000, 2),
            ev(20_400_000, 2),
            ev(20_600_000, 2), // 10 min episode
            ev(40_000_000, 3), // singleton
        ];
        events.sort_by_key(|e| e.time_ms);
        let eps = episodes(&events, 300_000);
        let frac = persistence_below(&eps, 5 * 60 * 1000);
        assert!((frac - 2.0 / 3.0).abs() < 1e-12, "{frac}");
    }

    #[test]
    fn empty_input() {
        assert!(episodes(&[], 1000).is_empty());
        assert_eq!(persistence_below(&[], 1000), 1.0);
    }
}
