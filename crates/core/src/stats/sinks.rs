//! Mergeable streaming accumulators ("sinks") for the per-figure
//! statistics.
//!
//! The batch functions in the sibling modules ([`super::breakdown`],
//! [`super::daily`], [`super::interarrival`], [`super::affected`],
//! [`super::cdf`], …) take a complete `&[ClassifiedEvent]` slice. The
//! parallel pipeline instead feeds each classified event to a sink as it
//! streams past, and folds per-shard sinks together at the end with
//! `merge`.
//!
//! Every sink here is **exactly equivalent** to its batch counterpart
//! under sharded evaluation, provided the shard assignment keeps all
//! events of a given `(prefix, peer-AS)` pair — and a fortiori of a given
//! `(peer, prefix)` pair — in one shard, and each shard sees its events in
//! stream order. The stateful sinks (inter-arrival gaps, episodes) key
//! their state by `(Prefix, Asn)`, so per-pair subsequences are identical
//! to the sequential run; the rest are sums and set unions, which commute
//! across shards.

use crate::classifier::ClassifiedEvent;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::stats::affected::AffectedDay;
use crate::stats::bins::{SLOTS_PER_DAY, TEN_MINUTES_MS};
use crate::stats::breakdown::ClassBreakdown;
use crate::stats::cdf::PrefixAsCdf;
use crate::stats::daily::ProviderDailyRow;
use crate::stats::interarrival::{bin_index, DayInterarrival};
use crate::stats::persistence::Episode;
use crate::taxonomy::UpdateClass;
use iri_bgp::types::{Asn, Prefix};
use std::collections::BTreeMap;

/// Streaming counterpart of [`super::breakdown::breakdown`].
#[derive(Debug, Clone, Default)]
pub struct BreakdownSink {
    counts: [u64; UpdateClass::COUNT],
}

impl BreakdownSink {
    /// Empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Tallies one event.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        self.counts[e.class.index()] += 1;
    }

    /// Folds another shard's tallies into this one.
    pub fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            *mine += theirs;
        }
    }

    /// The accumulated breakdown.
    #[must_use]
    pub fn finish(&self) -> ClassBreakdown {
        let mut counts = BTreeMap::new();
        for class in UpdateClass::ALL {
            let n = self.counts[class.index()];
            if n > 0 {
                counts.insert(class, n);
            }
        }
        ClassBreakdown { counts }
    }
}

#[derive(Debug, Clone, Default)]
struct DailyAcc {
    announce: u64,
    withdraw: u64,
    prefixes: FxHashSet<Prefix>,
}

/// Streaming counterpart of [`super::daily::provider_daily_totals`].
#[derive(Debug, Clone, Default)]
pub struct DailySink {
    acc: BTreeMap<Asn, DailyAcc>,
}

impl DailySink {
    /// Empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Tallies one event.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        let a = self.acc.entry(e.peer.asn).or_default();
        if e.class.is_announcement() {
            a.announce += 1;
        } else {
            a.withdraw += 1;
        }
        a.prefixes.insert(e.prefix);
    }

    /// Folds another shard's tallies: counts add, prefix sets union.
    pub fn merge(&mut self, other: Self) {
        for (asn, theirs) in other.acc {
            let mine = self.acc.entry(asn).or_default();
            mine.announce += theirs.announce;
            mine.withdraw += theirs.withdraw;
            mine.prefixes.extend(theirs.prefixes);
        }
    }

    /// Table 1 rows, sorted by ASN.
    #[must_use]
    pub fn finish(&self) -> Vec<ProviderDailyRow> {
        self.acc
            .iter()
            .map(|(&asn, a)| ProviderDailyRow {
                asn,
                announce: a.announce,
                withdraw: a.withdraw,
                unique_prefixes: a.prefixes.len(),
            })
            .collect()
    }
}

/// Streaming counterpart of [`super::interarrival::day_interarrival`],
/// accumulating all classes in one pass.
#[derive(Debug, Clone, Default)]
pub struct InterarrivalSink {
    last_seen: FxHashMap<(Prefix, Asn), u64>,
    counts: [[u64; 12]; UpdateClass::COUNT],
    gaps: [u64; UpdateClass::COUNT],
}

impl InterarrivalSink {
    /// Empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event; a gap is measured against the pair's previous
    /// event and attributed to this (the later) event's class.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        let key = (e.prefix, e.peer.asn);
        if let Some(&prev) = self.last_seen.get(&key) {
            let idx = e.class.index();
            self.counts[idx][bin_index(e.time_ms.saturating_sub(prev))] += 1;
            self.gaps[idx] += 1;
        }
        self.last_seen.insert(key, e.time_ms);
    }

    /// Folds another shard's bin counts. The per-pair `last_seen` state
    /// needs no reconciliation when shards own disjoint pairs.
    pub fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        for (mine, theirs) in self.gaps.iter_mut().zip(other.gaps) {
            *mine += theirs;
        }
        self.last_seen.extend(other.last_seen);
    }

    /// One class's inter-arrival distribution.
    #[must_use]
    pub fn finish(&self, class: UpdateClass) -> DayInterarrival {
        let idx = class.index();
        let gaps = self.gaps[idx];
        let mut proportions = [0.0; 12];
        if gaps > 0 {
            for (p, &c) in proportions.iter_mut().zip(&self.counts[idx]) {
                *p = c as f64 / gaps as f64;
            }
        }
        DayInterarrival {
            class,
            proportions,
            gaps,
        }
    }
}

/// Streaming counterpart of [`super::affected::affected_day`] and
/// [`super::affected::affected_tuples`].
///
/// Only two set inserts per event (the per-class prefix set and the
/// (prefix, AS) tuple set); the "any category / any instability / any
/// forwarding" unions are derived once in [`AffectedSink::finish`].
#[derive(Debug, Clone, Default)]
pub struct AffectedSink {
    per_class: [FxHashSet<Prefix>; UpdateClass::COUNT],
    tuples: FxHashSet<(Prefix, Asn)>,
}

impl AffectedSink {
    /// Empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event's prefix into the relevant sets.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        self.per_class[e.class.index()].insert(e.prefix);
        if !matches!(e.class, UpdateClass::NewAnnounce) {
            self.tuples.insert((e.prefix, e.peer.asn));
        }
    }

    /// Unions another shard's sets into this one.
    pub fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.per_class.iter_mut().zip(other.per_class) {
            mine.extend(theirs);
        }
        self.tuples.extend(other.tuples);
    }

    /// Union of the class sets selected by `pick`.
    fn union_len(&self, pick: impl Fn(UpdateClass) -> bool) -> usize {
        let mut all: FxHashSet<Prefix> = FxHashSet::default();
        for class in UpdateClass::ALL {
            if pick(class) {
                all.extend(self.per_class[class.index()].iter().copied());
            }
        }
        all.len()
    }

    /// The day's affected-route proportions.
    #[must_use]
    pub fn finish(&self, table_size: usize, day: u32) -> AffectedDay {
        let denom = table_size.max(1) as f64;
        let any = self.union_len(|c| !matches!(c, UpdateClass::NewAnnounce));
        let unstable = self.union_len(UpdateClass::is_instability);
        let forwarding = self.union_len(UpdateClass::is_forwarding_instability);
        AffectedDay {
            day,
            table_size,
            per_class: UpdateClass::ALL
                .iter()
                .map(|&c| (c, self.per_class[c.index()].len() as f64 / denom))
                .collect(),
            any_category: (any as f64 / denom).min(1.0),
            any_instability: (unstable as f64 / denom).min(1.0),
            any_forwarding: (forwarding as f64 / denom).min(1.0),
        }
    }

    /// Fraction of (prefix, AS) tuples touched, over `tuple_count` known
    /// tuples — matches [`super::affected::affected_tuples`].
    #[must_use]
    pub fn tuples_fraction(&self, tuple_count: usize) -> f64 {
        (self.tuples.len() as f64 / tuple_count.max(1) as f64).min(1.0)
    }
}

/// Streaming counterpart of [`super::cdf::prefix_as_cdf`], accumulating
/// all classes in one pass. Counts live in a hash map (one cheap insert
/// per event on the hot path); the sorted distribution a CDF needs is
/// built once in [`CdfSink::finish`].
#[derive(Debug, Clone, Default)]
pub struct CdfSink {
    per_pair: FxHashMap<(UpdateClass, Prefix, Asn), u64>,
}

impl CdfSink {
    /// Empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one event against its (class, prefix, AS) key.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        *self
            .per_pair
            .entry((e.class, e.prefix, e.peer.asn))
            .or_default() += 1;
    }

    /// Adds another shard's per-pair counts.
    pub fn merge(&mut self, other: Self) {
        for (key, n) in other.per_pair {
            *self.per_pair.entry(key).or_default() += n;
        }
    }

    /// One class's Prefix+AS distribution.
    #[must_use]
    pub fn finish(&self, class: UpdateClass) -> PrefixAsCdf {
        let mut pair_counts: Vec<u64> = self
            .per_pair
            .iter()
            .filter(|((c, _, _), _)| *c == class)
            .map(|(_, &n)| n)
            .collect();
        pair_counts.sort_unstable();
        let total = pair_counts.iter().sum();
        PrefixAsCdf {
            class,
            pair_counts,
            total,
        }
    }
}

/// Streaming counterpart of [`super::persistence::episodes`].
#[derive(Debug, Clone)]
pub struct EpisodeSink {
    quiet_ms: u64,
    open: FxHashMap<(Prefix, Asn), Episode>,
    done: Vec<Episode>,
}

impl EpisodeSink {
    /// Sink segmenting episodes at gaps larger than `quiet_ms`.
    #[must_use]
    pub fn new(quiet_ms: u64) -> Self {
        EpisodeSink {
            quiet_ms,
            open: FxHashMap::default(),
            done: Vec::new(),
        }
    }

    /// Extends or closes the pair's current episode.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        let key = (e.prefix, e.peer.asn);
        match self.open.get_mut(&key) {
            Some(ep) if e.time_ms.saturating_sub(ep.end_ms) <= self.quiet_ms => {
                ep.end_ms = e.time_ms;
                ep.events += 1;
            }
            existing => {
                if let Some(ep) = existing {
                    self.done.push(*ep);
                }
                self.open.insert(
                    key,
                    Episode {
                        prefix: e.prefix,
                        asn: e.peer.asn,
                        start_ms: e.time_ms,
                        end_ms: e.time_ms,
                        events: 1,
                    },
                );
            }
        }
    }

    /// Combines another shard's episodes (closed and still-open).
    pub fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.quiet_ms, other.quiet_ms);
        self.done.extend(other.done);
        self.open.extend(other.open);
    }

    /// All episodes, sorted like [`super::persistence::episodes`]. Ties on
    /// the sort key may order differently than a sequential run (both are
    /// already tie-unstable there); every duration statistic is unaffected.
    #[must_use]
    pub fn finish(&self) -> Vec<Episode> {
        let mut done = self.done.clone();
        done.extend(self.open.values().copied());
        done.sort_by_key(|ep| (ep.start_ms, ep.prefix.bits(), ep.asn.0));
        done
    }
}

/// Streaming counterpart of [`super::bins::ten_minute_bins`] with the
/// paper's instability filter.
#[derive(Debug, Clone)]
pub struct BinsSink {
    slots: Box<[u64; SLOTS_PER_DAY]>,
}

impl Default for BinsSink {
    fn default() -> Self {
        BinsSink {
            slots: Box::new([0; SLOTS_PER_DAY]),
        }
    }
}

impl BinsSink {
    /// Empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts instability events into their ten-minute slot.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        if e.class.is_instability() {
            let slot = (e.time_ms / TEN_MINUTES_MS) as usize;
            if slot < SLOTS_PER_DAY {
                self.slots[slot] += 1;
            }
        }
    }

    /// Adds another shard's slot counts.
    pub fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            *mine += theirs;
        }
    }

    /// The per-slot instability counts.
    #[must_use]
    pub fn finish(&self) -> [u64; SLOTS_PER_DAY] {
        *self.slots
    }
}

/// Every sink the analysis pipeline maintains, advanced in one call per
/// classified event.
#[derive(Debug, Clone)]
pub struct StreamSinks {
    /// Class counts (Figure 2 / §4 headline numbers).
    pub breakdown: BreakdownSink,
    /// Per-ISP daily totals (Table 1).
    pub daily: DailySink,
    /// Inter-arrival histograms (Figure 8).
    pub interarrival: InterarrivalSink,
    /// Affected-route proportions (Figure 9).
    pub affected: AffectedSink,
    /// Prefix+AS distributions (Figure 7).
    pub cdf: CdfSink,
    /// Instability episodes (§4.1 persistence).
    pub episodes: EpisodeSink,
    /// Ten-minute instability bins (incident detection input).
    pub bins: BinsSink,
    /// Events recorded.
    pub events: u64,
    /// Largest event time seen (ms).
    pub max_time_ms: u64,
}

impl StreamSinks {
    /// Fresh sinks; `quiet_ms` is the episode-segmentation threshold.
    #[must_use]
    pub fn new(quiet_ms: u64) -> Self {
        StreamSinks {
            breakdown: BreakdownSink::new(),
            daily: DailySink::new(),
            interarrival: InterarrivalSink::new(),
            affected: AffectedSink::new(),
            cdf: CdfSink::new(),
            episodes: EpisodeSink::new(quiet_ms),
            bins: BinsSink::new(),
            events: 0,
            max_time_ms: 0,
        }
    }

    /// Feeds one classified event to every sink.
    pub fn record(&mut self, e: &ClassifiedEvent) {
        self.breakdown.record(e);
        self.daily.record(e);
        self.interarrival.record(e);
        self.affected.record(e);
        self.cdf.record(e);
        self.episodes.record(e);
        self.bins.record(e);
        self.events += 1;
        self.max_time_ms = self.max_time_ms.max(e.time_ms);
    }

    /// The observed stream span in milliseconds (`max_time + 1`, the
    /// convention the CLIs use for an inclusive last event), or 0 when no
    /// events were recorded.
    #[must_use]
    pub fn span_ms(&self) -> u64 {
        if self.events == 0 {
            0
        } else {
            self.max_time_ms + 1
        }
    }

    /// Folds another shard's sinks into this one.
    pub fn merge(&mut self, other: Self) {
        self.breakdown.merge(other.breakdown);
        self.daily.merge(other.daily);
        self.interarrival.merge(other.interarrival);
        self.affected.merge(other.affected);
        self.cdf.merge(other.cdf);
        self.episodes.merge(other.episodes);
        self.bins.merge(other.bins);
        self.events += other.events;
        self.max_time_ms = self.max_time_ms.max(other.max_time_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use crate::stats::affected::{affected_day, affected_tuples};
    use crate::stats::bins::{instability_filter, ten_minute_bins};
    use crate::stats::cdf::prefix_as_cdf;
    use crate::stats::daily::provider_daily_totals;
    use crate::stats::interarrival::day_interarrival;
    use crate::stats::persistence::episodes;
    use std::net::Ipv4Addr;

    fn ev(t: u64, asn: u32, pfx: u32, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: t,
            peer: PeerKey {
                asn: Asn(asn),
                addr: Ipv4Addr::new(10, 0, 0, asn as u8),
            },
            prefix: Prefix::from_raw(0x0a00_0000 | (pfx << 8), 24),
            class,
            policy_change: false,
        }
    }

    fn sample_stream() -> Vec<ClassifiedEvent> {
        use UpdateClass::*;
        let classes = [
            NewAnnounce,
            AaDup,
            Withdraw,
            WaDup,
            AaDiff,
            WwDup,
            WaDiff,
            AaDup,
        ];
        let mut out = Vec::new();
        for i in 0..400u64 {
            out.push(ev(
                i * 7_000,
                1 + (i % 3) as u32,
                (i % 17) as u32,
                classes[(i % 8) as usize],
            ));
        }
        out
    }

    /// Splits the stream into per-(prefix, AS) shards, feeds each shard its
    /// own sinks, merges, and checks every figure matches the batch
    /// functions over the full stream.
    #[test]
    fn sharded_sinks_match_batch_functions() {
        let stream = sample_stream();
        let quiet = 5 * 60 * 1000;
        let shards = 4usize;

        let mut merged = StreamSinks::new(quiet);
        let mut parts: Vec<StreamSinks> = (0..shards).map(|_| StreamSinks::new(quiet)).collect();
        for e in &stream {
            let shard = (e.prefix.bits() as usize ^ e.peer.asn.0 as usize) % shards;
            parts[shard].record(e);
        }
        for part in parts {
            merged.merge(part);
        }

        assert_eq!(merged.events, stream.len() as u64);
        let bd = merged.breakdown.finish();
        for class in UpdateClass::ALL {
            assert_eq!(
                bd.get(class),
                stream.iter().filter(|e| e.class == class).count() as u64
            );
        }
        assert_eq!(merged.daily.finish(), provider_daily_totals(&stream));
        for class in UpdateClass::FIGURE_CATEGORIES {
            let seq = day_interarrival(&stream, class);
            let par = merged.interarrival.finish(class);
            assert_eq!(par.gaps, seq.gaps, "{class:?}");
            assert_eq!(par.proportions, seq.proportions, "{class:?}");
            let seq_cdf = prefix_as_cdf(&stream, class);
            let par_cdf = merged.cdf.finish(class);
            assert_eq!(par_cdf.pair_counts, seq_cdf.pair_counts, "{class:?}");
            assert_eq!(par_cdf.total, seq_cdf.total, "{class:?}");
        }
        let seq_aff = affected_day(&stream, 100, 3);
        let par_aff = merged.affected.finish(100, 3);
        assert_eq!(par_aff.per_class, seq_aff.per_class);
        assert_eq!(par_aff.any_category, seq_aff.any_category);
        assert_eq!(par_aff.any_instability, seq_aff.any_instability);
        assert_eq!(par_aff.any_forwarding, seq_aff.any_forwarding);
        assert_eq!(
            merged.affected.tuples_fraction(64),
            affected_tuples(&stream, 64)
        );
        assert_eq!(
            merged.bins.finish(),
            ten_minute_bins(&stream, instability_filter)
        );
        let mut seq_eps = episodes(&stream, quiet);
        let mut par_eps = merged.episodes.finish();
        let full_key = |e: &Episode| {
            (
                e.start_ms,
                e.prefix.bits(),
                e.prefix.len(),
                e.asn.0,
                e.end_ms,
                e.events,
            )
        };
        seq_eps.sort_by_key(full_key);
        par_eps.sort_by_key(full_key);
        assert_eq!(par_eps, seq_eps);
    }
}
