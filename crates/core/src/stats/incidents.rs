//! Pathological routing-incident detection (§4.1).
//!
//! "We define a pathological routing incident as a time when the aggregate
//! level of routing instability seen at an exchange point exceeds the
//! normal level of instability by one or more orders of magnitude."
//!
//! Detection works on per-slot aggregate counts: the *normal level* is a
//! robust baseline (median of non-zero slots over a trailing window), and
//! a slot opens an incident when it exceeds `ratio ×` baseline. Contiguous
//! above-threshold slots merge into one incident.

use serde::{Deserialize, Serialize};

/// A detected incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// First slot index above threshold.
    pub start_slot: usize,
    /// Last slot index above threshold (inclusive).
    pub end_slot: usize,
    /// Peak slot count during the incident.
    pub peak: u64,
    /// Baseline (normal level) at detection time.
    pub baseline: f64,
}

impl Incident {
    /// Number of slots the incident spans.
    #[must_use]
    pub fn duration_slots(&self) -> usize {
        self.end_slot - self.start_slot + 1
    }

    /// Peak-to-baseline ratio (the "orders of magnitude" measure).
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        if self.baseline <= 0.0 {
            f64::INFINITY
        } else {
            self.peak as f64 / self.baseline
        }
    }
}

/// Detects incidents in a slot series. `ratio` is the threshold multiplier
/// over the baseline (10.0 = the paper's "one or more orders of
/// magnitude"); `window` is the trailing number of slots used for the
/// baseline (the median of its non-zero values, falling back to the global
/// median when the window is all-zero).
#[must_use]
pub fn detect_incidents(slots: &[u64], ratio: f64, window: usize) -> Vec<Incident> {
    if slots.is_empty() {
        return Vec::new();
    }
    let global_baseline = median_nonzero(slots).unwrap_or(0.0);
    let mut incidents: Vec<Incident> = Vec::new();
    let mut open: Option<Incident> = None;
    for (i, &x) in slots.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let baseline = median_nonzero(&slots[lo..i])
            .or(if global_baseline > 0.0 {
                Some(global_baseline)
            } else {
                None
            })
            .unwrap_or(0.0);
        let above = baseline > 0.0 && (x as f64) >= ratio * baseline;
        match (&mut open, above) {
            (None, true) => {
                open = Some(Incident {
                    start_slot: i,
                    end_slot: i,
                    peak: x,
                    baseline,
                });
            }
            (Some(inc), true) => {
                inc.end_slot = i;
                inc.peak = inc.peak.max(x);
            }
            (Some(_), false) => {
                incidents.push(open.take().expect("open"));
            }
            (None, false) => {}
        }
    }
    if let Some(inc) = open {
        incidents.push(inc);
    }
    incidents
}

fn median_nonzero(slots: &[u64]) -> Option<f64> {
    let mut v: Vec<u64> = slots.iter().copied().filter(|&x| x > 0).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_unstable();
    Some(v[v.len() / 2] as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_series_has_no_incidents() {
        let slots: Vec<u64> = (0..288).map(|i| 40 + (i % 7)).collect();
        assert!(detect_incidents(&slots, 10.0, 144).is_empty());
    }

    #[test]
    fn order_of_magnitude_spike_detected() {
        let mut slots: Vec<u64> = vec![50; 288];
        for s in slots.iter_mut().take(130).skip(100) {
            *s = 900; // 18x the baseline for 30 slots
        }
        let incidents = detect_incidents(&slots, 10.0, 144);
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.start_slot, 100);
        assert_eq!(inc.end_slot, 129);
        assert_eq!(inc.duration_slots(), 30);
        assert_eq!(inc.peak, 900);
        assert!(inc.magnitude() > 10.0);
    }

    #[test]
    fn sub_threshold_spike_ignored() {
        let mut slots: Vec<u64> = vec![50; 288];
        slots[150] = 400; // only 8x
        assert!(detect_incidents(&slots, 10.0, 144).is_empty());
        // But a lower ratio catches it.
        assert_eq!(detect_incidents(&slots, 5.0, 144).len(), 1);
    }

    #[test]
    fn multiple_incidents_split() {
        let mut slots: Vec<u64> = vec![30; 288];
        slots[50] = 500;
        slots[51] = 600;
        slots[200] = 800;
        let incidents = detect_incidents(&slots, 10.0, 144);
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].duration_slots(), 2);
        assert_eq!(incidents[1].peak, 800);
    }

    #[test]
    fn incident_at_series_end_is_closed() {
        let mut slots: Vec<u64> = vec![30; 100];
        slots[98] = 700;
        slots[99] = 900;
        let incidents = detect_incidents(&slots, 10.0, 50);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].end_slot, 99);
    }

    #[test]
    fn all_zero_and_empty_series() {
        assert!(detect_incidents(&[], 10.0, 10).is_empty());
        assert!(detect_incidents(&[0; 50], 10.0, 10).is_empty());
    }

    #[test]
    fn baseline_uses_trailing_window() {
        // Ramp: the baseline follows the growth, so a proportional value
        // never triggers; only a true spike does.
        let mut slots: Vec<u64> = (0..200).map(|i| 20 + i / 4).collect();
        assert!(detect_incidents(&slots, 10.0, 60).is_empty());
        slots[150] = 5_000;
        let incidents = detect_incidents(&slots, 10.0, 60);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].start_slot, 150);
    }
}
