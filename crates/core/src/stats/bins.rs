//! Shared time-binning helpers: ten-minute and hourly aggregates, the two
//! granularities every temporal figure in the paper uses.

use crate::classifier::ClassifiedEvent;
use crate::taxonomy::UpdateClass;

/// Milliseconds per ten-minute slot.
pub const TEN_MINUTES_MS: u64 = 10 * 60 * 1000;
/// Ten-minute slots per day.
pub const SLOTS_PER_DAY: usize = 144;
/// Milliseconds per hour.
pub const HOUR_MS: u64 = 3_600_000;
/// Hours per day.
pub const HOURS_PER_DAY: usize = 24;

/// Counts events per ten-minute slot of one day (times are ms since that
/// day's midnight). `filter` selects which classes count — pass
/// [`instability_filter`] for the paper's "sum of AADiff, WADiff, and WADup".
#[must_use]
pub fn ten_minute_bins<F>(events: &[ClassifiedEvent], filter: F) -> [u64; SLOTS_PER_DAY]
where
    F: Fn(UpdateClass) -> bool,
{
    let mut bins = [0u64; SLOTS_PER_DAY];
    for e in events {
        if filter(e.class) {
            let slot = (e.time_ms / TEN_MINUTES_MS) as usize;
            if slot < SLOTS_PER_DAY {
                bins[slot] += 1;
            }
        }
    }
    bins
}

/// Counts events per hour of one day.
#[must_use]
pub fn hourly_bins<F>(events: &[ClassifiedEvent], filter: F) -> [u64; HOURS_PER_DAY]
where
    F: Fn(UpdateClass) -> bool,
{
    let mut bins = [0u64; HOURS_PER_DAY];
    for e in events {
        if filter(e.class) {
            let h = (e.time_ms / HOUR_MS) as usize;
            if h < HOURS_PER_DAY {
                bins[h] += 1;
            }
        }
    }
    bins
}

/// The paper's instability filter: AADiff + WADiff + WADup.
#[must_use]
pub fn instability_filter(c: UpdateClass) -> bool {
    c.is_instability()
}

/// Everything except plain withdrawals and first announcements.
#[must_use]
pub fn all_classified_filter(c: UpdateClass) -> bool {
    !matches!(c, UpdateClass::Withdraw | UpdateClass::NewAnnounce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use iri_bgp::types::{Asn, Prefix};
    use std::net::Ipv4Addr;

    fn ev(time_ms: u64, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms,
            peer: PeerKey {
                asn: Asn(701),
                addr: Ipv4Addr::LOCALHOST,
            },
            prefix: Prefix::from_raw(0x0a00_0000, 8),
            class,
            policy_change: false,
        }
    }

    #[test]
    fn ten_minute_binning() {
        let events = vec![
            ev(0, UpdateClass::WaDup),
            ev(TEN_MINUTES_MS - 1, UpdateClass::AaDiff),
            ev(TEN_MINUTES_MS, UpdateClass::WaDiff),
            ev(23 * HOUR_MS + 59 * 60_000, UpdateClass::WaDup),
            ev(5 * HOUR_MS, UpdateClass::WwDup), // not instability
        ];
        let bins = ten_minute_bins(&events, instability_filter);
        assert_eq!(bins[0], 2);
        assert_eq!(bins[1], 1);
        assert_eq!(bins[SLOTS_PER_DAY - 1], 1);
        assert_eq!(bins.iter().sum::<u64>(), 4);
    }

    #[test]
    fn hourly_binning() {
        let events = vec![
            ev(30 * 60_000, UpdateClass::AaDup),
            ev(HOUR_MS + 1, UpdateClass::AaDup),
            ev(HOUR_MS + 2, UpdateClass::Withdraw), // excluded by filter
        ];
        let bins = hourly_bins(&events, all_classified_filter);
        assert_eq!(bins[0], 1);
        assert_eq!(bins[1], 1);
    }

    #[test]
    fn out_of_day_events_dropped() {
        let events = vec![ev(25 * HOUR_MS, UpdateClass::WaDup)];
        let bins = ten_minute_bins(&events, instability_filter);
        assert_eq!(bins.iter().sum::<u64>(), 0);
    }
}
