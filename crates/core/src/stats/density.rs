//! Figure 3 (instability density grid) and Figure 4 (representative week).
//!
//! "Each day is represented by a vertical slice of small squares, each of
//! which represent a ten minute aggregate of instability updates. The black
//! squares represent a level of instability above a certain threshold …
//! the magnitude of the difference … was reduced by examining the logarithm
//! of the raw data. Furthermore, the logarithms were detrended using a
//! least-square regression."

use crate::stats::bins::SLOTS_PER_DAY;
use crate::timeseries::detrend::log_detrend;
use serde::{Deserialize, Serialize};

/// One cell of the density grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DensityCell {
    /// Above-threshold instability (the paper's black square).
    Dense,
    /// Below-threshold (light gray).
    Light,
    /// No data collected (white).
    Missing,
}

/// The Figure 3 matrix: `grid[day][slot]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityGrid {
    /// Cells, one row per day, [`SLOTS_PER_DAY`] columns.
    pub grid: Vec<Vec<DensityCell>>,
    /// The raw-update-count threshold applied per day (varies with the
    /// trend, like the paper's "345 updates per 10 minute aggregate in
    /// March to 770 in September").
    pub raw_threshold_per_day: Vec<f64>,
    /// Fitted per-sample slope of the log series (growth evidence).
    pub log_slope: f64,
}

impl DensityGrid {
    /// Fraction of non-missing cells that are dense within `days`.
    #[must_use]
    pub fn dense_fraction(&self, days: std::ops::Range<usize>) -> f64 {
        let mut dense = 0usize;
        let mut total = 0usize;
        for d in days {
            if let Some(row) = self.grid.get(d) {
                for c in row {
                    match c {
                        DensityCell::Dense => {
                            dense += 1;
                            total += 1;
                        }
                        DensityCell::Light => total += 1,
                        DensityCell::Missing => {}
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            dense as f64 / total as f64
        }
    }

    /// Fraction of dense cells within a slot (minute-of-day) band across
    /// all days — used to verify the night/business-hours contrast.
    #[must_use]
    pub fn dense_fraction_slots(&self, slots: std::ops::Range<usize>) -> f64 {
        let mut dense = 0usize;
        let mut total = 0usize;
        for row in &self.grid {
            for s in slots.clone() {
                match row.get(s) {
                    Some(DensityCell::Dense) => {
                        dense += 1;
                        total += 1;
                    }
                    Some(DensityCell::Light) => total += 1,
                    _ => {}
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            dense as f64 / total as f64
        }
    }

    /// ASCII rendering (rows = slots descending like the paper's y-axis,
    /// columns = days): `#` dense, `.` light, ` ` missing. One column per
    /// day; intended for small runs.
    #[must_use]
    pub fn render_ascii(&self) -> String {
        let days = self.grid.len();
        let mut out = String::with_capacity((days + 1) * SLOTS_PER_DAY / 4);
        for slot in (0..SLOTS_PER_DAY).rev().step_by(4) {
            for row in &self.grid {
                out.push(match row.get(slot) {
                    Some(DensityCell::Dense) => '#',
                    Some(DensityCell::Light) => '.',
                    _ => ' ',
                });
            }
            out.push('\n');
        }
        out
    }
}

/// Builds the density grid from per-day ten-minute instability bins
/// (`None` = day missing). `sigma` positions the threshold above the mean
/// of the detrended logs (the paper chose "a point above the mean").
#[must_use]
pub fn density_grid(days: &[Option<[u64; SLOTS_PER_DAY]>], sigma: f64) -> DensityGrid {
    // Flatten to one long series for the log-detrend fit; missing days
    // contribute their day-mean so the fit is unbiased (the paper simply
    // had gaps).
    let mut flat: Vec<f64> = Vec::with_capacity(days.len() * SLOTS_PER_DAY);
    for d in days {
        match d {
            Some(bins) => flat.extend(bins.iter().map(|&x| x as f64)),
            None => flat.extend(std::iter::repeat_n(f64::NAN, SLOTS_PER_DAY)),
        }
    }
    // Replace NaNs with the global mean of present values for fitting.
    let present: Vec<f64> = flat.iter().copied().filter(|x| !x.is_nan()).collect();
    let mean = if present.is_empty() {
        0.0
    } else {
        present.iter().sum::<f64>() / present.len() as f64
    };
    let fit_series: Vec<f64> = flat
        .iter()
        .map(|&x| if x.is_nan() { mean } else { x })
        .collect();
    let detrended = log_detrend(&fit_series);
    let threshold = detrended.threshold(sigma);

    let mut grid = Vec::with_capacity(days.len());
    let mut raw_threshold_per_day = Vec::with_capacity(days.len());
    for (di, d) in days.iter().enumerate() {
        let mid_t = di * SLOTS_PER_DAY + SLOTS_PER_DAY / 2;
        // Invert: residual threshold + trend → raw count threshold.
        let raw_thresh = (detrended.trend_at(mid_t) + threshold).exp() - 1.0;
        raw_threshold_per_day.push(raw_thresh.max(0.0));
        match d {
            None => grid.push(vec![DensityCell::Missing; SLOTS_PER_DAY]),
            Some(bins) => {
                let row = bins
                    .iter()
                    .enumerate()
                    .map(|(s, &x)| {
                        let t = di * SLOTS_PER_DAY + s;
                        let resid = (x as f64 + 1.0).ln() - detrended.trend_at(t);
                        if resid > threshold {
                            DensityCell::Dense
                        } else {
                            DensityCell::Light
                        }
                    })
                    .collect();
                grid.push(row);
            }
        }
    }
    DensityGrid {
        grid,
        raw_threshold_per_day,
        log_slope: detrended.slope,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic month with a strong diurnal cycle and lighter weekends.
    fn synthetic_days(n: usize) -> Vec<Option<[u64; SLOTS_PER_DAY]>> {
        (0..n)
            .map(|d| {
                if d == 7 {
                    return None; // a missing day
                }
                let weekend = d % 7 == 5 || d % 7 == 6;
                let mut bins = [0u64; SLOTS_PER_DAY];
                for (s, b) in bins.iter_mut().enumerate() {
                    let hour = s / 6;
                    let diurnal = if (12..24).contains(&hour) { 400 } else { 40 };
                    let base = if weekend { diurnal / 4 } else { diurnal };
                    // Mild growth trend.
                    *b = (base as f64 * (1.0 + 0.01 * d as f64)) as u64;
                }
                Some(bins)
            })
            .collect()
    }

    #[test]
    fn business_hours_denser_than_night() {
        let g = density_grid(&synthetic_days(28), 0.2);
        let night = g.dense_fraction_slots(0..36); // 00:00–06:00
        let afternoon = g.dense_fraction_slots(90..144); // 15:00–24:00
        assert!(
            afternoon > night + 0.3,
            "afternoon {afternoon} vs night {night}"
        );
    }

    #[test]
    fn weekends_lighter() {
        let g = density_grid(&synthetic_days(28), 0.2);
        // Weekdays for 4 weeks: days 0-4, 7-11, ...; weekends 5,6,12,13...
        let mut wk = 0.0;
        let mut wkn = 0.0;
        for w in 0..4usize {
            wk += g.dense_fraction(w * 7..w * 7 + 5);
            wkn += g.dense_fraction(w * 7 + 5..w * 7 + 7);
        }
        assert!(wk / 4.0 > wkn / 4.0 + 0.2, "weekday {wk} weekend {wkn}");
    }

    #[test]
    fn missing_day_is_missing() {
        let g = density_grid(&synthetic_days(10), 0.2);
        assert!(g.grid[7].iter().all(|c| *c == DensityCell::Missing));
        assert_eq!(g.dense_fraction(7..8), 0.0);
    }

    #[test]
    fn threshold_grows_with_trend() {
        let g = density_grid(&synthetic_days(56), 0.2);
        assert!(g.log_slope > 0.0);
        let first = g.raw_threshold_per_day[0];
        let last = g.raw_threshold_per_day[55];
        assert!(
            last > first,
            "threshold must follow the trend: {first} → {last}"
        );
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let g = density_grid(&synthetic_days(10), 0.2);
        let art = g.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), SLOTS_PER_DAY / 4);
        assert!(lines.iter().all(|l| l.len() == 10));
        assert!(art.contains('#') && art.contains('.') && art.contains(' '));
    }

    #[test]
    fn empty_input() {
        let g = density_grid(&[], 1.0);
        assert!(g.grid.is_empty());
        assert_eq!(g.dense_fraction(0..10), 0.0);
    }
}
