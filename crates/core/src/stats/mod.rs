//! Instability statistics — one module per table/figure of the paper.
//!
//! | module | reproduces |
//! |---|---|
//! | [`daily`] | Table 1 (per-ISP announce/withdraw/unique totals) |
//! | [`breakdown`] | Figure 2 (update-class breakdown over time) |
//! | [`bins`] | shared 10-minute / hourly aggregation |
//! | [`density`] | Figure 3 (day × 10-min instability density grid) + Figure 4 (representative week) |
//! | [`contribution`] | Figure 6 (AS table-share vs update-share scatter) |
//! | [`cdf`] | Figure 7 (Prefix+AS cumulative distributions) |
//! | [`interarrival`] | Figure 8 (inter-arrival histograms, 30/60 s modes) |
//! | [`affected`] | Figure 9 (proportion of routes experiencing events) |
//! | [`persistence`] | §4.1 episode persistence ("under five minutes") |
//! | [`incidents`] | §4.1 pathological-routing-incident detection (order-of-magnitude excursions) |
//! | [`sinks`] | mergeable streaming accumulators for sharded parallel analysis |

pub mod affected;
pub mod bins;
pub mod breakdown;
pub mod cdf;
pub mod contribution;
pub mod daily;
pub mod density;
pub mod incidents;
pub mod interarrival;
pub mod persistence;
pub mod sinks;
