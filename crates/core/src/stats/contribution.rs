//! Figure 6: per-AS contribution to routing updates vs routing-table share.
//!
//! "The horizontal axes show the proportion of the Internet's default-free
//! routing table for which the peer is responsible on a specific day; the
//! vertical axes signify the proportion of that day's route updates that
//! the peer generated. … Generally, we do not see [clustering about the
//! diagonal], which indicates that there is not a correlation between the
//! size of an AS and its share of the update statistics."

use crate::classifier::ClassifiedEvent;
use crate::taxonomy::UpdateClass;
use iri_bgp::types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One scatter point: a peer AS on one day, for one update class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContributionPoint {
    /// The peer AS.
    pub asn: Asn,
    /// Day index.
    pub day: u32,
    /// Fraction of the routing table attributable to this AS.
    pub table_share: f64,
    /// Fraction of the day's updates (of the given class) it generated.
    pub update_share: f64,
}

/// Builds one day's scatter points for `class`. `table_shares` maps each
/// peer AS to its routing-table share that day.
#[must_use]
pub fn contribution_points(
    events: &[ClassifiedEvent],
    class: UpdateClass,
    table_shares: &BTreeMap<Asn, f64>,
    day: u32,
) -> Vec<ContributionPoint> {
    let mut per_as: BTreeMap<Asn, u64> = BTreeMap::new();
    let mut total = 0u64;
    for e in events {
        if e.class == class {
            *per_as.entry(e.peer.asn).or_default() += 1;
            total += 1;
        }
    }
    table_shares
        .iter()
        .map(|(&asn, &table_share)| ContributionPoint {
            asn,
            day,
            table_share,
            update_share: if total == 0 {
                0.0
            } else {
                *per_as.get(&asn).unwrap_or(&0) as f64 / total as f64
            },
        })
        .collect()
}

/// Pearson correlation between table share and update share over a point
/// set — the paper's claim is that this is weak ("few days cluster about
/// the line").
#[must_use]
pub fn share_correlation(points: &[ContributionPoint]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.table_share).sum::<f64>() / n;
    let my = points.iter().map(|p| p.update_share).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for p in points {
        let dx = p.table_share - mx;
        let dy = p.update_share - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Whether any single AS dominates (exceeds `threshold` of updates) in
/// *all* of the given per-class point sets — the paper: "no single ISP
/// consistently contributes disproportionately to the measured instability
/// in all four categories."
#[must_use]
pub fn consistent_dominator(
    per_class_points: &[Vec<ContributionPoint>],
    threshold: f64,
) -> Option<Asn> {
    let mut candidate: Option<Asn> = None;
    for (i, points) in per_class_points.iter().enumerate() {
        let dominators: Vec<Asn> = points
            .iter()
            .filter(|p| p.update_share > threshold)
            .map(|p| p.asn)
            .collect();
        if i == 0 {
            candidate = dominators.first().copied();
        }
        match candidate {
            Some(c) if dominators.contains(&c) => {}
            _ => return None,
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use iri_bgp::types::Prefix;
    use std::net::Ipv4Addr;

    fn ev(asn: u32, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: 0,
            peer: PeerKey {
                asn: Asn(asn),
                addr: Ipv4Addr::new(1, 1, 1, asn as u8),
            },
            prefix: Prefix::from_raw(0, 8),
            class,
            policy_change: false,
        }
    }

    fn shares() -> BTreeMap<Asn, f64> {
        [(Asn(1), 0.5), (Asn(2), 0.3), (Asn(3), 0.2)]
            .into_iter()
            .collect()
    }

    #[test]
    fn shares_normalised() {
        let events = vec![
            ev(1, UpdateClass::WaDup),
            ev(2, UpdateClass::WaDup),
            ev(2, UpdateClass::WaDup),
            ev(3, UpdateClass::WaDup),
            ev(3, UpdateClass::AaDup), // other class ignored
        ];
        let pts = contribution_points(&events, UpdateClass::WaDup, &shares(), 0);
        assert_eq!(pts.len(), 3);
        let by_asn: BTreeMap<Asn, f64> = pts.iter().map(|p| (p.asn, p.update_share)).collect();
        assert!((by_asn[&Asn(1)] - 0.25).abs() < 1e-12);
        assert!((by_asn[&Asn(2)] - 0.50).abs() < 1e-12);
        assert!((by_asn[&Asn(3)] - 0.25).abs() < 1e-12);
        let total: f64 = pts.iter().map(|p| p.update_share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_events_gives_zero_shares() {
        let pts = contribution_points(&[], UpdateClass::WaDup, &shares(), 3);
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|p| p.update_share == 0.0 && p.day == 3));
    }

    #[test]
    fn correlation_detects_diagonal() {
        // Points exactly on the diagonal → r = 1.
        let diag: Vec<ContributionPoint> = (1..=5)
            .map(|i| ContributionPoint {
                asn: Asn(i),
                day: 0,
                table_share: i as f64 / 10.0,
                update_share: i as f64 / 10.0,
            })
            .collect();
        assert!((share_correlation(&diag) - 1.0).abs() < 1e-12);
        // Anti-correlated points → r = −1.
        let anti: Vec<ContributionPoint> = (1..=5)
            .map(|i| ContributionPoint {
                asn: Asn(i),
                day: 0,
                table_share: i as f64 / 10.0,
                update_share: (6 - i) as f64 / 10.0,
            })
            .collect();
        assert!((share_correlation(&anti) + 1.0).abs() < 1e-12);
        assert_eq!(share_correlation(&[]), 0.0);
    }

    #[test]
    fn consistent_dominator_detection() {
        let mk = |asn: u32, share: f64| ContributionPoint {
            asn: Asn(asn),
            day: 0,
            table_share: 0.1,
            update_share: share,
        };
        // AS 7 dominates both classes.
        let per_class = vec![vec![mk(7, 0.8), mk(8, 0.2)], vec![mk(7, 0.9), mk(8, 0.1)]];
        assert_eq!(consistent_dominator(&per_class, 0.5), Some(Asn(7)));
        // Different dominators per class → none.
        let per_class = vec![vec![mk(7, 0.8)], vec![mk(8, 0.8)]];
        assert_eq!(consistent_dominator(&per_class, 0.5), None);
        // No dominator at all.
        let per_class = vec![vec![mk(7, 0.3), mk(8, 0.3)]];
        assert_eq!(consistent_dominator(&per_class, 0.5), None);
    }
}
