//! Figure 8: histogram of update inter-arrival times per class.
//!
//! "The graphs' horizontal axes mark the histogram bins in a log-time scale
//! that ranges from one second (1s) to one day (24h) … the predominant
//! frequencies in each of the graphs are captured by the thirty second and
//! one minute bins. The fact that these frequencies account for half of the
//! measured statistics was surprising."
//!
//! Inter-arrival is measured between consecutive events of the same
//! **Prefix+AS** pair; each gap is attributed to the class of the *later*
//! event. Per-day proportions per bin are summarised by median and
//! quartiles (the paper's modified box plot).

use crate::classifier::ClassifiedEvent;
use crate::taxonomy::UpdateClass;
use iri_bgp::types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's bin edges (upper bounds, ms): 1s 5s 30s 1m 5m 10m 30m 1h 2h
/// 4h 8h 24h.
pub const BIN_EDGES_MS: [u64; 12] = [
    1_000, 5_000, 30_000, 60_000, 300_000, 600_000, 1_800_000, 3_600_000, 7_200_000, 14_400_000,
    28_800_000, 86_400_000,
];

/// Bin labels matching the paper's axis.
pub const BIN_LABELS: [&str; 12] = [
    "1s", "5s", "30s", "1m", "5m", "10m", "30m", "1h", "2h", "4h", "8h", "24h",
];

/// Index of the bin a gap falls into (gaps beyond 24 h clamp to the last
/// bin).
#[must_use]
pub fn bin_index(gap_ms: u64) -> usize {
    BIN_EDGES_MS
        .iter()
        .position(|&edge| gap_ms <= edge)
        .unwrap_or(BIN_EDGES_MS.len() - 1)
}

/// One day's inter-arrival proportions for one class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayInterarrival {
    /// Which class.
    pub class: UpdateClass,
    /// Proportion of the day's gaps in each bin (sums to 1 unless empty).
    pub proportions: [f64; 12],
    /// Total gaps measured.
    pub gaps: u64,
}

/// Computes one day's inter-arrival distribution for `class`. `events`
/// must be time-sorted.
#[must_use]
pub fn day_interarrival(events: &[ClassifiedEvent], class: UpdateClass) -> DayInterarrival {
    let mut last_seen: HashMap<(Prefix, Asn), u64> = HashMap::new();
    let mut counts = [0u64; 12];
    let mut gaps = 0u64;
    for e in events {
        let key = (e.prefix, e.peer.asn);
        if let Some(&prev) = last_seen.get(&key) {
            if e.class == class {
                counts[bin_index(e.time_ms.saturating_sub(prev))] += 1;
                gaps += 1;
            }
        }
        last_seen.insert(key, e.time_ms);
    }
    let mut proportions = [0.0; 12];
    if gaps > 0 {
        for (p, &c) in proportions.iter_mut().zip(&counts) {
            *p = c as f64 / gaps as f64;
        }
    }
    DayInterarrival {
        class,
        proportions,
        gaps,
    }
}

/// The per-bin box-plot summary across days: (first quartile, median,
/// third quartile) of the daily proportions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterarrivalSummary {
    /// Which class.
    pub class: UpdateClass,
    /// Per-bin (q1, median, q3).
    pub quartiles: [(f64, f64, f64); 12],
    /// Number of days aggregated.
    pub days: usize,
}

impl InterarrivalSummary {
    /// Median mass in the 30 s + 1 m bins — the paper's headline (~half).
    #[must_use]
    pub fn thirty_sixty_mass(&self) -> f64 {
        self.quartiles[2].1 + self.quartiles[3].1
    }
}

/// Summarises daily distributions into the Figure 8 box plot.
#[must_use]
pub fn summarize_interarrival(days: &[DayInterarrival], class: UpdateClass) -> InterarrivalSummary {
    let mut quartiles = [(0.0, 0.0, 0.0); 12];
    let relevant: Vec<&DayInterarrival> = days
        .iter()
        .filter(|d| d.class == class && d.gaps > 0)
        .collect();
    for (bin, q) in quartiles.iter_mut().enumerate() {
        let mut vals: Vec<f64> = relevant.iter().map(|d| d.proportions[bin]).collect();
        if vals.is_empty() {
            continue;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pick = |f: f64| -> f64 {
            let idx = ((vals.len() - 1) as f64 * f).round() as usize;
            vals[idx]
        };
        *q = (pick(0.25), pick(0.5), pick(0.75));
    }
    InterarrivalSummary {
        class,
        quartiles,
        days: relevant.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use std::net::Ipv4Addr;

    fn ev(t: u64, prefix_idx: u32, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: t,
            peer: PeerKey {
                asn: Asn(1),
                addr: Ipv4Addr::LOCALHOST,
            },
            prefix: Prefix::from_raw(0x0a00_0000 | (prefix_idx << 8), 24),
            class,
            policy_change: false,
        }
    }

    #[test]
    fn bin_edges() {
        assert_eq!(bin_index(500), 0); // ≤1s
        assert_eq!(bin_index(1_000), 0);
        assert_eq!(bin_index(1_001), 1); // ≤5s
        assert_eq!(bin_index(29_999), 2); // ≤30s
        assert_eq!(bin_index(30_000), 2);
        assert_eq!(bin_index(60_000), 3); // ≤1m
        assert_eq!(bin_index(86_400_000), 11);
        assert_eq!(bin_index(999_999_999), 11); // clamp
        assert_eq!(BIN_LABELS[2], "30s");
        assert_eq!(BIN_LABELS[3], "1m");
    }

    #[test]
    fn thirty_second_periodicity_dominates() {
        // A prefix flapping at exactly 30 s (the unjittered timer).
        let mut events = Vec::new();
        for i in 0..100u64 {
            events.push(ev(i * 30_000, 0, UpdateClass::WaDup));
        }
        let d = day_interarrival(&events, UpdateClass::WaDup);
        assert_eq!(d.gaps, 99);
        assert!(
            (d.proportions[2] - 1.0).abs() < 1e-12,
            "all gaps in 30s bin"
        );
    }

    #[test]
    fn gaps_are_per_pair_not_global() {
        // Two prefixes interleaved at 15 s offsets, each with 30 s period:
        // global gaps would be 15 s, per-pair gaps are 30 s.
        let mut events = Vec::new();
        for i in 0..50u64 {
            events.push(ev(i * 30_000, 0, UpdateClass::AaDup));
            events.push(ev(i * 30_000 + 15_000, 1, UpdateClass::AaDup));
        }
        events.sort_by_key(|e| e.time_ms);
        let d = day_interarrival(&events, UpdateClass::AaDup);
        assert!((d.proportions[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gap_attributed_to_later_event_class() {
        let events = vec![
            ev(0, 0, UpdateClass::NewAnnounce),
            ev(40_000, 0, UpdateClass::Withdraw),
            ev(100_000, 0, UpdateClass::WaDup),
        ];
        // Gap 0→40s attributed to Withdraw; 40s→100s (60 s) to WADup.
        let w = day_interarrival(&events, UpdateClass::Withdraw);
        assert_eq!(w.gaps, 1);
        assert!((w.proportions[3] - 1.0).abs() < 1e-12); // 40 s → 1m bin
        let wd = day_interarrival(&events, UpdateClass::WaDup);
        assert_eq!(wd.gaps, 1);
        assert!((wd.proportions[3] - 1.0).abs() < 1e-12); // 60 s → 1m bin
    }

    #[test]
    fn summary_quartiles() {
        // 3 days with 30s-bin proportions 0.4, 0.5, 0.6.
        let mk = |p: f64| {
            let mut proportions = [0.0; 12];
            proportions[2] = p;
            proportions[4] = 1.0 - p;
            DayInterarrival {
                class: UpdateClass::WaDup,
                proportions,
                gaps: 10,
            }
        };
        let days = vec![mk(0.4), mk(0.5), mk(0.6)];
        let s = summarize_interarrival(&days, UpdateClass::WaDup);
        assert_eq!(s.days, 3);
        assert!((s.quartiles[2].1 - 0.5).abs() < 1e-12);
        assert!((s.quartiles[2].0 - 0.4).abs() < 1e-9 || (s.quartiles[2].0 - 0.45).abs() < 0.06);
        assert!(s.thirty_sixty_mass() >= 0.5);
    }

    #[test]
    fn empty_days_ignored() {
        let empty = DayInterarrival {
            class: UpdateClass::AaDiff,
            proportions: [0.0; 12],
            gaps: 0,
        };
        let s = summarize_interarrival(&[empty], UpdateClass::AaDiff);
        assert_eq!(s.days, 0);
    }
}
