//! Table 1: per-ISP daily update totals.
//!
//! "Partial list of update totals per ISP on February 1, 1997 at AADS …
//! many of the exchange point routers withdraw an order of magnitude more
//! routes than they announce during a given day. For example, ISP-I
//! announced 259 prefixes, but transmitted over 2.4 million withdrawals
//! for just 14,112 different prefixes."

use crate::classifier::ClassifiedEvent;
use iri_bgp::types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderDailyRow {
    /// The peer AS.
    pub asn: Asn,
    /// Announcement prefix events sent.
    pub announce: u64,
    /// Withdrawal prefix events sent.
    pub withdraw: u64,
    /// Distinct prefixes touched.
    pub unique_prefixes: usize,
}

impl ProviderDailyRow {
    /// The withdrawal:announcement ratio (∞ guarded as `f64::INFINITY`).
    #[must_use]
    pub fn withdraw_ratio(&self) -> f64 {
        if self.announce == 0 {
            if self.withdraw == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.withdraw as f64 / self.announce as f64
        }
    }
}

/// Computes Table 1 rows from one day's classified events, sorted by ASN.
#[must_use]
pub fn provider_daily_totals(events: &[ClassifiedEvent]) -> Vec<ProviderDailyRow> {
    struct Acc {
        announce: u64,
        withdraw: u64,
        prefixes: HashSet<iri_bgp::types::Prefix>,
    }
    let mut acc: BTreeMap<Asn, Acc> = BTreeMap::new();
    for e in events {
        let a = acc.entry(e.peer.asn).or_insert_with(|| Acc {
            announce: 0,
            withdraw: 0,
            prefixes: HashSet::new(),
        });
        if e.class.is_announcement() {
            a.announce += 1;
        } else {
            a.withdraw += 1;
        }
        a.prefixes.insert(e.prefix);
    }
    acc.into_iter()
        .map(|(asn, a)| ProviderDailyRow {
            asn,
            announce: a.announce,
            withdraw: a.withdraw,
            unique_prefixes: a.prefixes.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use crate::taxonomy::UpdateClass;
    use iri_bgp::types::Prefix;
    use std::net::Ipv4Addr;

    fn ev(asn: u32, prefix_idx: u32, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: 0,
            peer: PeerKey {
                asn: Asn(asn),
                addr: Ipv4Addr::new(1, 1, 1, asn as u8),
            },
            prefix: Prefix::from_raw(0x0a00_0000 | (prefix_idx << 8), 24),
            class,
            policy_change: false,
        }
    }

    #[test]
    fn totals_per_provider() {
        let events = vec![
            ev(1, 0, UpdateClass::NewAnnounce),
            ev(1, 0, UpdateClass::Withdraw),
            ev(1, 0, UpdateClass::WwDup),
            ev(1, 1, UpdateClass::WaDup),
            ev(2, 5, UpdateClass::NewAnnounce),
        ];
        let rows = provider_daily_totals(&events);
        assert_eq!(rows.len(), 2);
        let r1 = &rows[0];
        assert_eq!(r1.asn, Asn(1));
        assert_eq!(r1.announce, 2); // NewAnnounce + WADup
        assert_eq!(r1.withdraw, 2); // Withdraw + WWDup
        assert_eq!(r1.unique_prefixes, 2);
        assert!((r1.withdraw_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(rows[1].announce, 1);
        assert_eq!(rows[1].withdraw, 0);
    }

    #[test]
    fn pathological_provider_skew() {
        // A tiny ISP-I: 2 announcements, 2000 WWDups on 10 prefixes.
        let mut events = vec![
            ev(9, 0, UpdateClass::NewAnnounce),
            ev(9, 1, UpdateClass::NewAnnounce),
        ];
        for i in 0..2000 {
            events.push(ev(9, i % 10, UpdateClass::WwDup));
        }
        let rows = provider_daily_totals(&events);
        let r = &rows[0];
        assert_eq!(r.withdraw, 2000);
        assert_eq!(r.announce, 2);
        assert!(r.withdraw_ratio() > 100.0);
        assert_eq!(r.unique_prefixes, 10);
    }

    #[test]
    fn ratio_edge_cases() {
        let zero = ProviderDailyRow {
            asn: Asn(1),
            announce: 0,
            withdraw: 0,
            unique_prefixes: 0,
        };
        assert_eq!(zero.withdraw_ratio(), 0.0);
        let inf = ProviderDailyRow {
            asn: Asn(1),
            announce: 0,
            withdraw: 5,
            unique_prefixes: 1,
        };
        assert!(inf.withdraw_ratio().is_infinite());
    }

    #[test]
    fn empty_input() {
        assert!(provider_daily_totals(&[]).is_empty());
    }
}
