//! Figure 2: breakdown of updates by class over time.
//!
//! "The breakdown of instability categories shows that both the AADup and
//! WADup classifications consistently dominate other categories of routing
//! instability. … Analysis of nine months of BGP traffic indicates that the
//! majority of BGP updates consist entirely of pathological, duplicate
//! withdrawals (WWDup)." Figure 2 itself excludes WWDup "so as not to
//! obscure the salient features of the other data"; the WWDup count is kept
//! alongside for the §4 headline numbers.

use crate::classifier::ClassifiedEvent;
use crate::taxonomy::UpdateClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-period class counts (period = day index, month index, …).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// Count per class.
    pub counts: BTreeMap<UpdateClass, u64>,
}

impl ClassBreakdown {
    /// Count for one class.
    #[must_use]
    pub fn get(&self, c: UpdateClass) -> u64 {
        *self.counts.get(&c).unwrap_or(&0)
    }

    /// Total across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Instability total (AADiff + WADiff + WADup).
    #[must_use]
    pub fn instability(&self) -> u64 {
        UpdateClass::ALL
            .iter()
            .filter(|c| c.is_instability())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Pathology total (AADup + WWDup).
    #[must_use]
    pub fn pathological(&self) -> u64 {
        UpdateClass::ALL
            .iter()
            .filter(|c| c.is_pathological())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Fraction of all events that are pathological — the paper's headline
    /// "the majority (99 percent) of routing information is pathological"
    /// (at full Internet scale; scale-dependent here).
    #[must_use]
    pub fn pathological_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.pathological() as f64 / t as f64
        }
    }
}

/// Accumulates one breakdown per period, where `period_of` maps an event to
/// its period index (e.g. `|e| e.time_ms / DAY_MS` fed per-day streams, or a
/// constant for a single aggregate).
#[must_use]
pub fn breakdown_by_period<F>(
    events: &[ClassifiedEvent],
    period_of: F,
) -> BTreeMap<u64, ClassBreakdown>
where
    F: Fn(&ClassifiedEvent) -> u64,
{
    let mut out: BTreeMap<u64, ClassBreakdown> = BTreeMap::new();
    for e in events {
        let b = out.entry(period_of(e)).or_default();
        *b.counts.entry(e.class).or_default() += 1;
    }
    out
}

/// Single aggregate breakdown of a stream.
#[must_use]
pub fn breakdown(events: &[ClassifiedEvent]) -> ClassBreakdown {
    let mut b = ClassBreakdown::default();
    for e in events {
        *b.counts.entry(e.class).or_default() += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PeerKey;
    use iri_bgp::types::{Asn, Prefix};
    use std::net::Ipv4Addr;

    fn ev(t: u64, class: UpdateClass) -> ClassifiedEvent {
        ClassifiedEvent {
            time_ms: t,
            peer: PeerKey {
                asn: Asn(1),
                addr: Ipv4Addr::LOCALHOST,
            },
            prefix: Prefix::from_raw(0, 8),
            class,
            policy_change: false,
        }
    }

    #[test]
    fn aggregate_breakdown_counts() {
        use UpdateClass::*;
        let events = vec![
            ev(0, WaDup),
            ev(1, WaDup),
            ev(2, AaDup),
            ev(3, AaDiff),
            ev(4, WwDup),
            ev(5, WwDup),
            ev(6, WwDup),
            ev(7, Withdraw),
        ];
        let b = breakdown(&events);
        assert_eq!(b.get(WaDup), 2);
        assert_eq!(b.get(WwDup), 3);
        assert_eq!(b.total(), 8);
        assert_eq!(b.instability(), 3); // 2 WADup + 1 AADiff
        assert_eq!(b.pathological(), 4); // 1 AADup + 3 WWDup
        assert!((b.pathological_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_period_split() {
        use UpdateClass::*;
        let events = vec![ev(0, WaDup), ev(100, WaDup), ev(250, AaDup)];
        let by = breakdown_by_period(&events, |e| e.time_ms / 100);
        assert_eq!(by.len(), 3);
        assert_eq!(by[&0].get(WaDup), 1);
        assert_eq!(by[&1].get(WaDup), 1);
        assert_eq!(by[&2].get(AaDup), 1);
    }

    #[test]
    fn empty_breakdown() {
        let b = breakdown(&[]);
        assert_eq!(b.total(), 0);
        assert_eq!(b.pathological_fraction(), 0.0);
    }
}
