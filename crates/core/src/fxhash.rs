//! A fast, non-cryptographic hasher for the analysis hot paths.
//!
//! The streaming sinks and classifier do several hash-map operations per
//! event; at millions of events per day the default SipHash becomes a
//! measurable fraction of worker time. This is the multiply-xor scheme
//! popularised by the Firefox/rustc "FxHash": one wrapping multiply per
//! word, no finalisation. Keys here are small fixed-size tuples of
//! integers (prefixes, ASNs, addresses) under no adversarial pressure, so
//! DoS resistance is irrelevant and distribution quality is ample.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-multiply-per-word hasher; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_buckets() {
        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        for a in 0..100u32 {
            for b in 0..100u32 {
                set.insert((a, b));
            }
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i * 7919, i);
        }
        for i in 0..1000u64 {
            assert_eq!(map.get(&(i * 7919)), Some(&i));
        }
    }

    #[test]
    fn unaligned_byte_writes_differ() {
        use std::hash::Hash;
        fn h<T: Hash>(v: &T) -> u64 {
            let mut hasher = FxHasher::default();
            v.hash(&mut hasher);
            hasher.finish()
        }
        assert_ne!(h(&[1u8, 2, 3]), h(&[1u8, 2, 4]));
        assert_ne!(h(&"abc"), h(&"abd"));
    }
}
