//! The streaming classifier: per-(peer, prefix) state machines applying
//! the §4 taxonomy.
//!
//! Classification compares the **(Prefix, NextHop, ASPATH)** tuple only —
//! "a BGP update may contain additional attributes (MED, communities,
//! localpref, etc.), but only changes in the (Prefix, NextHop, ASPATH)
//! tuple will reflect network topological changes". When the tuple matches
//! but other attributes differ, the event is still an AADup at the
//! forwarding level and [`ClassifiedEvent::policy_change`] is set — the
//! paper's *policy fluctuation*.

use crate::input::{PeerKey, UpdateEvent, UpdateKind};
use crate::taxonomy::UpdateClass;
use iri_bgp::attrs::PathAttributes;
use iri_bgp::types::Prefix;
use std::collections::HashMap;

/// Output of classifying one event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedEvent {
    /// Event time (ms since epoch).
    pub time_ms: u64,
    /// Sending peer.
    pub peer: PeerKey,
    /// Affected prefix.
    pub prefix: Prefix,
    /// Assigned class.
    pub class: UpdateClass,
    /// For AADup: the forwarding tuple matched but other attributes
    /// (MED/communities/…) changed — routing policy fluctuation.
    pub policy_change: bool,
}

enum PairState {
    /// Currently announced with these attributes.
    Announced(Box<PathAttributes>),
    /// Currently withdrawn; remembers the last announced attributes to
    /// distinguish WADup from WADiff.
    Withdrawn(Option<Box<PathAttributes>>),
}

/// The streaming classifier. Feed events in timestamp order.
#[derive(Default)]
pub struct Classifier {
    state: HashMap<(PeerKey, Prefix), PairState>,
    // Fixed-size table indexed by `UpdateClass::index()`: the per-event hot
    // path increments a slot instead of probing a hash map.
    counts: [u64; UpdateClass::COUNT],
    policy_changes: u64,
    total: u64,
}

impl Classifier {
    /// Fresh classifier with no history.
    #[must_use]
    pub fn new() -> Self {
        Classifier::default()
    }

    /// Total events classified.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events classified into `class` so far.
    #[must_use]
    pub fn count(&self, class: UpdateClass) -> u64 {
        self.counts[class.index()]
    }

    /// AADup events whose non-forwarding attributes changed (policy
    /// fluctuation).
    #[must_use]
    pub fn policy_change_count(&self) -> u64 {
        self.policy_changes
    }

    /// Number of (peer, prefix) pairs with state.
    #[must_use]
    pub fn tracked_pairs(&self) -> usize {
        self.state.len()
    }

    /// Classifies one event, updating state.
    pub fn classify(&mut self, event: &UpdateEvent) -> ClassifiedEvent {
        let key = (event.peer, event.prefix);
        let prev = self.state.remove(&key);
        let (class, policy_change, next) = match (&event.kind, prev) {
            (UpdateKind::Withdraw, None) => {
                // Withdrawal for a prefix this peer never announced:
                // "most of these WWDup withdrawals are transmitted by
                // routers belonging to autonomous systems that never
                // previously announced reachability".
                (UpdateClass::WwDup, false, PairState::Withdrawn(None))
            }
            (UpdateKind::Withdraw, Some(PairState::Withdrawn(last))) => {
                (UpdateClass::WwDup, false, PairState::Withdrawn(last))
            }
            (UpdateKind::Withdraw, Some(PairState::Announced(a))) => {
                (UpdateClass::Withdraw, false, PairState::Withdrawn(Some(a)))
            }
            (UpdateKind::Announce(a), None) => (
                UpdateClass::NewAnnounce,
                false,
                PairState::Announced(a.clone()),
            ),
            (UpdateKind::Announce(a), Some(PairState::Announced(prev_a))) => {
                if prev_a.same_forwarding(a) {
                    let policy = *prev_a != **a;
                    (UpdateClass::AaDup, policy, PairState::Announced(a.clone()))
                } else {
                    (UpdateClass::AaDiff, false, PairState::Announced(a.clone()))
                }
            }
            (UpdateKind::Announce(a), Some(PairState::Withdrawn(last))) => {
                let class = match &last {
                    Some(prev_a) if prev_a.same_forwarding(a) => UpdateClass::WaDup,
                    Some(_) => UpdateClass::WaDiff,
                    // Withdrawn with no announcement history (the pair was
                    // created by a spurious withdrawal): treat the
                    // announcement as new.
                    None => UpdateClass::NewAnnounce,
                };
                (class, false, PairState::Announced(a.clone()))
            }
        };
        self.state.insert(key, next);
        self.counts[class.index()] += 1;
        if policy_change {
            self.policy_changes += 1;
        }
        self.total += 1;
        ClassifiedEvent {
            time_ms: event.time_ms,
            peer: event.peer,
            prefix: event.prefix,
            class,
            policy_change,
        }
    }

    /// Classifies a whole stream, returning the classified events.
    pub fn classify_all<'a, I>(&mut self, events: I) -> Vec<ClassifiedEvent>
    where
        I: IntoIterator<Item = &'a UpdateEvent>,
    {
        events.into_iter().map(|e| self.classify(e)).collect()
    }

    /// Folds another classifier's tallies and pair state into this one.
    ///
    /// Intended for sharded parallel classification where each worker saw
    /// a **disjoint** set of (peer, prefix) pairs: the merged classifier
    /// then reports exactly the counts and tracked pairs a single
    /// classifier would have produced over the full stream. If the pair
    /// sets overlap, `other`'s state wins for the shared pairs (the counts
    /// still sum, but no sequential run corresponds to the merged state).
    pub fn merge(&mut self, other: Classifier) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            *mine += theirs;
        }
        self.policy_changes += other.policy_changes;
        self.total += other.total;
        self.state.extend(other.state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::Origin;
    use iri_bgp::path::AsPath;
    use iri_bgp::types::Asn;
    use std::net::Ipv4Addr;

    fn peer(asn: u32) -> PeerKey {
        PeerKey {
            asn: Asn(asn),
            addr: Ipv4Addr::new(192, 41, 177, asn as u8),
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u32], hop: u8) -> PathAttributes {
        PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence(path.iter().map(|&a| Asn(a))),
            Ipv4Addr::new(10, 0, 0, hop),
        )
    }

    fn classify_sequence(seq: &[(u64, &str)]) -> Vec<UpdateClass> {
        // Mini-DSL: "A1" announce path1, "A2" announce path2, "A1m" announce
        // path1 with different MED, "W" withdraw.
        let mut c = Classifier::new();
        let pfx = p("192.42.113.0/24");
        seq.iter()
            .map(|&(t, s)| {
                let ev = match s {
                    "A1" => UpdateEvent::announce(t, peer(701), pfx, attrs(&[701], 1)),
                    "A2" => UpdateEvent::announce(t, peer(701), pfx, attrs(&[701, 42], 1)),
                    "A1m" => {
                        let mut a = attrs(&[701], 1);
                        a.med = Some(77);
                        UpdateEvent::announce(t, peer(701), pfx, a)
                    }
                    "W" => UpdateEvent::withdraw(t, peer(701), pfx),
                    _ => unreachable!(),
                };
                c.classify(&ev).class
            })
            .collect()
    }

    #[test]
    fn paper_sequences() {
        use UpdateClass::*;
        // WADup: announce, withdraw, re-announce same.
        assert_eq!(
            classify_sequence(&[(0, "A1"), (1, "W"), (2, "A1")]),
            vec![NewAnnounce, Withdraw, WaDup]
        );
        // WADiff: withdraw then different route.
        assert_eq!(
            classify_sequence(&[(0, "A1"), (1, "W"), (2, "A2")]),
            vec![NewAnnounce, Withdraw, WaDiff]
        );
        // AADiff: implicit replacement by different route.
        assert_eq!(
            classify_sequence(&[(0, "A1"), (1, "A2")]),
            vec![NewAnnounce, AaDiff]
        );
        // AADup: duplicate announcement.
        assert_eq!(
            classify_sequence(&[(0, "A1"), (1, "A1")]),
            vec![NewAnnounce, AaDup]
        );
        // WWDup: repeated withdrawals while unreachable.
        assert_eq!(
            classify_sequence(&[(0, "A1"), (1, "W"), (2, "W"), (3, "W")]),
            vec![NewAnnounce, Withdraw, WwDup, WwDup]
        );
    }

    #[test]
    fn withdrawal_without_history_is_wwdup() {
        // The May 25 1996 trace: ISP-Y withdrew 192.42.113/24 six times
        // having never announced it.
        let mut c = Classifier::new();
        let pfx = p("192.42.113.0/24");
        for t in 0..6 {
            let got = c.classify(&UpdateEvent::withdraw(t * 20_000, peer(690), pfx));
            assert_eq!(got.class, UpdateClass::WwDup);
        }
        assert_eq!(c.count(UpdateClass::WwDup), 6);
    }

    #[test]
    fn announce_after_spurious_withdraw_is_new() {
        use UpdateClass::*;
        let mut c = Classifier::new();
        let pfx = p("10.0.0.0/8");
        assert_eq!(
            c.classify(&UpdateEvent::withdraw(0, peer(1), pfx)).class,
            WwDup
        );
        assert_eq!(
            c.classify(&UpdateEvent::announce(1, peer(1), pfx, attrs(&[1], 1)))
                .class,
            NewAnnounce
        );
    }

    #[test]
    fn policy_fluctuation_flagged_on_aadup() {
        let mut c = Classifier::new();
        let pfx = p("10.0.0.0/8");
        c.classify(&UpdateEvent::announce(0, peer(1), pfx, attrs(&[1], 1)));
        let mut med = attrs(&[1], 1);
        med.med = Some(20);
        let got = c.classify(&UpdateEvent::announce(1, peer(1), pfx, med));
        assert_eq!(got.class, UpdateClass::AaDup);
        assert!(got.policy_change);
        // Exact duplicate: AADup without policy change.
        let got = c.classify(&UpdateEvent::announce(2, peer(1), pfx, {
            let mut a = attrs(&[1], 1);
            a.med = Some(20);
            a
        }));
        assert_eq!(got.class, UpdateClass::AaDup);
        assert!(!got.policy_change);
        assert_eq!(c.policy_change_count(), 1);
    }

    #[test]
    fn next_hop_change_is_aadiff_not_policy() {
        let mut c = Classifier::new();
        let pfx = p("10.0.0.0/8");
        c.classify(&UpdateEvent::announce(0, peer(1), pfx, attrs(&[1], 1)));
        let got = c.classify(&UpdateEvent::announce(1, peer(1), pfx, attrs(&[1], 2)));
        assert_eq!(got.class, UpdateClass::AaDiff);
    }

    #[test]
    fn peers_and_prefixes_are_independent() {
        let mut c = Classifier::new();
        let pfx = p("10.0.0.0/8");
        c.classify(&UpdateEvent::announce(0, peer(1), pfx, attrs(&[1], 1)));
        // Different peer announcing the same prefix: new pair.
        let got = c.classify(&UpdateEvent::announce(1, peer(2), pfx, attrs(&[2], 2)));
        assert_eq!(got.class, UpdateClass::NewAnnounce);
        // Different prefix from peer 1: new pair.
        let got = c.classify(&UpdateEvent::announce(
            2,
            peer(1),
            p("11.0.0.0/8"),
            attrs(&[1], 1),
        ));
        assert_eq!(got.class, UpdateClass::NewAnnounce);
        assert_eq!(c.tracked_pairs(), 3);
    }

    #[test]
    fn same_asn_different_router_is_distinct_pair() {
        let mut c = Classifier::new();
        let pfx = p("10.0.0.0/8");
        let peer_a = PeerKey {
            asn: Asn(701),
            addr: Ipv4Addr::new(1, 1, 1, 1),
        };
        let peer_b = PeerKey {
            asn: Asn(701),
            addr: Ipv4Addr::new(1, 1, 1, 2),
        };
        c.classify(&UpdateEvent::announce(0, peer_a, pfx, attrs(&[701], 1)));
        let got = c.classify(&UpdateEvent::announce(1, peer_b, pfx, attrs(&[701], 1)));
        assert_eq!(got.class, UpdateClass::NewAnnounce);
    }

    #[test]
    fn counts_accumulate() {
        let mut c = Classifier::new();
        let pfx = p("10.0.0.0/8");
        let events = vec![
            UpdateEvent::announce(0, peer(1), pfx, attrs(&[1], 1)),
            UpdateEvent::announce(1, peer(1), pfx, attrs(&[1], 1)),
            UpdateEvent::withdraw(2, peer(1), pfx),
            UpdateEvent::withdraw(3, peer(1), pfx),
        ];
        let out = c.classify_all(&events);
        assert_eq!(out.len(), 4);
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(UpdateClass::AaDup), 1);
        assert_eq!(c.count(UpdateClass::WwDup), 1);
        assert_eq!(c.count(UpdateClass::Withdraw), 1);
        assert_eq!(c.count(UpdateClass::NewAnnounce), 1);
        assert_eq!(c.count(UpdateClass::WaDiff), 0);
    }
}
