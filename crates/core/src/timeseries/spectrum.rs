//! Power-spectrum estimation via the FFT of the (windowed)
//! autocorrelation function — the "traditional fast Fourier transform (FFT)
//! of the autocorrelation function of the data" of Figure 5a
//! (Blackman–Tukey estimation).

use crate::timeseries::acf::autocorrelation;
use crate::timeseries::fft::{fft_real, next_pow2};

/// One point of an estimated spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumPoint {
    /// Frequency in cycles per sample (0..0.5).
    pub frequency: f64,
    /// Power density (arbitrary units).
    pub power: f64,
}

impl SpectrumPoint {
    /// Period in samples (`1/frequency`; infinite at DC).
    #[must_use]
    pub fn period(&self) -> f64 {
        if self.frequency == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.frequency
        }
    }
}

/// Blackman–Tukey spectrum: FFT of the ACF out to `max_lag`, with a Hann
/// (Tukey) lag window to control leakage. Returns points for frequencies
/// in `(0, 0.5]` cycles/sample.
#[must_use]
pub fn acf_spectrum(series: &[f64], max_lag: usize) -> Vec<SpectrumPoint> {
    let acf = autocorrelation(series, max_lag);
    if acf.is_empty() {
        return Vec::new();
    }
    let m = acf.len();
    // Hann lag window.
    let windowed: Vec<f64> = acf
        .iter()
        .enumerate()
        .map(|(k, &r)| {
            let w = 0.5 * (1.0 + (std::f64::consts::PI * k as f64 / m as f64).cos());
            r * w
        })
        .collect();
    // Symmetric extension for a real, even sequence, zero-padded.
    let nfft = next_pow2((2 * m).max(64));
    let mut ext = vec![0.0; nfft];
    for (k, &v) in windowed.iter().enumerate() {
        ext[k] = v;
        if k > 0 {
            ext[nfft - k] = v;
        }
    }
    let spec = fft_real(&ext);
    (1..=nfft / 2)
        .map(|i| SpectrumPoint {
            frequency: i as f64 / nfft as f64,
            power: spec[i].re.max(0.0),
        })
        .collect()
}

/// The `k` most powerful spectral peaks (local maxima), sorted by power,
/// reported as periods in samples. This is what identifies "significant
/// frequencies at seven days, and 24 hours" from hourly data.
#[must_use]
pub fn dominant_periods(spectrum: &[SpectrumPoint], k: usize) -> Vec<SpectrumPoint> {
    let mut peaks: Vec<SpectrumPoint> = spectrum
        .windows(3)
        .filter(|w| w[1].power > w[0].power && w[1].power >= w[2].power)
        .map(|w| w[1])
        .collect();
    // The lowest-frequency bin can be a peak against only its right
    // neighbour (a trend/weekly component at the edge).
    if spectrum.len() >= 2 && spectrum[0].power > spectrum[1].power {
        peaks.push(spectrum[0]);
    }
    peaks.sort_by(|a, b| b.power.partial_cmp(&a.power).unwrap());
    peaks.truncate(k);
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Two months of hourly data with daily and weekly cycles, like the
    /// paper's August–September series.
    fn hourly_series() -> Vec<f64> {
        (0..(61 * 24))
            .map(|t| {
                let daily = (2.0 * PI * t as f64 / 24.0).sin();
                let weekly = (2.0 * PI * t as f64 / 168.0).sin();
                10.0 + 3.0 * daily + 2.0 * weekly
            })
            .collect()
    }

    #[test]
    fn finds_daily_and_weekly_cycles() {
        let spec = acf_spectrum(&hourly_series(), 400);
        let peaks = dominant_periods(&spec, 5);
        assert!(!peaks.is_empty());
        let has_daily = peaks.iter().any(|p| (p.period() - 24.0).abs() < 3.0);
        let has_weekly = peaks.iter().any(|p| (p.period() - 168.0).abs() < 40.0);
        assert!(
            has_daily,
            "peaks: {:?}",
            peaks.iter().map(SpectrumPoint::period).collect::<Vec<_>>()
        );
        assert!(
            has_weekly,
            "peaks: {:?}",
            peaks.iter().map(SpectrumPoint::period).collect::<Vec<_>>()
        );
    }

    /// Deterministic white-ish noise in [-0.5, 0.5) via splitmix64.
    fn noise(t: u64) -> f64 {
        let mut z = t.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    #[test]
    fn white_noise_has_no_towering_peak() {
        let noise: Vec<f64> = (0..2048).map(noise).collect();
        let spec = acf_spectrum(&noise, 256);
        let total: f64 = spec.iter().map(|p| p.power).sum();
        let max = spec.iter().map(|p| p.power).fold(0.0, f64::max);
        assert!(max / total < 0.05, "flat spectrum expected");
    }

    #[test]
    fn empty_series_empty_spectrum() {
        assert!(acf_spectrum(&[], 10).is_empty());
        assert!(dominant_periods(&[], 3).is_empty());
    }

    #[test]
    fn power_nonnegative_and_frequencies_in_range() {
        let spec = acf_spectrum(&hourly_series(), 200);
        for p in &spec {
            assert!(p.power >= 0.0);
            assert!(p.frequency > 0.0 && p.frequency <= 0.5);
        }
    }

    #[test]
    fn period_helper() {
        let p = SpectrumPoint {
            frequency: 0.25,
            power: 1.0,
        };
        assert_eq!(p.period(), 4.0);
        let dc = SpectrumPoint {
            frequency: 0.0,
            power: 1.0,
        };
        assert!(dc.period().is_infinite());
    }
}
