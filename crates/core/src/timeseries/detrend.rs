//! Log-transform and least-squares detrending.
//!
//! "The rate of routing updates is modeled as x_t = T_t·I_t … we conclude
//! that log x_t = log T_t + log I_t. … hence log I_t oscillates about 0.
//! This avoids adding frequency biases that can be introduced due to
//! linear filtering." And for the density plot: "the logarithms were
//! detrended using a least-square regression — routing instability
//! increased linearly during the seven month period."

/// Result of detrending.
#[derive(Debug, Clone)]
pub struct Detrended {
    /// The residuals `log x_t − (a + b·t)`, oscillating about 0.
    pub residuals: Vec<f64>,
    /// Fitted intercept `a`.
    pub intercept: f64,
    /// Fitted slope `b` per sample.
    pub slope: f64,
}

impl Detrended {
    /// The fitted trend value at sample `t`.
    #[must_use]
    pub fn trend_at(&self, t: usize) -> f64 {
        self.intercept + self.slope * t as f64
    }

    /// The threshold used for the Figure 3 density plot: `mean + k·σ` of
    /// the residuals.
    #[must_use]
    pub fn threshold(&self, k: f64) -> f64 {
        let n = self.residuals.len().max(1) as f64;
        let mean = self.residuals.iter().sum::<f64>() / n;
        let var = self
            .residuals
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / n;
        mean + k * var.sqrt()
    }
}

/// Takes `log(x + 1)` of the series (the +1 guards empty bins) and removes
/// the least-squares linear trend.
#[must_use]
pub fn log_detrend(series: &[f64]) -> Detrended {
    let logs: Vec<f64> = series.iter().map(|&x| (x + 1.0).ln()).collect();
    let n = logs.len();
    if n < 2 {
        return Detrended {
            residuals: logs,
            intercept: 0.0,
            slope: 0.0,
        };
    }
    let nf = n as f64;
    let mx = (nf - 1.0) / 2.0;
    let my = logs.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, &y) in logs.iter().enumerate() {
        let dx = i as f64 - mx;
        sxy += dx * (y - my);
        sxx += dx * dx;
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let residuals = logs
        .iter()
        .enumerate()
        .map(|(i, &y)| y - (intercept + slope * i as f64))
        .collect();
    Detrended {
        residuals,
        intercept,
        slope,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_exponential_growth() {
        // x_t = 100 · 1.01^t → log is linear → residuals ≈ 0.
        let series: Vec<f64> = (0..200).map(|t| 100.0 * 1.01f64.powi(t)).collect();
        let d = log_detrend(&series);
        assert!(d.slope > 0.009 && d.slope < 0.011, "slope {}", d.slope);
        for r in &d.residuals {
            assert!(r.abs() < 0.01, "{r}");
        }
    }

    #[test]
    fn preserves_oscillation() {
        use std::f64::consts::PI;
        let series: Vec<f64> = (0..240)
            .map(|t| {
                let osc = 1.0 + 0.5 * (2.0 * PI * t as f64 / 24.0).sin();
                200.0 * osc * (1.0 + 0.002 * t as f64)
            })
            .collect();
        let d = log_detrend(&series);
        // Residuals oscillate about 0 with period 24.
        let mean: f64 = d.residuals.iter().sum::<f64>() / d.residuals.len() as f64;
        assert!(mean.abs() < 0.01);
        let max = d.residuals.iter().cloned().fold(f64::MIN, f64::max);
        let min = d.residuals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.2 && min < -0.2, "oscillation must survive");
    }

    #[test]
    fn threshold_above_mean() {
        let series: Vec<f64> = (0..100).map(|t| 50.0 + (t % 7) as f64 * 10.0).collect();
        let d = log_detrend(&series);
        assert!(d.threshold(1.0) > d.threshold(0.0));
        let mean = d.residuals.iter().sum::<f64>() / 100.0;
        assert!((d.threshold(0.0) - mean).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let d = log_detrend(&[]);
        assert!(d.residuals.is_empty());
        let d = log_detrend(&[5.0]);
        assert_eq!(d.residuals.len(), 1);
        assert_eq!(d.slope, 0.0);
        // Constant series: zero slope, zero residuals.
        let d = log_detrend(&[9.0; 40]);
        assert!(d.slope.abs() < 1e-12);
        for r in &d.residuals {
            assert!(r.abs() < 1e-12);
        }
    }

    #[test]
    fn trend_at_matches_fit() {
        let series: Vec<f64> = (0..50).map(|t| (t as f64 + 1.0).exp() - 1.0).collect();
        let d = log_detrend(&series);
        // log(x+1) = t+1, so the fitted trend at sample 10 is ≈ 11.
        assert!((d.trend_at(10) - 11.0).abs() < 0.5);
    }
}
