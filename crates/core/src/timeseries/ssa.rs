//! Singular-spectrum analysis (SSA), after Dettinger et al. — the tool the
//! paper used "to extract the specific frequencies through singular
//! spectrum analysis, the top five of which are shown in figure 5b".
//!
//! Pipeline: embed the series in an `L`-lag trajectory space, eigendecompose
//! the lag-covariance matrix (cyclic Jacobi, written here from scratch),
//! project onto the leading eigenvectors, and reconstruct per-component
//! series by diagonal averaging. Oscillatory pairs (like the paper's
//! frequencies 1–2 = weekly, 3–5 = daily) appear as eigenvector pairs with
//! matching dominant periods.

use crate::timeseries::fft::fft_real;

/// One reconstructed SSA component.
#[derive(Debug, Clone)]
pub struct SsaComponent {
    /// Rank (0 = largest eigenvalue).
    pub rank: usize,
    /// Eigenvalue (variance captured).
    pub eigenvalue: f64,
    /// Fraction of total variance captured.
    pub variance_fraction: f64,
    /// Reconstructed series (same length as the input).
    pub series: Vec<f64>,
    /// Dominant period of the reconstruction, in samples (`None` for
    /// trend-like components with no spectral peak).
    pub dominant_period: Option<f64>,
}

/// Jacobi eigendecomposition of a symmetric matrix (row-major `n×n`).
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as rows,
/// sorted by descending eigenvalue.
#[must_use]
pub fn jacobi_eigen(matrix: &[f64], n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert_eq!(matrix.len(), n * n);
    let mut a = matrix.to_vec();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let idx = |r: usize, c: usize| r * n + c;
    for _sweep in 0..100 {
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += a[idx(r, c)] * a[idx(r, c)];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[idx(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[idx(p, p)];
                let aqq = a[idx(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..n {
                    let akp = a[idx(k, p)];
                    let akq = a[idx(k, q)];
                    a[idx(k, p)] = c * akp - s * akq;
                    a[idx(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[idx(p, k)];
                    let aqk = a[idx(q, k)];
                    a[idx(p, k)] = c * apk - s * aqk;
                    a[idx(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[idx(k, p)];
                    let vkq = v[idx(k, q)];
                    v[idx(k, p)] = c * vkp - s * vkq;
                    v[idx(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| {
            let val = a[idx(i, i)];
            let vec: Vec<f64> = (0..n).map(|k| v[idx(k, i)]).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
    let vals = pairs.iter().map(|(val, _)| *val).collect();
    let vecs = pairs.into_iter().map(|(_, vec)| vec).collect();
    (vals, vecs)
}

/// Dominant period (samples) of a series via its FFT peak; `None` if the
/// series is too short or the peak is at DC.
#[must_use]
pub fn dominant_period(series: &[f64]) -> Option<f64> {
    if series.len() < 8 {
        return None;
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let centred: Vec<f64> = series.iter().map(|x| x - mean).collect();
    let spec = fft_real(&centred);
    let n = spec.len();
    let (best_bin, best_pow) = (1..n / 2)
        .map(|i| (i, spec[i].norm_sq()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())?;
    if best_pow <= 0.0 {
        return None;
    }
    Some(n as f64 / best_bin as f64)
}

/// Runs SSA with window length `window`, returning the top `k`
/// reconstructed components.
#[must_use]
pub fn ssa_components(series: &[f64], window: usize, k: usize) -> Vec<SsaComponent> {
    let n = series.len();
    if n < 4 || window < 2 || window >= n {
        return Vec::new();
    }
    let l = window;
    let cols = n - l + 1;
    // Lag-covariance matrix C[i][j] = Σ_t x_{t+i} x_{t+j} / cols.
    let mut cov = vec![0.0; l * l];
    for i in 0..l {
        for j in i..l {
            let mut s = 0.0;
            for t in 0..cols {
                s += series[t + i] * series[t + j];
            }
            s /= cols as f64;
            cov[i * l + j] = s;
            cov[j * l + i] = s;
        }
    }
    let (vals, vecs) = jacobi_eigen(&cov, l);
    let total: f64 = vals.iter().map(|v| v.max(0.0)).sum();
    let k = k.min(l);

    (0..k)
        .map(|rank| {
            let e = &vecs[rank];
            // Principal component time series: pc[t] = Σ_i x_{t+i} e_i.
            let pc: Vec<f64> = (0..cols)
                .map(|t| (0..l).map(|i| series[t + i] * e[i]).sum())
                .collect();
            // Reconstruction by diagonal averaging of the rank-1 matrix
            // e · pcᵀ.
            let mut recon = vec![0.0; n];
            let mut counts = vec![0u32; n];
            for (t, &p) in pc.iter().enumerate() {
                for (i, &ei) in e.iter().enumerate() {
                    recon[t + i] += p * ei;
                    counts[t + i] += 1;
                }
            }
            for (r, &c) in recon.iter_mut().zip(&counts) {
                *r /= f64::from(c.max(1));
            }
            let period = dominant_period(&recon);
            SsaComponent {
                rank,
                eigenvalue: vals[rank],
                variance_fraction: if total > 0.0 {
                    vals[rank].max(0.0) / total
                } else {
                    0.0
                },
                series: recon,
                dominant_period: period,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn jacobi_on_known_matrix() {
        // [[2,1],[1,2]] → eigenvalues 3 and 1.
        let (vals, vecs) = jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v[0] - v[1]).abs() < 1e-9 || (v[0] + v[1]).abs() < 1e-9);
    }

    #[test]
    fn jacobi_diagonal_matrix_identity() {
        let m = [5.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 7.0];
        let (vals, _) = jacobi_eigen(&m, 3);
        assert!((vals[0] - 7.0).abs() < 1e-12);
        assert!((vals[1] - 5.0).abs() < 1e-12);
        assert!((vals[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        // Symmetric random-ish matrix.
        let mut m = vec![0.0; 16];
        for i in 0..4 {
            for j in 0..4 {
                let v = ((i * 7 + j * 3) % 5) as f64 + if i == j { 4.0 } else { 0.0 };
                m[i * 4 + j] = v;
                m[j * 4 + i] = v;
            }
        }
        let (_, vecs) = jacobi_eigen(&m, 4);
        for a in 0..4 {
            for b in 0..4 {
                let dot: f64 = (0..4).map(|k| vecs[a][k] * vecs[b][k]).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "dot({a},{b}) = {dot}");
            }
        }
    }

    #[test]
    fn ssa_separates_two_tones() {
        // Weekly (168) + daily (24) cycles in hourly samples, like Fig 5b.
        let n = 6 * 168;
        let series: Vec<f64> = (0..n)
            .map(|t| {
                3.0 * (2.0 * PI * t as f64 / 168.0).sin() + 1.5 * (2.0 * PI * t as f64 / 24.0).sin()
            })
            .collect();
        let comps = ssa_components(&series, 200, 5);
        assert_eq!(comps.len(), 5);
        // Components 1–2 weekly, 3–4 daily (pairs), matching the paper's
        // "frequencies 1 and 2 represent the weekly cycle … the remaining
        // three frequencies demonstrate the 24 hour periodicity".
        let weekly = comps
            .iter()
            .take(2)
            .filter(|c| c.dominant_period.is_some_and(|p| (p - 168.0).abs() < 25.0))
            .count();
        assert_eq!(
            weekly,
            2,
            "top 2 must be the weekly pair: {:?}",
            comps.iter().map(|c| c.dominant_period).collect::<Vec<_>>()
        );
        let daily = comps
            .iter()
            .skip(2)
            .filter(|c| c.dominant_period.is_some_and(|p| (p - 24.0).abs() < 4.0))
            .count();
        assert!(daily >= 2, "components 3+ must include the daily pair");
        // Variance ordering.
        for w in comps.windows(2) {
            assert!(w[0].eigenvalue >= w[1].eigenvalue - 1e-9);
        }
        let total_var: f64 = comps.iter().map(|c| c.variance_fraction).sum();
        assert!(
            total_var > 0.95,
            "two pure tones: top 5 capture ~all variance"
        );
    }

    #[test]
    fn ssa_reconstruction_sums_back() {
        let n = 256;
        let series: Vec<f64> = (0..n).map(|t| (2.0 * PI * t as f64 / 16.0).sin()).collect();
        let comps = ssa_components(&series, 32, 32);
        // Summing all components reconstructs the series.
        let mut sum = vec![0.0; n];
        for c in &comps {
            for (s, v) in sum.iter_mut().zip(&c.series) {
                *s += v;
            }
        }
        for (got, want) in sum.iter().zip(&series) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn ssa_degenerate_inputs() {
        assert!(ssa_components(&[], 10, 3).is_empty());
        assert!(ssa_components(&[1.0, 2.0], 10, 3).is_empty());
        assert!(ssa_components(&[1.0; 100], 1, 3).is_empty());
        assert!(ssa_components(&[1.0; 10], 10, 3).is_empty());
    }

    #[test]
    fn dominant_period_of_pure_tone() {
        let series: Vec<f64> = (0..128)
            .map(|t| (2.0 * PI * t as f64 / 16.0).sin())
            .collect();
        let p = dominant_period(&series).unwrap();
        assert!((p - 16.0).abs() < 1.0, "{p}");
        assert!(dominant_period(&[1.0, 2.0]).is_none());
    }
}
