//! Radix-2 Cooley–Tukey FFT on a minimal complex type.

use std::f64::consts::PI;
use std::ops::{Add, Mul, Sub};

/// A complex number (f64 re/im).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructor.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place iterative radix-2 FFT (decimation in time).
///
/// # Panics
/// Panics if `data.len()` is not a power of two — callers pad with
/// [`next_pow2`].
pub fn fft_inplace(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / (len as f64);
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Smallest power of two ≥ `n`.
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Forward FFT of a real series (zero-padded to a power of two); returns
/// the complex spectrum.
#[must_use]
pub fn fft_real(series: &[f64]) -> Vec<Complex> {
    let n = next_pow2(series.len().max(1));
    let mut data: Vec<Complex> = series
        .iter()
        .map(|&x| Complex::new(x, 0.0))
        .chain(std::iter::repeat(Complex::default()))
        .take(n)
        .collect();
    fft_inplace(&mut data);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::default(); 8];
        d[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut d);
        for c in d {
            assert_close(c.re, 1.0);
            assert_close(c.im, 0.0);
        }
    }

    #[test]
    fn fft_of_constant_is_dc() {
        let mut d = vec![Complex::new(1.0, 0.0); 8];
        fft_inplace(&mut d);
        assert_close(d[0].re, 8.0);
        for c in &d[1..] {
            assert_close(c.abs(), 0.0);
        }
    }

    #[test]
    fn fft_finds_single_tone() {
        // cos(2π·3t/32): peaks at bins 3 and 29.
        let n = 32;
        let series: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * 3.0 * t as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&series);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 3);
        assert_close(mags[3], 16.0); // N/2 for a unit cosine
    }

    #[test]
    fn parseval_energy_preserved() {
        let series = [1.0, 2.0, -1.0, 0.5, 0.0, 3.0, -2.0, 1.5];
        let spec = fft_real(&series);
        let time_energy: f64 = series.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / 8.0;
        assert_close(time_energy, freq_energy);
    }

    #[test]
    fn roundtrip_via_conjugate() {
        // Inverse FFT via conj-FFT-conj/N must recover the input.
        let orig = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut d: Vec<Complex> = orig.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_inplace(&mut d);
        for c in d.iter_mut() {
            c.im = -c.im;
        }
        fft_inplace(&mut d);
        for (c, &x) in d.iter().zip(&orig) {
            assert_close(c.re / 8.0, x);
            assert_close(-c.im / 8.0, 0.0);
        }
    }

    #[test]
    fn padding_to_pow2() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        let spec = fft_real(&[1.0, 1.0, 1.0]);
        assert_eq!(spec.len(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut d = vec![Complex::default(); 6];
        fft_inplace(&mut d);
    }
}
