//! Sample autocorrelation function.

/// Autocorrelation `ρ(k)` for lags `0..=max_lag`, normalised so `ρ(0)=1`.
/// Returns an empty vector for series shorter than 2 samples.
#[must_use]
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var == 0.0 {
        // A constant series is perfectly correlated with itself at any lag.
        return vec![1.0; max_lag.min(n - 1) + 1];
    }
    (0..=max_lag.min(n - 1))
        .map(|k| {
            let cov: f64 = (0..n - k)
                .map(|t| (series[t] - mean) * (series[t + k] - mean))
                .sum();
            cov / var
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn lag_zero_is_one() {
        let s: Vec<f64> = (0..50).map(|t| (t as f64).sin() + t as f64 * 0.1).collect();
        let acf = autocorrelation(&s, 10);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert_eq!(acf.len(), 11);
    }

    #[test]
    fn periodic_series_peaks_at_period() {
        let s: Vec<f64> = (0..240)
            .map(|t| (2.0 * PI * t as f64 / 24.0).sin())
            .collect();
        let acf = autocorrelation(&s, 60);
        // Peak at lag 24, trough at lag 12.
        assert!(acf[24] > 0.8, "{}", acf[24]);
        assert!(acf[12] < -0.8, "{}", acf[12]);
    }

    /// Deterministic white-ish noise in [-0.5, 0.5) via splitmix64.
    fn noise(t: u64) -> f64 {
        let mut z = t.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    #[test]
    fn white_noise_decorrelates() {
        let s: Vec<f64> = (0..2000).map(noise).collect();
        let acf = autocorrelation(&s, 20);
        for &r in &acf[1..] {
            assert!(r.abs() < 0.1, "{r}");
        }
    }

    #[test]
    fn constant_series_is_fully_correlated() {
        let acf = autocorrelation(&[5.0; 30], 5);
        assert_eq!(acf, vec![1.0; 6]);
    }

    #[test]
    fn short_series() {
        assert!(autocorrelation(&[], 5).is_empty());
        assert!(autocorrelation(&[1.0], 5).is_empty());
        let acf = autocorrelation(&[1.0, 2.0], 5);
        assert_eq!(acf.len(), 2); // lags 0 and 1 only
    }

    #[test]
    fn max_lag_clamped_to_series() {
        let acf = autocorrelation(&[1.0, 2.0, 3.0, 4.0], 100);
        assert_eq!(acf.len(), 4);
    }
}
