//! Maximum-entropy (Burg) spectral estimation — the paper's second,
//! independent estimator in Figure 5a: "these two approaches differ in
//! their estimation methods, and provide a mechanism for validation of
//! results."
//!
//! Burg's method fits an autoregressive model of order `p` by minimising
//! forward+backward prediction error, then evaluates the AR transfer
//! function's power spectrum.

use crate::timeseries::spectrum::SpectrumPoint;
use std::f64::consts::PI;

/// Burg AR coefficients and noise variance for order `p`.
///
/// Returns `(coeffs, variance)` where the AR model is
/// `x_t = Σ coeffs[k]·x_{t-k-1} + e_t`.
#[must_use]
pub fn burg_coefficients(series: &[f64], order: usize) -> (Vec<f64>, f64) {
    let n = series.len();
    if n < 2 || order == 0 {
        let var = if n == 0 {
            0.0
        } else {
            series.iter().map(|x| x * x).sum::<f64>() / n as f64
        };
        return (Vec::new(), var);
    }
    let order = order.min(n - 1);
    let mut f: Vec<f64> = series.to_vec(); // forward errors
    let mut b: Vec<f64> = series.to_vec(); // backward errors
    let mut a: Vec<f64> = Vec::with_capacity(order);
    let mut e = series.iter().map(|x| x * x).sum::<f64>() / n as f64;

    for m in 0..order {
        // Reflection coefficient.
        let mut num = 0.0;
        let mut den = 0.0;
        for t in (m + 1)..n {
            num += f[t] * b[t - 1];
            den += f[t] * f[t] + b[t - 1] * b[t - 1];
        }
        let k = if den == 0.0 { 0.0 } else { 2.0 * num / den };
        // Update AR coefficients (Levinson recursion).
        let mut new_a = Vec::with_capacity(m + 1);
        for i in 0..m {
            new_a.push(a[i] - k * a[m - 1 - i]);
        }
        new_a.push(k);
        a = new_a;
        // Update errors.
        for t in ((m + 1)..n).rev() {
            let ft = f[t];
            let bt = b[t - 1];
            f[t] = ft - k * bt;
            b[t] = bt - k * ft;
        }
        e *= 1.0 - k * k;
        if e <= 0.0 {
            e = f64::EPSILON;
            break;
        }
    }
    (a, e)
}

/// Burg power spectrum evaluated at `bins` frequencies in `(0, 0.5]`.
#[must_use]
pub fn burg_spectrum(series: &[f64], order: usize, bins: usize) -> Vec<SpectrumPoint> {
    let (a, var) = burg_coefficients(series, order);
    if series.len() < 2 || bins == 0 {
        return Vec::new();
    }
    (1..=bins)
        .map(|i| {
            let freq = 0.5 * i as f64 / bins as f64;
            let omega = 2.0 * PI * freq;
            // |1 - Σ a_k e^{-iωk}|²
            let mut re = 1.0;
            let mut im = 0.0;
            for (k, &ak) in a.iter().enumerate() {
                let th = omega * (k as f64 + 1.0);
                re -= ak * th.cos();
                im += ak * th.sin();
            }
            let denom = re * re + im * im;
            SpectrumPoint {
                frequency: freq,
                power: if denom == 0.0 { f64::MAX } else { var / denom },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::spectrum::dominant_periods;

    /// Deterministic white-ish noise in [-0.5, 0.5) via splitmix64.
    fn noise(t: u64) -> f64 {
        let mut z = t.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    #[test]
    fn ar1_coefficient_recovered() {
        // x_t = 0.8 x_{t-1} + white noise.
        let mut x = vec![0.0f64; 4000];
        for t in 1usize..4000 {
            x[t] = 0.8 * x[t - 1] + noise(t as u64);
        }
        let (a, var) = burg_coefficients(&x, 1);
        assert_eq!(a.len(), 1);
        assert!((a[0] - 0.8).abs() < 0.05, "a1 = {}", a[0]);
        assert!(var > 0.0);
    }

    #[test]
    fn finds_daily_cycle_in_hourly_data() {
        use std::f64::consts::PI;
        let series: Vec<f64> = (0..1024)
            .map(|t| (2.0 * PI * t as f64 / 24.0).sin() + 0.1 * noise(t))
            .collect();
        let spec = burg_spectrum(&series, 24, 512);
        let peaks = dominant_periods(&spec, 3);
        assert!(
            peaks.iter().any(|p| (p.period() - 24.0).abs() < 2.0),
            "periods: {:?}",
            peaks.iter().map(|p| p.period()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn white_noise_spectrum_is_flat() {
        let noise: Vec<f64> = (0..4096).map(noise).collect();
        let spec = burg_spectrum(&noise, 8, 128);
        let mean: f64 = spec.iter().map(|p| p.power).sum::<f64>() / spec.len() as f64;
        for p in &spec {
            assert!(p.power < mean * 3.0 && p.power > mean / 3.0, "{}", p.power);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(burg_spectrum(&[], 5, 16).is_empty());
        assert!(burg_spectrum(&[1.0], 5, 16).is_empty());
        assert!(burg_spectrum(&[1.0, 2.0, 3.0], 2, 0).is_empty());
        let (a, _) = burg_coefficients(&[1.0, 2.0, 3.0], 0);
        assert!(a.is_empty());
    }

    #[test]
    fn order_clamped_to_series_length() {
        let (a, _) = burg_coefficients(&[1.0, 2.0, 3.0, 4.0], 100);
        assert!(a.len() <= 3);
    }

    #[test]
    fn spectrum_power_positive() {
        let series: Vec<f64> = (0..256).map(|t| (t as f64 * 0.3).sin()).collect();
        for p in burg_spectrum(&series, 12, 64) {
            assert!(p.power > 0.0);
            assert!(p.frequency > 0.0 && p.frequency <= 0.5);
        }
    }
}
