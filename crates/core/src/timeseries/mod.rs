//! Time-series analysis for Figure 5.
//!
//! The paper's harmonic analysis of hourly update aggregates follows
//! Bloomfield's treatment of the Beveridge wheat-price series: take
//! logarithms (the series is a product of trend and oscillation,
//! `x_t = T_t · I_t`), detrend by least squares so `log I_t` oscillates
//! about zero, then estimate spectra two independent ways — an FFT of the
//! autocorrelation function and maximum-entropy (Burg) estimation — and
//! extract the dominant oscillatory components by singular-spectrum
//! analysis. All of it is implemented here from scratch (no numerics crates
//! exist in the offline set).

pub mod acf;
pub mod detrend;
pub mod fft;
pub mod mem;
pub mod spectrum;
pub mod ssa;

pub use acf::autocorrelation;
pub use detrend::{log_detrend, Detrended};
pub use fft::{fft_inplace, Complex};
pub use mem::burg_spectrum;
pub use spectrum::{acf_spectrum, dominant_periods, SpectrumPoint};
pub use ssa::{ssa_components, SsaComponent};
