//! # iri-core — the Internet Routing Instability analysis library
//!
//! The paper's primary contribution, operationalised: the update taxonomy
//! of §4 (**WADiff**, **AADiff**, **WADup** — *instability*; **AADup**,
//! **WWDup** — *pathological/redundant*), a streaming classifier over
//! per-peer BGP update streams keyed on the **(Prefix, NextHop, ASPATH)**
//! tuple, the full set of statistics behind every table and figure in the
//! evaluation, and the time-series machinery (FFT, autocorrelation,
//! maximum-entropy spectra, singular-spectrum analysis) behind Figure 5.
//!
//! The library is measurement-side only: it consumes timestamped update
//! events (from MRT logs via [`input::events_from_mrt`], or directly from
//! any producer of [`input::UpdateEvent`]) and never sees the simulator —
//! the same boundary the Routing Arbiter instrumentation had.
//!
//! ```
//! use iri_core::prelude::*;
//! use iri_bgp::prelude::*;
//!
//! // Peer AS701 announces, withdraws, withdraws again (never re-announced):
//! let peer = PeerKey { asn: Asn(701), addr: Ipv4Addr::new(192, 41, 177, 1) };
//! let prefix: Prefix = "192.42.113.0/24".parse().unwrap();
//! let attrs = PathAttributes::new(Origin::Igp,
//!     AsPath::from_sequence([Asn(701)]), Ipv4Addr::new(192, 41, 177, 1));
//! let mut classifier = Classifier::new();
//! let a = classifier.classify(&UpdateEvent::announce(0, peer, prefix, attrs));
//! let w1 = classifier.classify(&UpdateEvent::withdraw(1_000, peer, prefix));
//! let w2 = classifier.classify(&UpdateEvent::withdraw(31_000, peer, prefix));
//! assert_eq!(a.class, UpdateClass::NewAnnounce);
//! assert_eq!(w1.class, UpdateClass::Withdraw);
//! assert_eq!(w2.class, UpdateClass::WwDup); // the §4 pathology
//! ```

#![warn(missing_docs)]

pub mod classifier;
pub mod fxhash;
pub mod input;
pub mod report;
pub mod stats;
pub mod taxonomy;
pub mod timeseries;

pub use classifier::{ClassifiedEvent, Classifier};
pub use input::{PeerKey, UpdateEvent, UpdateKind};
pub use taxonomy::UpdateClass;

/// Convenience imports.
pub mod prelude {
    pub use crate::classifier::{ClassifiedEvent, Classifier};
    pub use crate::input::{PeerKey, UpdateEvent, UpdateKind};
    pub use crate::taxonomy::UpdateClass;
}
