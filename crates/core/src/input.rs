//! Input model: timestamped per-prefix update events.
//!
//! The analysis counts *prefix events* ("routers in the Internet core
//! currently exchange between three and six million routing prefix updates
//! each day"), so BGP UPDATE messages are flattened into one event per
//! withdrawn or announced prefix, keyed by the peer that sent them.

use iri_bgp::attrs::PathAttributes;
use iri_bgp::message::{Message, Update};
use iri_bgp::types::{Asn, Prefix};
use iri_mrt::MrtRecord;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifies the peer (exchange participant) a stream of updates came
/// from. Both ASN and address are kept: one AS can run several border
/// routers at an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeerKey {
    /// The peer's autonomous system.
    pub asn: Asn,
    /// The peer's exchange-LAN address.
    pub addr: Ipv4Addr,
}

impl fmt::Display for PeerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.asn, self.addr)
    }
}

/// What happened to one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateKind {
    /// The prefix was announced with these attributes.
    Announce(Box<PathAttributes>),
    /// The prefix was withdrawn.
    Withdraw,
}

/// One prefix-level routing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateEvent {
    /// Milliseconds since the measurement epoch (midnight of day 0).
    pub time_ms: u64,
    /// Which peer sent it.
    pub peer: PeerKey,
    /// The affected prefix.
    pub prefix: Prefix,
    /// Announce or withdraw.
    pub kind: UpdateKind,
}

impl UpdateEvent {
    /// Announcement constructor.
    #[must_use]
    pub fn announce(time_ms: u64, peer: PeerKey, prefix: Prefix, attrs: PathAttributes) -> Self {
        UpdateEvent {
            time_ms,
            peer,
            prefix,
            kind: UpdateKind::Announce(Box::new(attrs)),
        }
    }

    /// Withdrawal constructor.
    #[must_use]
    pub fn withdraw(time_ms: u64, peer: PeerKey, prefix: Prefix) -> Self {
        UpdateEvent {
            time_ms,
            peer,
            prefix,
            kind: UpdateKind::Withdraw,
        }
    }

    /// Whether this is an announcement.
    #[must_use]
    pub fn is_announce(&self) -> bool {
        matches!(self.kind, UpdateKind::Announce(_))
    }
}

/// Flattens one BGP UPDATE into prefix events. Withdrawals precede
/// announcements, matching wire order inside the message.
#[must_use]
pub fn events_from_update(time_ms: u64, peer: PeerKey, update: &Update) -> Vec<UpdateEvent> {
    let mut out = Vec::with_capacity(update.prefix_event_count());
    for &prefix in &update.withdrawn {
        out.push(UpdateEvent::withdraw(time_ms, peer, prefix));
    }
    if let Some(attrs) = &update.attrs {
        for &prefix in &update.nlri {
            out.push(UpdateEvent::announce(time_ms, peer, prefix, attrs.clone()));
        }
    }
    out
}

/// Extracts prefix events from MRT records (BGP4MP MESSAGE records carrying
/// UPDATEs; everything else is skipped). `base_unix_time` rebases MRT's
/// absolute second timestamps onto the analysis epoch.
#[must_use]
pub fn events_from_mrt<'a, I>(records: I, base_unix_time: u32) -> Vec<UpdateEvent>
where
    I: IntoIterator<Item = &'a MrtRecord>,
{
    let mut out = Vec::new();
    for rec in records {
        if let MrtRecord::Bgp4mpMessage(m) = rec {
            if let Message::Update(u) = &m.message {
                let time_ms = u64::from(m.timestamp.saturating_sub(base_unix_time)) * 1000;
                let peer = PeerKey {
                    asn: m.peer_asn,
                    addr: m.peer_ip,
                };
                out.extend(events_from_update(time_ms, peer, u));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::attrs::Origin;
    use iri_bgp::message::UpdateBuilder;
    use iri_bgp::path::AsPath;
    use iri_mrt::Bgp4mpMessage;

    fn peer() -> PeerKey {
        PeerKey {
            asn: Asn(701),
            addr: Ipv4Addr::new(192, 41, 177, 1),
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn flatten_mixed_update_preserves_order() {
        let u = UpdateBuilder::new()
            .withdraw(p("10.0.0.0/8"))
            .announce(p("11.0.0.0/8"))
            .announce(p("12.0.0.0/8"))
            .next_hop(Ipv4Addr::new(1, 1, 1, 1))
            .as_path(AsPath::from_sequence([Asn(701)]))
            .origin(Origin::Igp)
            .build()
            .unwrap();
        let ev = events_from_update(5, peer(), &u);
        assert_eq!(ev.len(), 3);
        assert!(!ev[0].is_announce());
        assert!(ev[1].is_announce() && ev[2].is_announce());
        assert_eq!(ev[0].prefix, p("10.0.0.0/8"));
        assert_eq!(ev[2].prefix, p("12.0.0.0/8"));
        assert!(ev.iter().all(|e| e.time_ms == 5 && e.peer == peer()));
    }

    #[test]
    fn events_from_mrt_rebases_time_and_skips_non_updates() {
        let base = 833_000_000;
        let recs = vec![
            MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                timestamp: base + 2,
                peer_asn: Asn(701),
                local_asn: Asn(237),
                peer_ip: Ipv4Addr::new(192, 41, 177, 1),
                local_ip: Ipv4Addr::new(192, 41, 177, 250),
                message: Message::Update(Update::withdraw([p("10.0.0.0/8")])),
            }),
            MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                timestamp: base + 3,
                peer_asn: Asn(701),
                local_asn: Asn(237),
                peer_ip: Ipv4Addr::new(192, 41, 177, 1),
                local_ip: Ipv4Addr::new(192, 41, 177, 250),
                message: Message::Keepalive,
            }),
        ];
        let ev = events_from_mrt(&recs, base);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].time_ms, 2000);
        assert_eq!(ev[0].peer.asn, Asn(701));
    }

    #[test]
    fn peer_key_display() {
        assert_eq!(peer().to_string(), "AS701@192.41.177.1");
    }
}
