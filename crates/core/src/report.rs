//! Text rendering of the paper's tables and figures.
//!
//! Each function renders one artefact as a plain-text table or series that
//! matches the rows/columns of the published version; the `iri-bench`
//! binaries print these next to the paper's reported values.

use crate::stats::breakdown::ClassBreakdown;
use crate::stats::cdf::PrefixAsCdf;
use crate::stats::contribution::ContributionPoint;
use crate::stats::daily::ProviderDailyRow;
use crate::stats::interarrival::{InterarrivalSummary, BIN_LABELS};
use crate::taxonomy::UpdateClass;
use crate::timeseries::spectrum::SpectrumPoint;
use crate::timeseries::ssa::SsaComponent;
use std::fmt::Write as _;

/// Table 1: per-provider daily totals.
#[must_use]
pub fn render_table1(
    rows: &[ProviderDailyRow],
    names: &dyn Fn(iri_bgp::types::Asn) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>10} {:>8} {:>8}",
        "Network", "Announce", "Withdraw", "Unique", "W/A"
    );
    for r in rows {
        let ratio = if r.withdraw_ratio().is_infinite() {
            "inf".to_owned()
        } else {
            format!("{:.1}", r.withdraw_ratio())
        };
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>8} {:>8}",
            names(r.asn),
            r.announce,
            r.withdraw,
            r.unique_prefixes,
            ratio
        );
    }
    out
}

/// Figure 2: per-period class breakdown (WWDup excluded, as in the paper;
/// reported separately).
#[must_use]
pub fn render_figure2(periods: &[(String, ClassBreakdown)]) -> String {
    let cats = UpdateClass::FIGURE_CATEGORIES;
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "Period");
    for c in cats {
        let _ = write!(out, " {:>10}", c.label());
    }
    let _ = writeln!(out, " {:>12} {:>10}", "Uncategor.", "(WWDup)");
    for (name, b) in periods {
        let _ = write!(out, "{name:<12}");
        for c in cats {
            let _ = write!(out, " {:>10}", b.get(c));
        }
        let _ = writeln!(
            out,
            " {:>12} {:>10}",
            b.get(UpdateClass::NewAnnounce),
            b.get(UpdateClass::WwDup)
        );
    }
    out
}

/// Figure 5a: two spectra side by side (frequency, FFT power, MEM power).
#[must_use]
pub fn render_figure5a(fft: &[SpectrumPoint], mem: &[SpectrumPoint], rows: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>12} {:>14} {:>14}",
        "freq(1/h)", "period(h)", "FFT power", "MEM power"
    );
    let step = (fft.len().max(1) / rows.max(1)).max(1);
    for (i, p) in fft.iter().enumerate().step_by(step) {
        let mem_power = mem
            .iter()
            .min_by(|a, b| {
                (a.frequency - p.frequency)
                    .abs()
                    .partial_cmp(&(b.frequency - p.frequency).abs())
                    .unwrap()
            })
            .map_or(0.0, |m| m.power);
        let _ = writeln!(
            out,
            "{:>12.4} {:>12.1} {:>14.4} {:>14.4}",
            p.frequency,
            p.period(),
            p.power,
            mem_power
        );
        let _ = i;
    }
    out
}

/// Figure 5b: the top SSA components with dominant periods.
#[must_use]
pub fn render_figure5b(components: &[SsaComponent]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>12} {:>10} {:>14}",
        "rank", "eigenvalue", "var.frac", "period(h)"
    );
    for c in components {
        let period = c
            .dominant_period
            .map_or("trend".to_owned(), |p| format!("{p:.1}"));
        let _ = writeln!(
            out,
            "{:>5} {:>12.4} {:>10.3} {:>14}",
            c.rank + 1,
            c.eigenvalue,
            c.variance_fraction,
            period
        );
    }
    out
}

/// Figure 6: scatter points as CSV-ish text.
#[must_use]
pub fn render_figure6(points: &[ContributionPoint], class: UpdateClass) -> String {
    let mut out = format!("# {} — table_share vs update_share\n", class.label());
    for p in points {
        let _ = writeln!(
            out,
            "{:>6} day={:<3} x={:.4} y={:.4}",
            p.asn.0, p.day, p.table_share, p.update_share
        );
    }
    out
}

/// Figure 7: cumulative proportions at the paper's count thresholds.
#[must_use]
pub fn render_figure7(cdf: &PrefixAsCdf) -> String {
    let mut out = format!(
        "# {} — cumulative proportion by Prefix+AS event count (pairs={}, events={})\n",
        cdf.class.label(),
        cdf.pair_count(),
        cdf.total
    );
    for threshold in [1u64, 10, 50, 100, 200, 1000] {
        let _ = writeln!(
            out,
            "  <= {:>5}: {:.3}",
            threshold,
            cdf.cumulative_at(threshold)
        );
    }
    out
}

/// Figure 8: the box-plot rows.
#[must_use]
pub fn render_figure8(summary: &InterarrivalSummary) -> String {
    let mut out = format!(
        "# {} inter-arrival proportions over {} days (q1 / median / q3)\n",
        summary.class.label(),
        summary.days
    );
    for (i, label) in BIN_LABELS.iter().enumerate() {
        let (q1, med, q3) = summary.quartiles[i];
        let _ = writeln!(out, "{label:>4}: {q1:.3} / {med:.3} / {q3:.3}");
    }
    let _ = writeln!(
        out,
        "30s+1m median mass: {:.3}",
        summary.thirty_sixty_mass()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::types::Asn;

    #[test]
    fn table1_renders_rows() {
        let rows = vec![ProviderDailyRow {
            asn: Asn(9),
            announce: 259,
            withdraw: 2_479_023,
            unique_prefixes: 14_112,
        }];
        let s = render_table1(&rows, &|asn| format!("Provider-{}", asn.0));
        assert!(s.contains("Provider-9"));
        assert!(s.contains("2479023"));
        assert!(s.contains("14112"));
    }

    #[test]
    fn figure2_includes_all_categories() {
        let mut b = ClassBreakdown::default();
        b.counts.insert(UpdateClass::WaDup, 100);
        b.counts.insert(UpdateClass::WwDup, 999);
        let s = render_figure2(&[("April".into(), b)]);
        assert!(s.contains("April"));
        assert!(s.contains("WADup"));
        assert!(s.contains("999"));
    }

    #[test]
    fn figure5b_marks_trend_components() {
        let comps = vec![SsaComponent {
            rank: 0,
            eigenvalue: 5.0,
            variance_fraction: 0.5,
            series: vec![],
            dominant_period: None,
        }];
        let s = render_figure5b(&comps);
        assert!(s.contains("trend"));
    }

    #[test]
    fn figure6_renders_points() {
        let pts = vec![crate::stats::contribution::ContributionPoint {
            asn: Asn(701),
            day: 3,
            table_share: 0.25,
            update_share: 0.1,
        }];
        let s = render_figure6(&pts, UpdateClass::AaDiff);
        assert!(s.contains("AADiff"));
        assert!(s.contains("701"));
        assert!(s.contains("0.2500"));
    }

    #[test]
    fn figure7_renders_thresholds() {
        let cdf = crate::stats::cdf::PrefixAsCdf {
            class: UpdateClass::WaDup,
            pair_counts: vec![1, 2, 200],
            total: 203,
        };
        let s = render_figure7(&cdf);
        assert!(s.contains("WADup"));
        assert!(s.contains("<=     1"));
        assert!(s.contains("<=  1000: 1.000"));
    }

    #[test]
    fn figure5a_renders_rows() {
        use crate::timeseries::spectrum::SpectrumPoint;
        let fft = vec![
            SpectrumPoint {
                frequency: 0.01,
                power: 1.0,
            },
            SpectrumPoint {
                frequency: 0.02,
                power: 5.0,
            },
        ];
        let mem = vec![SpectrumPoint {
            frequency: 0.015,
            power: 3.0,
        }];
        let s = render_figure5a(&fft, &mem, 2);
        assert!(s.contains("freq(1/h)"));
        assert!(s.contains("100.0")); // period of 0.01
    }

    #[test]
    fn figure8_renders_bins() {
        let summary = InterarrivalSummary {
            class: UpdateClass::WaDup,
            quartiles: [(0.1, 0.2, 0.3); 12],
            days: 5,
        };
        let s = render_figure8(&summary);
        assert!(s.contains(" 30s:"));
        assert!(s.contains("24h:"));
        assert!(s.contains("0.200"));
    }
}
