//! Property tests on the time-series numerics: FFT linearity and Parseval,
//! spectrum estimator agreement on planted tones, SSA reconstruction
//! completeness, and detrending invariants.

use iri_core::timeseries::acf::autocorrelation;
use iri_core::timeseries::detrend::log_detrend;
use iri_core::timeseries::fft::fft_real;
use iri_core::timeseries::mem::burg_spectrum;
use iri_core::timeseries::spectrum::{acf_spectrum, dominant_periods};
use iri_core::timeseries::ssa::{jacobi_eigen, ssa_components};
use proptest::prelude::*;
use std::f64::consts::PI;

fn assert_close(a: f64, b: f64, tol: f64) -> Result<(), TestCaseError> {
    prop_assert!((a - b).abs() <= tol, "{a} vs {b}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_parseval(series in prop::collection::vec(-100.0f64..100.0, 2..128)) {
        let spec = fft_real(&series);
        let n = spec.len() as f64;
        let time_energy: f64 = series.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / n;
        assert_close(time_energy, freq_energy, 1e-6 * (1.0 + time_energy))?;
    }

    #[test]
    fn fft_linearity(
        a in prop::collection::vec(-10.0f64..10.0, 32),
        b in prop::collection::vec(-10.0f64..10.0, 32),
        alpha in -3.0f64..3.0,
    ) {
        let combined: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fc = fft_real(&combined);
        for i in 0..fa.len() {
            assert_close(fc[i].re, alpha * fa[i].re + fb[i].re, 1e-6)?;
            assert_close(fc[i].im, alpha * fa[i].im + fb[i].im, 1e-6)?;
        }
    }

    #[test]
    fn planted_tone_found_by_both_estimators(
        period in 6usize..48,
        amplitude in 1.0f64..5.0,
        phase in 0.0f64..(2.0 * PI),
    ) {
        let n = 1024;
        let series: Vec<f64> = (0..n)
            .map(|t| amplitude * (2.0 * PI * t as f64 / period as f64 + phase).sin())
            .collect();
        let fft_peaks = dominant_periods(&acf_spectrum(&series, 256), 3);
        let mem_peaks = dominant_periods(&burg_spectrum(&series, 32, 512), 3);
        let found = |peaks: &[iri_core::timeseries::spectrum::SpectrumPoint]| {
            peaks.iter().any(|p| (p.period() - period as f64).abs() < period as f64 * 0.15 + 1.0)
        };
        prop_assert!(found(&fft_peaks), "FFT missed period {period}: {:?}",
            fft_peaks.iter().map(|p| p.period()).collect::<Vec<_>>());
        prop_assert!(found(&mem_peaks), "MEM missed period {period}: {:?}",
            mem_peaks.iter().map(|p| p.period()).collect::<Vec<_>>());
    }

    #[test]
    fn acf_bounded_and_symmetric_in_sign(series in prop::collection::vec(-50.0f64..50.0, 8..200)) {
        let acf = autocorrelation(&series, 20);
        for &r in &acf {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{r}");
        }
        // Negating the series leaves the ACF unchanged.
        let neg: Vec<f64> = series.iter().map(|x| -x).collect();
        let acf_neg = autocorrelation(&neg, 20);
        for (a, b) in acf.iter().zip(&acf_neg) {
            assert_close(*a, *b, 1e-9)?;
        }
    }

    #[test]
    fn detrend_residuals_sum_to_zero(series in prop::collection::vec(0.0f64..1e6, 2..300)) {
        let d = log_detrend(&series);
        let sum: f64 = d.residuals.iter().sum();
        assert_close(sum / d.residuals.len() as f64, 0.0, 1e-9)?;
        // Detrending is invariant to multiplicative scaling (log shifts the
        // intercept only).
        let scaled: Vec<f64> = series.iter().map(|x| (x + 1.0) * 7.0 - 1.0).collect();
        let d2 = log_detrend(&scaled);
        assert_close(d.slope, d2.slope, 1e-9)?;
        for (r1, r2) in d.residuals.iter().zip(&d2.residuals) {
            assert_close(*r1, *r2, 1e-9)?;
        }
    }

    #[test]
    fn ssa_full_rank_reconstructs(series in prop::collection::vec(-10.0f64..10.0, 40..120)) {
        let window = 12;
        let comps = ssa_components(&series, window, window);
        prop_assert_eq!(comps.len(), window);
        let mut sum = vec![0.0; series.len()];
        for c in &comps {
            for (s, v) in sum.iter_mut().zip(&c.series) {
                *s += v;
            }
        }
        for (got, want) in sum.iter().zip(&series) {
            assert_close(*got, *want, 1e-6)?;
        }
        // Eigenvalues are non-increasing and variance fractions sum to ~1
        // (allowing tiny negative numerical eigenvalues).
        for w in comps.windows(2) {
            prop_assert!(w[0].eigenvalue >= w[1].eigenvalue - 1e-9);
        }
    }

    #[test]
    fn jacobi_reconstructs_matrix(vals in prop::collection::vec(-5.0f64..5.0, 3..6)) {
        // Build a symmetric matrix from a random orthogonal-ish basis via
        // Jacobi of another matrix, then check A = V diag(λ) Vᵀ holds for
        // the decomposition of a constructed symmetric matrix.
        let n = vals.len();
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                // Symmetric with controlled values.
                let v = vals[(i + j) % n] + if i == j { 6.0 } else { 0.0 };
                m[i * n + j] = v;
                m[j * n + i] = v;
            }
        }
        let (eigvals, eigvecs) = jacobi_eigen(&m, n);
        // Verify A·v = λ·v for each pair.
        for (lambda, v) in eigvals.iter().zip(&eigvecs) {
            for i in 0..n {
                let av: f64 = (0..n).map(|j| m[i * n + j] * v[j]).sum();
                assert_close(av, lambda * v[i], 1e-7 * (1.0 + lambda.abs()))?;
            }
        }
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| m[i * n + i]).sum();
        assert_close(trace, eigvals.iter().sum(), 1e-7)?;
    }
}
