//! Property tests for the classifier and the downstream statistics.

use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use iri_core::input::{PeerKey, UpdateEvent, UpdateKind};
use iri_core::stats::breakdown::breakdown;
use iri_core::stats::daily::provider_daily_totals;
use iri_core::stats::interarrival::day_interarrival;
use iri_core::stats::persistence::episodes;
use iri_core::taxonomy::UpdateClass;
use iri_core::Classifier;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_peer() -> impl Strategy<Value = PeerKey> {
    (1u32..4, 1u8..3).prop_map(|(asn, r)| PeerKey {
        asn: Asn(asn),
        addr: Ipv4Addr::new(10, 0, asn as u8, r),
    })
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..6).prop_map(|i| Prefix::from_raw(0x0a00_0000 | (i << 16), 16))
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    // Small attribute space to force duplicates and policy fluctuations.
    (1u32..4, 1u8..3, proptest::option::of(0u32..3)).prop_map(|(path, hop, med)| {
        let mut a = PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(path)]),
            Ipv4Addr::new(10, 9, 9, hop),
        );
        a.med = med;
        a
    })
}

fn arb_events() -> impl Strategy<Value = Vec<UpdateEvent>> {
    prop::collection::vec(
        (
            0u64..86_400_000,
            arb_peer(),
            arb_prefix(),
            proptest::option::of(arb_attrs()),
        ),
        0..300,
    )
    .prop_map(|mut raw| {
        raw.sort_by_key(|(t, ..)| *t);
        raw.into_iter()
            .map(|(t, peer, prefix, attrs)| match attrs {
                Some(a) => UpdateEvent::announce(t, peer, prefix, a),
                None => UpdateEvent::withdraw(t, peer, prefix),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn classifier_counts_sum_to_total(events in arb_events()) {
        let mut c = Classifier::new();
        let out = c.classify_all(&events);
        prop_assert_eq!(out.len(), events.len());
        prop_assert_eq!(c.total(), events.len() as u64);
        let sum: u64 = UpdateClass::ALL.iter().map(|&cl| c.count(cl)).sum();
        prop_assert_eq!(sum, c.total());
    }

    #[test]
    fn announcements_get_announcement_classes(events in arb_events()) {
        let mut c = Classifier::new();
        for e in &events {
            let got = c.classify(e);
            match e.kind {
                UpdateKind::Announce(_) => prop_assert!(got.class.is_announcement(), "{:?}", got.class),
                UpdateKind::Withdraw => prop_assert!(!got.class.is_announcement(), "{:?}", got.class),
            }
            // policy_change only ever set on AADup.
            if got.policy_change {
                prop_assert_eq!(got.class, UpdateClass::AaDup);
            }
        }
    }

    #[test]
    fn state_machine_legality(events in arb_events()) {
        // Per (peer, prefix): WA* only while in the withdrawn state *with*
        // an earlier announcement in the pair's history; AA* and Withdraw
        // only directly after an announcement-class event; WWDup only while
        // already withdrawn (or with no history); NewAnnounce only with no
        // announcement history.
        use std::collections::HashMap;
        let mut c = Classifier::new();
        let mut last: HashMap<(PeerKey, Prefix), UpdateClass> = HashMap::new();
        let mut ever_announced: HashMap<(PeerKey, Prefix), bool> = HashMap::new();
        for e in &events {
            let got = c.classify(e);
            let key = (e.peer, e.prefix);
            let prev = last.get(&key).copied();
            let announced_before = *ever_announced.get(&key).unwrap_or(&false);
            match got.class {
                UpdateClass::NewAnnounce => {
                    prop_assert!(
                        prev.is_none_or(|p| !p.is_announcement()),
                        "NewAnnounce after {prev:?}"
                    );
                    prop_assert!(!announced_before || prev.is_none(),
                        "NewAnnounce with prior announcement history must not happen \
                         unless the pair was created by spurious withdrawals");
                }
                UpdateClass::WaDup | UpdateClass::WaDiff => {
                    prop_assert!(matches!(
                        prev,
                        Some(UpdateClass::Withdraw) | Some(UpdateClass::WwDup)
                    ));
                    prop_assert!(announced_before, "WA* needs an earlier announcement");
                }
                UpdateClass::AaDup | UpdateClass::AaDiff => {
                    prop_assert!(prev.unwrap().is_announcement(), "{prev:?}");
                }
                UpdateClass::Withdraw => {
                    prop_assert!(prev.unwrap().is_announcement());
                }
                UpdateClass::WwDup => {
                    prop_assert!(prev.is_none_or(|p| !p.is_announcement()));
                }
            }
            if got.class.is_announcement() {
                ever_announced.insert(key, true);
            }
            last.insert(key, got.class);
        }
    }

    #[test]
    fn daily_totals_conserve_events(events in arb_events()) {
        let mut c = Classifier::new();
        let classified = c.classify_all(&events);
        let rows = provider_daily_totals(&classified);
        let total: u64 = rows.iter().map(|r| r.announce + r.withdraw).sum();
        prop_assert_eq!(total, events.len() as u64);
        // Unique prefixes per provider bounded by the prefix universe.
        for r in &rows {
            prop_assert!(r.unique_prefixes <= 6);
        }
    }

    #[test]
    fn breakdown_matches_classifier_counts(events in arb_events()) {
        let mut c = Classifier::new();
        let classified = c.classify_all(&events);
        let b = breakdown(&classified);
        for cl in UpdateClass::ALL {
            prop_assert_eq!(b.get(cl), c.count(cl));
        }
        prop_assert_eq!(b.total(), c.total());
    }

    #[test]
    fn interarrival_proportions_sum_to_one(events in arb_events()) {
        let mut c = Classifier::new();
        let classified = c.classify_all(&events);
        for cl in UpdateClass::ALL {
            let d = day_interarrival(&classified, cl);
            let sum: f64 = d.proportions.iter().sum();
            if d.gaps > 0 {
                prop_assert!((sum - 1.0).abs() < 1e-9, "{cl}: {sum}");
            } else {
                prop_assert_eq!(sum, 0.0);
            }
        }
    }

    #[test]
    fn episodes_partition_events(events in arb_events()) {
        let mut c = Classifier::new();
        let classified = c.classify_all(&events);
        let eps = episodes(&classified, 300_000);
        let total: u32 = eps.iter().map(|e| e.events).sum();
        prop_assert_eq!(total as usize, classified.len());
        for e in &eps {
            prop_assert!(e.end_ms >= e.start_ms);
            prop_assert!(e.events >= 1);
        }
    }

    #[test]
    fn classification_is_prefix_order_independent(events in arb_events()) {
        // Classifying two interleaved independent prefixes yields the same
        // per-prefix class sequences as classifying them separately.
        let mut combined = Classifier::new();
        let all = combined.classify_all(&events);
        for target in 0u32..6 {
            let prefix = Prefix::from_raw(0x0a00_0000 | (target << 16), 16);
            let sub: Vec<UpdateEvent> = events
                .iter()
                .filter(|e| e.prefix == prefix)
                .cloned()
                .collect();
            let mut solo = Classifier::new();
            let solo_out = solo.classify_all(&sub);
            let combined_out: Vec<_> = all.iter().filter(|e| e.prefix == prefix).collect();
            prop_assert_eq!(solo_out.len(), combined_out.len());
            for (a, b) in solo_out.iter().zip(combined_out) {
                prop_assert_eq!(a.class, b.class);
            }
        }
    }
}
