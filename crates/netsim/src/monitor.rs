//! Monitor taps — the experimental instrumentation of the paper.
//!
//! "Over the course of nine months, we logged BGP routing messages exchanged
//! with the Routing Arbiter project's route servers at five of the major
//! U.S. network exchange points." A [`Monitor`] attached to a router (in
//! practice, to a route server) records every BGP message that router hears,
//! with millisecond timestamps, and can export the log as MRT records for
//! offline analysis — the measurement boundary between `iri-netsim` and
//! `iri-core`.
//!
//! Where the real study had to *infer* mechanisms from periodicity, the
//! simulated tap also captures each update's causal provenance tag
//! ([`Cause`]): the wire format has no such field, so
//! [`Monitor::to_mrt_with_causes`] exports the causes as a sidecar vector
//! aligned record-for-record with the MRT log.

use crate::engine::SimTime;
use crate::router::RouterId;
use iri_bgp::message::Message;
use iri_bgp::types::Asn;
use iri_mrt::{Bgp4mpMessage, Bgp4mpStateChange, MrtRecord, PeerState};
use iri_obs::Cause;
use std::net::Ipv4Addr;

/// One logged message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedUpdate {
    /// Simulated time of receipt (milliseconds).
    pub time_ms: SimTime,
    /// Sending peer's AS.
    pub peer_asn: Asn,
    /// Sending peer's exchange address.
    pub peer_addr: Ipv4Addr,
    /// The message.
    pub message: Message,
    /// Root-cause provenance stamped by the sender ([`Cause::Unknown`] for
    /// control messages).
    pub cause: Cause,
}

/// One logged session transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedStateChange {
    /// Simulated time (milliseconds).
    pub time_ms: SimTime,
    /// Peer's AS.
    pub peer_asn: Asn,
    /// Peer's address.
    pub peer_addr: Ipv4Addr,
    /// Previous FSM state.
    pub old_state: PeerState,
    /// New FSM state.
    pub new_state: PeerState,
}

/// A passive tap on one router.
#[derive(Debug)]
pub struct Monitor {
    /// The monitored router.
    pub router: RouterId,
    /// Whether non-UPDATE messages (KEEPALIVE/OPEN/NOTIFICATION) are kept.
    pub log_all_messages: bool,
    /// Message log, in receipt order.
    pub updates: Vec<LoggedUpdate>,
    /// Session-transition log.
    pub state_changes: Vec<LoggedStateChange>,
}

impl Monitor {
    /// New tap on `router` logging UPDATEs only.
    #[must_use]
    pub fn new(router: RouterId) -> Self {
        Monitor {
            router,
            log_all_messages: false,
            updates: Vec::new(),
            state_changes: Vec::new(),
        }
    }

    /// Records an inbound message with its provenance tag.
    pub fn record(
        &mut self,
        time_ms: SimTime,
        peer_asn: Asn,
        peer_addr: Ipv4Addr,
        message: &Message,
        cause: Cause,
    ) {
        if self.log_all_messages || matches!(message, Message::Update(_)) {
            self.updates.push(LoggedUpdate {
                time_ms,
                peer_asn,
                peer_addr,
                message: message.clone(),
                cause,
            });
        }
    }

    /// Records a session transition.
    pub fn record_state_change(
        &mut self,
        time_ms: SimTime,
        peer_asn: Asn,
        peer_addr: Ipv4Addr,
        old_state: PeerState,
        new_state: PeerState,
    ) {
        self.state_changes.push(LoggedStateChange {
            time_ms,
            peer_asn,
            peer_addr,
            old_state,
            new_state,
        });
    }

    /// Total prefix events (announcements + withdrawals) logged.
    #[must_use]
    pub fn prefix_event_count(&self) -> u64 {
        self.updates
            .iter()
            .map(|u| match &u.message {
                Message::Update(up) => up.prefix_event_count() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Exports the log as MRT records (timestamps truncated to seconds, as
    /// the 1996 collectors did; `base_unix_time` anchors sim time 0).
    #[must_use]
    pub fn to_mrt(
        &self,
        local_asn: Asn,
        local_addr: Ipv4Addr,
        base_unix_time: u32,
    ) -> Vec<MrtRecord> {
        self.to_mrt_with_causes(local_asn, local_addr, base_unix_time)
            .0
    }

    /// Exports the log as MRT records plus a cause sidecar, aligned
    /// record-for-record. MRT has no provenance field, so the tags cross
    /// the measurement boundary beside the log rather than inside it;
    /// state-change records carry [`Cause::Unknown`].
    #[must_use]
    pub fn to_mrt_with_causes(
        &self,
        local_asn: Asn,
        local_addr: Ipv4Addr,
        base_unix_time: u32,
    ) -> (Vec<MrtRecord>, Vec<Cause>) {
        let mut out: Vec<(SimTime, MrtRecord, Cause)> =
            Vec::with_capacity(self.updates.len() + self.state_changes.len());
        for u in &self.updates {
            out.push((
                u.time_ms,
                MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                    timestamp: base_unix_time + (u.time_ms / 1000) as u32,
                    peer_asn: u.peer_asn,
                    local_asn,
                    peer_ip: u.peer_addr,
                    local_ip: local_addr,
                    message: u.message.clone(),
                }),
                u.cause,
            ));
        }
        for s in &self.state_changes {
            out.push((
                s.time_ms,
                MrtRecord::Bgp4mpStateChange(Bgp4mpStateChange {
                    timestamp: base_unix_time + (s.time_ms / 1000) as u32,
                    peer_asn: s.peer_asn,
                    local_asn,
                    peer_ip: s.peer_addr,
                    local_ip: local_addr,
                    old_state: s.old_state,
                    new_state: s.new_state,
                }),
                Cause::Unknown,
            ));
        }
        out.sort_by_key(|(t, _, _)| *t);
        out.into_iter().map(|(_, r, c)| (r, c)).unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::message::{Notification, NotificationCode, Open, Update};

    fn update_msg() -> Message {
        Message::Update(Update::withdraw(["10.0.0.0/8".parse().unwrap()]))
    }

    fn addr() -> Ipv4Addr {
        Ipv4Addr::new(1, 1, 1, 1)
    }

    #[test]
    fn records_updates_skips_keepalives_by_default() {
        let mut m = Monitor::new(RouterId(0));
        m.record(5, Asn(701), addr(), &update_msg(), Cause::Withdrawal);
        m.record(6, Asn(701), addr(), &Message::Keepalive, Cause::Unknown);
        assert_eq!(m.updates.len(), 1);
        assert_eq!(m.prefix_event_count(), 1);
        assert_eq!(m.updates[0].cause, Cause::Withdrawal);
    }

    #[test]
    fn log_all_messages_keeps_keepalives() {
        let mut m = Monitor::new(RouterId(0));
        m.log_all_messages = true;
        m.record(6, Asn(701), addr(), &Message::Keepalive, Cause::Unknown);
        assert_eq!(m.updates.len(), 1);
        assert_eq!(m.prefix_event_count(), 0);
    }

    #[test]
    fn log_all_messages_captures_open_and_notification() {
        let mut m = Monitor::new(RouterId(0));
        m.log_all_messages = true;
        let open = Message::Open(Open {
            version: 4,
            asn: Asn(701),
            hold_time: 180,
            router_id: addr(),
        });
        let notif = Message::Notification(Notification::new(NotificationCode::HoldTimerExpired));
        m.record(1, Asn(701), addr(), &open, Cause::Unknown);
        m.record(2, Asn(701), addr(), &Message::Keepalive, Cause::Unknown);
        m.record(3, Asn(701), addr(), &update_msg(), Cause::LinkFlap);
        m.record(4, Asn(701), addr(), &notif, Cause::Unknown);
        assert_eq!(m.updates.len(), 4);
        assert!(matches!(m.updates[0].message, Message::Open(_)));
        assert!(matches!(m.updates[1].message, Message::Keepalive));
        assert!(matches!(m.updates[2].message, Message::Update(_)));
        assert!(matches!(m.updates[3].message, Message::Notification(_)));
        // Only the UPDATE contributes prefix events; only it carries a
        // known cause.
        assert_eq!(m.prefix_event_count(), 1);
        assert!(m.updates[2].cause.is_known());
        assert!(!m.updates[3].cause.is_known());
    }

    #[test]
    fn state_changes_keep_arrival_order() {
        let mut m = Monitor::new(RouterId(0));
        let transitions = [
            (PeerState::Idle, PeerState::Connect),
            (PeerState::Connect, PeerState::OpenSent),
            (PeerState::OpenSent, PeerState::OpenConfirm),
            (PeerState::OpenConfirm, PeerState::Established),
        ];
        for (i, (old, new)) in transitions.iter().enumerate() {
            m.record_state_change(i as SimTime * 10, Asn(701), addr(), *old, *new);
        }
        assert_eq!(m.state_changes.len(), 4);
        for (logged, (old, new)) in m.state_changes.iter().zip(&transitions) {
            assert_eq!(logged.old_state, *old);
            assert_eq!(logged.new_state, *new);
        }
        // Consecutive transitions chain: each new_state is the next
        // old_state.
        for w in m.state_changes.windows(2) {
            assert_eq!(w[0].new_state, w[1].old_state);
        }
    }

    #[test]
    fn mrt_export_is_time_sorted_with_base_offset() {
        let mut m = Monitor::new(RouterId(0));
        m.record(2500, Asn(701), addr(), &update_msg(), Cause::CsuDrift);
        m.record_state_change(
            1000,
            Asn(701),
            addr(),
            PeerState::OpenConfirm,
            PeerState::Established,
        );
        let recs = m.to_mrt(Asn(237), Ipv4Addr::new(9, 9, 9, 9), 833_000_000);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].timestamp(), 833_000_001);
        assert_eq!(recs[1].timestamp(), 833_000_002);
        assert!(matches!(recs[0], MrtRecord::Bgp4mpStateChange(_)));
        assert!(matches!(recs[1], MrtRecord::Bgp4mpMessage(_)));
    }

    #[test]
    fn cause_sidecar_stays_aligned_through_time_sort() {
        let mut m = Monitor::new(RouterId(0));
        m.record(2500, Asn(701), addr(), &update_msg(), Cause::CsuDrift);
        m.record(500, Asn(701), addr(), &update_msg(), Cause::TimerInterval);
        m.record_state_change(
            1000,
            Asn(701),
            addr(),
            PeerState::OpenConfirm,
            PeerState::Established,
        );
        let (recs, causes) = m.to_mrt_with_causes(Asn(237), Ipv4Addr::new(9, 9, 9, 9), 0);
        assert_eq!(recs.len(), 3);
        assert_eq!(causes.len(), 3);
        // Sorted: update@500 (TimerInterval), state@1000 (Unknown),
        // update@2500 (CsuDrift).
        assert!(matches!(recs[0], MrtRecord::Bgp4mpMessage(_)));
        assert_eq!(causes[0], Cause::TimerInterval);
        assert!(matches!(recs[1], MrtRecord::Bgp4mpStateChange(_)));
        assert_eq!(causes[1], Cause::Unknown);
        assert!(matches!(recs[2], MrtRecord::Bgp4mpMessage(_)));
        assert_eq!(causes[2], Cause::CsuDrift);
    }
}
