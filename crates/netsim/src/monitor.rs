//! Monitor taps — the experimental instrumentation of the paper.
//!
//! "Over the course of nine months, we logged BGP routing messages exchanged
//! with the Routing Arbiter project's route servers at five of the major
//! U.S. network exchange points." A [`Monitor`] attached to a router (in
//! practice, to a route server) records every BGP message that router hears,
//! with millisecond timestamps, and can export the log as MRT records for
//! offline analysis — the measurement boundary between `iri-netsim` and
//! `iri-core`.

use crate::engine::SimTime;
use crate::router::RouterId;
use iri_bgp::message::Message;
use iri_bgp::types::Asn;
use iri_mrt::{Bgp4mpMessage, Bgp4mpStateChange, MrtRecord, PeerState};
use std::net::Ipv4Addr;

/// One logged message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedUpdate {
    /// Simulated time of receipt (milliseconds).
    pub time_ms: SimTime,
    /// Sending peer's AS.
    pub peer_asn: Asn,
    /// Sending peer's exchange address.
    pub peer_addr: Ipv4Addr,
    /// The message.
    pub message: Message,
}

/// One logged session transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedStateChange {
    /// Simulated time (milliseconds).
    pub time_ms: SimTime,
    /// Peer's AS.
    pub peer_asn: Asn,
    /// Peer's address.
    pub peer_addr: Ipv4Addr,
    /// Previous FSM state.
    pub old_state: PeerState,
    /// New FSM state.
    pub new_state: PeerState,
}

/// A passive tap on one router.
#[derive(Debug)]
pub struct Monitor {
    /// The monitored router.
    pub router: RouterId,
    /// Whether non-UPDATE messages (KEEPALIVE/OPEN/NOTIFICATION) are kept.
    pub log_all_messages: bool,
    /// Message log, in receipt order.
    pub updates: Vec<LoggedUpdate>,
    /// Session-transition log.
    pub state_changes: Vec<LoggedStateChange>,
}

impl Monitor {
    /// New tap on `router` logging UPDATEs only.
    #[must_use]
    pub fn new(router: RouterId) -> Self {
        Monitor {
            router,
            log_all_messages: false,
            updates: Vec::new(),
            state_changes: Vec::new(),
        }
    }

    /// Records an inbound message.
    pub fn record(
        &mut self,
        time_ms: SimTime,
        peer_asn: Asn,
        peer_addr: Ipv4Addr,
        message: &Message,
    ) {
        if self.log_all_messages || matches!(message, Message::Update(_)) {
            self.updates.push(LoggedUpdate {
                time_ms,
                peer_asn,
                peer_addr,
                message: message.clone(),
            });
        }
    }

    /// Records a session transition.
    pub fn record_state_change(
        &mut self,
        time_ms: SimTime,
        peer_asn: Asn,
        peer_addr: Ipv4Addr,
        old_state: PeerState,
        new_state: PeerState,
    ) {
        self.state_changes.push(LoggedStateChange {
            time_ms,
            peer_asn,
            peer_addr,
            old_state,
            new_state,
        });
    }

    /// Total prefix events (announcements + withdrawals) logged.
    #[must_use]
    pub fn prefix_event_count(&self) -> u64 {
        self.updates
            .iter()
            .map(|u| match &u.message {
                Message::Update(up) => up.prefix_event_count() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Exports the log as MRT records (timestamps truncated to seconds, as
    /// the 1996 collectors did; `base_unix_time` anchors sim time 0).
    #[must_use]
    pub fn to_mrt(
        &self,
        local_asn: Asn,
        local_addr: Ipv4Addr,
        base_unix_time: u32,
    ) -> Vec<MrtRecord> {
        let mut out: Vec<(SimTime, MrtRecord)> =
            Vec::with_capacity(self.updates.len() + self.state_changes.len());
        for u in &self.updates {
            out.push((
                u.time_ms,
                MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
                    timestamp: base_unix_time + (u.time_ms / 1000) as u32,
                    peer_asn: u.peer_asn,
                    local_asn,
                    peer_ip: u.peer_addr,
                    local_ip: local_addr,
                    message: u.message.clone(),
                }),
            ));
        }
        for s in &self.state_changes {
            out.push((
                s.time_ms,
                MrtRecord::Bgp4mpStateChange(Bgp4mpStateChange {
                    timestamp: base_unix_time + (s.time_ms / 1000) as u32,
                    peer_asn: s.peer_asn,
                    local_asn,
                    peer_ip: s.peer_addr,
                    local_ip: local_addr,
                    old_state: s.old_state,
                    new_state: s.new_state,
                }),
            ));
        }
        out.sort_by_key(|(t, _)| *t);
        out.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_bgp::message::Update;

    fn update_msg() -> Message {
        Message::Update(Update::withdraw(["10.0.0.0/8".parse().unwrap()]))
    }

    #[test]
    fn records_updates_skips_keepalives_by_default() {
        let mut m = Monitor::new(RouterId(0));
        m.record(5, Asn(701), Ipv4Addr::new(1, 1, 1, 1), &update_msg());
        m.record(6, Asn(701), Ipv4Addr::new(1, 1, 1, 1), &Message::Keepalive);
        assert_eq!(m.updates.len(), 1);
        assert_eq!(m.prefix_event_count(), 1);
    }

    #[test]
    fn log_all_messages_keeps_keepalives() {
        let mut m = Monitor::new(RouterId(0));
        m.log_all_messages = true;
        m.record(6, Asn(701), Ipv4Addr::new(1, 1, 1, 1), &Message::Keepalive);
        assert_eq!(m.updates.len(), 1);
        assert_eq!(m.prefix_event_count(), 0);
    }

    #[test]
    fn mrt_export_is_time_sorted_with_base_offset() {
        let mut m = Monitor::new(RouterId(0));
        m.record(2500, Asn(701), Ipv4Addr::new(1, 1, 1, 1), &update_msg());
        m.record_state_change(
            1000,
            Asn(701),
            Ipv4Addr::new(1, 1, 1, 1),
            PeerState::OpenConfirm,
            PeerState::Established,
        );
        let recs = m.to_mrt(Asn(237), Ipv4Addr::new(9, 9, 9, 9), 833_000_000);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].timestamp(), 833_000_001);
        assert_eq!(recs[1].timestamp(), 833_000_002);
        assert!(matches!(recs[0], MrtRecord::Bgp4mpStateChange(_)));
        assert!(matches!(recs[1], MrtRecord::Bgp4mpMessage(_)));
    }
}
