//! Point-to-point link model, including the CSU clock-drift oscillation
//! fault of §4.2.
//!
//! "Most Internet leased lines (T1, T3) use a type of broadband modem
//! referred to as a Channel Service Unit (CSU). Misconfigured CSUs may have
//! clocks which derive from different sources. The drift between two clock
//! sources can cause the line to oscillate between periods of normal service
//! and corrupted data. … router interface cards are sensitive to millisecond
//! loss of line carrier and will flag the link as down."
//!
//! [`CsuFault`] models the drift beat as a duty cycle: the line is up for
//! `up_ms`, drops carrier for `down_ms`, and repeats — with the beat period
//! typically a multiple of the 30-second timing intervals that give the
//! paper's instability its signature periodicity.

use crate::engine::SimTime;
use serde::{Deserialize, Serialize};

/// Index of a link in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Periodic carrier-loss fault from mismatched CSU clock sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsuFault {
    /// Time with good carrier per cycle.
    pub up_ms: SimTime,
    /// Carrier-loss duration per cycle.
    pub down_ms: SimTime,
    /// Offset of the first carrier loss.
    pub phase_ms: SimTime,
}

impl CsuFault {
    /// A classic 30-second beat: ~29.5 s of service, 500 ms of carrier loss.
    #[must_use]
    pub fn beat_30s(phase_ms: SimTime) -> Self {
        CsuFault {
            up_ms: 29_500,
            down_ms: 500,
            phase_ms,
        }
    }

    /// A 60-second beat.
    #[must_use]
    pub fn beat_60s(phase_ms: SimTime) -> Self {
        CsuFault {
            up_ms: 59_500,
            down_ms: 500,
            phase_ms,
        }
    }

    /// Full cycle length.
    #[must_use]
    pub fn period(&self) -> SimTime {
        self.up_ms + self.down_ms
    }

    /// Next carrier-loss onset at or after `now`.
    #[must_use]
    pub fn next_down(&self, now: SimTime) -> SimTime {
        let period = self.period().max(1);
        if now <= self.phase_ms {
            return self.phase_ms;
        }
        let since = now - self.phase_ms;
        let k = since.div_ceil(period);
        self.phase_ms + k * period
    }
}

/// A bidirectional point-to-point link between two routers.
#[derive(Debug, Clone)]
pub struct Link {
    /// Identity.
    pub id: LinkId,
    /// One endpoint (router index).
    pub a: u32,
    /// Other endpoint (router index).
    pub b: u32,
    /// One-way propagation + serialisation latency.
    pub latency_ms: SimTime,
    /// Administrative + carrier status.
    pub up: bool,
    /// Epoch bumped on every down transition; in-flight messages carrying a
    /// stale epoch are dropped at delivery (the TCP connection they belonged
    /// to is gone).
    pub epoch: u64,
    /// Optional CSU oscillation fault.
    pub csu: Option<CsuFault>,
}

impl Link {
    /// New healthy link.
    #[must_use]
    pub fn new(id: LinkId, a: u32, b: u32, latency_ms: SimTime) -> Self {
        Link {
            id,
            a,
            b,
            latency_ms,
            up: true,
            epoch: 0,
            csu: None,
        }
    }

    /// Attaches a CSU fault model.
    #[must_use]
    pub fn with_csu(mut self, csu: CsuFault) -> Self {
        self.csu = Some(csu);
        self
    }

    /// The far endpoint relative to `router`.
    #[must_use]
    pub fn other_end(&self, router: u32) -> u32 {
        if router == self.a {
            self.b
        } else {
            debug_assert_eq!(router, self.b);
            self.a
        }
    }

    /// Takes the link down, invalidating in-flight traffic.
    pub fn take_down(&mut self) {
        if self.up {
            self.up = false;
            self.epoch += 1;
        }
    }

    /// Restores the link.
    pub fn bring_up(&mut self) {
        self.up = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csu_next_down_schedule() {
        let f = CsuFault {
            up_ms: 29_500,
            down_ms: 500,
            phase_ms: 1_000,
        };
        assert_eq!(f.period(), 30_000);
        assert_eq!(f.next_down(0), 1_000);
        assert_eq!(f.next_down(1_000), 1_000);
        assert_eq!(f.next_down(1_001), 31_000);
        assert_eq!(f.next_down(31_000), 31_000);
        assert_eq!(f.next_down(31_001), 61_000);
    }

    #[test]
    fn csu_presets() {
        assert_eq!(CsuFault::beat_30s(0).period(), 30_000);
        assert_eq!(CsuFault::beat_60s(0).period(), 60_000);
    }

    #[test]
    fn link_epoch_bumps_on_down_only() {
        let mut l = Link::new(LinkId(0), 1, 2, 5);
        assert!(l.up);
        l.take_down();
        assert_eq!(l.epoch, 1);
        l.take_down(); // already down: no double bump
        assert_eq!(l.epoch, 1);
        l.bring_up();
        assert_eq!(l.epoch, 1);
        l.take_down();
        assert_eq!(l.epoch, 2);
    }

    #[test]
    fn other_end() {
        let l = Link::new(LinkId(0), 7, 9, 5);
        assert_eq!(l.other_end(7), 9);
        assert_eq!(l.other_end(9), 7);
    }
}
