//! The deterministic discrete-event core: a virtual millisecond clock and a
//! stable-ordered event queue.
//!
//! Determinism rules:
//! - time is a `u64` of milliseconds ([`SimTime`]);
//! - events at equal times are processed in insertion order (a
//!   monotonically increasing sequence number breaks ties);
//! - all randomness comes from a seeded RNG owned by the caller.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Milliseconds of simulated time since the start of the run.
pub type SimTime = u64;

/// One millisecond expressed in [`SimTime`] units.
pub const MILLIS: SimTime = 1;
/// One second.
pub const SECOND: SimTime = 1000;
/// One minute.
pub const MINUTE: SimTime = 60 * SECOND;
/// One hour.
pub const HOUR: SimTime = 60 * MINUTE;
/// One day.
pub const DAY: SimTime = 24 * HOUR;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-first event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            processed: 0,
            high_water: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events popped so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest pending-event count ever reached — the queue's memory
    /// footprint, and a storm-severity signal for observability reports.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and clamps to `now` (preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Schedules `event` `delay` milliseconds from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Timestamp of the next event without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Pops the earliest event only if it is at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `t` without processing (used when a run window
    /// ends with the queue still holding future events).
    pub fn advance_clock(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        q.pop();
        q.schedule_in(50, "y");
        assert_eq!(q.pop(), Some((150, "y")));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        q.pop();
        q.schedule_at(10, "late");
        assert_eq!(q.pop(), Some((100, "late")));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop_until(15), Some((10, "a")));
        assert_eq!(q.pop_until(15), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(25), Some((20, "b")));
    }

    #[test]
    fn advance_clock_never_goes_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_clock(500);
        assert_eq!(q.now(), 500);
        q.advance_clock(100);
        assert_eq!(q.now(), 500);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = EventQueue::new();
        for t in 0..5 {
            q.schedule_at(t, t);
        }
        assert_eq!(q.high_water(), 5);
        q.pop();
        q.pop();
        assert_eq!(q.high_water(), 5, "draining must not lower the mark");
        for t in 10..20 {
            q.schedule_at(t, t);
        }
        assert_eq!(q.high_water(), 13);
    }

    #[test]
    fn time_constants() {
        assert_eq!(SECOND, 1000 * MILLIS);
        assert_eq!(DAY, 24 * HOUR);
        assert_eq!(HOUR, 3_600_000);
    }
}
