//! # iri-netsim — deterministic discrete-event BGP internetwork simulator
//!
//! The measured system of *Internet Routing Instability*, rebuilt: border
//! routers with era-accurate resource models and the specific pathological
//! behaviours the paper identifies, wired into exchange points with Routing
//! Arbiter route servers and monitor taps.
//!
//! | Paper mechanism | Where |
//! |---|---|
//! | stateless BGP (§4.2, WWDup/AADup origin) | [`router::AdjOutMode::Stateless`] |
//! | unjittered 30 s update timer (§4.2, 30/60 s periodicity) | [`iri_session::timers::TimerProfile::Unjittered`] via [`router::RouterConfig`] |
//! | CSU clock-drift link oscillation (§4.2) | [`link::CsuFault`] |
//! | route-caching forwarding architecture (§3) | cache-churn counters in [`router::RouterCounters`] |
//! | keepalive starvation under load → flap storms (§3) | the CPU busy-line in [`router::Router`] |
//! | crash at ~300 updates/s (§6) | [`router::CrashModel`] |
//! | route servers, O(N²)→O(N) peering (§3) | [`router::Role::RouteServer`], [`exchange`] |
//! | Routing Arbiter logging (§2) | [`monitor::Monitor`] |
//!
//! Everything runs on a virtual millisecond clock with a seeded RNG: the
//! same scenario with the same seed reproduces the identical message
//! history.

#![warn(missing_docs)]

pub mod engine;
pub mod exchange;
pub mod link;
pub mod monitor;
pub mod router;
pub mod spill;
pub mod world;

pub use engine::{SimTime, DAY, HOUR, MINUTE, SECOND};
pub use exchange::{build_exchange, provider_mix, BuiltExchange, ExchangePoint};
pub use iri_obs::{Cause, Registry, TraceEvent, TraceKind, Tracer};
pub use link::{CsuFault, Link, LinkId};
pub use monitor::{LoggedUpdate, Monitor};
pub use router::{
    AdjOutMode, CpuModel, CrashModel, RibImage, Role, Router, RouterConfig, RouterCounters,
    RouterId,
};
pub use spill::{SpillConfig, SpillStats};
pub use world::{World, WorldStats};
