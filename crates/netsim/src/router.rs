//! The border-router model: BGP processing plus the resource behaviours the
//! paper identifies as instability mechanisms.
//!
//! Each router combines:
//!
//! - the session FSMs and timers of `iri-session`;
//! - the RIBs, decision process and policy of `iri-rib`, with a per-peer
//!   Adj-RIB-Out that is either **stateful** or the pathological
//!   **stateless** implementation of §4.2;
//! - an update-packing (MRAI-style) timer per peer, jittered or the
//!   pathological **unjittered 30 s** variant;
//! - a CPU model ("many of the commonly deployed Internet routers are based
//!   on a relatively light Motorola 68000 series processor"): update
//!   processing consumes microseconds of a single busy-line, delaying
//!   outbound messages — including KEEPALIVEs unless the router has the
//!   newer "BGP traffic is given a higher priority" fix — so that heavy
//!   update load starves keepalives and triggers hold-timer expiry at
//!   peers;
//! - a crash model ("sufficiently high rates of pathological updates
//!   (300 updates per second) are enough to crash a widely deployed,
//!   high-end model of Internet router");
//! - a route-cache forwarding architecture counter (cache churn per
//!   forwarding change, the packet-loss mechanism of §3);
//! - optional inbound route-flap damping.
//!
//! The router is a pure state machine: every entry point takes `now` and
//! the seeded RNG and returns [`Effect`]s for the world to realise, keeping
//! the whole simulation deterministic.

use crate::engine::SimTime;
use crate::link::LinkId;
use iri_bgp::attrs::PathAttributes;
use iri_bgp::message::{Message, Update};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use iri_bgp::validate::{validate_inbound, PeerContext, ValidationError};
use iri_obs::{Cause, TraceKind};
use iri_rib::adj_in::AdjRibIn;
use iri_rib::adj_out::{AdjRibOut, ExportDelta, ExportEvent, StatefulAdjOut, StatelessAdjOut};
use iri_rib::damping::{DampingVerdict, FlapKind, RouteDamper};
use iri_rib::decision::RouteCandidate;
use iri_rib::loc_rib::{BestChange, LocRib};
use iri_rib::policy::Policy;
use iri_session::fsm::{Action, Event as FsmEvent, SessionConfig, SessionFsm};
use iri_session::timers::{MraiTimer, TimerProfile};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Index of a router in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// What kind of BGP speaker this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// A service-provider border router: prepends its AS and rewrites the
    /// next hop on export.
    Border,
    /// A Routing Arbiter route server: transparent — re-advertises client
    /// routes without inserting itself into the AS path or next hop,
    /// reducing the exchange's session mesh from O(N²) to O(N).
    RouteServer,
}

/// Which Adj-RIB-Out implementation the router runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdjOutMode {
    /// Remembers wire state; suppresses redundant updates.
    Stateful,
    /// The §4.2 pathological implementation.
    Stateless,
}

/// CPU cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuModel {
    /// Microseconds of CPU per prefix event processed (in or out).
    pub update_cost_us: u64,
    /// Whether KEEPALIVE transmission bypasses the busy CPU (the modern
    /// vendor fix: "BGP traffic is given a higher priority and Keep-Alive
    /// messages persist even under heavy instability").
    pub keepalive_priority: bool,
}

impl Default for CpuModel {
    fn default() -> Self {
        // ~200 µs per prefix event ≈ 5 000 events/s of headroom — a light
        // mid-90s CPU.
        CpuModel {
            update_cost_us: 200,
            keepalive_priority: false,
        }
    }
}

/// Crash-under-load model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CrashModel {
    /// Sustained inbound prefix events per second that crash the router.
    pub updates_per_sec_threshold: u32,
    /// Sliding window over which the rate is measured.
    pub window_ms: SimTime,
    /// Reboot time after a crash.
    pub reboot_ms: SimTime,
}

impl Default for CrashModel {
    fn default() -> Self {
        CrashModel {
            updates_per_sec_threshold: 300,
            window_ms: 5_000,
            reboot_ms: 120_000,
        }
    }
}

/// Static router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Display name for reports ("Provider A", "RS-MaeEast"…).
    pub name: String,
    /// The router's AS.
    pub asn: Asn,
    /// Interface address at the exchange (also the router ID).
    pub addr: Ipv4Addr,
    /// Border router or route server.
    pub role: Role,
    /// Adj-RIB-Out implementation.
    pub adj_out: AdjOutMode,
    /// Update-packing timer behaviour.
    pub timer_profile: TimerProfile,
    /// CPU model.
    pub cpu: CpuModel,
    /// Optional crash model.
    pub crash: Option<CrashModel>,
    /// Optional inbound flap damping applied per peer.
    pub damping: Option<iri_rib::damping::DampingConfig>,
    /// Proposed hold time (seconds).
    pub hold_time_secs: u16,
    /// The "misconfigured router / faulty new hardware-software" incident
    /// mode behind Table 1's ISP-I: every `n` timer windows the router
    /// re-transmits withdrawals for every prefix it currently believes
    /// withdrawn, without any state telling it the peer already heard them.
    pub withdrawal_storm: Option<u32>,
}

impl RouterConfig {
    /// A conventional well-behaved border router.
    #[must_use]
    pub fn well_behaved(name: &str, asn: Asn, addr: Ipv4Addr) -> Self {
        RouterConfig {
            name: name.to_owned(),
            asn,
            addr,
            role: Role::Border,
            adj_out: AdjOutMode::Stateful,
            timer_profile: TimerProfile::jittered_30s(),
            cpu: CpuModel::default(),
            crash: Some(CrashModel::default()),
            damping: None,
            hold_time_secs: 180,
            withdrawal_storm: None,
        }
    }

    /// The pathological vendor profile of §4.2: stateless Adj-RIB-Out plus
    /// the unjittered 30-second interval timer.
    #[must_use]
    pub fn pathological(name: &str, asn: Asn, addr: Ipv4Addr) -> Self {
        RouterConfig {
            adj_out: AdjOutMode::Stateless,
            timer_profile: TimerProfile::pathological_30s(),
            ..RouterConfig::well_behaved(name, asn, addr)
        }
    }

    /// A Routing Arbiter route server (transparent, stateful, no crash —
    /// "Unix-based systems").
    #[must_use]
    pub fn route_server(name: &str, asn: Asn, addr: Ipv4Addr) -> Self {
        RouterConfig {
            role: Role::RouteServer,
            adj_out: AdjOutMode::Stateful,
            timer_profile: TimerProfile::Immediate,
            crash: None,
            cpu: CpuModel {
                update_cost_us: 50,
                keepalive_priority: true,
            },
            ..RouterConfig::well_behaved(name, asn, addr)
        }
    }
}

/// Session timers a router arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Peer-liveness hold timer.
    Hold,
    /// Our keepalive transmission timer.
    Keepalive,
    /// Connection retry.
    ConnectRetry,
    /// Update-packing (MRAI) flush.
    Mrai,
}

impl TimerKind {
    fn index(self) -> usize {
        match self {
            TimerKind::Hold => 0,
            TimerKind::Keepalive => 1,
            TimerKind::ConnectRetry => 2,
            TimerKind::Mrai => 3,
        }
    }

    /// Timer name for trace events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TimerKind::Hold => "hold",
            TimerKind::Keepalive => "keepalive",
            TimerKind::ConnectRetry => "connect_retry",
            TimerKind::Mrai => "mrai",
        }
    }
}

/// Instructions returned to the world.
#[derive(Debug)]
pub enum Effect {
    /// Transmit `msg` to `peer`; the message leaves the router at
    /// `ready_at` (CPU-delayed).
    Send {
        /// Destination peer.
        peer: RouterId,
        /// Message to send.
        msg: Message,
        /// Earliest transmission time.
        ready_at: SimTime,
        /// Root-cause provenance of the message (meaningful for UPDATEs;
        /// control messages carry [`Cause::Unknown`]).
        cause: Cause,
    },
    /// Schedule a timer event.
    ArmTimer {
        /// Session peer.
        peer: RouterId,
        /// Which timer.
        kind: TimerKind,
        /// Absolute expiry.
        at: SimTime,
        /// Generation for staleness detection.
        generation: u64,
    },
    /// Initiate transport to `peer`.
    OpenConnection {
        /// Session peer.
        peer: RouterId,
    },
    /// The router crashed; it is dead until `until` and all its transports
    /// are gone.
    Crashed {
        /// Reboot completion time.
        until: SimTime,
        /// Why it crashed (propagated to peers' withdrawal waves).
        cause: Cause,
    },
    /// A router-internal observability event for the world's tracer to
    /// stamp with time and router identity.
    Trace(TraceKind),
}

/// Net pending action for one prefix within the current timer window.
#[derive(Debug, Clone)]
/// `window_start` is the post-policy advertisement as it stood when the
/// current timer window opened (`None` = the window opened with the route
/// not advertised / unknown). At flush time a stateless export compares the
/// net result against this: oscillations that return to the start state
/// squash into the paper's pure duplicate announcement (AADup), while
/// persisted path changes blast the explicit implicit-withdrawal plus the
/// new route.
enum PendingExport {
    Announce {
        attrs: PathAttributes,
        window_start: Option<PathAttributes>,
        cause: Cause,
    },
    Withdraw {
        window_start: Option<PathAttributes>,
        cause: Cause,
    },
}

impl PendingExport {
    fn window_start(&self) -> Option<PathAttributes> {
        match self {
            PendingExport::Announce { window_start, .. }
            | PendingExport::Withdraw { window_start, .. } => window_start.clone(),
        }
    }

    fn cause(&self) -> Cause {
        match self {
            PendingExport::Announce { cause, .. } | PendingExport::Withdraw { cause, .. } => *cause,
        }
    }
}

/// Observable per-router counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RouterCounters {
    /// UPDATE messages received.
    pub updates_rx: u64,
    /// Prefix events (announce+withdraw) received.
    pub prefix_events_rx: u64,
    /// UPDATE messages sent.
    pub updates_tx: u64,
    /// Prefix announcements sent.
    pub announce_tx: u64,
    /// Prefix withdrawals sent.
    pub withdraw_tx: u64,
    /// KEEPALIVEs sent.
    pub keepalives_tx: u64,
    /// Withdrawals received for prefixes the peer never announced.
    pub spurious_withdrawals_rx: u64,
    /// Byte-identical duplicate announcements received.
    pub duplicate_announcements_rx: u64,
    /// Announcements dropped by the AS-loop / first-AS check.
    pub validation_drops: u64,
    /// Prefix events suppressed by inbound damping.
    pub damped: u64,
    /// Session flaps (Established → down).
    pub session_flaps: u64,
    /// Forwarding-cache invalidations (route-cache architecture churn).
    pub cache_invalidations: u64,
    /// Times the router crashed under load.
    pub crashes: u64,
}

struct Peer {
    link: LinkId,
    /// Prefixes last flushed as withdrawn (only maintained when the
    /// withdrawal-storm misconfiguration is active).
    storm_set: std::collections::BTreeSet<Prefix>,
    /// Flush windows completed (storm cadence).
    flush_count: u64,
    /// Whether the first-AS check applies on this session (disabled toward
    /// transparent route servers, matching real "no enforce-first-as"
    /// client configuration).
    enforce_first_as: bool,
    asn: Asn,
    addr: Ipv4Addr,
    fsm: SessionFsm,
    adj_in: AdjRibIn,
    adj_out: Box<dyn AdjRibOut + Send>,
    mrai: MraiTimer,
    pending: BTreeMap<Prefix, PendingExport>,
    import_policy: Policy,
    export_policy: Policy,
    timer_gen: [u64; 4],
    damper: Option<RouteDamper>,
}

/// Address used as the Loc-RIB "peer" for locally originated routes.
fn local_peer_addr() -> Ipv4Addr {
    Ipv4Addr::UNSPECIFIED
}

/// The most common per-prefix cause across an UPDATE's prefixes (ties break
/// toward the lower [`Cause::index`], deterministically). Prefixes with no
/// recorded provenance count toward `fallback`.
fn dominant_cause(part: &Update, causes: &BTreeMap<Prefix, Cause>, fallback: Cause) -> Cause {
    let mut counts = [0usize; Cause::COUNT];
    for pfx in part.withdrawn.iter().chain(part.nlri.iter()) {
        let c = causes.get(pfx).copied().unwrap_or(fallback);
        counts[c.index()] += 1;
    }
    let mut best = fallback;
    let mut best_count = 0usize;
    for cause in Cause::ALL {
        let n = counts[cause.index()];
        if n > best_count {
            best = cause;
            best_count = n;
        }
    }
    best
}

/// The router.
pub struct Router {
    /// World index.
    pub id: RouterId,
    /// Static configuration.
    pub cfg: RouterConfig,
    peers: BTreeMap<RouterId, Peer>,
    addr_to_peer: HashMap<Ipv4Addr, RouterId>,
    loc_rib: LocRib,
    originated: BTreeMap<Prefix, PathAttributes>,
    /// Last origination attributes per prefix, remembered across
    /// withdrawals so a re-origination (e.g. a customer tail circuit
    /// coming back) announces the same route rather than a default one.
    remembered_attrs: BTreeMap<Prefix, PathAttributes>,
    /// Busy-line in **microseconds** (sub-millisecond costs accumulate).
    busy_until_us: u64,
    crashed: bool,
    /// (time, weight) of recent inbound prefix events for the crash window.
    recent_load: VecDeque<(SimTime, u32)>,
    recent_load_sum: u64,
    /// Observable counters.
    pub counters: RouterCounters,
}

impl Router {
    /// New router with no peers.
    #[must_use]
    pub fn new(id: RouterId, cfg: RouterConfig) -> Self {
        Router {
            id,
            cfg,
            peers: BTreeMap::new(),
            addr_to_peer: HashMap::new(),
            loc_rib: LocRib::new(),
            originated: BTreeMap::new(),
            remembered_attrs: BTreeMap::new(),
            busy_until_us: 0,
            crashed: false,
            recent_load: VecDeque::new(),
            recent_load_sum: 0,
            counters: RouterCounters::default(),
        }
    }

    /// Whether the router is currently crashed.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Read access to the Loc-RIB (for table censuses and assertions).
    #[must_use]
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// The session FSM state toward `peer`, if configured.
    #[must_use]
    pub fn session_state(&self, peer: RouterId) -> Option<iri_session::fsm::State> {
        self.peers.get(&peer).map(|p| p.fsm.state())
    }

    /// Whether the session toward `peer` is Established.
    #[must_use]
    pub fn session_established(&self, peer: RouterId) -> bool {
        self.peers
            .get(&peer)
            .is_some_and(|p| p.fsm.is_established())
    }

    /// Peers configured on this router.
    pub fn peer_ids(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.peers.keys().copied()
    }

    /// Registers a peering session (called by the world when wiring links).
    /// `peer_is_route_server` disables the first-AS check: route servers are
    /// transparent and relay paths that do not start with their own AS.
    pub fn add_peer(
        &mut self,
        peer_id: RouterId,
        link: LinkId,
        peer_asn: Asn,
        peer_addr: Ipv4Addr,
        peer_is_route_server: bool,
    ) {
        let session = SessionConfig {
            local_asn: self.cfg.asn,
            local_router_id: self.cfg.addr,
            remote_asn: peer_asn,
            hold_time_secs: self.cfg.hold_time_secs,
            connect_retry: 120_000,
        };
        let adj_out: Box<dyn AdjRibOut + Send> = match self.cfg.adj_out {
            AdjOutMode::Stateful => Box::new(StatefulAdjOut::new()),
            AdjOutMode::Stateless => Box::new(StatelessAdjOut::new()),
        };
        let damper = self.cfg.damping.clone().map(RouteDamper::new);
        self.addr_to_peer.insert(peer_addr, peer_id);
        self.peers.insert(
            peer_id,
            Peer {
                link,
                storm_set: std::collections::BTreeSet::new(),
                flush_count: 0,
                enforce_first_as: !peer_is_route_server,
                asn: peer_asn,
                addr: peer_addr,
                fsm: SessionFsm::new(session),
                adj_in: AdjRibIn::new(peer_asn, peer_addr, peer_addr),
                adj_out,
                // The free-running grid phase is per-box (one interval
                // timer per router), derived deterministically from its
                // address.
                mrai: MraiTimer::with_phase(
                    self.cfg.timer_profile,
                    u64::from(u32::from(self.cfg.addr)).wrapping_mul(7919),
                ),
                pending: BTreeMap::new(),
                import_policy: Policy::accept_all(),
                export_policy: Policy::accept_all(),
                timer_gen: [0; 4],
                damper,
            },
        );
    }

    /// Overrides policies toward `peer`.
    pub fn set_policies(&mut self, peer: RouterId, import: Policy, export: Policy) {
        if let Some(p) = self.peers.get_mut(&peer) {
            p.import_policy = import;
            p.export_policy = export;
        }
    }

    /// The link carrying the session to `peer`.
    #[must_use]
    pub fn peer_link(&self, peer: RouterId) -> Option<LinkId> {
        self.peers.get(&peer).map(|p| p.link)
    }

    /// Exports the per-peer damping state into `registry`, scoped as
    /// `damping.as<local>.peer_as<remote>`. A no-op for peers without a
    /// configured damper.
    pub fn export_damping(&self, registry: &mut iri_obs::Registry, now: SimTime) {
        for p in self.peers.values() {
            if let Some(d) = &p.damper {
                let scope = format!("damping.as{}.peer_as{}", self.cfg.asn.0, p.asn.0);
                d.export_metrics(registry, &scope, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // CPU model
    // ------------------------------------------------------------------

    fn consume_cpu(&mut self, now: SimTime, cost_us: u64) -> SimTime {
        let now_us = now * 1000;
        self.busy_until_us = self.busy_until_us.max(now_us) + cost_us;
        self.busy_until_us.div_ceil(1000)
    }

    fn note_load(&mut self, now: SimTime, events: u32) -> bool {
        let Some(crash) = self.cfg.crash else {
            return false;
        };
        self.recent_load.push_back((now, events));
        self.recent_load_sum += u64::from(events);
        while let Some(&(t, w)) = self.recent_load.front() {
            if t + crash.window_ms < now {
                self.recent_load.pop_front();
                self.recent_load_sum -= u64::from(w);
            } else {
                break;
            }
        }
        let threshold = u64::from(crash.updates_per_sec_threshold) * crash.window_ms / 1000;
        self.recent_load_sum > threshold.max(1)
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    /// Starts (or restarts) all peering sessions.
    pub fn start_sessions(&mut self, now: SimTime, rng: &mut StdRng) -> Vec<Effect> {
        let mut effects = Vec::new();
        let peer_ids: Vec<RouterId> = self.peers.keys().copied().collect();
        for pid in peer_ids {
            let actions = self
                .peers
                .get_mut(&pid)
                .expect("listed")
                .fsm
                .handle(FsmEvent::Start);
            self.apply_fsm_actions(pid, actions, Cause::FsmReset, now, rng, &mut effects);
        }
        effects
    }

    /// Transport toward `peer` came up or went down. `cause` names the
    /// mechanism behind a loss (link flap, CSU drift, a crashed peer…) and
    /// is propagated onto the resulting withdrawal wave.
    pub fn handle_transport(
        &mut self,
        peer: RouterId,
        up: bool,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.crashed {
            return effects;
        }
        let ev = if up {
            FsmEvent::TcpEstablished
        } else {
            FsmEvent::TcpClosed
        };
        let down_cause = if cause.is_known() {
            cause
        } else {
            Cause::FsmReset
        };
        if let Some(p) = self.peers.get_mut(&peer) {
            let actions = p.fsm.handle(ev);
            self.apply_fsm_actions(peer, actions, down_cause, now, rng, &mut effects);
        }
        effects
    }

    /// A timer fired.
    pub fn handle_timer(
        &mut self,
        peer: RouterId,
        kind: TimerKind,
        generation: u64,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.crashed {
            return effects;
        }
        let Some(p) = self.peers.get_mut(&peer) else {
            return effects;
        };
        if p.timer_gen[kind.index()] != generation {
            return effects; // stale timer
        }
        match kind {
            TimerKind::Mrai => {
                if p.mrai.fire(now) {
                    self.flush_peer(peer, now, rng, &mut effects);
                }
            }
            TimerKind::Hold => {
                let actions = p.fsm.handle(FsmEvent::HoldTimerExpired);
                self.apply_fsm_actions(peer, actions, Cause::FsmReset, now, rng, &mut effects);
            }
            TimerKind::Keepalive => {
                let actions = p.fsm.handle(FsmEvent::KeepaliveTimerFired);
                self.apply_fsm_actions(peer, actions, Cause::FsmReset, now, rng, &mut effects);
            }
            TimerKind::ConnectRetry => {
                let actions = p.fsm.handle(FsmEvent::ConnectRetryExpired);
                self.apply_fsm_actions(peer, actions, Cause::FsmReset, now, rng, &mut effects);
            }
        }
        effects
    }

    /// A BGP message arrived from `peer`, carrying the provenance `cause`
    /// the sender stamped on it — relays preserve the root mechanism.
    pub fn handle_message(
        &mut self,
        peer: RouterId,
        msg: Message,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.crashed || !self.peers.contains_key(&peer) {
            return effects;
        }

        // Content processing for UPDATEs happens outside the FSM, but only
        // in Established.
        let established = self.peers[&peer].fsm.is_established();
        if let Message::Update(update) = &msg {
            self.counters.updates_rx += 1;
            let events = update.prefix_event_count() as u32;
            self.counters.prefix_events_rx += u64::from(events);
            let _ready =
                self.consume_cpu(now, u64::from(events).max(1) * self.cfg.cpu.update_cost_us);
            if self.note_load(now, events.max(1)) {
                return self.crash(now, Cause::CpuOverload);
            }
            if established {
                self.process_update(peer, update.clone(), cause, now, rng, &mut effects);
            }
        }

        let actions = self
            .peers
            .get_mut(&peer)
            .expect("checked")
            .fsm
            .handle(FsmEvent::MessageReceived(msg));
        self.apply_fsm_actions(peer, actions, Cause::FsmReset, now, rng, &mut effects);
        effects
    }

    /// Crashes the router immediately; `cause` is propagated to the peers'
    /// withdrawal waves.
    pub fn crash(&mut self, now: SimTime, cause: Cause) -> Vec<Effect> {
        let reboot = self.cfg.crash.map_or(120_000, |c| c.reboot_ms);
        self.crashed = true;
        self.counters.crashes += 1;
        let load_per_sec = self
            .cfg
            .crash
            .map_or(0, |c| self.recent_load_sum * 1000 / c.window_ms.max(1));
        self.recent_load.clear();
        self.recent_load_sum = 0;
        // Everything volatile is lost.
        self.loc_rib = LocRib::new();
        for peer in self.peers.values_mut() {
            let cfg = SessionConfig {
                local_asn: self.cfg.asn,
                local_router_id: self.cfg.addr,
                remote_asn: peer.asn,
                hold_time_secs: self.cfg.hold_time_secs,
                connect_retry: 120_000,
            };
            if peer.fsm.is_established() {
                self.counters.session_flaps += 1;
            }
            peer.fsm = SessionFsm::new(cfg);
            peer.adj_in.clear_session();
            peer.adj_out.reset();
            peer.pending.clear();
            peer.mrai.cancel();
            peer.timer_gen = peer.timer_gen.map(|g| g + 1); // invalidate all timers
        }
        let mut fx = Vec::with_capacity(2);
        if cause == Cause::CpuOverload {
            fx.push(Effect::Trace(TraceKind::CpuOverload { load: load_per_sec }));
        }
        fx.push(Effect::Crashed {
            until: now + reboot,
            cause,
        });
        fx
    }

    /// Reboot finished: re-originate local routes and restart sessions.
    pub fn recover(&mut self, now: SimTime, rng: &mut StdRng) -> Vec<Effect> {
        self.crashed = false;
        self.busy_until_us = now * 1000;
        let originated: Vec<(Prefix, PathAttributes)> = self
            .originated
            .iter()
            .map(|(p, a)| (*p, a.clone()))
            .collect();
        for (prefix, attrs) in originated {
            self.install_local(prefix, attrs);
        }
        self.start_sessions(now, rng)
    }

    // ------------------------------------------------------------------
    // Origination
    // ------------------------------------------------------------------

    fn local_candidate(&self, attrs: PathAttributes) -> RouteCandidate {
        RouteCandidate {
            attrs,
            peer_asn: self.cfg.asn,
            peer_router_id: local_peer_addr(),
            peer_addr: local_peer_addr(),
        }
    }

    fn install_local(&mut self, prefix: Prefix, attrs: PathAttributes) -> BestChange {
        let mut local = attrs;
        // Locally originated routes win the decision process.
        local.local_pref = Some(1000);
        let cand = self.local_candidate(local);
        self.loc_rib.upsert(prefix, local_peer_addr(), cand)
    }

    /// Originates `prefix` locally (a customer network behind this AS) and
    /// propagates to peers. `cause` names what drove the origination (a
    /// scheduled event, a CSU-flapped access circuit coming back…).
    pub fn originate(
        &mut self,
        prefix: Prefix,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.crashed {
            return effects;
        }
        let attrs = self
            .remembered_attrs
            .get(&prefix)
            .cloned()
            .unwrap_or_else(|| {
                PathAttributes::new(iri_bgp::attrs::Origin::Igp, AsPath::empty(), self.cfg.addr)
            });
        self.originated.insert(prefix, attrs.clone());
        self.remembered_attrs.insert(prefix, attrs.clone());
        let change = self.install_local(prefix, attrs);
        self.propagate_change(prefix, &change, cause, now, rng, &mut effects);
        effects
    }

    /// Originates `prefix` with explicit extra attributes (for policy-
    /// fluctuation experiments: changing MED/communities at the source).
    pub fn originate_with(
        &mut self,
        prefix: Prefix,
        attrs: PathAttributes,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.crashed {
            return effects;
        }
        self.originated.insert(prefix, attrs.clone());
        self.remembered_attrs.insert(prefix, attrs.clone());
        let change = self.install_local(prefix, attrs);
        self.propagate_change(prefix, &change, cause, now, rng, &mut effects);
        effects
    }

    /// Withdraws a locally originated prefix.
    pub fn withdraw_origin(
        &mut self,
        prefix: Prefix,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.crashed {
            return effects;
        }
        self.originated.remove(&prefix);
        let change = self.loc_rib.withdraw(prefix, local_peer_addr());
        self.propagate_change(prefix, &change, cause, now, rng, &mut effects);
        effects
    }

    // ------------------------------------------------------------------
    // Update processing pipeline
    // ------------------------------------------------------------------

    fn process_update(
        &mut self,
        from: RouterId,
        update: Update,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
        effects: &mut Vec<Effect>,
    ) {
        // 1. Protocol validation (loop check, first-AS).
        let peer_asn = self.peers[&from].asn;
        let ctx = PeerContext {
            local_asn: self.cfg.asn,
            remote_asn: peer_asn,
            ebgp: true,
        };
        let violations = validate_inbound(&ctx, &Message::Update(update.clone()));
        let enforce_first_as = self.peers[&from].enforce_first_as;
        let drop_announcements = violations.iter().any(|v| match v {
            ValidationError::AsPathLoop(_) | ValidationError::BadNextHop(_) => true,
            ValidationError::FirstAsMismatch { .. } => enforce_first_as,
            _ => false,
        });
        let mut update = update;
        if drop_announcements {
            self.counters.validation_drops += update.nlri.len() as u64;
            update.nlri.clear();
            update.attrs = None;
        }

        // 2. Inbound damping.
        if self.peers[&from].damper.is_some() {
            let mut keep_nlri = Vec::new();
            let mut keep_wd = Vec::new();
            {
                let p = self.peers.get_mut(&from).expect("checked");
                let damper = p.damper.as_mut().expect("checked");
                for &pfx in &update.withdrawn {
                    match damper.record_flap(pfx, FlapKind::Withdrawal, now) {
                        DampingVerdict::Pass => keep_wd.push(pfx),
                        DampingVerdict::Suppressed { reuse_at } => {
                            effects.push(Effect::Trace(TraceKind::DampingSuppressed {
                                prefix: pfx.to_string(),
                                reuse_at,
                            }));
                        }
                    }
                }
                for &pfx in &update.nlri {
                    match damper.record_flap(pfx, FlapKind::Announcement, now) {
                        DampingVerdict::Pass => keep_nlri.push(pfx),
                        DampingVerdict::Suppressed { reuse_at } => {
                            effects.push(Effect::Trace(TraceKind::DampingSuppressed {
                                prefix: pfx.to_string(),
                                reuse_at,
                            }));
                        }
                    }
                }
            }
            let dropped =
                (update.withdrawn.len() - keep_wd.len()) + (update.nlri.len() - keep_nlri.len());
            self.counters.damped += dropped as u64;
            update.withdrawn = keep_wd;
            update.nlri = keep_nlri;
            if update.nlri.is_empty() {
                update.attrs = None;
            }
        }

        // 3. Adj-RIB-In.
        let peer_addr = self.peers[&from].addr;
        let delta = {
            let p = self.peers.get_mut(&from).expect("checked");
            p.adj_in.apply(&update)
        };
        self.counters.spurious_withdrawals_rx += delta.spurious_withdrawals as u64;
        self.counters.duplicate_announcements_rx += delta.duplicate_announcements as u64;

        // 4. Loc-RIB + propagation.
        for prefix in delta.withdrawn {
            let change = self.loc_rib.withdraw(prefix, peer_addr);
            self.propagate_change(prefix, &change, cause, now, rng, effects);
        }
        for prefix in delta.changed {
            let cand = self.peers[&from]
                .adj_in
                .get(prefix)
                .expect("just changed")
                .clone();
            // Import policy (may rewrite attributes or filter).
            let imported = self.peers[&from]
                .import_policy
                .apply(prefix, &cand.attrs, self.cfg.asn);
            let change = match imported {
                Some(attrs) => {
                    let cand = RouteCandidate { attrs, ..cand };
                    self.loc_rib.upsert(prefix, peer_addr, cand)
                }
                None => self.loc_rib.withdraw(prefix, peer_addr),
            };
            self.propagate_change(prefix, &change, cause, now, rng, effects);
        }
    }

    /// Queues exports for a Loc-RIB best change and accounts forwarding-
    /// cache churn.
    fn propagate_change(
        &mut self,
        prefix: Prefix,
        change: &BestChange,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
        effects: &mut Vec<Effect>,
    ) {
        if !change.is_forwarding_change() {
            return;
        }
        // Route-cache architecture: every forwarding change invalidates the
        // interface-card cache entry (§3).
        self.counters.cache_invalidations += 1;

        // Where does the best route now point?
        let best = self.loc_rib.best(prefix).cloned();
        // The peer the *current best* was learned from must not have the
        // route echoed back.
        let best_from = best
            .as_ref()
            .and_then(|b| self.addr_to_peer.get(&b.peer_addr).copied());
        // The pre-change best, for window-start tracking.
        let old_best = match change {
            BestChange::Replaced { old, .. } => Some((**old).clone()),
            BestChange::Unreachable(old) => Some(old.clone()),
            _ => None,
        };

        let peer_ids: Vec<RouterId> = self.peers.keys().copied().collect();
        for pid in peer_ids {
            if !self.peers[&pid].fsm.is_established() {
                continue;
            }
            // Split horizon: never advertise a route back to the peer the
            // current best was learned from. Withdrawals (no best) go to
            // everyone; stateful peers suppress the never-announced ones.
            if best.is_some() && best_from == Some(pid) {
                continue;
            }
            // What this peer was (nominally) being advertised before this
            // change — seeds the window-start when the window opens here.
            let start_hint = old_best
                .as_ref()
                .and_then(|old| self.export_attrs(pid, prefix, &old.attrs));
            let pending = match &best {
                Some(b) => {
                    let exported = self.export_attrs(pid, prefix, &b.attrs);
                    match exported {
                        Some(attrs) => PendingExport::Announce {
                            attrs,
                            window_start: start_hint,
                            cause,
                        },
                        None => PendingExport::Withdraw {
                            window_start: start_hint,
                            cause,
                        },
                    }
                }
                None => PendingExport::Withdraw {
                    window_start: start_hint,
                    cause,
                },
            };
            self.queue_pending(pid, prefix, pending, now, rng, effects);
        }
    }

    /// Computes post-policy attributes toward `peer` (prepend + next-hop
    /// rewrite for border routers; transparent for route servers).
    fn export_attrs(
        &self,
        peer: RouterId,
        prefix: Prefix,
        attrs: &PathAttributes,
    ) -> Option<PathAttributes> {
        let p = &self.peers[&peer];
        let mut out = p.export_policy.apply(prefix, attrs, self.cfg.asn)?;
        match self.cfg.role {
            Role::Border => {
                out.as_path = out.as_path.prepend(self.cfg.asn);
                out.next_hop = self.cfg.addr;
                out.local_pref = None; // LOCAL_PREF is not carried over EBGP
            }
            Role::RouteServer => {
                // Transparent: path and next hop pass through unchanged.
                out.local_pref = None;
            }
        }
        Some(out)
    }

    fn queue_pending(
        &mut self,
        peer: RouterId,
        prefix: Prefix,
        action: PendingExport,
        now: SimTime,
        rng: &mut StdRng,
        effects: &mut Vec<Effect>,
    ) {
        {
            let p = self.peers.get_mut(&peer).expect("exists");
            // The window keeps the start state — and the root cause — of its
            // *first* queued change; subsequent intra-window changes only
            // move the net result.
            let entry = match p.pending.remove(&prefix) {
                Some(existing) => {
                    let window_start = existing.window_start();
                    let cause = if existing.cause().is_known() {
                        existing.cause()
                    } else {
                        action.cause()
                    };
                    match action {
                        PendingExport::Announce { attrs, .. } => PendingExport::Announce {
                            attrs,
                            window_start,
                            cause,
                        },
                        PendingExport::Withdraw { .. } => PendingExport::Withdraw {
                            window_start,
                            cause,
                        },
                    }
                }
                None => action,
            };
            p.pending.insert(prefix, entry);
        }
        if self.peers[&peer].mrai.is_immediate() {
            self.flush_peer(peer, now, rng, effects);
        } else {
            let p = self.peers.get_mut(&peer).expect("exists");
            let was_armed = p.mrai.deadline().is_some();
            let at = p.mrai.arm(now, rng);
            if !was_armed {
                p.timer_gen[TimerKind::Mrai.index()] += 1;
                effects.push(Effect::ArmTimer {
                    peer,
                    kind: TimerKind::Mrai,
                    at,
                    generation: p.timer_gen[TimerKind::Mrai.index()],
                });
            }
        }
    }

    /// Flushes the pending window toward `peer` through its Adj-RIB-Out and
    /// emits the wire messages.
    fn flush_peer(
        &mut self,
        peer: RouterId,
        now: SimTime,
        _rng: &mut StdRng,
        effects: &mut Vec<Effect>,
    ) {
        let storm = self.cfg.withdrawal_storm;
        let pending: Vec<(Prefix, PendingExport)> = {
            let p = self.peers.get_mut(&peer).expect("exists");
            if !p.fsm.is_established() {
                p.pending.clear();
                return;
            }
            p.flush_count += 1;
            // The storm bug: periodically re-queue a blind withdrawal for
            // everything this box thinks is withdrawn. Nothing changed in
            // the RIB — these exist solely because the timer fired.
            if let Some(n) = storm {
                if p.flush_count.is_multiple_of(u64::from(n.max(1))) {
                    let storm_set: Vec<Prefix> = p.storm_set.iter().copied().collect();
                    for prefix in storm_set {
                        p.pending.entry(prefix).or_insert(PendingExport::Withdraw {
                            window_start: None,
                            cause: Cause::TimerInterval,
                        });
                    }
                }
            }
            std::mem::take(&mut p.pending).into_iter().collect()
        };
        if pending.is_empty() {
            // Keep the storm heartbeat alive even through idle windows.
            if storm.is_some() {
                let alive = !self.peers[&peer].storm_set.is_empty();
                if alive {
                    self.rearm_mrai(peer, now, _rng, effects);
                }
            }
            return;
        }
        let mut total = ExportDelta::default();
        let causes: BTreeMap<Prefix, Cause> =
            pending.iter().map(|(p, a)| (*p, a.cause())).collect();
        {
            let p = self.peers.get_mut(&peer).expect("exists");
            for (prefix, action) in pending {
                let event = match action {
                    PendingExport::Announce {
                        attrs,
                        window_start,
                        ..
                    } => {
                        // A window whose net effect returned to (or stayed
                        // at) its start state is the §4.2 duplicate-
                        // announcement squash; a persisted change is an
                        // implicit withdrawal the stateless implementation
                        // propagates explicitly.
                        let replaced = window_start.as_ref().is_some_and(|start| *start != attrs);
                        ExportEvent::Reachable { attrs, replaced }
                    }
                    PendingExport::Withdraw { .. } => ExportEvent::Unreachable,
                };
                if storm.is_some() {
                    match &event {
                        ExportEvent::Unreachable => {
                            p.storm_set.insert(prefix);
                        }
                        ExportEvent::Reachable { .. } => {
                            p.storm_set.remove(&prefix);
                        }
                    }
                }
                let delta = p.adj_out.on_export(prefix, &event);
                total.withdraw.extend(delta.withdraw);
                total.announce.extend(delta.announce);
            }
        }
        self.send_delta(peer, total, now, &causes, Cause::Unknown, effects);
        if storm.is_some() && !self.peers[&peer].storm_set.is_empty() {
            self.rearm_mrai(peer, now, _rng, effects);
        }
    }

    /// Arms the MRAI timer for the next window (storm heartbeat).
    fn rearm_mrai(
        &mut self,
        peer: RouterId,
        now: SimTime,
        rng: &mut StdRng,
        effects: &mut Vec<Effect>,
    ) {
        let p = self.peers.get_mut(&peer).expect("exists");
        if p.mrai.deadline().is_none() && !p.mrai.is_immediate() {
            let at = p.mrai.arm(now + 1, rng);
            p.timer_gen[TimerKind::Mrai.index()] += 1;
            effects.push(Effect::ArmTimer {
                peer,
                kind: TimerKind::Mrai,
                at,
                generation: p.timer_gen[TimerKind::Mrai.index()],
            });
        }
    }

    /// Packages an [`ExportDelta`] into UPDATE messages and emits them.
    /// Each wire UPDATE is stamped with the dominant per-prefix cause
    /// (`fallback` covers prefixes with no recorded provenance, e.g. the
    /// initial table dump).
    fn send_delta(
        &mut self,
        peer: RouterId,
        delta: ExportDelta,
        now: SimTime,
        causes: &BTreeMap<Prefix, Cause>,
        fallback: Cause,
        effects: &mut Vec<Effect>,
    ) {
        if delta.is_empty() {
            return;
        }
        // Group announcements by identical attributes (one UPDATE each).
        let mut groups: Vec<(PathAttributes, Vec<Prefix>)> = Vec::new();
        for (prefix, attrs) in delta.announce {
            match groups.iter_mut().find(|(a, _)| *a == attrs) {
                Some((_, v)) => v.push(prefix),
                None => groups.push((attrs, vec![prefix])),
            }
        }
        let mut updates: Vec<Update> = Vec::new();
        if !delta.withdraw.is_empty() {
            updates.push(Update::withdraw(delta.withdraw));
        }
        for (attrs, prefixes) in groups {
            updates.push(Update::announce(attrs, prefixes));
        }
        for u in updates {
            for part in iri_bgp::codec::split_update(&u) {
                if part.is_empty() {
                    continue;
                }
                let events = part.prefix_event_count() as u64;
                self.counters.updates_tx += 1;
                self.counters.announce_tx += part.nlri.len() as u64;
                self.counters.withdraw_tx += part.withdrawn.len() as u64;
                let cause = dominant_cause(&part, causes, fallback);
                let ready_at = self.consume_cpu(now, events.max(1) * self.cfg.cpu.update_cost_us);
                effects.push(Effect::Send {
                    peer,
                    msg: Message::Update(part),
                    ready_at,
                    cause,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // FSM action plumbing
    // ------------------------------------------------------------------

    /// `down_cause` is stamped on the withdrawal wave if any of `actions`
    /// takes the session down.
    fn apply_fsm_actions(
        &mut self,
        peer: RouterId,
        actions: Vec<Action>,
        down_cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
        effects: &mut Vec<Effect>,
    ) {
        for action in actions {
            match action {
                Action::OpenConnection => effects.push(Effect::OpenConnection { peer }),
                Action::CloseConnection => {
                    // Transport teardown is implicit in this model; the far
                    // end notices via its own FSM events.
                }
                Action::Send(msg) => {
                    let ready_at = match &msg {
                        Message::Keepalive if self.cfg.cpu.keepalive_priority => now,
                        Message::Keepalive => {
                            self.counters.keepalives_tx += 1;
                            self.consume_cpu(now, 10)
                        }
                        _ => self.consume_cpu(now, 50),
                    };
                    if matches!(msg, Message::Keepalive) && self.cfg.cpu.keepalive_priority {
                        self.counters.keepalives_tx += 1;
                    }
                    effects.push(Effect::Send {
                        peer,
                        msg,
                        ready_at,
                        cause: Cause::Unknown,
                    });
                }
                Action::ArmHoldTimer(d) => {
                    self.arm_timer(peer, TimerKind::Hold, now + d, effects);
                }
                Action::ArmKeepaliveTimer(d) => {
                    self.arm_timer(peer, TimerKind::Keepalive, now + d, effects);
                }
                Action::ArmConnectRetry(d) => {
                    self.arm_timer(peer, TimerKind::ConnectRetry, now + d, effects);
                }
                Action::SessionUp => {
                    self.on_session_up(peer, now, effects);
                }
                Action::SessionDown(_) => {
                    self.on_session_down(peer, down_cause, now, rng, effects);
                }
            }
        }
    }

    fn arm_timer(
        &mut self,
        peer: RouterId,
        kind: TimerKind,
        at: SimTime,
        effects: &mut Vec<Effect>,
    ) {
        let p = self.peers.get_mut(&peer).expect("exists");
        p.timer_gen[kind.index()] += 1;
        effects.push(Effect::ArmTimer {
            peer,
            kind,
            at,
            generation: p.timer_gen[kind.index()],
        });
    }

    /// Session established: transmit the full table ("large state dump").
    fn on_session_up(&mut self, peer: RouterId, now: SimTime, effects: &mut Vec<Effect>) {
        let peer_addr = self.peers[&peer].addr;
        let routes: Vec<(Prefix, PathAttributes)> = self
            .loc_rib
            .iter_best()
            .filter(|(_, best)| best.peer_addr != peer_addr)
            .map(|(prefix, best)| (prefix, best.attrs.clone()))
            .collect();
        let exported: Vec<(Prefix, PathAttributes)> = routes
            .into_iter()
            .filter_map(|(prefix, attrs)| {
                self.export_attrs(peer, prefix, &attrs).map(|a| (prefix, a))
            })
            .collect();
        let delta = {
            let p = self.peers.get_mut(&peer).expect("exists");
            p.adj_out.initial_dump(&exported)
        };
        self.send_delta(
            peer,
            delta,
            now,
            &BTreeMap::new(),
            Cause::InitialDump,
            effects,
        );
    }

    /// Session lost: all the peer's routes are withdrawn and the change
    /// propagates — the storm amplification step. `cause` names what killed
    /// the session.
    fn on_session_down(
        &mut self,
        peer: RouterId,
        cause: Cause,
        now: SimTime,
        rng: &mut StdRng,
        effects: &mut Vec<Effect>,
    ) {
        self.counters.session_flaps += 1;
        let peer_addr = {
            let p = self.peers.get_mut(&peer).expect("exists");
            p.adj_in.clear_session();
            p.adj_out.reset();
            p.pending.clear();
            p.mrai.cancel();
            // Invalidate hold/keepalive/MRAI timers; connect-retry stays.
            for kind in [TimerKind::Hold, TimerKind::Keepalive, TimerKind::Mrai] {
                p.timer_gen[kind.index()] += 1;
            }
            p.addr
        };
        let changes = self.loc_rib.drop_peer(peer_addr);
        for (prefix, change) in changes {
            self.propagate_change(prefix, &change, cause, now, rng, effects);
        }
    }
}

/// The spillable bulk of one router: every O(table-size) structure, as
/// flat rows. Transient state — session FSMs, timers, pending flush
/// windows, dampers, counters — stays resident (it is O(peers), not
/// O(prefixes)), so a spilled router keeps its protocol position and
/// only its tables round-trip through the [`crate::spill`] store.
#[derive(Serialize, Deserialize)]
pub struct RibImage {
    /// Loc-RIB candidates as `(prefix, contributing peer, candidate)`;
    /// best selections are recomputed deterministically on import.
    pub loc_rib: Vec<(Prefix, Ipv4Addr, RouteCandidate)>,
    /// Locally originated prefixes with their attributes.
    pub originated: Vec<(Prefix, PathAttributes)>,
    /// Remembered re-origination attributes.
    pub remembered: Vec<(Prefix, PathAttributes)>,
    /// Per-peer table images, keyed by peer router id.
    pub peers: Vec<PeerImage>,
}

/// One peering session's spillable tables.
#[derive(Serialize, Deserialize)]
pub struct PeerImage {
    /// The peer's router id.
    pub peer: RouterId,
    /// Adj-RIB-In rows.
    pub adj_in: Vec<(Prefix, RouteCandidate)>,
    /// Adj-RIB-Out wire state (empty for stateless implementations).
    pub adj_out: Vec<(Prefix, PathAttributes)>,
}

impl RibImage {
    /// Total rows across all tables (sizing diagnostics).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.loc_rib.len()
            + self.originated.len()
            + self.remembered.len()
            + self
                .peers
                .iter()
                .map(|p| p.adj_in.len() + p.adj_out.len())
                .sum::<usize>()
    }
}

impl Router {
    /// Extracts the router's bulk RIB state, leaving the tables empty
    /// (the spill step). The router must not process events until
    /// [`Router::import_rib_image`] restores it.
    pub fn export_rib_image(&mut self) -> RibImage {
        let loc_rib = self.loc_rib.export_candidates();
        self.loc_rib = LocRib::new();
        let originated: Vec<(Prefix, PathAttributes)> =
            std::mem::take(&mut self.originated).into_iter().collect();
        let remembered: Vec<(Prefix, PathAttributes)> = std::mem::take(&mut self.remembered_attrs)
            .into_iter()
            .collect();
        let peers = self
            .peers
            .iter_mut()
            .map(|(&peer, p)| {
                let adj_in = p.adj_in.export_routes();
                p.adj_in.import_routes(Vec::new());
                let adj_out = p.adj_out.export_advertised();
                p.adj_out.import_advertised(Vec::new());
                PeerImage {
                    peer,
                    adj_in,
                    adj_out,
                }
            })
            .collect();
        RibImage {
            loc_rib,
            originated,
            remembered,
            peers,
        }
    }

    /// Restores bulk RIB state extracted by [`Router::export_rib_image`].
    /// The Loc-RIB decision process is deterministic, so best routes (and
    /// the reachable count) reconstruct exactly.
    pub fn import_rib_image(&mut self, image: RibImage) {
        self.loc_rib = LocRib::new();
        self.loc_rib.import_candidates(image.loc_rib);
        self.originated = image.originated.into_iter().collect();
        self.remembered_attrs = image.remembered.into_iter().collect();
        for pi in image.peers {
            if let Some(p) = self.peers.get_mut(&pi.peer) {
                p.adj_in.import_routes(pi.adj_in);
                p.adj_out.import_advertised(pi.adj_out);
            }
        }
    }

    /// Rows currently held across this router's bulk tables (what a spill
    /// would write).
    #[must_use]
    pub fn rib_rows(&self) -> usize {
        self.loc_rib.reachable_count()
            + self.originated.len()
            + self.remembered_attrs.len()
            + self
                .peers
                .values()
                .map(|p| p.adj_in.len() + p.adj_out.advertised_count())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn router(asn: u32) -> Router {
        Router::new(
            RouterId(asn),
            RouterConfig::well_behaved(
                &format!("AS{asn}"),
                Asn(asn),
                Ipv4Addr::new(192, 41, 177, asn as u8),
            ),
        )
    }

    #[test]
    fn add_peer_and_start_emits_open_connection() {
        let mut r = router(1);
        r.add_peer(
            RouterId(2),
            LinkId(0),
            Asn(2),
            Ipv4Addr::new(192, 41, 177, 2),
            false,
        );
        let fx = r.start_sessions(0, &mut rng());
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::OpenConnection { peer } if *peer == RouterId(2))));
        assert_eq!(
            r.session_state(RouterId(2)),
            Some(iri_session::fsm::State::Connect)
        );
    }

    #[test]
    fn originate_before_session_is_silent() {
        let mut r = router(1);
        r.add_peer(
            RouterId(2),
            LinkId(0),
            Asn(2),
            Ipv4Addr::new(192, 41, 177, 2),
            false,
        );
        let fx = r.originate(
            "10.0.0.0/8".parse().unwrap(),
            Cause::Origination,
            0,
            &mut rng(),
        );
        // No established session: nothing to send, but Loc-RIB has it.
        assert!(fx.iter().all(|f| !matches!(f, Effect::Send { .. })));
        assert_eq!(r.loc_rib().reachable_count(), 1);
    }

    #[test]
    fn cpu_accumulates_microseconds() {
        let mut r = router(1);
        // 200 µs × 4 = 800 µs → still within ms 1.
        let t1 = r.consume_cpu(0, 800);
        assert_eq!(t1, 1);
        let t2 = r.consume_cpu(0, 800);
        assert_eq!(t2, 2, "costs must accumulate, not reset per call");
    }

    #[test]
    fn crash_model_triggers_and_recovers() {
        let mut r = router(1);
        r.cfg.crash = Some(CrashModel {
            updates_per_sec_threshold: 100,
            window_ms: 1000,
            reboot_ms: 5000,
        });
        r.add_peer(
            RouterId(2),
            LinkId(0),
            Asn(2),
            Ipv4Addr::new(192, 41, 177, 2),
            false,
        );
        // Feed far more than 100 events in the window.
        let mut crashed_at = None;
        for i in 0..50 {
            let update = Update::withdraw(
                (0..10u32).map(|k| Prefix::from_raw(0x0a00_0000 | ((i * 10 + k) << 8), 24)),
            );
            let fx = r.handle_message(
                RouterId(2),
                Message::Update(update),
                Cause::Withdrawal,
                i as SimTime,
                &mut rng(),
            );
            if fx.iter().any(|f| matches!(f, Effect::Crashed { .. })) {
                crashed_at = Some(i);
                break;
            }
        }
        assert!(crashed_at.is_some(), "router must crash under 500 events/s");
        assert!(r.is_crashed());
        assert_eq!(r.counters.crashes, 1);
        // Messages while crashed are ignored.
        let fx = r.handle_message(
            RouterId(2),
            Message::Keepalive,
            Cause::Unknown,
            100,
            &mut rng(),
        );
        assert!(fx.is_empty());
        // Recovery restarts sessions.
        let fx = r.recover(6000, &mut rng());
        assert!(!r.is_crashed());
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::OpenConnection { .. })));
    }

    #[test]
    fn counters_track_rx() {
        let mut r = router(1);
        r.add_peer(
            RouterId(2),
            LinkId(0),
            Asn(2),
            Ipv4Addr::new(192, 41, 177, 2),
            false,
        );
        let update = Update::withdraw(["10.0.0.0/8".parse().unwrap()]);
        r.handle_message(
            RouterId(2),
            Message::Update(update),
            Cause::Withdrawal,
            0,
            &mut rng(),
        );
        assert_eq!(r.counters.updates_rx, 1);
        assert_eq!(r.counters.prefix_events_rx, 1);
    }

    #[test]
    fn dominant_cause_picks_majority_with_stable_ties() {
        let mut causes = BTreeMap::new();
        let p1: Prefix = "10.0.0.0/8".parse().unwrap();
        let p2: Prefix = "10.1.0.0/16".parse().unwrap();
        let p3: Prefix = "10.2.0.0/16".parse().unwrap();
        causes.insert(p1, Cause::TimerInterval);
        causes.insert(p2, Cause::TimerInterval);
        causes.insert(p3, Cause::CsuDrift);
        let part = Update::withdraw([p1, p2, p3]);
        assert_eq!(
            dominant_cause(&part, &causes, Cause::Unknown),
            Cause::TimerInterval
        );
        // Tie: LinkFlap (index 3) beats TimerInterval (index 7).
        causes.insert(p2, Cause::LinkFlap);
        causes.insert(p3, Cause::LinkFlap);
        causes.insert(p1, Cause::TimerInterval);
        let two = Update::withdraw([p1, p2]);
        assert_eq!(
            dominant_cause(&two, &causes, Cause::Unknown),
            Cause::LinkFlap
        );
        // Unmapped prefixes take the fallback.
        let unmapped = Update::withdraw(["172.16.0.0/12".parse().unwrap()]);
        assert_eq!(
            dominant_cause(&unmapped, &BTreeMap::new(), Cause::InitialDump),
            Cause::InitialDump
        );
    }

    #[test]
    fn stateless_config_builds_stateless_adj_out() {
        let cfg = RouterConfig::pathological("P", Asn(9), Ipv4Addr::new(1, 1, 1, 9));
        assert_eq!(cfg.adj_out, AdjOutMode::Stateless);
        assert_eq!(cfg.timer_profile, TimerProfile::pathological_30s());
    }

    #[test]
    fn route_server_config_is_transparent_profile() {
        let cfg = RouterConfig::route_server("RS", Asn(237), Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(cfg.role, Role::RouteServer);
        assert!(cfg.crash.is_none());
        assert!(cfg.cpu.keepalive_priority);
    }
}
