//! The five measured U.S. public exchange points (Figure 1 of the paper),
//! as reusable world-construction blocks.
//!
//! "Over the course of nine months, we logged BGP routing messages exchanged
//! with the Routing Arbiter project's route servers at five of the major
//! U.S. network exchange points: Mae-East, Sprint, AADS, PacBell and
//! Mae-West. … The largest public exchange, Mae-East located near
//! Washington D.C., currently hosts over 60 service providers."
//!
//! Peer counts are scaled by `scale` (1.0 reproduces the published counts;
//! the default experiments use smaller fractions for laptop runtimes and
//! report scale-free proportions).

use crate::router::{RouterConfig, RouterId};
use crate::world::World;
use iri_bgp::types::Asn;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The Routing Arbiter's AS (Merit).
pub const ROUTE_SERVER_ASN: Asn = Asn(237);

/// One public exchange point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangePoint {
    /// Mae-East, near Washington D.C. — the largest (60+ providers).
    MaeEast,
    /// The Sprint NAP (Pennsauken, NJ).
    Sprint,
    /// AADS, the Ameritech NAP (Chicago).
    Aads,
    /// The PacBell NAP (San Francisco).
    PacBell,
    /// Mae-West (San Jose).
    MaeWest,
}

impl ExchangePoint {
    /// All five measured exchanges.
    pub const ALL: [ExchangePoint; 5] = [
        ExchangePoint::MaeEast,
        ExchangePoint::Sprint,
        ExchangePoint::Aads,
        ExchangePoint::PacBell,
        ExchangePoint::MaeWest,
    ];

    /// Human name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExchangePoint::MaeEast => "Mae-East",
            ExchangePoint::Sprint => "Sprint NAP",
            ExchangePoint::Aads => "AADS",
            ExchangePoint::PacBell => "PacBell NAP",
            ExchangePoint::MaeWest => "Mae-West",
        }
    }

    /// Approximate provider count at the exchange in 1996.
    #[must_use]
    pub fn provider_count_1996(self) -> usize {
        match self {
            ExchangePoint::MaeEast => 60,
            ExchangePoint::Sprint => 20,
            ExchangePoint::Aads => 25,
            ExchangePoint::PacBell => 25,
            ExchangePoint::MaeWest => 30,
        }
    }

    /// Fraction of providers peering with the route servers ("over 90
    /// percent").
    #[must_use]
    pub fn route_server_coverage(self) -> f64 {
        0.92
    }

    /// Exchange LAN address block (each exchange was one shared subnet).
    #[must_use]
    pub fn lan_base(self) -> Ipv4Addr {
        match self {
            ExchangePoint::MaeEast => Ipv4Addr::new(192, 41, 177, 0),
            ExchangePoint::Sprint => Ipv4Addr::new(192, 157, 69, 0),
            ExchangePoint::Aads => Ipv4Addr::new(198, 32, 130, 0),
            ExchangePoint::PacBell => Ipv4Addr::new(198, 32, 128, 0),
            ExchangePoint::MaeWest => Ipv4Addr::new(198, 32, 136, 0),
        }
    }
}

/// A built exchange: router IDs of the route server and the provider
/// border routers.
#[derive(Debug, Clone)]
pub struct BuiltExchange {
    /// Which exchange.
    pub exchange: ExchangePoint,
    /// The monitored route server.
    pub route_server: RouterId,
    /// Provider border routers, in creation order.
    pub providers: Vec<RouterId>,
}

/// Builds an exchange point inside `world`: one route server plus
/// `provider_cfgs` border routers, every provider peering with the route
/// server (O(N) sessions), and providers not covered by the route server
/// meshing directly. The route server is automatically monitored.
pub fn build_exchange(
    world: &mut World,
    exchange: ExchangePoint,
    provider_cfgs: Vec<RouterConfig>,
) -> BuiltExchange {
    let base = u32::from(exchange.lan_base());
    let rs_cfg = RouterConfig::route_server(
        &format!("RS-{}", exchange.name()),
        ROUTE_SERVER_ASN,
        Ipv4Addr::from(base + 250),
    );
    let route_server = world.add_router(rs_cfg);
    world.attach_monitor(route_server);
    let mut providers = Vec::with_capacity(provider_cfgs.len());
    for cfg in provider_cfgs {
        let id = world.add_router(cfg);
        world.connect(id, route_server, 1);
        providers.push(id);
    }
    BuiltExchange {
        exchange,
        route_server,
        providers,
    }
}

/// Convenience: provider configs for an exchange at a given scale, mixing
/// well-behaved and pathological (stateless/unjittered) routers.
///
/// `pathological_fraction` is the share of providers running the §4.2
/// vendor profile; in 1996 the implicated implementation was the market
/// leader, so fractions of 0.5–0.8 are era-faithful.
pub fn provider_mix(
    exchange: ExchangePoint,
    scale: f64,
    pathological_fraction: f64,
    base_asn: u32,
) -> Vec<RouterConfig> {
    let n = ((exchange.provider_count_1996() as f64 * scale).round() as usize).max(2);
    let base = u32::from(exchange.lan_base());
    (0..n)
        .map(|i| {
            let asn = Asn(base_asn + i as u32);
            let addr = Ipv4Addr::from(base + 1 + i as u32);
            let name = format!("{}-P{i}", exchange.name());
            let is_pathological = (i as f64 + 0.5) / (n as f64) < pathological_fraction;
            if is_pathological {
                RouterConfig::pathological(&name, asn, addr)
            } else {
                RouterConfig::well_behaved(&name, asn, addr)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SECOND;

    #[test]
    fn exchange_metadata() {
        assert_eq!(ExchangePoint::ALL.len(), 5);
        assert_eq!(ExchangePoint::MaeEast.name(), "Mae-East");
        assert!(ExchangePoint::MaeEast.provider_count_1996() >= 60);
        for e in ExchangePoint::ALL {
            assert!(e.route_server_coverage() > 0.9);
        }
    }

    #[test]
    fn provider_mix_scales_and_mixes() {
        let cfgs = provider_mix(ExchangePoint::MaeEast, 0.1, 0.5, 7000);
        assert_eq!(cfgs.len(), 6);
        let pathological = cfgs
            .iter()
            .filter(|c| c.adj_out == crate::router::AdjOutMode::Stateless)
            .count();
        assert_eq!(pathological, 3);
        // ASNs and addresses are unique.
        let mut asns: Vec<u32> = cfgs.iter().map(|c| c.asn.0).collect();
        asns.dedup();
        assert_eq!(asns.len(), 6);
    }

    #[test]
    fn built_exchange_establishes_star() {
        let mut w = World::new(3);
        let cfgs = provider_mix(ExchangePoint::Aads, 0.2, 0.4, 6000);
        let n = cfgs.len();
        let ex = build_exchange(&mut w, ExchangePoint::Aads, cfgs);
        w.start();
        w.run_until(30 * SECOND);
        for &p in &ex.providers {
            assert!(
                w.router(p).session_established(ex.route_server),
                "provider {p:?} must peer with the route server"
            );
        }
        assert_eq!(ex.providers.len(), n);
        assert!(w.monitor(ex.route_server).is_some());
    }
}
