//! The world: routers, links, monitors and the event loop that binds them.
//!
//! A [`World`] is a deterministic function of (construction calls, seed):
//! the same scenario replayed with the same seed produces the identical
//! event sequence, message for message — a property the reproducibility
//! integration tests assert.
//!
//! # Observability
//!
//! The world owns the run's [`Tracer`] and [`Registry`] (both disabled
//! until [`World::enable_obs`] is called, costing a single branch per
//! would-be event). Every trace event is stamped with [`SimTime`] — never
//! wall clock — so traces from the same seed are byte-identical across
//! runs and machines. Causal provenance flows the other way: scenario
//! drivers stamp a [`Cause`] on each injected event, routers thread it
//! through their pending-change windows, and the [`Monitor`] logs it next
//! to every captured UPDATE.

use crate::engine::{EventQueue, SimTime};
use crate::link::{CsuFault, Link, LinkId};
use crate::monitor::Monitor;
use crate::router::{Effect, Router, RouterConfig, RouterId, TimerKind};
use crate::spill::{SpillConfig, SpillState, SpillStats};
use iri_bgp::message::Message;
use iri_bgp::types::Prefix;
use iri_mrt::PeerState;
use iri_obs::{Cause, CounterId, GaugeId, HistogramId, Registry, TraceKind, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Events the world processes.
#[derive(Debug)]
enum Ev {
    /// Message arrival at `to`.
    Deliver {
        link: LinkId,
        epoch: u64,
        from: RouterId,
        to: RouterId,
        msg: Message,
        cause: Cause,
    },
    /// Session timer expiry.
    Timer {
        router: RouterId,
        peer: RouterId,
        kind: TimerKind,
        generation: u64,
    },
    /// Transport (TCP) established toward `peer`.
    TransportUp {
        router: RouterId,
        peer: RouterId,
        link: LinkId,
        epoch: u64,
    },
    /// Transport lost toward `peer`. `cause` names the root mechanism that
    /// killed the connection (link flap, CSU oscillation, peer crash…).
    TransportDown {
        router: RouterId,
        peer: RouterId,
        cause: Cause,
    },
    /// Carrier loss (injected outage; pairs with a scheduled LinkUp).
    LinkDown(LinkId),
    /// Carrier restored.
    LinkUp(LinkId),
    /// CSU-driven carrier loss (self-rescheduling while the fault is
    /// attached).
    CsuDown(LinkId),
    /// Detach a link's CSU fault (the circuit got fixed).
    CsuStop(LinkId),
    /// Reboot complete.
    RouterRecover(RouterId),
    /// Operator-injected crash (fault injection).
    CrashNow(RouterId),
    /// Locally originate a prefix.
    Originate {
        router: RouterId,
        prefix: Prefix,
        cause: Cause,
    },
    /// Locally originate a prefix with explicit attributes (customer-AS
    /// origination through a provider border router).
    OriginateWith {
        router: RouterId,
        prefix: Prefix,
        attrs: Box<iri_bgp::attrs::PathAttributes>,
        cause: Cause,
    },
    /// Withdraw a locally originated prefix.
    WithdrawOrigin {
        router: RouterId,
        prefix: Prefix,
        cause: Cause,
    },
}

/// Aggregate world statistics.
#[derive(Debug, Default, Clone)]
pub struct WorldStats {
    /// Messages delivered to routers.
    pub delivered: u64,
    /// Messages dropped because their link (or its TCP epoch) died in
    /// flight.
    pub dropped_in_flight: u64,
    /// Messages dropped at send time because the link was down.
    pub dropped_at_send: u64,
}

/// Pre-registered metric ids — resolved once at construction so the hot
/// path never does a name lookup.
struct ObsIds {
    delivered: CounterId,
    dropped_in_flight: CounterId,
    dropped_at_send: CounterId,
    timer_fires: CounterId,
    link_transitions: CounterId,
    crashes: CounterId,
    tx_delay_ms: HistogramId,
    queue_high_water: GaugeId,
}

impl ObsIds {
    fn register(registry: &mut Registry) -> Self {
        ObsIds {
            delivered: registry.counter("world.delivered"),
            dropped_in_flight: registry.counter("world.dropped_in_flight"),
            dropped_at_send: registry.counter("world.dropped_at_send"),
            timer_fires: registry.counter("world.timer_fires"),
            link_transitions: registry.counter("world.link_transitions"),
            crashes: registry.counter("world.crashes"),
            tx_delay_ms: registry.histogram("world.tx_delay_ms"),
            queue_high_water: registry.gauge("world.queue_high_water"),
        }
    }
}

/// The simulation world.
///
/// ```
/// use iri_netsim::{RouterConfig, World, MINUTE, SECOND};
/// use iri_bgp::types::{Asn, Prefix};
/// use std::net::Ipv4Addr;
///
/// let mut world = World::new(7);
/// let a = world.add_router(RouterConfig::well_behaved("A", Asn(1), Ipv4Addr::new(10, 0, 0, 1)));
/// let b = world.add_router(RouterConfig::well_behaved("B", Asn(2), Ipv4Addr::new(10, 0, 0, 2)));
/// world.connect(a, b, 5);
/// let prefix: Prefix = "192.0.2.0/24".parse().unwrap();
/// world.schedule_originate(10 * SECOND, a, prefix);
/// world.start();
/// world.run_until(2 * MINUTE);
/// assert!(world.router(b).loc_rib().best(prefix).is_some());
/// ```
pub struct World {
    queue: EventQueue<Ev>,
    routers: Vec<Router>,
    links: Vec<Link>,
    /// Access (customer tail-circuit) links: when they flap, the attached
    /// router's originated prefixes flap with them.
    access: HashMap<LinkId, (RouterId, Vec<Prefix>)>,
    monitors: HashMap<u32, Monitor>,
    rng: StdRng,
    tracer: Tracer,
    registry: Registry,
    obs: ObsIds,
    /// RIB residency control; `None` = everything stays in memory.
    spill: Option<Box<SpillState>>,
    /// Aggregate statistics.
    pub stats: WorldStats,
}

impl World {
    /// New empty world with a seed governing all randomness. Observability
    /// starts disabled; see [`World::enable_obs`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut registry = Registry::disabled();
        let obs = ObsIds::register(&mut registry);
        World {
            queue: EventQueue::new(),
            routers: Vec::new(),
            links: Vec::new(),
            access: HashMap::new(),
            monitors: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            tracer: Tracer::disabled(),
            registry,
            obs,
            spill: None,
            stats: WorldStats::default(),
        }
    }

    /// Turns on the metrics registry and installs a tracing ring buffer of
    /// `trace_capacity` events. Call before [`World::start`]; tracing mid-run
    /// works but misses earlier events.
    pub fn enable_obs(&mut self, trace_capacity: usize) {
        self.registry.set_enabled(true);
        self.tracer = Tracer::new(trace_capacity);
    }

    /// Read access to the trace ring buffer.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Read access to the metrics registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access (for scenario drivers that fold in their own
    /// metrics, e.g. [`Router::export_damping`]).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Adds a router.
    pub fn add_router(&mut self, cfg: RouterConfig) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router::new(id, cfg));
        id
    }

    /// Immutable router access.
    #[must_use]
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0 as usize]
    }

    /// Mutable router access (configuration-time only).
    pub fn router_mut(&mut self, id: RouterId) -> &mut Router {
        &mut self.routers[id.0 as usize]
    }

    /// All routers.
    #[must_use]
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// Immutable link access.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Connects two routers with a bidirectional peering session.
    pub fn connect(&mut self, a: RouterId, b: RouterId, latency_ms: SimTime) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, a.0, b.0, latency_ms));
        let (a_asn, a_addr, a_is_rs) = {
            let r = self.router(a);
            (
                r.cfg.asn,
                r.cfg.addr,
                r.cfg.role == crate::router::Role::RouteServer,
            )
        };
        let (b_asn, b_addr, b_is_rs) = {
            let r = self.router(b);
            (
                r.cfg.asn,
                r.cfg.addr,
                r.cfg.role == crate::router::Role::RouteServer,
            )
        };
        self.routers[a.0 as usize].add_peer(b, id, b_asn, b_addr, b_is_rs);
        self.routers[b.0 as usize].add_peer(a, id, a_asn, a_addr, a_is_rs);
        id
    }

    /// Creates a customer access link hanging off `router`: when the link
    /// flaps, `prefixes` are withdrawn/re-originated by the router. Used to
    /// model CSU-afflicted leased lines to customers.
    pub fn add_access_link(
        &mut self,
        router: RouterId,
        prefixes: Vec<Prefix>,
        csu: Option<CsuFault>,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        let mut link = Link::new(id, router.0, router.0, 0);
        if let Some(f) = csu {
            link = link.with_csu(f);
        }
        self.links.push(link);
        self.access.insert(id, (router, prefixes));
        id
    }

    /// Attaches a monitor tap to a router (typically a route server).
    pub fn attach_monitor(&mut self, router: RouterId) {
        self.monitors.insert(router.0, Monitor::new(router));
    }

    /// Read access to a monitor.
    #[must_use]
    pub fn monitor(&self, router: RouterId) -> Option<&Monitor> {
        self.monitors.get(&router.0)
    }

    /// Mutable access to a monitor (e.g. to set
    /// [`Monitor::log_all_messages`]).
    pub fn monitor_mut(&mut self, router: RouterId) -> Option<&mut Monitor> {
        self.monitors.get_mut(&router.0)
    }

    /// Takes a monitor out of the world (for analysis after a run).
    pub fn take_monitor(&mut self, router: RouterId) -> Option<Monitor> {
        self.monitors.remove(&router.0)
    }

    /// Number of events currently scheduled (diagnostics: lets callers
    /// verify injection volume without running the world).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Dumps `router`'s current Loc-RIB as MRT TABLE_DUMP records — the
    /// "routing table snapshots" the paper cross-checked its update logs
    /// against. `base_unix_time` anchors simulated time 0.
    #[must_use]
    pub fn table_dump(&self, router: RouterId, base_unix_time: u32) -> Vec<iri_mrt::MrtRecord> {
        let r = self.router(router);
        let timestamp = base_unix_time + (self.now() / 1000) as u32;
        r.loc_rib()
            .iter_best()
            .enumerate()
            .map(|(seq, (prefix, best))| {
                iri_mrt::MrtRecord::TableDump(iri_mrt::TableDumpEntry {
                    timestamp,
                    view: 0,
                    sequence: seq as u16,
                    prefix,
                    originated: timestamp,
                    peer_ip: best.peer_addr,
                    peer_asn: best.peer_asn,
                    attrs: best.attrs.clone(),
                })
            })
            .collect()
    }

    /// Starts every session and arms CSU schedules. Call once after wiring.
    pub fn start(&mut self) {
        // CSU faults schedule their first carrier loss.
        for link in &self.links {
            if let Some(csu) = link.csu {
                let at = csu.next_down(0);
                self.queue.schedule_at(at, Ev::CsuDown(link.id));
            }
        }
        // Access-link prefixes are originated at t=0.
        let access: Vec<(RouterId, Vec<Prefix>)> = self.access.values().cloned().collect();
        for (router, prefixes) in access {
            for prefix in prefixes {
                self.queue.schedule_at(
                    0,
                    Ev::Originate {
                        router,
                        prefix,
                        cause: Cause::Origination,
                    },
                );
            }
        }
        for i in 0..self.routers.len() {
            let fx = self.routers[i].start_sessions(self.queue.now(), &mut self.rng);
            self.apply_effects(RouterId(i as u32), fx);
        }
    }

    // ------------------------------------------------------------------
    // External scheduling API (scenario drivers)
    // ------------------------------------------------------------------

    /// Schedules a local origination at `at`.
    pub fn schedule_originate(&mut self, at: SimTime, router: RouterId, prefix: Prefix) {
        self.queue.schedule_at(
            at,
            Ev::Originate {
                router,
                prefix,
                cause: Cause::Origination,
            },
        );
    }

    /// Schedules a local origination with explicit attributes (e.g. a
    /// customer AS path or a changed MED for policy-fluctuation
    /// experiments).
    pub fn schedule_originate_with(
        &mut self,
        at: SimTime,
        router: RouterId,
        prefix: Prefix,
        attrs: iri_bgp::attrs::PathAttributes,
    ) {
        self.queue.schedule_at(
            at,
            Ev::OriginateWith {
                router,
                prefix,
                attrs: Box::new(attrs),
                cause: Cause::Origination,
            },
        );
    }

    /// Schedules a local withdrawal at `at`.
    pub fn schedule_withdraw(&mut self, at: SimTime, router: RouterId, prefix: Prefix) {
        self.queue.schedule_at(
            at,
            Ev::WithdrawOrigin {
                router,
                prefix,
                cause: Cause::Withdrawal,
            },
        );
    }

    /// Schedules a route flap: withdrawal at `at`, re-announcement after
    /// `down_for` — the WADup generator.
    pub fn schedule_flap(
        &mut self,
        at: SimTime,
        router: RouterId,
        prefix: Prefix,
        down_for: SimTime,
    ) {
        self.schedule_withdraw(at, router, prefix);
        self.schedule_originate(at + down_for, router, prefix);
    }

    /// Schedules a link outage window.
    pub fn schedule_link_flap(&mut self, at: SimTime, link: LinkId, down_for: SimTime) {
        self.queue.schedule_at(at, Ev::LinkDown(link));
        self.queue.schedule_at(at + down_for, Ev::LinkUp(link));
    }

    /// Schedules the repair of a CSU-afflicted circuit: the fault detaches
    /// and the link stays up from then on.
    pub fn schedule_csu_stop(&mut self, at: SimTime, link: LinkId) {
        self.queue.schedule_at(at, Ev::CsuStop(link));
    }

    /// Schedules a router crash (operator-injected fault).
    pub fn schedule_crash(&mut self, at: SimTime, router: RouterId) {
        self.queue.schedule_at(at, Ev::CrashNow(router));
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Runs until simulated time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((now, ev)) = self.queue.pop_until(t) {
            if self.spill.is_some() {
                let touched = Self::routers_touched(&ev, &self.links);
                for r in touched.iter().flatten() {
                    self.make_resident(*r);
                }
                let keep: Vec<RouterId> = touched.iter().flatten().copied().collect();
                self.enforce_working_set(&keep);
            }
            self.dispatch(now, ev);
        }
        self.queue.advance_clock(t);
        let high_water = self.queue.high_water() as i64;
        self.registry.raise(self.obs.queue_high_water, high_water);
    }

    // ------------------------------------------------------------------
    // RIB residency (spill/restore)
    // ------------------------------------------------------------------

    /// Enables bounded-memory RIB residency: beyond `cfg.working_set`
    /// routers (plus every monitored router, which is pinned), the
    /// least-recently-touched router's bulk tables spill to
    /// `cfg.dir` through `cfg.fs` and restore on the next event that
    /// touches them. Call after wiring and [`World::attach_monitor`],
    /// before running. Restores are exact, so the event sequence is
    /// unchanged by spilling.
    pub fn enable_rib_spill(&mut self, cfg: SpillConfig) {
        let pinned: Vec<u32> = self.monitors.keys().copied().collect();
        self.spill = Some(Box::new(SpillState::new(cfg, pinned)));
    }

    /// Spill-activity counters, when residency control is enabled.
    #[must_use]
    pub fn spill_stats(&self) -> Option<&SpillStats> {
        self.spill.as_deref().map(|s| &s.stats)
    }

    /// Restores `router`'s tables if spilled (for out-of-band readers:
    /// censuses, table dumps). Counts as a touch.
    pub fn ensure_resident(&mut self, router: RouterId) {
        self.make_resident(router);
        self.enforce_working_set(&[router]);
    }

    /// Which routers an event mutates — the set that must be resident
    /// before dispatch. Link-scoped events resolve to both endpoints
    /// (identical for access links).
    fn routers_touched(ev: &Ev, links: &[Link]) -> [Option<RouterId>; 2] {
        match ev {
            Ev::Deliver { to, .. } => [Some(*to), None],
            Ev::Timer { router, .. }
            | Ev::TransportUp { router, .. }
            | Ev::TransportDown { router, .. }
            | Ev::Originate { router, .. }
            | Ev::OriginateWith { router, .. }
            | Ev::WithdrawOrigin { router, .. } => [Some(*router), None],
            Ev::RouterRecover(r) | Ev::CrashNow(r) => [Some(*r), None],
            Ev::LinkDown(l) | Ev::LinkUp(l) | Ev::CsuDown(l) | Ev::CsuStop(l) => {
                let link = &links[l.0 as usize];
                let a = RouterId(link.a);
                let b = RouterId(link.b);
                [Some(a), if a == b { None } else { Some(b) }]
            }
        }
    }

    fn make_resident(&mut self, router: RouterId) {
        if let Some(spill) = self.spill.as_mut() {
            if spill.is_spilled(router) {
                if let Some(image) = spill.restore(router) {
                    self.routers[router.0 as usize].import_rib_image(image);
                }
            }
            spill.touch(router);
        }
    }

    fn enforce_working_set(&mut self, keep: &[RouterId]) {
        while let Some(victim) = self.spill.as_ref().and_then(|s| s.pick_victim(keep)) {
            let image = self.routers[victim.0 as usize].export_rib_image();
            self.spill
                .as_mut()
                .expect("spill enabled")
                .spill(victim, &image);
        }
    }

    /// Runs until the queue drains (careful: periodic timers keep worlds
    /// alive forever; prefer [`World::run_until`]).
    pub fn run_to_quiescence(&mut self, hard_limit: SimTime) {
        self.run_until(hard_limit);
    }

    /// Stamps a trace event with sim time and the router's AS number.
    fn trace(&mut self, now: SimTime, router: RouterId, kind: TraceKind) {
        if self.tracer.is_enabled() {
            let asn = self.routers[router.0 as usize].cfg.asn.0;
            self.tracer.record(now, asn, kind);
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::CrashNow(router) => {
                if !self.routers[router.0 as usize].is_crashed() {
                    // Operator-injected fault: the cause is the reset
                    // itself, not load.
                    let fx = self.routers[router.0 as usize].crash(now, Cause::FsmReset);
                    self.apply_effects(router, fx);
                }
            }
            Ev::Deliver {
                link,
                epoch,
                from,
                to,
                msg,
                cause,
            } => {
                let l = &self.links[link.0 as usize];
                if !l.up || l.epoch != epoch {
                    self.stats.dropped_in_flight += 1;
                    self.registry.inc(self.obs.dropped_in_flight);
                    return;
                }
                if self.routers[to.0 as usize].is_crashed() {
                    self.stats.dropped_in_flight += 1;
                    self.registry.inc(self.obs.dropped_in_flight);
                    return;
                }
                self.stats.delivered += 1;
                self.registry.inc(self.obs.delivered);
                if let Some(mon) = self.monitors.get_mut(&to.0) {
                    let peer = &self.routers[from.0 as usize];
                    mon.record(now, peer.cfg.asn, peer.cfg.addr, &msg, cause);
                }
                let before = self.session_fsm_state(to, from);
                let fx = self.routers[to.0 as usize].handle_message(
                    from,
                    msg,
                    cause,
                    now,
                    &mut self.rng,
                );
                self.record_transition(now, to, from, before);
                self.apply_effects(to, fx);
            }
            Ev::Timer {
                router,
                peer,
                kind,
                generation,
            } => {
                if self.tracer.is_enabled() {
                    let peer_asn = self.routers[peer.0 as usize].cfg.asn.0;
                    self.trace(
                        now,
                        router,
                        TraceKind::TimerFired {
                            peer: peer_asn,
                            timer: kind.name(),
                        },
                    );
                }
                self.registry.inc(self.obs.timer_fires);
                let before = self.session_fsm_state(router, peer);
                let fx = self.routers[router.0 as usize].handle_timer(
                    peer,
                    kind,
                    generation,
                    now,
                    &mut self.rng,
                );
                self.record_transition(now, router, peer, before);
                self.apply_effects(router, fx);
            }
            Ev::TransportUp {
                router,
                peer,
                link,
                epoch,
            } => {
                let l = &self.links[link.0 as usize];
                if !l.up || l.epoch != epoch || self.routers[router.0 as usize].is_crashed() {
                    return;
                }
                let before = self.session_fsm_state(router, peer);
                let fx = self.routers[router.0 as usize].handle_transport(
                    peer,
                    true,
                    Cause::Unknown,
                    now,
                    &mut self.rng,
                );
                self.record_transition(now, router, peer, before);
                self.apply_effects(router, fx);
            }
            Ev::TransportDown {
                router,
                peer,
                cause,
            } => {
                if self.routers[router.0 as usize].is_crashed() {
                    return;
                }
                let before = self.session_fsm_state(router, peer);
                let fx = self.routers[router.0 as usize].handle_transport(
                    peer,
                    false,
                    cause,
                    now,
                    &mut self.rng,
                );
                self.record_transition(now, router, peer, before);
                self.apply_effects(router, fx);
            }
            Ev::LinkDown(link) => {
                self.carrier_loss(now, link);
            }
            Ev::CsuDown(link) => {
                // Ignore if the fault was repaired while this was queued.
                let Some(csu) = self.links[link.0 as usize].csu else {
                    return;
                };
                self.carrier_loss(now, link);
                self.queue.schedule_at(now + csu.down_ms, Ev::LinkUp(link));
            }
            Ev::CsuStop(link) => {
                self.links[link.0 as usize].csu = None;
                if !self.links[link.0 as usize].up {
                    self.queue.schedule_at(now, Ev::LinkUp(link));
                }
            }
            Ev::LinkUp(link) => {
                self.links[link.0 as usize].bring_up();
                self.registry.inc(self.obs.link_transitions);
                let csu = self.links[link.0 as usize].csu.is_some();
                if self.tracer.is_enabled() {
                    let owner = RouterId(self.links[link.0 as usize].a);
                    self.trace(
                        now,
                        owner,
                        TraceKind::LinkUp {
                            link: link.0 as usize,
                            csu,
                        },
                    );
                }
                if let Some((router, prefixes)) = self.access.get(&link).cloned() {
                    // Re-origination caused by the tail circuit coming
                    // back: attribute it to the mechanism that flapped it.
                    let cause = if csu {
                        Cause::CsuDrift
                    } else {
                        Cause::LinkFlap
                    };
                    for prefix in prefixes {
                        self.queue.schedule_at(
                            now,
                            Ev::Originate {
                                router,
                                prefix,
                                cause,
                            },
                        );
                    }
                }
                // CSU oscillation: schedule the next carrier loss.
                if let Some(csu) = self.links[link.0 as usize].csu {
                    let at = csu.next_down(now + 1);
                    self.queue.schedule_at(at, Ev::CsuDown(link));
                }
            }
            Ev::RouterRecover(router) => {
                if self.routers[router.0 as usize].is_crashed() {
                    let fx = self.routers[router.0 as usize].recover(now, &mut self.rng);
                    self.trace(now, router, TraceKind::RouterRecovered);
                    self.apply_effects(router, fx);
                }
            }
            Ev::Originate {
                router,
                prefix,
                cause,
            } => {
                let fx =
                    self.routers[router.0 as usize].originate(prefix, cause, now, &mut self.rng);
                self.apply_effects(router, fx);
            }
            Ev::OriginateWith {
                router,
                prefix,
                attrs,
                cause,
            } => {
                let fx = self.routers[router.0 as usize].originate_with(
                    prefix,
                    *attrs,
                    cause,
                    now,
                    &mut self.rng,
                );
                self.apply_effects(router, fx);
            }
            Ev::WithdrawOrigin {
                router,
                prefix,
                cause,
            } => {
                let fx = self.routers[router.0 as usize].withdraw_origin(
                    prefix,
                    cause,
                    now,
                    &mut self.rng,
                );
                self.apply_effects(router, fx);
            }
        }
    }

    /// Shared carrier-loss handling for injected and CSU outages.
    fn carrier_loss(&mut self, now: SimTime, link: LinkId) {
        self.links[link.0 as usize].take_down();
        self.registry.inc(self.obs.link_transitions);
        let csu = self.links[link.0 as usize].csu.is_some();
        let cause = if csu {
            Cause::CsuDrift
        } else {
            Cause::LinkFlap
        };
        if self.tracer.is_enabled() {
            let owner = RouterId(self.links[link.0 as usize].a);
            self.trace(
                now,
                owner,
                TraceKind::LinkDown {
                    link: link.0 as usize,
                    csu,
                },
            );
        }
        if let Some((router, prefixes)) = self.access.get(&link).cloned() {
            // Customer tail circuit lost: withdraw its prefixes.
            for prefix in prefixes {
                let fx = self.routers[router.0 as usize].withdraw_origin(
                    prefix,
                    cause,
                    now,
                    &mut self.rng,
                );
                self.apply_effects(router, fx);
            }
        } else {
            // Peering link: both ends lose transport promptly.
            let (a, b) = {
                let l = &self.links[link.0 as usize];
                (RouterId(l.a), RouterId(l.b))
            };
            self.queue.schedule_at(
                now,
                Ev::TransportDown {
                    router: a,
                    peer: b,
                    cause,
                },
            );
            self.queue.schedule_at(
                now,
                Ev::TransportDown {
                    router: b,
                    peer: a,
                    cause,
                },
            );
        }
    }

    fn session_fsm_state(
        &self,
        router: RouterId,
        peer: RouterId,
    ) -> Option<iri_session::fsm::State> {
        if self.monitors.contains_key(&router.0) || self.tracer.is_enabled() {
            self.routers[router.0 as usize].session_state(peer)
        } else {
            None
        }
    }

    fn record_transition(
        &mut self,
        now: SimTime,
        router: RouterId,
        peer: RouterId,
        before: Option<iri_session::fsm::State>,
    ) {
        let Some(before) = before else { return };
        let Some(after) = self.routers[router.0 as usize].session_state(peer) else {
            return;
        };
        if before != after {
            let (peer_asn, peer_addr) = {
                let p = &self.routers[peer.0 as usize];
                (p.cfg.asn, p.cfg.addr)
            };
            self.trace(
                now,
                router,
                TraceKind::Fsm {
                    peer: peer_asn.0,
                    from: before.name(),
                    to: after.name(),
                },
            );
            if let Some(mon) = self.monitors.get_mut(&router.0) {
                mon.record_state_change(
                    now,
                    peer_asn,
                    peer_addr,
                    fsm_to_mrt(before),
                    fsm_to_mrt(after),
                );
            }
        }
    }

    fn apply_effects(&mut self, router: RouterId, effects: Vec<Effect>) {
        for fx in effects {
            match fx {
                Effect::Send {
                    peer,
                    msg,
                    ready_at,
                    cause,
                } => {
                    let Some(link_id) = self.routers[router.0 as usize].peer_link(peer) else {
                        continue;
                    };
                    let l = &self.links[link_id.0 as usize];
                    if !l.up {
                        self.stats.dropped_at_send += 1;
                        self.registry.inc(self.obs.dropped_at_send);
                        continue;
                    }
                    let now = self.queue.now();
                    self.registry
                        .observe(self.obs.tx_delay_ms, ready_at.saturating_sub(now));
                    let at = ready_at.max(now) + l.latency_ms;
                    self.queue.schedule_at(
                        at,
                        Ev::Deliver {
                            link: link_id,
                            epoch: l.epoch,
                            from: router,
                            to: peer,
                            msg,
                            cause,
                        },
                    );
                }
                Effect::ArmTimer {
                    peer,
                    kind,
                    at,
                    generation,
                } => {
                    self.queue.schedule_at(
                        at,
                        Ev::Timer {
                            router,
                            peer,
                            kind,
                            generation,
                        },
                    );
                }
                Effect::OpenConnection { peer } => {
                    let Some(link_id) = self.routers[router.0 as usize].peer_link(peer) else {
                        continue;
                    };
                    let l = &self.links[link_id.0 as usize];
                    let rtt = 2 * l.latency_ms;
                    if l.up && !self.routers[peer.0 as usize].is_crashed() {
                        let epoch = l.epoch;
                        self.queue.schedule_at(
                            self.queue.now() + rtt,
                            Ev::TransportUp {
                                router,
                                peer,
                                link: link_id,
                                epoch,
                            },
                        );
                        self.queue.schedule_at(
                            self.queue.now() + rtt,
                            Ev::TransportUp {
                                router: peer,
                                peer: router,
                                link: link_id,
                                epoch,
                            },
                        );
                    } else {
                        // Connect failure detected after the handshake
                        // timeout.
                        self.queue.schedule_at(
                            self.queue.now() + rtt.max(1),
                            Ev::TransportDown {
                                router,
                                peer,
                                cause: Cause::FsmReset,
                            },
                        );
                    }
                }
                Effect::Crashed { until, cause } => {
                    self.registry.inc(self.obs.crashes);
                    self.queue.schedule_at(until, Ev::RouterRecover(router));
                    // Peers see the TCP connections die after one link
                    // latency, and their withdrawal waves inherit the
                    // crash's root cause.
                    let peer_ids: Vec<RouterId> =
                        self.routers[router.0 as usize].peer_ids().collect();
                    for peer in peer_ids {
                        if let Some(link_id) = self.routers[router.0 as usize].peer_link(peer) {
                            let latency = self.links[link_id.0 as usize].latency_ms;
                            self.queue.schedule_at(
                                self.queue.now() + latency,
                                Ev::TransportDown {
                                    router: peer,
                                    peer: router,
                                    cause,
                                },
                            );
                        }
                    }
                }
                Effect::Trace(kind) => {
                    let now = self.queue.now();
                    self.trace(now, router, kind);
                }
            }
        }
    }
}

/// Maps FSM states to MRT state codes.
fn fsm_to_mrt(s: iri_session::fsm::State) -> PeerState {
    use iri_session::fsm::State::*;
    match s {
        Idle => PeerState::Idle,
        Connect => PeerState::Connect,
        Active => PeerState::Active,
        OpenSent => PeerState::OpenSent,
        OpenConfirm => PeerState::OpenConfirm,
        Established => PeerState::Established,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MINUTE, SECOND};
    use iri_bgp::types::Asn;
    use std::net::Ipv4Addr;

    fn two_router_world() -> (World, RouterId, RouterId) {
        let mut w = World::new(1);
        let a = w.add_router(RouterConfig::well_behaved(
            "A",
            Asn(701),
            Ipv4Addr::new(192, 41, 177, 1),
        ));
        let b = w.add_router(RouterConfig::well_behaved(
            "B",
            Asn(1239),
            Ipv4Addr::new(192, 41, 177, 2),
        ));
        w.connect(a, b, 5);
        (w, a, b)
    }

    #[test]
    fn sessions_establish() {
        let (mut w, a, b) = two_router_world();
        w.start();
        w.run_until(10 * SECOND);
        assert!(w.router(a).session_established(b));
        assert!(w.router(b).session_established(a));
    }

    #[test]
    fn originated_route_propagates() {
        let (mut w, a, b) = two_router_world();
        w.start();
        w.run_until(5 * SECOND);
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        w.schedule_originate(6 * SECOND, a, pfx);
        w.run_until(2 * MINUTE);
        let best = w.router(b).loc_rib().best(pfx).expect("B must learn 10/8");
        assert_eq!(best.attrs.as_path.to_string(), "701");
        assert_eq!(best.attrs.next_hop, Ipv4Addr::new(192, 41, 177, 1));
    }

    #[test]
    fn withdrawal_propagates() {
        let (mut w, a, b) = two_router_world();
        w.start();
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        w.schedule_originate(6 * SECOND, a, pfx);
        w.schedule_withdraw(3 * MINUTE, a, pfx);
        w.run_until(6 * MINUTE);
        assert!(w.router(b).loc_rib().best(pfx).is_none());
    }

    #[test]
    fn monitor_sees_updates() {
        let (mut w, a, b) = two_router_world();
        w.attach_monitor(b);
        w.start();
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        w.schedule_originate(6 * SECOND, a, pfx);
        w.run_until(2 * MINUTE);
        let mon = w.monitor(b).unwrap();
        assert!(mon.prefix_event_count() >= 1);
        assert!(mon
            .state_changes
            .iter()
            .any(|s| s.new_state == PeerState::Established));
    }

    #[test]
    fn monitored_updates_carry_known_causes() {
        let (mut w, a, b) = two_router_world();
        w.attach_monitor(b);
        w.start();
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        w.schedule_originate(6 * SECOND, a, pfx);
        w.schedule_withdraw(3 * MINUTE, a, pfx);
        w.run_until(6 * MINUTE);
        let mon = w.monitor(b).unwrap();
        assert!(mon.prefix_event_count() >= 2);
        for u in &mon.updates {
            assert!(
                u.cause.is_known(),
                "UPDATE at t={} carries default cause",
                u.time_ms
            );
        }
        assert!(mon.updates.iter().any(|u| u.cause == Cause::Origination));
        assert!(mon.updates.iter().any(|u| u.cause == Cause::Withdrawal));
    }

    #[test]
    fn obs_disabled_collects_nothing() {
        let (mut w, a, _b) = two_router_world();
        w.start();
        w.schedule_originate(6 * SECOND, a, "10.0.0.0/8".parse().unwrap());
        w.run_until(2 * MINUTE);
        assert!(w.tracer().is_empty());
        assert_eq!(w.registry().counter_value("world.delivered"), Some(0));
        assert!(w.stats.delivered > 0, "stats still work without obs");
    }

    #[test]
    fn obs_enabled_traces_fsm_and_timers() {
        let (mut w, a, b) = two_router_world();
        w.enable_obs(4096);
        w.start();
        w.schedule_originate(6 * SECOND, a, "10.0.0.0/8".parse().unwrap());
        w.run_until(2 * MINUTE);
        assert!(w.registry().counter_value("world.delivered").unwrap() > 0);
        assert!(w.registry().counter_value("world.timer_fires").unwrap() > 0);
        let events: Vec<_> = w.tracer().events().collect();
        assert!(events.iter().any(|e| matches!(
            e.kind,
            TraceKind::Fsm {
                to: "Established",
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::TimerFired { .. })));
        // Determinism contract: every event timestamp is sim time within
        // the run window.
        assert!(events.iter().all(|e| e.time <= 2 * MINUTE));
        let _ = b;
    }

    #[test]
    fn link_flap_traced_and_attributed() {
        let (mut w, a, b) = two_router_world();
        w.enable_obs(4096);
        w.attach_monitor(b);
        w.start();
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        w.schedule_originate(6 * SECOND, a, pfx);
        w.run_until(30 * SECOND);
        let link = w.router(a).peer_link(b).unwrap();
        w.schedule_link_flap(MINUTE, link, 2 * SECOND);
        w.run_until(10 * MINUTE);
        let events: Vec<_> = w.tracer().events().collect();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::LinkDown { csu: false, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::LinkUp { csu: false, .. })));
        assert!(
            w.registry()
                .counter_value("world.link_transitions")
                .unwrap()
                >= 2
        );
        // After the session re-establishes, B relearns the prefix via the
        // initial table dump.
        let mon = w.monitor(b).unwrap();
        assert!(mon.updates.iter().any(|u| u.cause == Cause::InitialDump));
    }

    #[test]
    fn link_flap_drops_and_reestablishes_session() {
        let (mut w, a, b) = two_router_world();
        w.start();
        w.run_until(10 * SECOND);
        assert!(w.router(a).session_established(b));
        let link = w.router(a).peer_link(b).unwrap();
        w.schedule_link_flap(11 * SECOND, link, 2 * SECOND);
        w.run_until(12 * SECOND);
        assert!(!w.router(a).session_established(b));
        // Connect-retry (120 s) brings it back.
        w.run_until(5 * MINUTE);
        assert!(w.router(a).session_established(b));
        assert!(w.router(a).counters.session_flaps >= 1);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed: u64| {
            let mut w = World::new(seed);
            let a = w.add_router(RouterConfig::well_behaved(
                "A",
                Asn(701),
                Ipv4Addr::new(192, 41, 177, 1),
            ));
            let b = w.add_router(RouterConfig::pathological(
                "B",
                Asn(690),
                Ipv4Addr::new(192, 41, 177, 2),
            ));
            w.attach_monitor(a);
            w.connect(a, b, 5);
            w.start();
            for i in 0..20 {
                w.schedule_flap(
                    10 * SECOND + i * 7 * SECOND,
                    b,
                    "192.42.113.0/24".parse().unwrap(),
                    3 * SECOND,
                );
            }
            w.run_until(10 * MINUTE);
            let mon = w.take_monitor(a).unwrap();
            (
                w.events_processed(),
                mon.updates.len(),
                mon.prefix_event_count(),
            )
        };
        assert_eq!(run(42), run(42));
        // Different seed may differ (jitter), but must still complete.
        let _ = run(43);
    }

    #[test]
    fn tracing_does_not_change_the_event_history() {
        // Determinism contract: observability is read-only. The same seed
        // with and without tracing produces the identical message history.
        let run = |obs: bool| {
            let mut w = World::new(42);
            let a = w.add_router(RouterConfig::well_behaved(
                "A",
                Asn(701),
                Ipv4Addr::new(192, 41, 177, 1),
            ));
            let b = w.add_router(RouterConfig::pathological(
                "B",
                Asn(690),
                Ipv4Addr::new(192, 41, 177, 2),
            ));
            if obs {
                w.enable_obs(65536);
            }
            w.attach_monitor(a);
            w.connect(a, b, 5);
            w.start();
            for i in 0..20 {
                w.schedule_flap(
                    10 * SECOND + i * 7 * SECOND,
                    b,
                    "192.42.113.0/24".parse().unwrap(),
                    3 * SECOND,
                );
            }
            w.run_until(10 * MINUTE);
            let mon = w.take_monitor(a).unwrap();
            (
                w.events_processed(),
                mon.updates.len(),
                mon.prefix_event_count(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn access_link_csu_oscillation_hidden_by_stateful_mrai() {
        // A *stateful* router with a 30 s MRAI absorbs sub-window CSU flaps:
        // the W→A squash is identical to the advertised state, so nothing is
        // sent — the paper's "artificial route dampening mechanism".
        let (mut w, a, b) = two_router_world();
        w.attach_monitor(b);
        let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
        w.add_access_link(a, vec![pfx], Some(CsuFault::beat_30s(40 * SECOND)));
        w.start();
        w.run_until(10 * MINUTE);
        let mon = w.monitor(b).unwrap();
        let events = mon.prefix_event_count();
        assert!(
            events <= 3,
            "stateful+MRAI must hide CSU flaps, got {events}"
        );
    }

    #[test]
    fn access_link_csu_oscillation_leaks_through_stateless() {
        // The same CSU fault behind a *stateless* router leaks a W+A pair
        // every timer window — the periodic WADup/AADup engine of §4.2.
        let mut w = World::new(11);
        let a = w.add_router(RouterConfig::pathological(
            "A",
            Asn(690),
            Ipv4Addr::new(192, 41, 177, 1),
        ));
        let b = w.add_router(RouterConfig::well_behaved(
            "B",
            Asn(1239),
            Ipv4Addr::new(192, 41, 177, 2),
        ));
        w.connect(a, b, 5);
        w.attach_monitor(b);
        let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
        w.add_access_link(a, vec![pfx], Some(CsuFault::beat_30s(40 * SECOND)));
        w.start();
        w.run_until(10 * MINUTE);
        let mon = w.monitor(b).unwrap();
        let events = mon.prefix_event_count();
        assert!(
            events >= 10,
            "stateless must leak periodic flaps, got {events}"
        );
    }

    #[test]
    fn csu_flap_updates_attributed_to_csu_drift() {
        let mut w = World::new(11);
        let a = w.add_router(RouterConfig::pathological(
            "A",
            Asn(690),
            Ipv4Addr::new(192, 41, 177, 1),
        ));
        let b = w.add_router(RouterConfig::well_behaved(
            "B",
            Asn(1239),
            Ipv4Addr::new(192, 41, 177, 2),
        ));
        w.connect(a, b, 5);
        w.attach_monitor(b);
        w.enable_obs(65536);
        let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
        w.add_access_link(a, vec![pfx], Some(CsuFault::beat_30s(40 * SECOND)));
        w.start();
        w.run_until(10 * MINUTE);
        let mon = w.monitor(b).unwrap();
        let csu_updates = mon
            .updates
            .iter()
            .filter(|u| u.cause == Cause::CsuDrift)
            .count();
        assert!(
            csu_updates >= 5,
            "CSU-driven churn must be attributed, got {csu_updates}"
        );
        assert!(w
            .tracer()
            .events()
            .any(|e| matches!(e.kind, TraceKind::LinkDown { csu: true, .. })));
    }

    #[test]
    fn csu_stop_repairs_the_circuit() {
        let mut w = World::new(21);
        let a = w.add_router(RouterConfig::pathological(
            "A",
            Asn(690),
            Ipv4Addr::new(192, 41, 177, 1),
        ));
        let b = w.add_router(RouterConfig::well_behaved(
            "B",
            Asn(1239),
            Ipv4Addr::new(192, 41, 177, 2),
        ));
        w.connect(a, b, 5);
        w.attach_monitor(b);
        let pfx: Prefix = "192.42.113.0/24".parse().unwrap();
        let link = w.add_access_link(a, vec![pfx], Some(CsuFault::beat_30s(MINUTE)));
        // The circuit is repaired after 6 minutes.
        w.schedule_csu_stop(6 * MINUTE, link);
        w.start();
        w.run_until(30 * MINUTE);
        // After the repair the prefix is stably reachable…
        assert!(w.router(b).loc_rib().best(pfx).is_some());
        // …and the post-repair log is quiet: no update in the last 20 min.
        let last_update = w
            .monitor(b)
            .unwrap()
            .updates
            .iter()
            .map(|u| u.time_ms)
            .max()
            .unwrap_or(0);
        assert!(
            last_update < 10 * MINUTE,
            "no churn after the repair (last update at {last_update} ms)"
        );
    }

    #[test]
    fn three_routers_converge_on_shortest_path() {
        let mut w = World::new(7);
        let a = w.add_router(RouterConfig::well_behaved(
            "A",
            Asn(1),
            Ipv4Addr::new(10, 0, 0, 1),
        ));
        let b = w.add_router(RouterConfig::well_behaved(
            "B",
            Asn(2),
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        let c = w.add_router(RouterConfig::well_behaved(
            "C",
            Asn(3),
            Ipv4Addr::new(10, 0, 0, 3),
        ));
        w.connect(a, b, 5);
        w.connect(b, c, 5);
        w.connect(a, c, 5);
        w.start();
        let pfx: Prefix = "10.7.0.0/16".parse().unwrap();
        w.schedule_originate(10 * SECOND, c, pfx);
        w.run_until(5 * MINUTE);
        // A must reach the prefix directly via C (path "3"), not via B.
        let best = w.router(a).loc_rib().best(pfx).expect("A learns route");
        assert_eq!(best.attrs.as_path.to_string(), "3");
        // B likewise.
        let best_b = w.router(b).loc_rib().best(pfx).unwrap();
        assert_eq!(best_b.attrs.as_path.to_string(), "3");
        // Failover: C-A link dies; A reroutes via B.
        let link_ac = w.router(a).peer_link(c).unwrap();
        w.schedule_link_flap(6 * MINUTE, link_ac, 30 * MINUTE);
        w.run_until(10 * MINUTE);
        let best = w.router(a).loc_rib().best(pfx).expect("A reroutes via B");
        assert_eq!(best.attrs.as_path.to_string(), "2 3");
    }
}
