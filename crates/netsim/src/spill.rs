//! Bounded-memory RIB residency: spill/restore of per-router tables
//! through the [`StoreFs`](iri_faults::StoreFs) layer.
//!
//! At internet-2026 scale the sum of every router's Loc-RIB,
//! Adj-RIB-In, and Adj-RIB-Out dwarfs the event queue — and most
//! routers are cold most of the time: an exchange world delivers the
//! bulk of its events to the route server and a handful of busy
//! borders. Residency control exploits that: only a configurable
//! **working set** of routers keeps its bulk tables ([`RibImage`]) in
//! memory; before each event is dispatched, the routers it touches are
//! restored if spilled, and least-recently-touched residents beyond
//! the working set are serialized through the same `StoreFs` the
//! segment store writes through (so fault-injection harnesses can
//! exercise the spill path too). Monitored routers are pinned: the
//! route server's tables back the census and would thrash otherwise.
//!
//! Restores are exact — the Loc-RIB decision process is deterministic,
//! so an export/import round-trip reconstructs best routes
//! bit-for-bit — which is why enabling spill does not change a
//! simulation's message sequence (pinned by the
//! `spill_equivalence` test).

use crate::router::{RibImage, RouterId};
use iri_faults::SharedFs;
use std::collections::HashMap;
use std::path::PathBuf;

/// Residency-control configuration.
#[derive(Clone)]
pub struct SpillConfig {
    /// Filesystem the images go through (share it with the store to put
    /// spill traffic under the same fault injector).
    pub fs: SharedFs,
    /// Directory for spill images (created on first spill).
    pub dir: PathBuf,
    /// Routers allowed to keep bulk tables resident, beyond the pinned
    /// (monitored) set. Must be ≥ 1.
    pub working_set: usize,
}

/// Spill-activity counters.
#[derive(Debug, Default, Clone)]
pub struct SpillStats {
    /// Router images written out.
    pub spills: u64,
    /// Router images read back.
    pub restores: u64,
    /// Bytes written across all spills.
    pub bytes_written: u64,
    /// Bytes read across all restores.
    pub bytes_read: u64,
    /// Largest resident (non-pinned) set observed.
    pub peak_resident: usize,
}

/// Per-world residency state. The world consults it before dispatching
/// each event; see the [module docs](self).
pub(crate) struct SpillState {
    cfg: SpillConfig,
    /// Monotone touch clock (deterministic LRU).
    clock: u64,
    /// Resident, non-pinned routers → last touch tick.
    resident: HashMap<u32, u64>,
    /// Routers whose tables are currently on disk (or empty-spilled).
    spilled: HashMap<u32, bool>, // value: an image file exists
    /// Pinned (monitored) routers — never spilled.
    pinned: Vec<u32>,
    dir_ready: bool,
    pub(crate) stats: SpillStats,
}

impl SpillState {
    pub(crate) fn new(cfg: SpillConfig, pinned: Vec<u32>) -> Self {
        SpillState {
            cfg,
            clock: 0,
            resident: HashMap::new(),
            spilled: HashMap::new(),
            pinned,
            dir_ready: false,
            stats: SpillStats::default(),
        }
    }

    pub(crate) fn working_set(&self) -> usize {
        self.cfg.working_set.max(1)
    }

    pub(crate) fn is_spilled(&self, router: RouterId) -> bool {
        self.spilled.contains_key(&router.0)
    }

    fn image_path(&self, router: u32) -> PathBuf {
        self.cfg.dir.join(format!("r{router}.rib"))
    }

    /// Records a touch; returns true if the router was previously
    /// unknown to the resident set (newly resident).
    pub(crate) fn touch(&mut self, router: RouterId) {
        if self.pinned.contains(&router.0) {
            return;
        }
        self.clock += 1;
        self.resident.insert(router.0, self.clock);
        let n = self.resident.len();
        if n > self.stats.peak_resident {
            self.stats.peak_resident = n;
        }
    }

    /// Restores `router`'s image if spilled. Returns the parsed image to
    /// import (None when resident or empty-spilled).
    pub(crate) fn restore(&mut self, router: RouterId) -> Option<RibImage> {
        let had_file = self.spilled.remove(&router.0)?;
        self.stats.restores += 1;
        if !had_file {
            return None; // tables were empty at spill time
        }
        let path = self.image_path(router.0);
        let bytes = self
            .cfg
            .fs
            .read(&path)
            .unwrap_or_else(|e| panic!("rib spill: read {}: {e}", path.display()));
        self.stats.bytes_read += bytes.len() as u64;
        let text = String::from_utf8(bytes)
            .unwrap_or_else(|e| panic!("rib spill: {} not UTF-8: {e}", path.display()));
        let image: RibImage = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("rib spill: {} corrupt: {e}", path.display()));
        Some(image)
    }

    /// Chooses the eviction victim: the least-recently-touched resident
    /// outside `keep` (ties broken by lower router id, deterministically).
    pub(crate) fn pick_victim(&self, keep: &[RouterId]) -> Option<RouterId> {
        if self.resident.len() <= self.working_set() {
            return None;
        }
        self.resident
            .iter()
            .filter(|(id, _)| !keep.iter().any(|k| k.0 == **id))
            .min_by_key(|(id, tick)| (**tick, **id))
            .map(|(id, _)| RouterId(*id))
    }

    /// Writes `image` for `router` and marks it spilled. Empty images
    /// are marked without touching the filesystem.
    pub(crate) fn spill(&mut self, router: RouterId, image: &RibImage) {
        self.resident.remove(&router.0);
        self.stats.spills += 1;
        if image.rows() == 0 {
            self.spilled.insert(router.0, false);
            return;
        }
        if !self.dir_ready {
            self.cfg
                .fs
                .create_dir_all(&self.cfg.dir)
                .unwrap_or_else(|e| panic!("rib spill: create {}: {e}", self.cfg.dir.display()));
            self.dir_ready = true;
        }
        let path = self.image_path(router.0);
        let text = serde_json::to_string(image)
            .unwrap_or_else(|e| panic!("rib spill: encode r{}: {e}", router.0));
        self.stats.bytes_written += text.len() as u64;
        self.cfg
            .fs
            .write(&path, text.as_bytes())
            .unwrap_or_else(|e| panic!("rib spill: write {}: {e}", path.display()));
        self.spilled.insert(router.0, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RibImage;
    use iri_bgp::attrs::{Origin, PathAttributes};
    use iri_bgp::path::AsPath;
    use iri_bgp::types::{Asn, Prefix};
    use std::net::Ipv4Addr;

    fn state(working_set: usize) -> SpillState {
        let dir = std::env::temp_dir().join(format!("iri-spill-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SpillState::new(
            SpillConfig {
                fs: iri_faults::real_fs(),
                dir,
                working_set,
            },
            Vec::new(),
        )
    }

    fn one_row_image() -> RibImage {
        let prefix = Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 24).expect("prefix");
        let attrs = PathAttributes::new(
            Origin::Igp,
            AsPath::from_sequence([Asn(100)]),
            Ipv4Addr::new(192, 0, 2, 1),
        );
        RibImage {
            loc_rib: Vec::new(),
            originated: vec![(prefix, attrs)],
            remembered: Vec::new(),
            peers: Vec::new(),
        }
    }

    /// Regression: a *non-empty* spill must mark the router spilled, or the
    /// next touch skips the restore and the exported tables are lost.
    #[test]
    fn non_empty_spill_marks_router_and_restores_rows() {
        let mut s = state(1);
        let r = RouterId(7);
        s.touch(r);
        s.spill(r, &one_row_image());
        assert!(s.is_spilled(r), "non-empty spill left router unmarked");
        let image = s.restore(r).expect("image round-trips");
        assert_eq!(image.rows(), 1);
        assert!(!s.is_spilled(r));
        let _ = std::fs::remove_dir_all(&s.cfg.dir);
    }

    /// Empty images are marked spilled without a backing file and restore
    /// to nothing.
    #[test]
    fn empty_spill_marks_without_file() {
        let mut s = state(1);
        let r = RouterId(3);
        s.touch(r);
        let empty = RibImage {
            loc_rib: Vec::new(),
            originated: Vec::new(),
            remembered: Vec::new(),
            peers: Vec::new(),
        };
        s.spill(r, &empty);
        assert!(s.is_spilled(r));
        assert!(s.restore(r).is_none());
        assert!(!s.is_spilled(r));
    }
}
