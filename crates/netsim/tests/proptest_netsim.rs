//! Property tests on the simulator: after arbitrary flap schedules and a
//! quiescence window, routing state must converge to exactly the surviving
//! originations, sessions must be re-established, and the deterministic
//! replay property must hold.

use iri_bgp::types::{Asn, Prefix};
use iri_netsim::{RouterConfig, World, MINUTE, SECOND};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// (prefix index, flap time offset s, down duration s)
fn arb_flaps() -> impl Strategy<Value = Vec<(u8, u16, u16)>> {
    prop::collection::vec((0u8..6, 0u16..600, 5u16..120), 0..25)
}

fn build_world(
    pathological: bool,
    seed: u64,
) -> (World, Vec<iri_netsim::RouterId>, iri_netsim::RouterId) {
    let mut w = World::new(seed);
    let rs = w.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(10, 0, 0, 250),
    ));
    w.attach_monitor(rs);
    let mut providers = Vec::new();
    for i in 0..3u32 {
        let cfg = if pathological && i == 0 {
            RouterConfig::pathological(
                &format!("P{i}"),
                Asn(100 + i),
                Ipv4Addr::new(10, 0, 0, 1 + i as u8),
            )
        } else {
            RouterConfig::well_behaved(
                &format!("P{i}"),
                Asn(100 + i),
                Ipv4Addr::new(10, 0, 0, 1 + i as u8),
            )
        };
        let id = w.add_router(cfg);
        w.connect(id, rs, 1);
        providers.push(id);
    }
    (w, providers, rs)
}

fn prefix(i: u8) -> Prefix {
    Prefix::from_raw(0x0a00_0000 | (u32::from(i) << 16), 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quiescent_state_matches_surviving_originations(
        flaps in arb_flaps(),
        pathological in any::<bool>(),
    ) {
        let (mut w, providers, rs) = build_world(pathological, 99);
        // Each of 6 prefixes lives at provider i%3 and is originated at 5s.
        for i in 0..6u8 {
            w.schedule_originate(5 * SECOND, providers[usize::from(i) % 3], prefix(i));
        }
        for &(pi, at_s, down_s) in &flaps {
            let p = prefix(pi % 6);
            let router = providers[usize::from(pi % 6) % 3];
            w.schedule_flap(
                MINUTE + u64::from(at_s) * SECOND,
                router,
                p,
                u64::from(down_s) * SECOND,
            );
        }
        w.start();
        // Run: all flaps end by MINUTE + 600s + 120s; add convergence slack.
        w.run_until(MINUTE + 720 * SECOND + 10 * MINUTE);

        // 1. All sessions are up at the end.
        for &p in &providers {
            prop_assert!(w.router(p).session_established(rs), "session must recover");
        }
        // 2. The route server knows exactly the 6 prefixes (all flaps ended
        //    with a re-announcement).
        prop_assert_eq!(w.router(rs).loc_rib().reachable_count(), 6);
        for i in 0..6u8 {
            let best = w.router(rs).loc_rib().best(prefix(i));
            prop_assert!(best.is_some(), "prefix {i} must be reachable");
            // The path is [provider] (one hop; origination path is empty).
            let path = &best.unwrap().attrs.as_path;
            prop_assert_eq!(path.decision_len(), 1);
            prop_assert_eq!(path.first(), Some(Asn(100 + u32::from(i) % 3)));
        }
        // 3. Every provider learned every other provider's prefixes through
        //    the route server (transparent: path length still 1).
        for (pi, &p) in providers.iter().enumerate() {
            for i in 0..6u8 {
                if usize::from(i) % 3 != pi {
                    prop_assert!(
                        w.router(p).loc_rib().best(prefix(i)).is_some(),
                        "provider {pi} must learn prefix {i} via the RS"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_determinism(flaps in arb_flaps(), seed in 0u64..1000) {
        let run = |seed: u64| {
            let (mut w, providers, rs) = build_world(true, seed);
            for i in 0..6u8 {
                w.schedule_originate(5 * SECOND, providers[usize::from(i) % 3], prefix(i));
            }
            for &(pi, at_s, down_s) in &flaps {
                w.schedule_flap(
                    MINUTE + u64::from(at_s) * SECOND,
                    providers[usize::from(pi % 6) % 3],
                    prefix(pi % 6),
                    u64::from(down_s) * SECOND,
                );
            }
            w.start();
            w.run_until(30 * MINUTE);
            let mon = w.take_monitor(rs).unwrap();
            (
                w.events_processed(),
                mon.updates.len(),
                mon.prefix_event_count(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn withdrawals_never_exceed_announcement_context(
        flaps in arb_flaps(),
    ) {
        // A well-behaved (all-stateful) world never produces WWDup at the
        // monitor once classifier state is warm: every withdrawal matches a
        // prior announcement on the same session.
        let (mut w, providers, rs) = build_world(false, 7);
        for i in 0..6u8 {
            w.schedule_originate(5 * SECOND, providers[usize::from(i) % 3], prefix(i));
        }
        for &(pi, at_s, down_s) in &flaps {
            w.schedule_flap(
                2 * MINUTE + u64::from(at_s) * SECOND,
                providers[usize::from(pi % 6) % 3],
                prefix(pi % 6),
                u64::from(down_s) * SECOND,
            );
        }
        w.start();
        w.run_until(30 * MINUTE);
        let mon = w.take_monitor(rs).unwrap();
        // Count withdrawals per (peer, prefix) never preceded by an
        // announcement from the same peer.
        use std::collections::HashSet;
        let mut announced: HashSet<(Asn, Prefix)> = HashSet::new();
        let mut blind = 0;
        for u in &mon.updates {
            if let iri_bgp::message::Message::Update(up) = &u.message {
                for &p in &up.withdrawn {
                    if !announced.contains(&(u.peer_asn, p)) {
                        blind += 1;
                    }
                }
                for &p in &up.nlri {
                    announced.insert((u.peer_asn, p));
                }
            }
        }
        prop_assert_eq!(blind, 0, "stateful-only worlds must not blind-withdraw");
    }
}
