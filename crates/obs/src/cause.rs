//! Causal provenance tags for BGP updates.
//!
//! The paper's §4.2 is an exercise in *attribution*: the bulk of the update
//! volume traces back to a handful of mechanisms — stateless BGP
//! implementations re-blasting state on every timer window, the unjittered
//! 30-second interval timer, CSU clock-drift link oscillation. A [`Cause`]
//! rides along with every update the simulator emits, from the router that
//! generated it through every relay to the monitor tap, so the analysis can
//! print a cause breakdown next to the WADiff/WADup/WWDup taxonomy instead
//! of inferring mechanisms from periodicity alone.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an update was emitted.
///
/// The tag names the *root* mechanism, not the proximate trigger: an update
/// that a well-behaved router relays because a CSU-afflicted circuit two
/// hops away dropped carrier still carries [`Cause::CsuDrift`].
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum Cause {
    /// No provenance recorded (the default; should not appear on UPDATEs in
    /// an instrumented run).
    #[default]
    Unknown,
    /// A scenario-scheduled local origination (new customer network).
    Origination,
    /// A scenario-scheduled local withdrawal (customer network removed).
    Withdrawal,
    /// Carrier transition on an ordinary access or peering link.
    LinkFlap,
    /// Carrier oscillation driven by a CSU clock-drift fault (§4.2).
    CsuDrift,
    /// Session FSM reset: hold-timer expiry, transport loss, or the
    /// withdrawal wave after a peer's session died.
    FsmReset,
    /// The full-table transfer when a session reaches Established.
    InitialDump,
    /// Emitted solely because a periodic timer window fired, with no
    /// triggering route change — the stateless-BGP / unjittered-30 s
    /// retransmission pathology.
    TimerInterval,
    /// Overload-induced: the emitting router (or its peer) crashed under
    /// update load.
    CpuOverload,
}

impl Cause {
    /// Number of causes (length of [`Cause::ALL`]).
    pub const COUNT: usize = 9;

    /// Every cause, in reporting order.
    pub const ALL: [Cause; Cause::COUNT] = [
        Cause::Unknown,
        Cause::Origination,
        Cause::Withdrawal,
        Cause::LinkFlap,
        Cause::CsuDrift,
        Cause::FsmReset,
        Cause::InitialDump,
        Cause::TimerInterval,
        Cause::CpuOverload,
    ];

    /// Dense index in `0..COUNT` for array-backed breakdown tables.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether a provenance was actually recorded.
    #[must_use]
    pub fn is_known(self) -> bool {
        self != Cause::Unknown
    }

    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Cause::Unknown => "Unknown",
            Cause::Origination => "Origination",
            Cause::Withdrawal => "Withdrawal",
            Cause::LinkFlap => "LinkFlap",
            Cause::CsuDrift => "CsuDrift",
            Cause::FsmReset => "FsmReset",
            Cause::InitialDump => "InitialDump",
            Cause::TimerInterval => "TimerInterval",
            Cause::CpuOverload => "CpuOverload",
        }
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unknown_and_unknown_only() {
        assert_eq!(Cause::default(), Cause::Unknown);
        for c in Cause::ALL {
            assert_eq!(c.is_known(), c != Cause::Unknown, "{c}");
        }
    }

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, c) in Cause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(Cause::ALL.len(), Cause::COUNT);
    }

    #[test]
    fn serialises_by_variant_name() {
        let json = serde_json::to_string(&Cause::TimerInterval).unwrap();
        assert!(json.contains("TimerInterval"), "{json}");
    }
}
