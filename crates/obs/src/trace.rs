//! Structured event tracer: a bounded ring buffer of typed events.
//!
//! The tracer records *mechanism* events — FSM transitions, timer fires,
//! link oscillations, overload episodes, damping hold-downs — as opposed to
//! the per-update [`Cause`](crate::Cause) tags, which ride on the messages
//! themselves. Together they reconstruct the paper's attribution story: the
//! trace shows the 30-second heartbeat, the causes show which updates it
//! emitted.
//!
//! Per the crate-level determinism contract, every event is stamped with
//! simulated milliseconds; a disabled tracer rejects events at the cost of
//! one branch.

use crate::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A session FSM changed state (names from `iri_session::fsm::State`).
    Fsm {
        /// Remote AS number of the session peer.
        peer: u32,
        /// State before the transition.
        from: &'static str,
        /// State after the transition.
        to: &'static str,
    },
    /// A router timer fired.
    TimerFired {
        /// Remote AS the timer belongs to (0 for router-wide timers).
        peer: u32,
        /// Timer name (e.g. "flush", "hold", "keepalive").
        timer: &'static str,
    },
    /// A link lost carrier.
    LinkDown {
        /// Link index in the world's link table.
        link: usize,
        /// Whether a CSU clock-drift fault drove the transition.
        csu: bool,
    },
    /// A link regained carrier.
    LinkUp {
        /// Link index in the world's link table.
        link: usize,
        /// Whether a CSU clock-drift fault drove the transition.
        csu: bool,
    },
    /// A router crashed under update load.
    CpuOverload {
        /// Updates/sec observed when the router died.
        load: u64,
    },
    /// A crashed router came back and restarted its sessions.
    RouterRecovered,
    /// Route-flap damping suppressed a prefix.
    DampingSuppressed {
        /// The suppressed prefix, rendered as text.
        prefix: String,
        /// Simulated time at which the route becomes reusable.
        reuse_at: SimTime,
    },
    /// A pipeline stage blocked on a full queue.
    QueueStall {
        /// Stage name (e.g. "ingest").
        stage: &'static str,
        /// How long the stage was blocked (ms).
        waited_ms: u64,
    },
    /// A request-scoped span opened (see [`crate::span::SpanStack`]).
    SpanOpen {
        /// Span id, unique within the owning tracer's virtual-clock domain.
        span: u64,
        /// Stage name ("request", "admit", "pin", "scan", ...).
        name: &'static str,
    },
    /// A request-scoped span closed.
    SpanClose {
        /// Span id matching the corresponding [`TraceKind::SpanOpen`].
        span: u64,
        /// Stage name, identical to the opening event's.
        name: &'static str,
        /// Measured duration in microseconds. Durations are *payload* (the
        /// quantity under study), never trace timestamps — the event itself
        /// is stamped with the virtual clock like every other.
        elapsed_us: u64,
    },
    /// An incremental detector raised a typed incident (see
    /// [`crate::incident`]).
    IncidentRaised {
        /// Incident kind label (e.g. "instability_onset").
        kind: &'static str,
        /// Estimated onset on the data's event-time axis (ms).
        onset_ms: u64,
    },
}

impl TraceKind {
    /// Short kind label for summaries and breakdown tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Fsm { .. } => "fsm",
            TraceKind::TimerFired { .. } => "timer",
            TraceKind::LinkDown { .. } => "link_down",
            TraceKind::LinkUp { .. } => "link_up",
            TraceKind::CpuOverload { .. } => "cpu_overload",
            TraceKind::RouterRecovered => "recovered",
            TraceKind::DampingSuppressed { .. } => "damping",
            TraceKind::QueueStall { .. } => "queue_stall",
            TraceKind::SpanOpen { .. } => "span_open",
            TraceKind::SpanClose { .. } => "span_close",
            TraceKind::IncidentRaised { .. } => "incident",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Fsm { peer, from, to } => write!(f, "fsm peer=AS{peer} {from}->{to}"),
            TraceKind::TimerFired { peer, timer } => write!(f, "timer {timer} peer=AS{peer}"),
            TraceKind::LinkDown { link, csu } => {
                write!(f, "link {link} down{}", if *csu { " (csu)" } else { "" })
            }
            TraceKind::LinkUp { link, csu } => {
                write!(f, "link {link} up{}", if *csu { " (csu)" } else { "" })
            }
            TraceKind::CpuOverload { load } => write!(f, "cpu overload at {load} upd/s"),
            TraceKind::RouterRecovered => f.write_str("router recovered"),
            TraceKind::DampingSuppressed { prefix, reuse_at } => {
                write!(f, "damping suppressed {prefix} until t={reuse_at}")
            }
            TraceKind::QueueStall { stage, waited_ms } => {
                write!(f, "{stage} stalled {waited_ms} ms")
            }
            TraceKind::SpanOpen { span, name } => write!(f, "span {span} open {name}"),
            TraceKind::SpanClose {
                span,
                name,
                elapsed_us,
            } => write!(f, "span {span} close {name} ({elapsed_us} us)"),
            TraceKind::IncidentRaised { kind, onset_ms } => {
                write!(f, "incident {kind} onset t={onset_ms}ms")
            }
        }
    }
}

/// One trace record: when, where, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated milliseconds (never wall clock).
    pub time: SimTime,
    /// AS number of the router the event occurred on (0 for events with no
    /// single owner, e.g. pipeline stalls).
    pub router: u32,
    /// The event.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={:>8}ms AS{:<5}] {}",
            self.time, self.router, self.kind
        )
    }
}

/// Bounded ring buffer of [`TraceEvent`]s. When full, the oldest event is
/// evicted — the newest events are always retained, and [`Tracer::dropped`]
/// counts the evictions.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// Enabled tracer retaining at most `capacity` events (capacity 0
    /// drops everything it records).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Disabled tracer: [`record`](Tracer::record) is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether recording is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event, evicting the oldest if the buffer is full.
    #[inline]
    pub fn record(&mut self, time: SimTime, router: u32, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
            if self.capacity == 0 {
                return;
            }
        }
        self.buf.push_back(TraceEvent { time, router, kind });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted (or rejected at capacity 0) so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Folds another tracer's retained events into this one, keeping the
    /// newest `capacity` events by time stamp. The merge is stable: at equal
    /// time stamps this tracer's events sort before `other`'s, so merging
    /// per-worker tracers in a fixed worker order is deterministic. `other`'s
    /// drop count carries over, and events evicted by the merge are counted
    /// here too. No-op when this tracer is disabled.
    pub fn merge(&mut self, other: &Tracer) {
        if !self.enabled {
            return;
        }
        self.dropped += other.dropped;
        let mut merged: Vec<TraceEvent> = self
            .buf
            .drain(..)
            .chain(other.buf.iter().cloned())
            .collect();
        merged.sort_by_key(|e| e.time);
        let excess = merged.len().saturating_sub(self.capacity);
        self.dropped += excess as u64;
        self.buf.extend(merged.into_iter().skip(excess));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire() -> TraceKind {
        TraceKind::TimerFired {
            peer: 0,
            timer: "flush",
        }
    }

    #[test]
    fn eviction_keeps_newest() {
        let mut tr = Tracer::new(3);
        for t in 0..10u64 {
            tr.record(t, 100, fire());
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 7);
        let times: Vec<u64> = tr.events().map(|e| e.time).collect();
        assert_eq!(times, vec![7, 8, 9], "oldest evicted, newest retained");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::disabled();
        tr.record(1, 1, TraceKind::RouterRecovered);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
        assert!(!tr.is_enabled());
    }

    #[test]
    fn zero_capacity_counts_drops() {
        let mut tr = Tracer::new(0);
        tr.record(1, 1, TraceKind::RouterRecovered);
        tr.record(2, 1, TraceKind::RouterRecovered);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 2);
    }

    #[test]
    fn display_is_stable() {
        let ev = TraceEvent {
            time: 30_000,
            router: 3847,
            kind: TraceKind::Fsm {
                peer: 237,
                from: "OpenConfirm",
                to: "Established",
            },
        };
        let s = ev.to_string();
        assert!(s.contains("t=   30000ms"), "{s}");
        assert!(s.contains("AS3847"), "{s}");
        assert!(s.contains("OpenConfirm->Established"), "{s}");
        assert_eq!(ev.kind.label(), "fsm");
    }

    #[test]
    fn merge_keeps_newest_and_is_stable() {
        let mut a = Tracer::new(4);
        let mut b = Tracer::new(4);
        for t in [1u64, 3, 5] {
            a.record(t, 1, fire());
        }
        for t in [2u64, 3, 6] {
            b.record(t, 2, fire());
        }
        a.merge(&b);
        assert_eq!(a.len(), 4, "capacity bound holds after merge");
        assert_eq!(a.dropped(), 2, "merge evictions counted");
        let got: Vec<(u64, u32)> = a.events().map(|e| (e.time, e.router)).collect();
        // Oldest two (t=1 from a, t=2 from b) evicted; at t=3 the
        // receiver's event sorts first.
        assert_eq!(got, vec![(3, 1), (3, 2), (5, 1), (6, 2)]);
    }

    #[test]
    fn merge_carries_drop_counts() {
        let mut a = Tracer::new(2);
        let mut b = Tracer::new(1);
        for t in 0..5u64 {
            b.record(t, 9, fire());
        }
        assert_eq!(b.dropped(), 4);
        a.merge(&b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.dropped(), 4, "other's drops carried over");
        let mut disabled = Tracer::disabled();
        disabled.merge(&a);
        assert!(disabled.is_empty(), "merge into disabled tracer is a no-op");
        assert_eq!(disabled.dropped(), 0);
    }

    #[test]
    fn concurrent_worker_tracers_merge_deterministically() {
        // The pipeline pattern: workers record into private tracers on
        // their own threads (no shared state), then the collector folds
        // them in worker order. The folded ring must keep the newest
        // `capacity` events with every eviction accounted, and the
        // result must not depend on thread scheduling.
        let workers = 8u32;
        let per_worker = 100u64;
        let capacity = 64usize;
        let run = || -> Tracer {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    std::thread::spawn(move || {
                        let mut tr = Tracer::new(capacity);
                        for i in 0..per_worker {
                            // Interleaved virtual times across workers.
                            tr.record(i * u64::from(workers) + u64::from(w), w, fire());
                        }
                        tr
                    })
                })
                .collect();
            let mut folded = Tracer::new(capacity);
            for h in handles {
                folded.merge(&h.join().expect("worker panicked"));
            }
            folded
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), capacity, "ring bounded after concurrent merges");
        let total = u64::from(workers) * per_worker;
        assert_eq!(
            a.dropped() + a.len() as u64,
            total,
            "every recorded event is either retained or counted dropped"
        );
        let times_a: Vec<(u64, u32)> = a.events().map(|e| (e.time, e.router)).collect();
        let times_b: Vec<(u64, u32)> = b.events().map(|e| (e.time, e.router)).collect();
        assert_eq!(times_a, times_b, "fold is schedule-independent");
        // The retained window is exactly the newest `capacity` stamps.
        assert_eq!(times_a[0].0, total - capacity as u64);
        assert_eq!(times_a.last().unwrap().0, total - 1);
        assert!(times_a.windows(2).all(|w| w[0].0 <= w[1].0), "time-sorted");
    }

    #[test]
    fn kind_labels_cover_variants() {
        let kinds = [
            TraceKind::TimerFired {
                peer: 1,
                timer: "hold",
            },
            TraceKind::LinkDown { link: 0, csu: true },
            TraceKind::LinkUp {
                link: 0,
                csu: false,
            },
            TraceKind::CpuOverload { load: 300 },
            TraceKind::DampingSuppressed {
                prefix: "10.0.0.0/8".into(),
                reuse_at: 60_000,
            },
            TraceKind::QueueStall {
                stage: "ingest",
                waited_ms: 12,
            },
            TraceKind::SpanOpen {
                span: 1,
                name: "request",
            },
            TraceKind::SpanClose {
                span: 1,
                name: "request",
                elapsed_us: 42,
            },
            TraceKind::IncidentRaised {
                kind: "novelty_alarm",
                onset_ms: 90_000,
            },
        ];
        let mut labels: Vec<&str> = kinds.iter().map(TraceKind::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len(), "labels must be distinct");
        for k in &kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
