//! Structured event tracer: a bounded ring buffer of typed events.
//!
//! The tracer records *mechanism* events — FSM transitions, timer fires,
//! link oscillations, overload episodes, damping hold-downs — as opposed to
//! the per-update [`Cause`](crate::Cause) tags, which ride on the messages
//! themselves. Together they reconstruct the paper's attribution story: the
//! trace shows the 30-second heartbeat, the causes show which updates it
//! emitted.
//!
//! Per the crate-level determinism contract, every event is stamped with
//! simulated milliseconds; a disabled tracer rejects events at the cost of
//! one branch.

use crate::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A session FSM changed state (names from `iri_session::fsm::State`).
    Fsm {
        /// Remote AS number of the session peer.
        peer: u32,
        /// State before the transition.
        from: &'static str,
        /// State after the transition.
        to: &'static str,
    },
    /// A router timer fired.
    TimerFired {
        /// Remote AS the timer belongs to (0 for router-wide timers).
        peer: u32,
        /// Timer name (e.g. "flush", "hold", "keepalive").
        timer: &'static str,
    },
    /// A link lost carrier.
    LinkDown {
        /// Link index in the world's link table.
        link: usize,
        /// Whether a CSU clock-drift fault drove the transition.
        csu: bool,
    },
    /// A link regained carrier.
    LinkUp {
        /// Link index in the world's link table.
        link: usize,
        /// Whether a CSU clock-drift fault drove the transition.
        csu: bool,
    },
    /// A router crashed under update load.
    CpuOverload {
        /// Updates/sec observed when the router died.
        load: u64,
    },
    /// A crashed router came back and restarted its sessions.
    RouterRecovered,
    /// Route-flap damping suppressed a prefix.
    DampingSuppressed {
        /// The suppressed prefix, rendered as text.
        prefix: String,
        /// Simulated time at which the route becomes reusable.
        reuse_at: SimTime,
    },
    /// A pipeline stage blocked on a full queue.
    QueueStall {
        /// Stage name (e.g. "ingest").
        stage: &'static str,
        /// How long the stage was blocked (ms).
        waited_ms: u64,
    },
}

impl TraceKind {
    /// Short kind label for summaries and breakdown tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Fsm { .. } => "fsm",
            TraceKind::TimerFired { .. } => "timer",
            TraceKind::LinkDown { .. } => "link_down",
            TraceKind::LinkUp { .. } => "link_up",
            TraceKind::CpuOverload { .. } => "cpu_overload",
            TraceKind::RouterRecovered => "recovered",
            TraceKind::DampingSuppressed { .. } => "damping",
            TraceKind::QueueStall { .. } => "queue_stall",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Fsm { peer, from, to } => write!(f, "fsm peer=AS{peer} {from}->{to}"),
            TraceKind::TimerFired { peer, timer } => write!(f, "timer {timer} peer=AS{peer}"),
            TraceKind::LinkDown { link, csu } => {
                write!(f, "link {link} down{}", if *csu { " (csu)" } else { "" })
            }
            TraceKind::LinkUp { link, csu } => {
                write!(f, "link {link} up{}", if *csu { " (csu)" } else { "" })
            }
            TraceKind::CpuOverload { load } => write!(f, "cpu overload at {load} upd/s"),
            TraceKind::RouterRecovered => f.write_str("router recovered"),
            TraceKind::DampingSuppressed { prefix, reuse_at } => {
                write!(f, "damping suppressed {prefix} until t={reuse_at}")
            }
            TraceKind::QueueStall { stage, waited_ms } => {
                write!(f, "{stage} stalled {waited_ms} ms")
            }
        }
    }
}

/// One trace record: when, where, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated milliseconds (never wall clock).
    pub time: SimTime,
    /// AS number of the router the event occurred on (0 for events with no
    /// single owner, e.g. pipeline stalls).
    pub router: u32,
    /// The event.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={:>8}ms AS{:<5}] {}",
            self.time, self.router, self.kind
        )
    }
}

/// Bounded ring buffer of [`TraceEvent`]s. When full, the oldest event is
/// evicted — the newest events are always retained, and [`Tracer::dropped`]
/// counts the evictions.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// Enabled tracer retaining at most `capacity` events (capacity 0
    /// drops everything it records).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Disabled tracer: [`record`](Tracer::record) is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether recording is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event, evicting the oldest if the buffer is full.
    #[inline]
    pub fn record(&mut self, time: SimTime, router: u32, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
            if self.capacity == 0 {
                return;
            }
        }
        self.buf.push_back(TraceEvent { time, router, kind });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted (or rejected at capacity 0) so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire() -> TraceKind {
        TraceKind::TimerFired {
            peer: 0,
            timer: "flush",
        }
    }

    #[test]
    fn eviction_keeps_newest() {
        let mut tr = Tracer::new(3);
        for t in 0..10u64 {
            tr.record(t, 100, fire());
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 7);
        let times: Vec<u64> = tr.events().map(|e| e.time).collect();
        assert_eq!(times, vec![7, 8, 9], "oldest evicted, newest retained");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::disabled();
        tr.record(1, 1, TraceKind::RouterRecovered);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
        assert!(!tr.is_enabled());
    }

    #[test]
    fn zero_capacity_counts_drops() {
        let mut tr = Tracer::new(0);
        tr.record(1, 1, TraceKind::RouterRecovered);
        tr.record(2, 1, TraceKind::RouterRecovered);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 2);
    }

    #[test]
    fn display_is_stable() {
        let ev = TraceEvent {
            time: 30_000,
            router: 3847,
            kind: TraceKind::Fsm {
                peer: 237,
                from: "OpenConfirm",
                to: "Established",
            },
        };
        let s = ev.to_string();
        assert!(s.contains("t=   30000ms"), "{s}");
        assert!(s.contains("AS3847"), "{s}");
        assert!(s.contains("OpenConfirm->Established"), "{s}");
        assert_eq!(ev.kind.label(), "fsm");
    }

    #[test]
    fn kind_labels_cover_variants() {
        let kinds = [
            TraceKind::TimerFired {
                peer: 1,
                timer: "hold",
            },
            TraceKind::LinkDown { link: 0, csu: true },
            TraceKind::LinkUp {
                link: 0,
                csu: false,
            },
            TraceKind::CpuOverload { load: 300 },
            TraceKind::DampingSuppressed {
                prefix: "10.0.0.0/8".into(),
                reuse_at: 60_000,
            },
            TraceKind::QueueStall {
                stage: "ingest",
                waited_ms: 12,
            },
        ];
        let mut labels: Vec<&str> = kinds.iter().map(TraceKind::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len(), "labels must be distinct");
        for k in &kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
