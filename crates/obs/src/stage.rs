//! Per-stage throughput counters shared by pipeline telemetry.
//!
//! These used to live in `iri_pipeline::telemetry`; they moved here so the
//! simulator, pipeline and bench binaries report stage activity in the same
//! shape. `iri_pipeline::telemetry` re-exports them, so existing callers
//! are unaffected.

use serde::Serialize;

/// Counters for a pipeline stage (e.g. ingest: read + decode + shard +
/// enqueue).
#[derive(Debug, Clone, Default, Serialize)]
pub struct StageMetrics {
    /// Records (events or items) pushed through the stage.
    pub records: u64,
    /// Batches emitted downstream.
    pub batches: u64,
    /// Total time spent blocked on a full worker queue (ms).
    pub stall_ms: u64,
    /// Wall time the stage was active (ms).
    pub busy_ms: u64,
}

impl StageMetrics {
    /// Records per second over the stage's active time.
    ///
    /// A stage that finished inside the clock's millisecond resolution is
    /// rated over a 1 ms floor rather than reading as idle — `busy_ms == 0`
    /// with `records > 0` means "faster than we can measure", not "no
    /// throughput".
    #[must_use]
    pub fn records_per_sec(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.records as f64 * 1000.0 / self.busy_ms.max(1) as f64
        }
    }
}

/// Counters for one worker (shard).
#[derive(Debug, Clone, Serialize)]
pub struct WorkerMetrics {
    /// Worker index (also the shard index).
    pub worker: usize,
    /// Events classified.
    pub events: u64,
    /// Batches consumed.
    pub batches: u64,
    /// Time spent classifying, excluding channel waits (ms).
    pub busy_ms: u64,
}

impl WorkerMetrics {
    /// Fresh zeroed counters for worker `worker`.
    #[must_use]
    pub fn new(worker: usize) -> Self {
        WorkerMetrics {
            worker,
            events: 0,
            batches: 0,
            busy_ms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_millisecond_stage_is_not_idle() {
        // Regression: busy_ms == 0 with records > 0 used to report 0.0,
        // making any stage faster than the clock resolution look dead.
        let m = StageMetrics {
            records: 500,
            batches: 1,
            stall_ms: 0,
            busy_ms: 0,
        };
        assert!((m.records_per_sec() - 500_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_records_is_zero_rate() {
        let m = StageMetrics::default();
        assert_eq!(m.records_per_sec(), 0.0);
    }

    #[test]
    fn normal_rate_unchanged() {
        let m = StageMetrics {
            records: 1500,
            batches: 20,
            stall_ms: 3,
            busy_ms: 500,
        };
        assert!((m.records_per_sec() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn worker_metrics_start_zeroed() {
        let w = WorkerMetrics::new(3);
        assert_eq!(w.worker, 3);
        assert_eq!(w.events, 0);
        assert_eq!(w.batches, 0);
        assert_eq!(w.busy_ms, 0);
    }
}
