//! # iri-obs — deterministic observability for the simulator and pipeline
//!
//! The paper's core move is instrumentation: tap the route servers, log
//! everything, then *attribute* the pathological update volume to specific
//! root causes (stateless BGP, the unjittered 30 s timer, CSU clock drift).
//! This crate is the reproduction's equivalent of that measurement
//! apparatus, shared by `iri-netsim` and `iri-pipeline`:
//!
//! - [`registry`] — named counters, gauges and log-linear histograms with
//!   near-zero overhead when disabled, serialisable to JSON;
//! - [`trace`] — a bounded ring buffer of typed [`TraceEvent`]s stamped
//!   with simulated time (FSM transitions, timer fires, link oscillations,
//!   CPU-overload episodes, damping hold-downs, queue stalls);
//! - [`cause`] — the [`Cause`] provenance tag threaded from
//!   `netsim::router` through `Monitor` to the MRT boundary, so every
//!   logged BGP update can be attributed to the mechanism that emitted it;
//! - [`stage`] — the shared per-stage throughput counters the analysis
//!   pipeline's telemetry is built on;
//! - [`span`] — strictly nested request spans over the tracer plus the
//!   per-request [`PlanTrace`] that rides on every serve reply;
//! - [`incident`] — typed incidents and the incremental detectors
//!   (change-point, periodicity, novelty) behind `tracescope watch`.
//!
//! ## Determinism contract
//!
//! Trace events are stamped with **simulated milliseconds** ([`SimTime`]),
//! never wall-clock time: the same scenario with the same seed produces the
//! byte-identical trace. Registry *values* fed from the simulator follow the
//! same rule; only pipeline telemetry (worker busy time, queue stalls)
//! measures real elapsed time, because there the wall clock *is* the
//! quantity under study.

#![warn(missing_docs)]

pub mod cause;
pub mod incident;
pub mod registry;
pub mod span;
pub mod stage;
pub mod trace;

pub use cause::Cause;
pub use incident::{
    ChangePointConfig, ChangePointDetector, Incident, IncidentKind, NoveltyConfig, NoveltyDetector,
    PeriodicityConfig, PeriodicityDetector,
};
pub use registry::{CounterId, GaugeId, Histogram, HistogramId, Registry, RegistrySnapshot};
pub use span::{PlanMeters, PlanTrace, SpanId, SpanStack};
pub use stage::{StageMetrics, WorkerMetrics};
pub use trace::{TraceEvent, TraceKind, Tracer};

/// Milliseconds of simulated time (mirrors `iri_netsim::SimTime` without a
/// dependency on the simulator).
pub type SimTime = u64;
