//! Request-scoped spans and the per-request plan trace.
//!
//! A **span** is a named, strictly nested interval recorded into the
//! bounded [`Tracer`]: `SpanOpen`/`SpanClose` event pairs stamped with a
//! **virtual clock** (a request sequence number in the query service,
//! simulated milliseconds elsewhere — never the wall clock, per the
//! crate-level determinism contract). Measured wall-clock durations ride on
//! the close event as *payload*, because there the elapsed time is the
//! quantity under study.
//!
//! A [`PlanTrace`] is the flattened summary of one request's spans — where
//! the time went (admission gate, snapshot pin, scan) and what the scan
//! did (segment fates, decoded bytes). It travels on every serve reply and
//! is pooled into the mergeable [`Registry`] via [`PlanMeters`].

use crate::registry::{CounterId, HistogramId, Registry};
use crate::trace::{TraceKind, Tracer};
use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to an open span, returned by [`SpanStack::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw span id (unique within the owning stack).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Strictly nested (LIFO) span bookkeeping over a [`Tracer`].
///
/// `open` records a [`TraceKind::SpanOpen`] and pushes the span; `close`
/// pops it and records the matching [`TraceKind::SpanClose`]. Closing any
/// span other than the innermost open one is a programming error and
/// panics — nesting violations must not be silently reordered, or the
/// trace would lie about where time went.
#[derive(Debug, Default)]
pub struct SpanStack {
    next_id: u64,
    open: Vec<(u64, &'static str)>,
}

impl SpanStack {
    /// Empty stack; span ids start at 1.
    #[must_use]
    pub fn new() -> Self {
        SpanStack::default()
    }

    /// Number of currently open spans.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Opens a span named `name`, recording into `tracer` at virtual time
    /// `now` (owner `router` follows the tracer's usual owner field).
    pub fn open(
        &mut self,
        tracer: &mut Tracer,
        now: SimTime,
        router: u32,
        name: &'static str,
    ) -> SpanId {
        self.next_id += 1;
        let id = self.next_id;
        self.open.push((id, name));
        tracer.record(now, router, TraceKind::SpanOpen { span: id, name });
        SpanId(id)
    }

    /// Closes the innermost open span, which must be `id`; `elapsed_us` is
    /// the measured duration payload.
    ///
    /// # Panics
    /// Panics if `id` is not the innermost open span (nesting violation).
    pub fn close(
        &mut self,
        tracer: &mut Tracer,
        now: SimTime,
        router: u32,
        id: SpanId,
        elapsed_us: u64,
    ) {
        let top = self.open.pop();
        match top {
            Some((open_id, name)) if open_id == id.0 => {
                tracer.record(
                    now,
                    router,
                    TraceKind::SpanClose {
                        span: id.0,
                        name,
                        elapsed_us,
                    },
                );
            }
            Some((open_id, name)) => {
                panic!("span nesting violation: close({}) while innermost open span is {open_id} ({name})", id.0)
            }
            None => panic!("span nesting violation: close({}) with no open span", id.0),
        }
    }
}

/// Flattened per-request plan trace: where one query's time went and what
/// its scan did. Rides on every serve reply (`Reply.plan`); cached replies
/// carry the plan of the scan that populated the cache entry, with
/// `cache_hit` flipped on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanTrace {
    /// Wall microseconds spent queued at the admission gate.
    #[serde(default)]
    pub admission_wait_us: u64,
    /// Wall microseconds spent pinning the snapshot.
    #[serde(default)]
    pub pin_us: u64,
    /// Manifest generation the query ran against.
    #[serde(default)]
    pub generation: u64,
    /// Whether the result came from the generation-keyed result cache.
    #[serde(default)]
    pub cache_hit: bool,
    /// Wall microseconds executing the query (cache lookup + scan).
    #[serde(default)]
    pub exec_us: u64,
    /// Wall microseconds for the whole request (admission through reply).
    #[serde(default)]
    pub total_us: u64,
    /// Segments eliminated by zone maps / blooms without being read.
    #[serde(default)]
    pub segments_pruned: u64,
    /// Segments answered from zone-map metadata alone.
    #[serde(default)]
    pub segments_zone_answered: u64,
    /// Segments fully decoded and scanned.
    #[serde(default)]
    pub segments_scanned: u64,
    /// Wall microseconds inside the segment scan loop.
    #[serde(default)]
    pub scan_us: u64,
    /// Bytes decoded from scanned segments.
    #[serde(default)]
    pub decode_bytes: u64,
    /// Rows materialised by the scan.
    #[serde(default)]
    pub rows_scanned: u64,
    /// Zone-map pages the scan considered (0 on pre-page traces).
    #[serde(default)]
    pub pages_total: u64,
    /// Pages eliminated by page-level zone maps / blooms.
    #[serde(default)]
    pub pages_pruned: u64,
    /// Pages fully decoded and scanned.
    #[serde(default)]
    pub pages_scanned: u64,
}

impl fmt::Display for PlanTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={}us admit={}us pin={}us exec={}us scan={}us gen={} cache={} segs p/z/s={}/{}/{} bytes={} rows={}",
            self.total_us,
            self.admission_wait_us,
            self.pin_us,
            self.exec_us,
            self.scan_us,
            self.generation,
            if self.cache_hit { "hit" } else { "miss" },
            self.segments_pruned,
            self.segments_zone_answered,
            self.segments_scanned,
            self.decode_bytes,
            self.rows_scanned,
        )?;
        if self.pages_total > 0 {
            write!(
                f,
                " pages p/s={}/{} of {}",
                self.pages_pruned, self.pages_scanned, self.pages_total
            )?;
        }
        Ok(())
    }
}

/// Pre-registered registry ids for aggregating [`PlanTrace`]s.
///
/// One `observe` per request keeps the hot path at a handful of array
/// writes; the underlying [`Registry`] merges across workers by name.
#[derive(Debug, Clone, Copy)]
pub struct PlanMeters {
    admission_wait_us: HistogramId,
    pin_us: HistogramId,
    exec_us: HistogramId,
    scan_us: HistogramId,
    total_us: HistogramId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    decode_bytes: CounterId,
    segments_pruned: CounterId,
    segments_zone_answered: CounterId,
    segments_scanned: CounterId,
    rows_scanned: CounterId,
}

impl PlanMeters {
    /// Registers the plan metrics under `prefix` (e.g. `"serve.plan"`).
    pub fn register(reg: &mut Registry, prefix: &str) -> Self {
        PlanMeters {
            admission_wait_us: reg.histogram(&format!("{prefix}.admission_wait_us")),
            pin_us: reg.histogram(&format!("{prefix}.pin_us")),
            exec_us: reg.histogram(&format!("{prefix}.exec_us")),
            scan_us: reg.histogram(&format!("{prefix}.scan_us")),
            total_us: reg.histogram(&format!("{prefix}.total_us")),
            cache_hits: reg.counter(&format!("{prefix}.cache_hits")),
            cache_misses: reg.counter(&format!("{prefix}.cache_misses")),
            decode_bytes: reg.counter(&format!("{prefix}.decode_bytes")),
            segments_pruned: reg.counter(&format!("{prefix}.segments_pruned")),
            segments_zone_answered: reg.counter(&format!("{prefix}.segments_zone_answered")),
            segments_scanned: reg.counter(&format!("{prefix}.segments_scanned")),
            rows_scanned: reg.counter(&format!("{prefix}.rows_scanned")),
        }
    }

    /// Pools one request's plan trace into `reg`.
    pub fn observe(&self, reg: &mut Registry, plan: &PlanTrace) {
        reg.observe(self.admission_wait_us, plan.admission_wait_us);
        reg.observe(self.pin_us, plan.pin_us);
        reg.observe(self.exec_us, plan.exec_us);
        reg.observe(self.total_us, plan.total_us);
        if plan.cache_hit {
            reg.inc(self.cache_hits);
        } else {
            reg.inc(self.cache_misses);
            // Scan-side facts only exist on the miss path; a hit replays
            // the populating scan's numbers and must not double-count.
            reg.observe(self.scan_us, plan.scan_us);
            reg.add(self.decode_bytes, plan.decode_bytes);
            reg.add(self.segments_pruned, plan.segments_pruned);
            reg.add(self.segments_zone_answered, plan.segments_zone_answered);
            reg.add(self.segments_scanned, plan.segments_scanned);
            reg.add(self.rows_scanned, plan.rows_scanned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_in_lifo_order() {
        let mut tracer = Tracer::new(16);
        let mut spans = SpanStack::new();
        // Virtual clock: a request sequence number, deliberately constant
        // across the inner spans to prove ordering comes from the stack,
        // not the clock.
        let root = spans.open(&mut tracer, 7, 0, "request");
        let admit = spans.open(&mut tracer, 7, 0, "admit");
        assert_eq!(spans.depth(), 2);
        spans.close(&mut tracer, 7, 0, admit, 120);
        let scan = spans.open(&mut tracer, 7, 0, "scan");
        spans.close(&mut tracer, 7, 0, scan, 450);
        spans.close(&mut tracer, 7, 0, root, 900);
        assert_eq!(spans.depth(), 0);

        let kinds: Vec<String> = tracer
            .events()
            .map(|e| {
                assert_eq!(e.time, 7, "virtual clock only, never wall clock");
                match &e.kind {
                    TraceKind::SpanOpen { span, name } => format!("open:{name}:{span}"),
                    TraceKind::SpanClose {
                        span,
                        name,
                        elapsed_us,
                    } => format!("close:{name}:{span}:{elapsed_us}"),
                    other => panic!("unexpected event {other:?}"),
                }
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "open:request:1",
                "open:admit:2",
                "close:admit:2:120",
                "open:scan:3",
                "close:scan:3:450",
                "close:request:1:900",
            ]
        );
    }

    #[test]
    #[should_panic(expected = "span nesting violation")]
    fn out_of_order_close_panics() {
        let mut tracer = Tracer::new(16);
        let mut spans = SpanStack::new();
        let outer = spans.open(&mut tracer, 1, 0, "outer");
        let _inner = spans.open(&mut tracer, 1, 0, "inner");
        spans.close(&mut tracer, 1, 0, outer, 10);
    }

    #[test]
    fn plan_trace_roundtrips_and_renders() {
        let plan = PlanTrace {
            admission_wait_us: 10,
            pin_us: 3,
            generation: 4,
            cache_hit: false,
            exec_us: 200,
            total_us: 215,
            segments_pruned: 5,
            segments_zone_answered: 2,
            segments_scanned: 1,
            scan_us: 180,
            decode_bytes: 4096,
            rows_scanned: 37,
            pages_total: 12,
            pages_pruned: 9,
            pages_scanned: 3,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: PlanTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let empty: PlanTrace = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, PlanTrace::default());
        let s = plan.to_string();
        assert!(s.contains("cache=miss"), "{s}");
        assert!(s.contains("p/z/s=5/2/1"), "{s}");
        assert!(s.contains("pages p/s=9/3 of 12"), "{s}");
        // Pre-page traces (all page fields zero) render the old line.
        assert!(
            !PlanTrace::default().to_string().contains("pages"),
            "compat"
        );
    }

    #[test]
    fn plan_meters_pool_without_double_counting_hits() {
        let mut reg = Registry::new();
        let meters = PlanMeters::register(&mut reg, "serve.plan");
        let mut plan = PlanTrace {
            total_us: 100,
            exec_us: 80,
            scan_us: 60,
            decode_bytes: 1000,
            segments_scanned: 2,
            rows_scanned: 10,
            ..PlanTrace::default()
        };
        meters.observe(&mut reg, &plan);
        plan.cache_hit = true;
        meters.observe(&mut reg, &plan);
        assert_eq!(reg.counter_value("serve.plan.cache_hits"), Some(1));
        assert_eq!(reg.counter_value("serve.plan.cache_misses"), Some(1));
        assert_eq!(
            reg.counter_value("serve.plan.decode_bytes"),
            Some(1000),
            "hit must not re-add the populating scan's bytes"
        );
        assert_eq!(
            reg.histogram_ref("serve.plan.total_us").unwrap().count(),
            2,
            "latency observed on both hit and miss"
        );
        assert_eq!(reg.histogram_ref("serve.plan.scan_us").unwrap().count(), 1);
    }
}
