//! Typed incidents and the incremental detectors that raise them.
//!
//! The paper's instability analysis is batch: collect months of updates,
//! then compute spectra and attribution offline. A live store needs the
//! online counterpart — estimators fed bin-by-bin on the **event-time
//! axis** that raise typed incidents as the data streams in:
//!
//! - [`ChangePointDetector`] — sliding-window classification-rate
//!   change-points ([`IncidentKind::InstabilityOnset`]), the streaming
//!   analogue of `iri-core`'s batch median-baseline incident carver;
//! - [`PeriodicityDetector`] — windowed autocorrelation peak hunting for
//!   the unjittered-timer heartbeat ([`IncidentKind::PeriodicSignal`]);
//! - [`NoveltyDetector`] — per-key EWMA novelty alarms in the spirit of
//!   worm-outbreak detectors ([`IncidentKind::NoveltyAlarm`]): a key whose
//!   history is empty suddenly bursting is an alarm regardless of volume
//!   elsewhere.
//!
//! Every detector is deterministic in its inputs: the same bin sequence
//! produces the same incidents, regardless of how the caller batches its
//! polls. Times are event-time milliseconds, never the wall clock.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// What kind of incident a detector raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// The aggregate classification rate stepped up: instability onset.
    InstabilityOnset,
    /// A strong periodic component appeared in the update rate.
    PeriodicSignal,
    /// A historically absent key (class, cause, peer…) burst into volume.
    NoveltyAlarm,
}

impl IncidentKind {
    /// Short snake_case label for traces and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IncidentKind::InstabilityOnset => "instability_onset",
            IncidentKind::PeriodicSignal => "periodic_signal",
            IncidentKind::NoveltyAlarm => "novelty_alarm",
        }
    }
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One raised incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// What kind of incident.
    pub kind: IncidentKind,
    /// Estimated onset on the event-time axis (ms).
    pub onset_ms: u64,
    /// Event-time at which the detector raised the alarm (ms).
    pub detected_ms: u64,
    /// Attributed cause label (dominant [`crate::Cause`] over the onset
    /// window; empty when the detector's caller has not attributed yet).
    #[serde(default)]
    pub cause: String,
    /// Detector-specific severity score (ratio, z-score, or ACF peak).
    pub score: f64,
    /// Human-readable one-line detail.
    #[serde(default)]
    pub detail: String,
}

impl Incident {
    /// Detection lag: how long after onset the alarm fired (ms).
    #[must_use]
    pub fn lag_ms(&self) -> u64 {
        self.detected_ms.saturating_sub(self.onset_ms)
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} onset=t+{}ms detected=t+{}ms lag={}ms score={:.2}",
            self.kind,
            self.onset_ms,
            self.detected_ms,
            self.lag_ms(),
            self.score
        )?;
        if !self.cause.is_empty() {
            write!(f, " cause={}", self.cause)?;
        }
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Configuration for [`ChangePointDetector`].
#[derive(Debug, Clone, Copy)]
pub struct ChangePointConfig {
    /// Event-time width of one bin (ms).
    pub bin_ms: u64,
    /// Trailing baseline window length in bins.
    pub window: usize,
    /// Alarm when the bin rate exceeds `ratio` × baseline mean…
    pub ratio: f64,
    /// …and the excursion exceeds `z` baseline standard deviations.
    pub z: f64,
    /// Baseline means below this floor never alarm (quiet-stream guard).
    pub min_rate: f64,
}

impl Default for ChangePointConfig {
    fn default() -> Self {
        ChangePointConfig {
            bin_ms: 1_000,
            window: 30,
            ratio: 3.0,
            z: 4.0,
            min_rate: 1.0,
        }
    }
}

/// Sliding-window change-point detector over a per-bin rate series.
///
/// Keeps a trailing window of bin values; a bin that exceeds both the
/// ratio and z-score thresholds against the window's mean/stddev raises
/// one [`IncidentKind::InstabilityOnset`]. While alarmed, the baseline is
/// frozen (elevated bins must not poison it) and further alarms are
/// suppressed until the rate re-arms below the midpoint between baseline
/// and the alarm threshold.
#[derive(Debug)]
pub struct ChangePointDetector {
    cfg: ChangePointConfig,
    window: VecDeque<f64>,
    armed: bool,
    rearm_below: f64,
}

impl ChangePointDetector {
    /// New detector with `cfg`.
    #[must_use]
    pub fn new(cfg: ChangePointConfig) -> Self {
        ChangePointDetector {
            cfg,
            window: VecDeque::with_capacity(cfg.window + 1),
            armed: true,
            rearm_below: 0.0,
        }
    }

    fn baseline(&self) -> (f64, f64) {
        let n = self.window.len() as f64;
        if n == 0.0 {
            return (0.0, 0.0);
        }
        let mean = self.window.iter().sum::<f64>() / n;
        let var = self
            .window
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    /// Feeds the completed bin starting at `bin_start_ms` with `value`
    /// events. Returns an incident when this bin crosses the thresholds.
    pub fn push(&mut self, bin_start_ms: u64, value: f64) -> Option<Incident> {
        let warm = self.window.len() >= self.cfg.window;
        let (mean, std) = self.baseline();
        if !self.armed {
            if value <= self.rearm_below {
                self.armed = true;
            } else {
                // Alarmed episode continues: freeze the baseline.
                return None;
            }
        }
        let mut fired = None;
        if warm && self.armed {
            let floor = mean.max(self.cfg.min_rate);
            let threshold = (floor * self.cfg.ratio).max(floor + self.cfg.z * std);
            if value >= threshold {
                let score = if floor > 0.0 { value / floor } else { value };
                self.armed = false;
                self.rearm_below = (floor + threshold) / 2.0;
                fired = Some(Incident {
                    kind: IncidentKind::InstabilityOnset,
                    onset_ms: bin_start_ms,
                    detected_ms: bin_start_ms + self.cfg.bin_ms,
                    cause: String::new(),
                    score,
                    detail: format!(
                        "rate {value:.1}/bin vs baseline {mean:.1} (threshold {threshold:.1})"
                    ),
                });
            }
        }
        if fired.is_none() {
            self.window.push_back(value);
            if self.window.len() > self.cfg.window {
                self.window.pop_front();
            }
        }
        fired
    }
}

/// Configuration for [`PeriodicityDetector`].
#[derive(Debug, Clone, Copy)]
pub struct PeriodicityConfig {
    /// Event-time width of one bin (ms).
    pub bin_ms: u64,
    /// Autocorrelation window length in bins.
    pub window: usize,
    /// Candidate period range in bins (inclusive).
    pub min_lag: usize,
    /// See `min_lag`.
    pub max_lag: usize,
    /// ACF peak required to alarm.
    pub threshold: f64,
}

impl Default for PeriodicityConfig {
    fn default() -> Self {
        PeriodicityConfig {
            bin_ms: 1_000,
            window: 120,
            min_lag: 5,
            max_lag: 60,
            threshold: 0.5,
        }
    }
}

/// Windowed-autocorrelation periodicity detector.
///
/// Once the window is full, every new bin recomputes the normalized
/// autocorrelation of the **first-differenced** window over the candidate
/// lag range (differencing keeps level shifts from masquerading as
/// periodicity); a peak at or above the threshold raises one
/// [`IncidentKind::PeriodicSignal`] whose detail names the period.
/// Re-arms when the peak decays below half the threshold.
#[derive(Debug)]
pub struct PeriodicityDetector {
    cfg: PeriodicityConfig,
    window: VecDeque<f64>,
    armed: bool,
}

impl PeriodicityDetector {
    /// New detector with `cfg`.
    #[must_use]
    pub fn new(cfg: PeriodicityConfig) -> Self {
        PeriodicityDetector {
            cfg,
            window: VecDeque::with_capacity(cfg.window + 1),
            armed: true,
        }
    }

    fn acf_peak(&self) -> Option<(usize, f64)> {
        // First-difference the window before correlating: a level shift
        // (instability onset) has high *raw* autocorrelation at every
        // lag, but its difference is a single spike; a genuine periodic
        // component survives differencing with its period intact.
        let x: Vec<f64> = self
            .window
            .iter()
            .zip(self.window.iter().skip(1))
            .map(|(a, b)| b - a)
            .collect();
        let n = x.len();
        if n < 2 {
            return None;
        }
        let mean = x.iter().sum::<f64>() / n as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>();
        if var <= f64::EPSILON {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for lag in self.cfg.min_lag..=self.cfg.max_lag.min(n - 1) {
            let mut cov = 0.0;
            for i in lag..n {
                cov += (x[i] - mean) * (x[i - lag] - mean);
            }
            let r = cov / var;
            if best.is_none_or(|(_, b)| r > b) {
                best = Some((lag, r));
            }
        }
        best
    }

    /// Feeds the completed bin starting at `bin_start_ms` with `value`
    /// events. Returns an incident when the ACF peak crosses the threshold.
    pub fn push(&mut self, bin_start_ms: u64, value: f64) -> Option<Incident> {
        self.window.push_back(value);
        if self.window.len() > self.cfg.window {
            self.window.pop_front();
        }
        if self.window.len() < self.cfg.window {
            return None;
        }
        let (lag, peak) = self.acf_peak()?;
        if !self.armed {
            if peak < self.cfg.threshold / 2.0 {
                self.armed = true;
            }
            return None;
        }
        if peak >= self.cfg.threshold {
            self.armed = false;
            let span_ms = self.cfg.bin_ms * self.window.len() as u64;
            Some(Incident {
                kind: IncidentKind::PeriodicSignal,
                onset_ms: bin_start_ms.saturating_sub(span_ms - self.cfg.bin_ms),
                detected_ms: bin_start_ms + self.cfg.bin_ms,
                cause: String::new(),
                score: peak,
                detail: format!(
                    "acf peak {peak:.2} at period {} ms",
                    lag as u64 * self.cfg.bin_ms
                ),
            })
        } else {
            None
        }
    }
}

/// Configuration for [`NoveltyDetector`].
#[derive(Debug, Clone, Copy)]
pub struct NoveltyConfig {
    /// Event-time width of one bin (ms).
    pub bin_ms: u64,
    /// Bins to observe before any alarm may fire.
    pub warmup_bins: usize,
    /// EWMA smoothing factor for per-key per-bin counts.
    pub alpha: f64,
    /// A key is "historically absent" while its EWMA is below this floor.
    pub floor: f64,
    /// Burst size (events in one bin) required to alarm on an absent key.
    pub min_count: u64,
}

impl Default for NoveltyConfig {
    fn default() -> Self {
        NoveltyConfig {
            bin_ms: 1_000,
            warmup_bins: 10,
            alpha: 0.2,
            floor: 0.05,
            min_count: 10,
        }
    }
}

/// Per-key EWMA novelty detector.
///
/// Tracks an EWMA of each key's per-bin count; after warmup, a key whose
/// EWMA says "historically absent" bursting past `min_count` in a single
/// bin raises one [`IncidentKind::NoveltyAlarm`]. Each key alarms at most
/// once — once seen, it is no longer novel.
#[derive(Debug)]
pub struct NoveltyDetector {
    cfg: NoveltyConfig,
    bins_seen: usize,
    ewma: BTreeMap<u32, f64>,
    alarmed: BTreeMap<u32, bool>,
}

impl NoveltyDetector {
    /// New detector with `cfg`.
    #[must_use]
    pub fn new(cfg: NoveltyConfig) -> Self {
        NoveltyDetector {
            cfg,
            bins_seen: 0,
            ewma: BTreeMap::new(),
            alarmed: BTreeMap::new(),
        }
    }

    /// Feeds one completed bin: `counts` maps key → events in the bin
    /// (absent keys count zero). Returns the alarms raised by this bin in
    /// ascending key order.
    pub fn push_bin(&mut self, bin_start_ms: u64, counts: &BTreeMap<u32, u64>) -> Vec<Incident> {
        let mut fired = Vec::new();
        let warm = self.bins_seen >= self.cfg.warmup_bins;
        for (&key, &count) in counts {
            let prior = self.ewma.get(&key).copied().unwrap_or(0.0);
            if warm
                && prior < self.cfg.floor
                && count >= self.cfg.min_count
                && !self.alarmed.get(&key).copied().unwrap_or(false)
            {
                self.alarmed.insert(key, true);
                fired.push(Incident {
                    kind: IncidentKind::NoveltyAlarm,
                    onset_ms: bin_start_ms,
                    detected_ms: bin_start_ms + self.cfg.bin_ms,
                    cause: String::new(),
                    score: count as f64 / self.cfg.floor.max(prior),
                    detail: format!("novel key {key}: {count} events after ewma {prior:.3}"),
                });
            }
        }
        // Decay every tracked key, then fold in this bin's counts.
        for v in self.ewma.values_mut() {
            *v *= 1.0 - self.cfg.alpha;
        }
        for (&key, &count) in counts {
            if count > 0 {
                let e = self.ewma.entry(key).or_insert(0.0);
                *e += self.cfg.alpha * count as f64;
            }
        }
        self.bins_seen += 1;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_point_fires_once_per_episode() {
        let cfg = ChangePointConfig {
            bin_ms: 1_000,
            window: 10,
            ratio: 3.0,
            z: 4.0,
            min_rate: 1.0,
        };
        let mut det = ChangePointDetector::new(cfg);
        let mut incidents = Vec::new();
        for bin in 0..60u64 {
            let value = if (30..45).contains(&bin) { 100.0 } else { 10.0 };
            if let Some(i) = det.push(bin * 1_000, value) {
                incidents.push(i);
            }
        }
        assert_eq!(incidents.len(), 1, "{incidents:?}");
        let i = &incidents[0];
        assert_eq!(i.kind, IncidentKind::InstabilityOnset);
        assert_eq!(i.onset_ms, 30_000, "onset at the first elevated bin");
        assert_eq!(i.lag_ms(), 1_000, "detected at bin close");
        assert!(i.score > 5.0);
    }

    #[test]
    fn change_point_realarms_for_second_episode() {
        let mut det = ChangePointDetector::new(ChangePointConfig {
            window: 5,
            ..ChangePointConfig::default()
        });
        let mut onsets = Vec::new();
        for bin in 0..60u64 {
            let value = if (10..14).contains(&bin) || (40..44).contains(&bin) {
                80.0
            } else {
                8.0
            };
            if let Some(i) = det.push(bin * 1_000, value) {
                onsets.push(i.onset_ms);
            }
        }
        assert_eq!(onsets, vec![10_000, 40_000]);
    }

    #[test]
    fn change_point_stays_quiet_on_noise() {
        let mut det = ChangePointDetector::new(ChangePointConfig::default());
        // Deterministic pseudo-noise around 20/bin.
        let mut state = 0x9e3779b97f4a7c15u64;
        for bin in 0..300u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let jitter = (state >> 60) as f64; // 0..16
            assert!(det.push(bin * 1_000, 20.0 + jitter).is_none());
        }
    }

    #[test]
    fn periodicity_detects_square_wave() {
        let cfg = PeriodicityConfig {
            bin_ms: 1_000,
            window: 60,
            min_lag: 5,
            max_lag: 30,
            threshold: 0.5,
        };
        let mut det = PeriodicityDetector::new(cfg);
        let mut fired = Vec::new();
        for bin in 0..120u64 {
            // Period-10 square wave.
            let value = if (bin / 5) % 2 == 0 { 50.0 } else { 5.0 };
            if let Some(i) = det.push(bin * 1_000, value) {
                fired.push(i);
            }
        }
        assert!(!fired.is_empty());
        assert_eq!(fired[0].kind, IncidentKind::PeriodicSignal);
        assert!(
            fired[0].detail.contains("period 10000 ms"),
            "{}",
            fired[0].detail
        );
        assert!(fired[0].score >= 0.5);
    }

    #[test]
    fn periodicity_quiet_on_flat_series() {
        let mut det = PeriodicityDetector::new(PeriodicityConfig::default());
        for bin in 0..300u64 {
            assert!(det.push(bin * 1_000, 10.0).is_none());
        }
    }

    #[test]
    fn periodicity_ignores_level_shift() {
        // A step has high raw ACF at every lag; differencing must keep it
        // from raising a periodic-signal incident.
        let mut det = PeriodicityDetector::new(PeriodicityConfig::default());
        for bin in 0..300u64 {
            let value = if bin >= 150 { 80.0 } else { 10.0 };
            assert!(det.push(bin * 1_000, value).is_none(), "bin {bin}");
        }
    }

    #[test]
    fn novelty_alarms_once_on_new_key() {
        let mut det = NoveltyDetector::new(NoveltyConfig::default());
        let mut base = BTreeMap::new();
        base.insert(1u32, 50u64);
        base.insert(2u32, 20u64);
        for bin in 0..20u64 {
            assert!(det.push_bin(bin * 1_000, &base).is_empty(), "bin {bin}");
        }
        let mut burst = base.clone();
        burst.insert(7u32, 40u64);
        let fired = det.push_bin(20_000, &burst);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, IncidentKind::NoveltyAlarm);
        assert_eq!(fired[0].onset_ms, 20_000);
        assert!(
            fired[0].detail.contains("novel key 7"),
            "{}",
            fired[0].detail
        );
        // Key 7 keeps bursting: no re-alarm.
        assert!(det.push_bin(21_000, &burst).is_empty());
    }

    #[test]
    fn novelty_respects_warmup_and_min_count() {
        let mut det = NoveltyDetector::new(NoveltyConfig::default());
        let mut counts = BTreeMap::new();
        counts.insert(3u32, 100u64);
        // During warmup nothing fires, even for brand-new keys.
        assert!(det.push_bin(0, &counts).is_empty());
        let mut det = NoveltyDetector::new(NoveltyConfig::default());
        for bin in 0..12u64 {
            det.push_bin(bin * 1_000, &BTreeMap::new());
        }
        let mut small = BTreeMap::new();
        small.insert(9u32, 3u64); // below min_count
        assert!(det.push_bin(12_000, &small).is_empty());
    }

    #[test]
    fn incident_serialises() {
        let i = Incident {
            kind: IncidentKind::NoveltyAlarm,
            onset_ms: 5_000,
            detected_ms: 6_000,
            cause: "csu_flap".into(),
            score: 12.5,
            detail: "novel key 7".into(),
        };
        let json = serde_json::to_string(&i).unwrap();
        let back: Incident = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
        assert_eq!(back.lag_ms(), 1_000);
        assert!(i.to_string().contains("novelty_alarm"));
    }
}
