//! The metrics registry: named counters, gauges and log-linear histograms.
//!
//! Hot paths pre-register their metrics once and hold the returned id — a
//! plain index — so recording is an array write behind a single `enabled`
//! branch. A disabled registry accepts every call and does nothing, which
//! is what lets the simulator and pipeline keep their instrumentation
//! compiled in at <5% overhead (measured in `BENCH_obs.json`) and free when
//! off.
//!
//! Registries from independent workers [`merge`](Registry::merge) by metric
//! name: counters add, gauges keep the maximum (a merged gauge is a
//! high-water mark), histograms pool their buckets. Snapshots serialise to
//! JSON for automation (`--metrics-json`).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

// Log-linear bucket layout: values below LINEAR_CUTOFF get exact buckets;
// above, each power-of-two octave is split into SUB_BUCKETS linear
// sub-buckets (≤ 1/16 relative error), like HdrHistogram's scheme.
const LINEAR_CUTOFF: u64 = 64;
const SUB_BUCKETS: usize = 16;
const SUB_SHIFT: u32 = 4; // log2(SUB_BUCKETS)
const FIRST_OCTAVE: u32 = 6; // log2(LINEAR_CUTOFF)

/// A log-linear histogram of `u64` observations.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // ≥ FIRST_OCTAVE
        let sub = ((v >> (msb - SUB_SHIFT)) as usize) & (SUB_BUCKETS - 1);
        LINEAR_CUTOFF as usize + ((msb - FIRST_OCTAVE) as usize) * SUB_BUCKETS + sub
    }
}

fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_CUTOFF as usize;
        let octave = FIRST_OCTAVE + (rel / SUB_BUCKETS) as u32;
        let sub = (rel % SUB_BUCKETS) as u64;
        (1u64 << octave) + (sub << (octave - SUB_SHIFT))
    }
}

impl Histogram {
    /// Empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the bucket containing quantile `q` (clamped to 0..=1).
    /// Exact below 64; ≤ 1/16 relative error above.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_lower_bound(idx).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Pools another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// The registry. See the [module docs](self) for the usage model.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, Histogram)>,
    by_name: BTreeMap<String, (Kind, usize)>,
}

impl Registry {
    /// New enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            enabled: true,
            ..Registry::default()
        }
    }

    /// New disabled registry: registration works, recording is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Registry::default()
    }

    /// Whether recording is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off (registrations and accumulated values are
    /// kept either way).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Registers (or looks up) a counter. Idempotent by name.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&(kind, idx)) = self.by_name.get(name) {
            assert_eq!(kind, Kind::Counter, "{name} registered as {kind:?}");
            return CounterId(idx);
        }
        let idx = self.counters.len();
        self.counters.push((name.to_owned(), 0));
        self.by_name.insert(name.to_owned(), (Kind::Counter, idx));
        CounterId(idx)
    }

    /// Registers (or looks up) a gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&(kind, idx)) = self.by_name.get(name) {
            assert_eq!(kind, Kind::Gauge, "{name} registered as {kind:?}");
            return GaugeId(idx);
        }
        let idx = self.gauges.len();
        self.gauges.push((name.to_owned(), 0));
        self.by_name.insert(name.to_owned(), (Kind::Gauge, idx));
        GaugeId(idx)
    }

    /// Registers (or looks up) a histogram.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(&(kind, idx)) = self.by_name.get(name) {
            assert_eq!(kind, Kind::Histogram, "{name} registered as {kind:?}");
            return HistogramId(idx);
        }
        let idx = self.histograms.len();
        self.histograms.push((name.to_owned(), Histogram::new()));
        self.by_name.insert(name.to_owned(), (Kind::Histogram, idx));
        HistogramId(idx)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        if self.enabled {
            self.counters[id.0].1 += delta;
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: i64) {
        if self.enabled {
            self.gauges[id.0].1 = value;
        }
    }

    /// Raises a gauge to `value` if larger (high-water-mark semantics).
    #[inline]
    pub fn raise(&mut self, id: GaugeId, value: i64) {
        if self.enabled {
            let g = &mut self.gauges[id.0].1;
            *g = (*g).max(value);
        }
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if self.enabled {
            self.histograms[id.0].1.observe(value);
        }
    }

    /// Current counter value by name.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.by_name.get(name) {
            Some(&(Kind::Counter, idx)) => Some(self.counters[idx].1),
            _ => None,
        }
    }

    /// Current gauge value by name.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.by_name.get(name) {
            Some(&(Kind::Gauge, idx)) => Some(self.gauges[idx].1),
            _ => None,
        }
    }

    /// Histogram by name.
    #[must_use]
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        match self.by_name.get(name) {
            Some(&(Kind::Histogram, idx)) => Some(&self.histograms[idx].1),
            _ => None,
        }
    }

    /// Folds another registry in by metric name: counters add, gauges keep
    /// the maximum, histograms pool. Metrics only present in `other` are
    /// registered here.
    pub fn merge(&mut self, other: &Registry) {
        let was_enabled = self.enabled;
        // Merging must land even into a currently-disabled accumulator.
        self.enabled = true;
        for (name, value) in &other.counters {
            let id = self.counter(name);
            self.add(id, *value);
        }
        for (name, value) in &other.gauges {
            let id = self.gauge(name);
            self.raise(id, *value);
        }
        for (name, hist) in &other.histograms {
            let id = self.histogram(name);
            self.histograms[id.0].1.merge(hist);
        }
        self.enabled = was_enabled;
    }

    /// Serialisable snapshot, metrics sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, &(kind, idx)) in &self.by_name {
            match kind {
                Kind::Counter => counters.push(CounterSnapshot {
                    name: name.clone(),
                    value: self.counters[idx].1,
                }),
                Kind::Gauge => gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: self.gauges[idx].1,
                }),
                Kind::Histogram => {
                    let h = &self.histograms[idx].1;
                    histograms.push(HistogramSnapshot {
                        name: name.clone(),
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                    });
                }
            }
        }
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Human-readable multi-line report (only non-zero metrics).
    #[must_use]
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for c in &snap.counters {
            if c.value > 0 {
                let _ = writeln!(out, "  {:<40} {:>12}", c.name, c.value);
            }
        }
        for g in &snap.gauges {
            if g.value != 0 {
                let _ = writeln!(out, "  {:<40} {:>12}", g.name, g.value);
            }
        }
        for h in &snap.histograms {
            if h.count > 0 {
                let _ = writeln!(
                    out,
                    "  {:<40} n={} min={} p50={} p90={} p99={} max={}",
                    h.name, h.count, h.min, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        out
    }
}

/// Point-in-time serialisable view of a [`Registry`].
///
/// Deserialisable and comparable so it can travel over the serve wire
/// protocol (the `metrics` verb) and be asserted on in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last (or high-water) value.
    pub value: i64,
}

/// One histogram summary in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("sim.delivered");
        let g = r.gauge("sim.queue_high_water");
        r.add(c, 5);
        r.inc(c);
        r.set(g, 7);
        r.raise(g, 3); // lower: ignored
        r.raise(g, 11);
        assert_eq!(r.counter_value("sim.delivered"), Some(6));
        assert_eq!(r.gauge_value("sim.queue_high_water"), Some(11));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.counter_value("x"), Some(2));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::disabled();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        r.add(c, 100);
        r.set(g, 5);
        r.observe(h, 42);
        assert_eq!(r.counter_value("c"), Some(0));
        assert_eq!(r.gauge_value("g"), Some(0));
        assert_eq!(r.histogram_ref("h").unwrap().count(), 0);
        r.set_enabled(true);
        r.inc(c);
        assert_eq!(r.counter_value("c"), Some(1));
    }

    #[test]
    fn histogram_buckets_are_monotone_and_exact_below_cutoff() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
        let mut prev = 0;
        for v in [64u64, 100, 1000, 65_536, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index must not decrease at {v}");
            prev = idx;
            let lower = bucket_lower_bound(idx);
            assert!(lower <= v, "{lower} > {v}");
            // ≤ 1/16 relative error.
            assert!(
                (v - lower) as f64 <= v as f64 / 16.0 + 1.0,
                "{v} vs {lower}"
            );
        }
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        assert!((450..=550).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((900..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge_pools_buckets() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100 {
            a.observe(v);
            b.observe(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 0);
        assert!(a.max() >= 1099);
        assert!(a.quantile(0.9) >= 1000);
    }

    #[test]
    fn merge_by_name() {
        let mut a = Registry::new();
        let ca = a.counter("n");
        a.add(ca, 3);
        let mut b = Registry::new();
        let cb = b.counter("n");
        b.add(cb, 4);
        let only_b = b.counter("only_b");
        b.inc(only_b);
        let gb = b.gauge("peak");
        b.set(gb, 9);
        let hb = b.histogram("lat");
        b.observe(hb, 5);
        a.merge(&b);
        assert_eq!(a.counter_value("n"), Some(7));
        assert_eq!(a.counter_value("only_b"), Some(1));
        assert_eq!(a.gauge_value("peak"), Some(9));
        assert_eq!(a.histogram_ref("lat").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let mut r = Registry::new();
        let c = r.counter("a.count");
        r.add(c, 2);
        let h = r.histogram("a.lat_ms");
        r.observe(h, 10);
        r.observe(h, 20);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(json.contains("\"a.count\""), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
        let rendered = r.render();
        assert!(rendered.contains("a.count"));
        assert!(rendered.contains("n=2"));
    }
}
