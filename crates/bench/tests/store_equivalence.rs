//! Store-vs-streaming equivalence: the acceptance gate for `iri-store`.
//!
//! One synthetic MRT log is analyzed three ways — sequential batch,
//! streaming pipeline during ingest, and replay from the segment archive —
//! and every way must render the *byte-identical* text report, with ingest
//! at 1 and 4 workers producing byte-identical stores.
//!
//! `IRI_EQUIV_RECORDS` scales the log (default 200 000; CI runs this in
//! release mode at 3 000 000 to match the paper-scale acceptance check).

use iri_bench::{
    genlog::BASE_TIME, report_from_analysis, report_from_events, report_from_store,
    write_synthetic_log, GenLogConfig,
};
use iri_core::input::events_from_mrt;
use iri_mrt::{MrtReader, MrtRecord, MrtWriter};
use iri_store::{ingest_mrt, IngestConfig, Store};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn temp_store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("iri-equiv-{}-{}", tag, std::process::id()))
}

/// Sorted (file name → bytes) map of a store directory, for byte-level
/// comparison across worker counts.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        out.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).unwrap(),
        );
    }
    out
}

#[test]
fn store_reports_are_byte_identical_to_streaming() {
    let records: u64 = std::env::var("IRI_EQUIV_RECORDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let mut log = Vec::new();
    let mut writer = MrtWriter::new(&mut log);
    let cfg = GenLogConfig {
        records,
        ..GenLogConfig::default()
    };
    write_synthetic_log(&mut writer, &cfg).expect("generate log");

    // Ground truth: the classic sequential engine.
    let mut reader = MrtReader::new(log.as_slice());
    let mrt: Vec<MrtRecord> = reader.iter().collect::<Result<_, _>>().unwrap();
    let events = events_from_mrt(&mrt, BASE_TIME);
    let sequential = report_from_events(&events).render();
    assert!(sequential.contains("taxonomy breakdown"));

    let mut stores: Vec<BTreeMap<String, Vec<u8>>> = Vec::new();
    for jobs in [1usize, 4] {
        let dir = temp_store_dir(&format!("jobs{jobs}"));
        let mut reader = MrtReader::new(log.as_slice());
        let outcome = ingest_mrt(
            &dir,
            &mut reader,
            BASE_TIME,
            &IngestConfig::default().with_jobs(jobs),
        )
        .expect("ingest");
        assert_eq!(outcome.records_read, records);

        // The streaming report computed during ingest…
        let streaming = report_from_analysis(&outcome.analysis).render();
        assert_eq!(streaming, sequential, "streaming report at jobs={jobs}");

        // …and the report replayed from the archive afterwards.
        let mut store = Store::open(&dir).expect("open store");
        let (replayed, stats) = report_from_store(&mut store).expect("replay");
        assert_eq!(
            replayed.render(),
            sequential,
            "stored report at jobs={jobs}"
        );
        assert_eq!(stats.rows_matched, outcome.manifest.total_events);

        stores.push(dir_contents(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }
    // Worker count must not leak into the on-disk bytes.
    assert_eq!(
        stores[0], stores[1],
        "stores written at jobs=1 and jobs=4 must be byte-identical"
    );
}
