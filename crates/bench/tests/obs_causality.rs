//! Acceptance tests for the causal-provenance layer: in the canonical
//! pathology scenario every monitored UPDATE must carry a known cause, the
//! withdrawal-storm WWDups must be attributed to the 30 s timer grid, and
//! the whole instrumented run must stay deterministic.

use iri_bench::{logged_to_events_with_causes, run_pathology, CauseBreakdown};
use iri_core::taxonomy::UpdateClass;
use iri_core::Classifier;
use iri_netsim::Cause;

const SEED: u64 = 0x1997;

#[test]
fn every_monitored_update_has_a_known_cause() {
    let mut scenario = run_pathology(SEED);
    let monitor = scenario
        .world
        .take_monitor(scenario.route_server)
        .expect("route server is monitored");
    let mut updates = 0;
    for entry in &monitor.updates {
        if matches!(entry.message, iri_bgp::message::Message::Update(_)) {
            updates += 1;
            assert!(
                entry.cause.is_known(),
                "UPDATE at t={} from {} has default cause",
                entry.time_ms,
                entry.peer_asn
            );
        }
    }
    assert!(updates > 50, "scenario produced only {updates} UPDATEs");
}

#[test]
fn wwdups_attribute_to_the_timer_grid() {
    let mut scenario = run_pathology(SEED);
    let monitor = scenario
        .world
        .take_monitor(scenario.route_server)
        .expect("route server is monitored");
    let (events, causes) = logged_to_events_with_causes(&monitor.updates);
    let classified = Classifier::new().classify_all(&events);
    let tally = CauseBreakdown::tally(&classified, &causes);

    let wwdups: u64 = Cause::ALL
        .iter()
        .map(|&c| tally.get(c, UpdateClass::WwDup))
        .sum();
    assert!(wwdups > 100, "storm produced only {wwdups} WWDups");
    let timer_share = tally.attribution(UpdateClass::WwDup, Cause::TimerInterval);
    assert!(
        timer_share >= 0.9,
        "only {:.1}% of WWDups attributed to TimerInterval",
        100.0 * timer_share
    );
    // The CSU tail circuit shows up as its own cause, not as timer noise.
    assert!(tally.cause_total(Cause::CsuDrift) > 0);
}

#[test]
fn instrumented_run_is_deterministic() {
    let mut a = run_pathology(SEED);
    let mut b = run_pathology(SEED);
    let ma = a.world.take_monitor(a.route_server).unwrap();
    let mb = b.world.take_monitor(b.route_server).unwrap();
    assert_eq!(ma.updates.len(), mb.updates.len());
    for (x, y) in ma.updates.iter().zip(&mb.updates) {
        assert_eq!(x.time_ms, y.time_ms);
        assert_eq!(x.peer_asn, y.peer_asn);
        assert_eq!(x.cause, y.cause);
    }
    // Trace timestamps are simulated time, so the ring buffers agree too.
    assert_eq!(a.world.tracer().len(), b.world.tracer().len());
    for (x, y) in a.world.tracer().events().zip(b.world.tracer().events()) {
        assert_eq!(x.time, y.time);
        assert_eq!(x.router, y.router);
    }
    // And the registries saw the same world.
    assert_eq!(
        a.world.registry().counter_value("world.delivered"),
        b.world.registry().counter_value("world.delivered")
    );
}
