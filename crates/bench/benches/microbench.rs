//! Criterion micro-benchmarks over the performance-critical paths:
//! wire codec, prefix trie, decision process, streaming classifier,
//! damping engine, and the Figure 5 numerics (FFT / Burg / SSA).
//!
//! Run with `cargo bench -p iri-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::codec::{decode_message, encode_message};
use iri_bgp::message::{Message, Update, UpdateBuilder};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use iri_core::input::{PeerKey, UpdateEvent};
use iri_core::Classifier;
use iri_rib::damping::{DampingConfig, FlapKind, RouteDamper};
use iri_rib::decision::{best_route, RouteCandidate};
use iri_rib::trie::PrefixTrie;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn sample_update(nlri: usize) -> Update {
    let mut b = UpdateBuilder::new()
        .next_hop(Ipv4Addr::new(192, 41, 177, 1))
        .as_path(AsPath::from_sequence([Asn(3561), Asn(701), Asn(1239)]))
        .origin(Origin::Igp)
        .med(100);
    for i in 0..nlri as u32 {
        b = b.announce(Prefix::from_raw(0x0a00_0000 | (i << 8), 24));
    }
    b.build().unwrap()
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for &n in &[1usize, 32, 256] {
        let msg = Message::Update(sample_update(n));
        let wire = encode_message(&msg);
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_function(format!("encode_{n}_nlri"), |b| {
            b.iter(|| encode_message(black_box(&msg)))
        });
        g.bench_function(format!("decode_{n}_nlri"), |b| {
            b.iter(|| decode_message(black_box(&wire)).unwrap())
        });
    }
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("trie");
    let prefixes: Vec<Prefix> = (0..42_000u32)
        .map(|i| Prefix::from_raw((i << 10) | 0x0200_0000, 22))
        .collect();
    g.bench_function("insert_42k", |b| {
        b.iter_batched(
            PrefixTrie::<u32>::new,
            |mut t| {
                for (i, &p) in prefixes.iter().enumerate() {
                    t.insert(p, i as u32);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    let full: PrefixTrie<u32> = prefixes
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    g.throughput(Throughput::Elements(1));
    g.bench_function("longest_match", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2_654_435_761);
            full.longest_match(black_box(Prefix::from_raw(i | 0x0200_0000, 32)))
        })
    });
    g.finish();
}

fn bench_decision(c: &mut Criterion) {
    let candidates: Vec<RouteCandidate> = (0..30)
        .map(|i| RouteCandidate {
            attrs: PathAttributes::new(
                Origin::Igp,
                AsPath::from_sequence((0..(i % 5 + 1)).map(|k| Asn(100 + k))),
                Ipv4Addr::new(10, 0, 0, i as u8),
            ),
            peer_asn: Asn(100 + i),
            peer_router_id: Ipv4Addr::new(10, 0, 1, i as u8),
            peer_addr: Ipv4Addr::new(10, 0, 2, i as u8),
        })
        .collect();
    c.bench_function("decision/best_of_30", |b| {
        b.iter(|| best_route(black_box(&candidates)))
    });
}

fn bench_classifier(c: &mut Criterion) {
    // A realistic mixed stream: flaps, duplicates, spurious withdrawals.
    let peer = PeerKey {
        asn: Asn(701),
        addr: Ipv4Addr::new(192, 41, 177, 1),
    };
    let attrs = PathAttributes::new(
        Origin::Igp,
        AsPath::from_sequence([Asn(701), Asn(1239)]),
        Ipv4Addr::new(192, 41, 177, 1),
    );
    let mut events = Vec::new();
    for i in 0..10_000u32 {
        let prefix = Prefix::from_raw(0x0a00_0000 | ((i % 500) << 8), 24);
        let t = u64::from(i) * 100;
        events.push(match i % 4 {
            0 => UpdateEvent::announce(t, peer, prefix, attrs.clone()),
            1 => UpdateEvent::withdraw(t, peer, prefix),
            2 => UpdateEvent::withdraw(t, peer, prefix),
            _ => UpdateEvent::announce(t, peer, prefix, attrs.clone()),
        });
    }
    let mut g = c.benchmark_group("classifier");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("stream_10k_events", |b| {
        b.iter_batched(
            Classifier::new,
            |mut cl| {
                for e in &events {
                    black_box(cl.classify(e));
                }
                cl
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_damping(c: &mut Criterion) {
    c.bench_function("damping/record_flap", |b| {
        let mut damper = RouteDamper::new(DampingConfig::default());
        let pfx: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut t = 0u64;
        b.iter(|| {
            t += 30_000;
            damper.record_flap(black_box(pfx), FlapKind::Withdrawal, t)
        })
    });
}

fn bench_timeseries(c: &mut Criterion) {
    use iri_core::timeseries::{acf_spectrum, burg_spectrum, ssa_components};
    let series: Vec<f64> = (0..1344)
        .map(|t| {
            (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * t as f64 / 168.0).sin()
        })
        .collect();
    let mut g = c.benchmark_group("timeseries");
    g.sample_size(20);
    g.bench_function("acf_spectrum_1344h", |b| {
        b.iter(|| acf_spectrum(black_box(&series), 400))
    });
    g.bench_function("burg_180_1344h", |b| {
        b.iter(|| burg_spectrum(black_box(&series), 180, 512))
    });
    g.bench_function("ssa_top5_window200", |b| {
        b.iter(|| ssa_components(black_box(&series), 200, 5))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use iri_netsim::{build_exchange, provider_mix, ExchangePoint, World, MINUTE, SECOND};
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("exchange_10min_with_flaps", |b| {
        b.iter(|| {
            let mut world = World::new(7);
            let cfgs = provider_mix(ExchangePoint::Aads, 0.15, 0.5, 6000);
            let ex = build_exchange(&mut world, ExchangePoint::Aads, cfgs);
            for (i, &p) in ex.providers.iter().enumerate() {
                let pfx = Prefix::from_raw(0x0a00_0000 | ((i as u32) << 16), 16);
                world.schedule_originate(SECOND, p, pfx);
                world.schedule_flap(2 * MINUTE, p, pfx, 45 * SECOND);
            }
            world.start();
            world.run_until(10 * MINUTE);
            black_box(world.stats.delivered)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_trie,
    bench_decision,
    bench_classifier,
    bench_damping,
    bench_timeseries,
    bench_simulator
);
criterion_main!(benches);
