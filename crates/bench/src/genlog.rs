//! Synthetic MRT log generation, shared by the `mrtgen` CLI and the
//! `bench_obs` throughput benchmark.
//!
//! Produces a BGP4MP MESSAGE log shaped like an exchange-point tap: a pool
//! of peers re-announcing and withdrawing a pool of prefixes with
//! alternating routes, so the taxonomy sees every class. Deterministic for
//! a given seed.

use iri_bgp::attrs::{Origin, PathAttributes};
use iri_bgp::message::{Message, Update};
use iri_bgp::path::AsPath;
use iri_bgp::types::{Asn, Prefix};
use iri_mrt::{Bgp4mpMessage, MrtRecord, MrtWriter};
use rand::prelude::*;
use std::io::Write;
use std::net::Ipv4Addr;

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct GenLogConfig {
    /// MRT records to emit.
    pub records: u64,
    /// Peer pool size.
    pub peers: u32,
    /// Prefix pool size.
    pub prefixes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenLogConfig {
    fn default() -> Self {
        GenLogConfig {
            records: 1_000_000,
            peers: 16,
            prefixes: 20_000,
            seed: 0x1997,
        }
    }
}

/// Timestamp of the first record: mid-1996, like the study.
pub const BASE_TIME: u32 = 833_000_000;

/// Writes a synthetic log to `out`. Returns `(records_written, span_secs)`.
///
/// # Errors
///
/// Propagates the first writer error.
pub fn write_synthetic_log<W: Write>(
    out: &mut MrtWriter<W>,
    cfg: &GenLogConfig,
) -> Result<(u64, u32), iri_mrt::MrtError> {
    let peers = cfg.peers.max(1);
    let prefixes = cfg.prefixes.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut time = BASE_TIME;
    for i in 0..cfg.records {
        if i % 3 == 0 {
            time += u32::from(rng.random_bool(0.4));
        }
        let peer_idx = rng.random_range(0..peers);
        let prefix = Prefix::from_raw(0x0a00_0000 | (rng.random_range(0..prefixes) << 8), 24);
        // ~40% withdrawals (the paper's dominant pathology is WWDup);
        // announcements flip between two routes to mix Diffs and Dups.
        let message = if rng.random_bool(0.4) {
            Message::Update(Update::withdraw([prefix]))
        } else {
            let variant = rng.random_range(1..=2);
            let attrs = PathAttributes::new(
                Origin::Igp,
                AsPath::from_sequence([Asn(65_000 + variant), Asn(7000 + peer_idx)]),
                Ipv4Addr::new(10, 0, 0, variant as u8),
            );
            Message::Update(Update::announce(attrs, [prefix]))
        };
        let rec = MrtRecord::Bgp4mpMessage(Bgp4mpMessage {
            timestamp: time,
            peer_asn: Asn(7000 + peer_idx),
            local_asn: Asn(237),
            peer_ip: Ipv4Addr::new(192, 41, 177, (peer_idx % 250) as u8 + 1),
            local_ip: Ipv4Addr::new(192, 41, 177, 250),
            message,
        });
        out.write(&rec)?;
    }
    Ok((out.records_written(), time - BASE_TIME))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_mrt::MrtReader;

    #[test]
    fn generator_is_deterministic() {
        let run = || {
            let mut buf = Vec::new();
            let cfg = GenLogConfig {
                records: 500,
                ..GenLogConfig::default()
            };
            let mut w = MrtWriter::new(&mut buf);
            let (n, _span) = write_synthetic_log(&mut w, &cfg).unwrap();
            assert_eq!(n, 500);
            buf
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn generated_log_round_trips() {
        let mut buf = Vec::new();
        let cfg = GenLogConfig {
            records: 200,
            ..GenLogConfig::default()
        };
        let mut w = MrtWriter::new(&mut buf);
        write_synthetic_log(&mut w, &cfg).unwrap();
        let mut reader = MrtReader::new(buf.as_slice());
        let mut n = 0;
        while let Ok(Some(rec)) = reader.next_record() {
            assert!(rec.timestamp() >= BASE_TIME);
            n += 1;
        }
        assert_eq!(n, 200);
    }
}
