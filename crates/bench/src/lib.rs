//! # iri-bench — experiment harness
//!
//! Regenerates every table and figure of *Internet Routing Instability*.
//! One binary per artefact (`table1`, `fig1` … `fig10`, `headline`,
//! `ablations`), all built on the shared pipeline here:
//!
//! ```text
//! iri-topology scenario → iri-netsim day world → monitor log
//!        → iri-core events → classifier → per-day summary
//! ```
//!
//! Multi-day experiments run days in parallel through `iri-pipeline`'s
//! ordered parallel map; each simulated day is independent (its own
//! seeded world), so results are deterministic regardless of scheduling.

pub mod cli;
pub mod engine;
pub mod experiment;
pub mod genlog;
pub mod obs_scenario;
pub mod report;
pub mod store_cache;
pub mod summary;

pub use cli::{
    arg_f64, arg_flag, arg_str, arg_u64, banner, exit_store_error, print_scan_stats, QueryFilter,
    EXIT_USAGE,
};
pub use engine::{
    AnalysisEngine, EngineError, EngineInput, EngineOutput, PipelineEngine, SequentialEngine,
    StoreReplayEngine,
};
pub use experiment::{experiment, experiment_args, Experiment};
pub use genlog::{write_synthetic_log, GenLogConfig};
pub use obs_scenario::{run_pathology, CauseBreakdown, ObsScenario};
pub use report::{
    report_from_analysis, report_from_events, report_from_store, report_from_store_query,
    UpdateReport,
};
pub use store_cache::summarize_days_cached;
pub use summary::{run_days, run_days_with_metrics, summarize_day, DaySummary, ExperimentConfig};

use iri_core::input::{PeerKey, UpdateEvent};
use iri_netsim::monitor::LoggedUpdate;
use iri_obs::Cause;

/// Converts monitor log entries into the analysis crate's prefix events.
#[must_use]
pub fn logged_to_events(log: &[LoggedUpdate]) -> Vec<UpdateEvent> {
    logged_to_events_with_causes(log).0
}

/// Like [`logged_to_events`], but also returns each event's causal
/// provenance tag, aligned index-for-index with the event vector (every
/// prefix event inside one wire UPDATE inherits that UPDATE's cause).
#[must_use]
pub fn logged_to_events_with_causes(log: &[LoggedUpdate]) -> (Vec<UpdateEvent>, Vec<Cause>) {
    let mut out = Vec::with_capacity(log.len());
    let mut causes = Vec::with_capacity(log.len());
    for entry in log {
        if let iri_bgp::message::Message::Update(u) = &entry.message {
            let peer = PeerKey {
                asn: entry.peer_asn,
                addr: entry.peer_addr,
            };
            out.extend(iri_core::input::events_from_update(entry.time_ms, peer, u));
            causes.resize(out.len(), entry.cause);
        }
    }
    (out, causes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logged_to_events_skips_keepalives() {
        use iri_bgp::message::{Message, Update};
        use iri_bgp::types::Asn;
        use std::net::Ipv4Addr;
        let log = vec![
            LoggedUpdate {
                time_ms: 5,
                peer_asn: Asn(701),
                peer_addr: Ipv4Addr::new(1, 1, 1, 1),
                message: Message::Keepalive,
                cause: Cause::Unknown,
            },
            LoggedUpdate {
                time_ms: 6,
                peer_asn: Asn(701),
                peer_addr: Ipv4Addr::new(1, 1, 1, 1),
                message: Message::Update(Update::withdraw(["10.0.0.0/8".parse().unwrap()])),
                cause: Cause::LinkFlap,
            },
        ];
        let (events, causes) = logged_to_events_with_causes(&log);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time_ms, 6);
        assert_eq!(causes, vec![Cause::LinkFlap]);
    }
}
