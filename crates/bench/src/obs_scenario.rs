//! The canonical observability pathology scenario, shared by the
//! `tracescope` CLI and the causality integration tests.
//!
//! One route-server exchange with three provider profiles, each driving a
//! distinct root cause from the paper's §4 catalogue:
//!
//! - **AS 690** — the pathological vendor profile *with the withdrawal
//!   storm bug*: every second flush window it re-blasts blind withdrawals
//!   for everything it believes withdrawn. After its prefixes are
//!   withdrawn, the storm turns the 30 s timer grid into a WWDup
//!   metronome, all tagged [`Cause::TimerInterval`].
//! - **AS 701** — pathological, fed by a customer tail circuit with a
//!   CSU clock-drift fault: its prefixes flap with the circuit, tagged
//!   [`Cause::CsuDrift`].
//! - **AS 1239** — well-behaved, originating stable prefixes
//!   ([`Cause::Origination`] traffic only).
//!
//! The run is deterministic for a given seed, with observability enabled
//! (trace ring buffer + metrics registry).

use iri_bgp::types::{Asn, Prefix};
use iri_netsim::{CsuFault, RouterConfig, RouterId, World, MINUTE, SECOND};
use iri_obs::Cause;
use std::net::Ipv4Addr;

/// Handles into the built scenario.
pub struct ObsScenario {
    /// The world, already run to [`ObsScenario::END`].
    pub world: World,
    /// The monitored route server.
    pub route_server: RouterId,
    /// The storm-bugged router (AS 690).
    pub storm_router: RouterId,
    /// The CSU-afflicted router (AS 701).
    pub csu_router: RouterId,
    /// The well-behaved router (AS 1239).
    pub quiet_router: RouterId,
}

impl ObsScenario {
    /// Simulated duration of the run.
    pub const END: u64 = 30 * MINUTE;
}

/// Number of prefixes behind the storm-bugged router.
pub const STORM_PREFIXES: u32 = 40;
/// Number of prefixes behind the CSU tail circuit.
pub const CSU_PREFIXES: u32 = 20;
/// Number of stable prefixes from the well-behaved router.
pub const QUIET_PREFIXES: u32 = 10;

/// Builds and runs the pathology scenario for 30 simulated minutes with
/// observability on.
#[must_use]
pub fn run_pathology(seed: u64) -> ObsScenario {
    let mut world = World::new(seed);
    let rs = world.add_router(RouterConfig::route_server(
        "RS",
        Asn(237),
        Ipv4Addr::new(192, 41, 177, 250),
    ));
    let mut storm_cfg =
        RouterConfig::pathological("Storm", Asn(690), Ipv4Addr::new(192, 41, 177, 1));
    storm_cfg.withdrawal_storm = Some(2);
    let storm = world.add_router(storm_cfg);
    let csu = world.add_router(RouterConfig::pathological(
        "Csu",
        Asn(701),
        Ipv4Addr::new(192, 41, 177, 2),
    ));
    let quiet = world.add_router(RouterConfig::well_behaved(
        "Quiet",
        Asn(1239),
        Ipv4Addr::new(192, 41, 177, 3),
    ));
    world.connect(storm, rs, 5);
    world.connect(csu, rs, 5);
    world.connect(quiet, rs, 5);
    world.attach_monitor(rs);
    world.enable_obs(1 << 16);

    // AS 690: announce a block, then withdraw it all — from then on the
    // storm bug re-withdraws it every second flush window, forever.
    for i in 0..STORM_PREFIXES {
        let pfx = Prefix::from_raw(0xc0a8_0000 | (i << 8), 24);
        world.schedule_originate(SECOND, storm, pfx);
        world.schedule_withdraw(2 * MINUTE, storm, pfx);
    }
    // AS 701: a CSU-afflicted customer tail circuit flaps its block on the
    // 30 s clock-drift beat.
    let csu_prefixes: Vec<Prefix> = (0..CSU_PREFIXES)
        .map(|i| Prefix::from_raw(0xcb00_0000 | (i << 8), 24))
        .collect();
    world.add_access_link(csu, csu_prefixes, Some(CsuFault::beat_30s(40 * SECOND)));
    // AS 1239: stable originations only.
    for i in 0..QUIET_PREFIXES {
        let pfx = Prefix::from_raw(0xac10_0000 | (i << 8), 24);
        world.schedule_originate(SECOND, quiet, pfx);
    }

    world.start();
    world.run_until(ObsScenario::END);
    ObsScenario {
        world,
        route_server: rs,
        storm_router: storm,
        csu_router: csu,
        quiet_router: quiet,
    }
}

/// Per-(cause, class) tally over a classified event stream.
#[derive(Debug, Default, Clone)]
pub struct CauseBreakdown {
    /// `counts[cause.index()][class as usize]`.
    pub counts: Vec<[u64; iri_core::taxonomy::UpdateClass::COUNT]>,
}

impl CauseBreakdown {
    /// Tallies classified events against their aligned cause sidecar.
    #[must_use]
    pub fn tally(classified: &[iri_core::classifier::ClassifiedEvent], causes: &[Cause]) -> Self {
        let mut counts = vec![[0u64; iri_core::taxonomy::UpdateClass::COUNT]; Cause::COUNT];
        for (ev, cause) in classified.iter().zip(causes) {
            counts[cause.index()][ev.class as usize] += 1;
        }
        CauseBreakdown { counts }
    }

    /// Total events tagged with `cause`.
    #[must_use]
    pub fn cause_total(&self, cause: Cause) -> u64 {
        self.counts[cause.index()].iter().sum()
    }

    /// Events of `class` attributed to `cause`.
    #[must_use]
    pub fn get(&self, cause: Cause, class: iri_core::taxonomy::UpdateClass) -> u64 {
        self.counts[cause.index()][class as usize]
    }

    /// Fraction of `class` events attributed to `cause` (0.0 when the
    /// class never occurred).
    #[must_use]
    pub fn attribution(&self, class: iri_core::taxonomy::UpdateClass, cause: Cause) -> f64 {
        let class_total: u64 = self.counts.iter().map(|row| row[class as usize]).sum();
        if class_total == 0 {
            0.0
        } else {
            self.get(cause, class) as f64 / class_total as f64
        }
    }
}
