//! The shared `mrtstat`-style update report: one struct, one renderer,
//! three producers (sequential batch, streaming pipeline, segment store).
//!
//! Every producer must yield the same rendered text for the same event
//! stream — the store-vs-streaming equivalence test holds the rendered
//! reports byte-identical, so this module is the single source of truth
//! for the report's shape.

use iri_bgp::types::Prefix;
use iri_core::fxhash::FxHashSet;
use iri_core::input::{PeerKey, UpdateEvent};
use iri_core::stats::bins::SLOTS_PER_DAY;
use iri_core::stats::daily::ProviderDailyRow;
use iri_core::stats::incidents::detect_incidents;
use iri_core::stats::interarrival::{DayInterarrival, BIN_LABELS};
use iri_core::stats::persistence::{persistence_below, Episode};
use iri_core::stats::sinks::StreamSinks;
use iri_core::taxonomy::UpdateClass;
use iri_core::Classifier;
use iri_pipeline::{AnalysisResult, DEFAULT_QUIET_MS};
use iri_store::{Query, ScanStats, Store, StoreError};
use std::fmt::Write as _;

/// Classifier-level totals, detached from the classifier so they can also
/// be reconstructed from stored columns.
pub struct ReportTotals {
    /// All prefix events.
    pub total: u64,
    /// Events per class, indexed by [`UpdateClass::index`].
    pub class_counts: [u64; UpdateClass::COUNT],
    /// AADup events whose non-forwarding attributes changed.
    pub policy_changes: u64,
    /// Distinct (peer, prefix) pairs seen.
    pub tracked_pairs: u64,
}

impl From<&Classifier> for ReportTotals {
    fn from(c: &Classifier) -> Self {
        let mut class_counts = [0u64; UpdateClass::COUNT];
        for class in UpdateClass::ALL {
            class_counts[class.index()] = c.count(class);
        }
        ReportTotals {
            total: c.total(),
            class_counts,
            policy_changes: c.policy_change_count(),
            tracked_pairs: c.tracked_pairs() as u64,
        }
    }
}

/// Everything the §4/§5 report needs, produced by any engine.
pub struct UpdateReport {
    /// Event totals.
    pub totals: ReportTotals,
    /// Trace span (largest event time + 1).
    pub span_ms: u64,
    /// Table 1 rows.
    pub provider_rows: Vec<ProviderDailyRow>,
    /// Ten-minute instability bins.
    pub instability_bins: Box<[u64; SLOTS_PER_DAY]>,
    /// Inter-arrival histograms for the four figure categories.
    pub interarrivals: Vec<DayInterarrival>,
    /// Instability episodes.
    pub episodes: Vec<Episode>,
}

impl UpdateReport {
    /// Builds the report from finished streaming sinks plus totals.
    fn from_sinks(totals: ReportTotals, sinks: &StreamSinks) -> Self {
        UpdateReport {
            totals,
            span_ms: sinks.span_ms(),
            provider_rows: sinks.daily.finish(),
            instability_bins: Box::new(sinks.bins.finish()),
            interarrivals: UpdateClass::FIGURE_CATEGORIES
                .iter()
                .map(|&c| sinks.interarrival.finish(c))
                .collect(),
            episodes: sinks.episodes.finish(),
        }
    }

    /// Renders the canonical text report. Identical wording and layout
    /// for every producer.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let totals = &self.totals;
        let _ = writeln!(
            out,
            "\n{} prefix events over {:.1} hours from {} (peer, prefix) pairs",
            totals.total,
            self.span_ms as f64 / 3_600_000.0,
            totals.tracked_pairs
        );

        let _ = writeln!(out, "\n-- taxonomy breakdown --");
        let total = totals.total.max(1);
        for class in UpdateClass::ALL {
            let n = totals.class_counts[class.index()];
            if n > 0 {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>9}  ({:>5.1}%)",
                    class.label(),
                    n,
                    100.0 * n as f64 / total as f64
                );
            }
        }
        let _ = writeln!(
            out,
            "  instability {} / pathological {} / policy fluctuations {}",
            UpdateClass::ALL
                .iter()
                .filter(|c| c.is_instability())
                .map(|&c| totals.class_counts[c.index()])
                .sum::<u64>(),
            UpdateClass::ALL
                .iter()
                .filter(|c| c.is_pathological())
                .map(|&c| totals.class_counts[c.index()])
                .sum::<u64>(),
            totals.policy_changes
        );

        let _ = writeln!(out, "\n-- per-peer totals --");
        for row in &self.provider_rows {
            let _ = writeln!(
                out,
                "  {:<10} announce {:>8}  withdraw {:>8}  unique {:>6}  W/A {:>6.1}",
                row.asn.to_string(),
                row.announce,
                row.withdraw,
                row.unique_prefixes,
                row.withdraw_ratio()
            );
        }

        let _ = writeln!(
            out,
            "\n-- instability incidents (≥10x baseline, 10-min slots) --"
        );
        let incidents = detect_incidents(self.instability_bins.as_ref(), 10.0, 36);
        if incidents.is_empty() {
            let _ = writeln!(out, "  none detected");
        } else {
            for inc in &incidents {
                let _ = writeln!(
                    out,
                    "  slots {:>3}–{:<3} ({} min): peak {} = {:.0}x baseline",
                    inc.start_slot,
                    inc.end_slot,
                    inc.duration_slots() * 10,
                    inc.peak,
                    inc.magnitude()
                );
            }
        }

        let _ = writeln!(out, "\n-- inter-arrival modes --");
        for (class, d) in UpdateClass::FIGURE_CATEGORIES
            .iter()
            .zip(&self.interarrivals)
        {
            if d.gaps == 0 {
                continue;
            }
            let best = d
                .proportions
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, p)| (BIN_LABELS[i], p))
                .unwrap();
            let _ = writeln!(
                out,
                "  {:<8} {} gaps; modal bin {} ({:.0}%); 30s+1m mass {:.0}%",
                class.label(),
                d.gaps,
                best.0,
                100.0 * best.1,
                100.0 * (d.proportions[2] + d.proportions[3])
            );
        }

        let _ = writeln!(
            out,
            "\n-- persistence: {:.0}% of multi-event episodes under 5 minutes ({} episodes) --",
            100.0 * persistence_below(&self.episodes, DEFAULT_QUIET_MS),
            self.episodes.len()
        );
        out
    }
}

/// Classic single-threaded engine: classify in stream order, then reduce
/// through the same streaming sinks the pipeline uses.
#[must_use]
pub fn report_from_events(events: &[UpdateEvent]) -> UpdateReport {
    let mut classifier = Classifier::new();
    let mut sinks = StreamSinks::new(DEFAULT_QUIET_MS);
    for event in events {
        let classified = classifier.classify(event);
        sinks.record(&classified);
    }
    UpdateReport::from_sinks(ReportTotals::from(&classifier), &sinks)
}

/// Folds a pipeline result into the common report.
#[must_use]
pub fn report_from_analysis(result: &AnalysisResult) -> UpdateReport {
    UpdateReport::from_sinks(ReportTotals::from(&result.classifier), &result.sinks)
}

/// Rebuilds the report from a segment store by replaying the stored
/// classified stream through fresh sinks.
///
/// Shard-ordered replay preserves each (peer, prefix) pair's stream order
/// — the only order the sinks depend on — so the report is identical to
/// the one the streaming engines computed when the store was written.
pub fn report_from_store(store: &mut Store) -> Result<(UpdateReport, ScanStats), StoreError> {
    report_from_store_query(store, &Query::default())
}

/// [`report_from_store`] over a narrowed slice of the archive: only rows
/// matching the query feed the report. With the default query this is
/// exactly the full replay the equivalence tests pin down.
pub fn report_from_store_query(
    store: &mut Store,
    query: &Query,
) -> Result<(UpdateReport, ScanStats), StoreError> {
    let mut sinks = StreamSinks::new(DEFAULT_QUIET_MS);
    let mut class_counts = [0u64; UpdateClass::COUNT];
    let mut policy_changes = 0u64;
    let mut pairs: FxHashSet<(PeerKey, Prefix)> = FxHashSet::default();
    let stats = store.scan(query, |ev| {
        class_counts[ev.class.index()] += 1;
        policy_changes += u64::from(ev.policy_change);
        pairs.insert((ev.peer, ev.prefix));
        sinks.record(&ev.to_classified());
    })?;
    let totals = ReportTotals {
        total: class_counts.iter().sum(),
        class_counts,
        policy_changes,
        tracked_pairs: pairs.len() as u64,
    };
    Ok((UpdateReport::from_sinks(totals, &sinks), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iri_core::input::events_from_mrt;
    use iri_mrt::{MrtReader, MrtRecord, MrtWriter};

    fn demo_log(records: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let cfg = crate::GenLogConfig {
            records,
            peers: 5,
            prefixes: 300,
            ..crate::GenLogConfig::default()
        };
        crate::write_synthetic_log(&mut w, &cfg).unwrap();
        buf
    }

    #[test]
    fn sequential_and_pipeline_render_identically() {
        let log = demo_log(4_000);
        let mut reader = MrtReader::new(log.as_slice());
        let records: Vec<MrtRecord> = reader.iter().collect::<Result<_, _>>().unwrap();
        let events = events_from_mrt(&records, crate::genlog::BASE_TIME);
        let sequential = report_from_events(&events).render();

        let cfg = iri_pipeline::PipelineConfig::with_jobs(3);
        let result = iri_pipeline::analyze_events(&events, &cfg).unwrap();
        let parallel = report_from_analysis(&result).render();
        assert_eq!(sequential, parallel);
        assert!(sequential.contains("taxonomy breakdown"));
    }
}
