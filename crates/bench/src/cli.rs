//! Shared command-line plumbing for every binary in this crate: flag
//! parsing, the typed [`QueryFilter`] builder, scan-stat rendering, and
//! the store error → exit code mapping.
//!
//! Before this module each store-facing binary (`iriq`, `mrtstat`,
//! `tracescope`) parsed its filter flags into strings and re-derived
//! `iri_store::Query` its own way. Now there is exactly one grammar:
//!
//! ```text
//! [--from-ms A] [--to-ms B] [--day D] [--peer ASN] [--prefix a.b.c.d/len]
//! [--class NAME] [--cause NAME] [--strict] [--stats]
//! ```
//!
//! and one builder to hold the result. Parse errors return messages (for
//! the binary to print with its own usage text and exit
//! [`EXIT_USAGE`]); store errors carry their own exit codes via
//! [`StoreError::exit_code`].

use iri_bgp::types::{Asn, Prefix};
use iri_core::taxonomy::UpdateClass;
use iri_obs::Cause;
use iri_store::{OpenOptions, Query, ScanStats, Store, StoreError};
use std::path::Path;

/// Exit code for malformed command lines.
pub const EXIT_USAGE: i32 = 2;

/// Parses `--key value` style arguments with defaults, e.g.
/// `arg_f64(&args, "--scale", 0.05)`.
#[must_use]
pub fn arg_f64(args: &[String], key: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// String variant of [`arg_f64`]: `None` when the flag is absent.
#[must_use]
pub fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Integer variant of [`arg_f64`].
#[must_use]
pub fn arg_u64(args: &[String], key: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare flag (no value) is present.
#[must_use]
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Standard experiment banner: what the paper reported vs what we measured.
pub fn banner(title: &str, paper: &str) {
    println!("================================================================");
    println!("{title}");
    println!("paper: {paper}");
    println!("================================================================");
}

/// Parses a taxonomy class by its label, case-insensitively.
pub fn parse_class(name: &str) -> Result<UpdateClass, String> {
    UpdateClass::ALL
        .into_iter()
        .find(|c| c.label().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let all: Vec<&str> = UpdateClass::ALL.iter().map(|c| c.label()).collect();
            format!("unknown class {name:?}; one of: {}", all.join(", "))
        })
}

/// Parses a cause by its label, case-insensitively.
pub fn parse_cause(name: &str) -> Result<Cause, String> {
    Cause::ALL
        .into_iter()
        .find(|c| c.label().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let all: Vec<&str> = Cause::ALL.iter().map(|c| c.label()).collect();
            format!("unknown cause {name:?}; one of: {}", all.join(", "))
        })
}

/// Typed, conjunctive store filter plus the open/report options every
/// store-facing binary shares (`--strict`, `--stats`).
///
/// Build programmatically:
///
/// ```
/// use iri_bench::cli::QueryFilter;
/// use iri_core::taxonomy::UpdateClass;
///
/// let f = QueryFilter::new()
///     .class(UpdateClass::WwDup)
///     .time_range_ms(0, 86_400_000)
///     .strict(true);
/// assert!(f.is_strict());
/// ```
///
/// or from a command line with [`QueryFilter::from_args`].
#[derive(Debug, Clone, Default)]
pub struct QueryFilter {
    query: Query,
    strict: bool,
    stats: bool,
}

impl QueryFilter {
    /// A filter matching everything, tolerant, quiet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts to `[from_ms, to_ms)`.
    #[must_use]
    pub fn time_range_ms(mut self, from_ms: u64, to_ms: u64) -> Self {
        self.query = self.query.time_range_ms(from_ms, to_ms);
        self
    }

    /// Restricts to one simulated day (the day-cache window shorthand).
    #[must_use]
    pub fn day(self, day: u64) -> Self {
        let day_ms = crate::store_cache::DAY_MS;
        self.time_range_ms(day * day_ms, (day + 1) * day_ms)
    }

    /// Restricts to one peer AS.
    #[must_use]
    pub fn peer(mut self, asn: Asn) -> Self {
        self.query = self.query.peer(asn);
        self
    }

    /// Restricts to one prefix (exact match).
    #[must_use]
    pub fn prefix(mut self, prefix: Prefix) -> Self {
        self.query = self.query.prefix(prefix);
        self
    }

    /// Restricts to one taxonomy class.
    #[must_use]
    pub fn class(mut self, class: UpdateClass) -> Self {
        self.query = self.query.class(class);
        self
    }

    /// Restricts to one cause.
    #[must_use]
    pub fn cause(mut self, cause: Cause) -> Self {
        self.query = self.query.cause(cause);
        self
    }

    /// Sets strict (fail-fast) store opening: corrupt or crash-recovered
    /// stores error out instead of being repaired and served.
    #[must_use]
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Sets whether scan statistics should be printed.
    #[must_use]
    pub fn stats(mut self, stats: bool) -> Self {
        self.stats = stats;
        self
    }

    /// The store query this filter narrows to.
    #[must_use]
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Whether strict mode was requested.
    #[must_use]
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Whether scan statistics were requested.
    #[must_use]
    pub fn wants_stats(&self) -> bool {
        self.stats
    }

    /// Parses the shared filter grammar from a raw argument vector.
    /// Unknown flags are ignored (binaries layer their own on top);
    /// malformed values for known flags are errors.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut f = QueryFilter::new();
        if let Some(day) = arg_str(args, "--day") {
            let day: u64 = day
                .parse()
                .map_err(|_| format!("--day wants a number, got {day:?}"))?;
            f = f.day(day);
        }
        let from = arg_u64(args, "--from-ms", f.query.from_ms);
        let to = arg_u64(args, "--to-ms", f.query.to_ms);
        f = f.time_range_ms(from, to);
        if let Some(asn) = arg_str(args, "--peer") {
            let n = asn
                .trim_start_matches("AS")
                .parse()
                .map_err(|_| format!("--peer wants an AS number, got {asn:?}"))?;
            f = f.peer(Asn(n));
        }
        if let Some(p) = arg_str(args, "--prefix") {
            let p = p
                .parse()
                .map_err(|_| format!("--prefix wants a.b.c.d/len, got {p:?}"))?;
            f = f.prefix(p);
        }
        if let Some(c) = arg_str(args, "--class") {
            f = f.class(parse_class(&c)?);
        }
        if let Some(c) = arg_str(args, "--cause") {
            f = f.cause(parse_cause(&c)?);
        }
        f = f.strict(arg_flag(args, "--strict"));
        f = f.stats(arg_flag(args, "--stats"));
        Ok(f)
    }

    /// Opens a store honouring this filter's strict flag.
    pub fn open(&self, dir: &Path) -> Result<Store, StoreError> {
        Store::open_with(dir, &OpenOptions::new().strict(self.strict))
    }
}

/// Renders one query's [`ScanStats`] the way every binary reports them
/// (the `--stats` flag), including quarantined-segment accounting.
#[must_use]
pub fn render_scan_stats(stats: &ScanStats) -> String {
    let mut out = format!(
        "[scan] {} segments: {} pruned, {} zone-answered, {} scanned \
         (prune ratio {:.1}%); {} of {} KiB read, {} rows tested, {} matched",
        stats.segments_total,
        stats.segments_pruned,
        stats.segments_zone_answered,
        stats.segments_scanned,
        100.0 * stats.prune_ratio(),
        stats.bytes_scanned / 1024,
        stats.bytes_total / 1024,
        stats.rows_scanned,
        stats.rows_matched
    );
    if stats.segments_quarantined > 0 {
        out.push_str(&format!(
            "\n[scan] {} segment(s) quarantined — results exclude them; \
             re-run with --strict to fail instead",
            stats.segments_quarantined
        ));
    }
    out
}

/// Prints [`render_scan_stats`] when the filter asked for it.
pub fn print_scan_stats(filter: &QueryFilter, stats: &ScanStats) {
    if filter.wants_stats() {
        println!("\n{}", render_scan_stats(stats));
    }
}

/// Prints a store error the standard way and exits with its
/// variant-specific code (I/O 3, corrupt 4, quarantined 5, JSON 6,
/// ingest 7).
pub fn exit_store_error(prog: &str, e: &StoreError) -> ! {
    eprintln!("{prog}: {e}");
    std::process::exit(e.exit_code())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn arg_parsing() {
        let args = argv(&["--scale", "0.2", "--days", "14"]);
        assert_eq!(arg_f64(&args, "--scale", 0.05), 0.2);
        assert_eq!(arg_u64(&args, "--days", 7), 14);
        assert_eq!(arg_u64(&args, "--missing", 9), 9);
        assert_eq!(arg_f64(&args, "--days", 1.0), 14.0);
    }

    #[test]
    fn filter_from_args_parses_every_flag() {
        let args = argv(&[
            "--from-ms",
            "100",
            "--to-ms",
            "200",
            "--peer",
            "AS701",
            "--prefix",
            "10.0.0.0/8",
            "--class",
            "WWDup",
            "--cause",
            "CsuDrift",
            "--strict",
            "--stats",
        ]);
        let f = QueryFilter::from_args(&args).unwrap();
        assert_eq!(f.query().from_ms, 100);
        assert_eq!(f.query().to_ms, 200);
        assert_eq!(f.query().peer_asn, Some(Asn(701)));
        assert_eq!(f.query().prefix, Some("10.0.0.0/8".parse().unwrap()));
        assert_eq!(f.query().class, Some(UpdateClass::WwDup));
        assert_eq!(f.query().cause, Some(Cause::CsuDrift));
        assert!(f.is_strict());
        assert!(f.wants_stats());
    }

    #[test]
    fn filter_day_shorthand_sets_the_window() {
        let f = QueryFilter::from_args(&argv(&["--day", "2"])).unwrap();
        let day_ms = crate::store_cache::DAY_MS;
        assert_eq!(f.query().from_ms, 2 * day_ms);
        assert_eq!(f.query().to_ms, 3 * day_ms);
    }

    #[test]
    fn filter_rejects_bad_values_with_messages() {
        assert!(QueryFilter::from_args(&argv(&["--peer", "abc"]))
            .unwrap_err()
            .contains("--peer"));
        assert!(QueryFilter::from_args(&argv(&["--class", "nope"]))
            .unwrap_err()
            .contains("unknown class"));
        assert!(QueryFilter::from_args(&argv(&["--prefix", "nope"]))
            .unwrap_err()
            .contains("--prefix"));
    }

    #[test]
    fn scan_stats_render_mentions_quarantine_only_when_present() {
        let clean = ScanStats {
            segments_total: 4,
            segments_scanned: 4,
            ..ScanStats::default()
        };
        assert!(!render_scan_stats(&clean).contains("quarantined"));
        let hurt = ScanStats {
            segments_quarantined: 2,
            ..clean
        };
        let text = render_scan_stats(&hurt);
        assert!(text.contains("2 segment(s) quarantined"));
        assert!(text.contains("--strict"));
    }
}
