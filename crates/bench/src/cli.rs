//! Shared command-line plumbing for every binary in this crate: flag
//! parsing, the typed [`QueryFilter`] builder, scan-stat rendering, and
//! the store error → exit code mapping.
//!
//! Before this module each store-facing binary (`iriq`, `mrtstat`,
//! `tracescope`) parsed its filter flags into strings and re-derived
//! `iri_store::Query` its own way. Now there is exactly one grammar:
//!
//! ```text
//! [--from-ms A] [--to-ms B] [--day D] [--peer ASN] [--prefix a.b.c.d/len]
//! [--class NAME] [--cause NAME] [--strict] [--stats]
//! ```
//!
//! and one builder to hold the result. Parse errors return messages (for
//! the binary to print with its own usage text and exit
//! [`EXIT_USAGE`]); store errors carry their own exit codes via
//! [`StoreError::exit_code`].

use iri_bgp::types::{Asn, Prefix};
use iri_core::taxonomy::UpdateClass;
use iri_obs::Cause;
use iri_store::{OpenOptions, Query, ScanStats, Store, StoreError};
use std::path::Path;

/// Exit code for malformed command lines.
pub const EXIT_USAGE: i32 = 2;

/// Exit code when a run crossed its `--max-rss-mb` fail-fast budget.
/// The store is left at its last commit, so `--resume` picks it up.
pub const EXIT_RSS_BUDGET: i32 = 8;

/// Exit code for the deliberate `--kill-after-chunks` stop hook — the
/// CI kill-and-resume smoke distinguishes "killed on schedule" (resume
/// next) from a real failure.
pub const EXIT_STOPPED: i32 = 9;

/// Exit code for boundary-chain failures: corrupt chain, mismatched
/// pack, or replay divergence.
pub const EXIT_CHAIN: i32 = 10;

/// Maps a scenario-runner failure onto the process exit taxonomy:
/// store errors keep their own codes (3–7), pack/usage problems exit
/// [`EXIT_USAGE`], and the runner's own outcomes get codes 8–10
/// ([`EXIT_RSS_BUDGET`], [`EXIT_STOPPED`], [`EXIT_CHAIN`]).
#[must_use]
pub fn run_error_exit_code(e: &iri_scenario::RunError) -> i32 {
    use iri_scenario::RunError;
    match e {
        RunError::Store(s) => s.exit_code(),
        RunError::Pack(_) => EXIT_USAGE,
        RunError::RssBudget { .. } => EXIT_RSS_BUDGET,
        RunError::Stopped { .. } => EXIT_STOPPED,
        RunError::Chain(_) => EXIT_CHAIN,
        // A dead writer with no reported store error: generic failure.
        RunError::Channel(_) => 1,
    }
}

/// Parses `--key value` style arguments with defaults, e.g.
/// `arg_f64(&args, "--scale", 0.05)`.
#[must_use]
pub fn arg_f64(args: &[String], key: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// String variant of [`arg_f64`]: `None` when the flag is absent.
#[must_use]
pub fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Integer variant of [`arg_f64`].
#[must_use]
pub fn arg_u64(args: &[String], key: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare flag (no value) is present.
#[must_use]
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Standard experiment banner: what the paper reported vs what we measured.
pub fn banner(title: &str, paper: &str) {
    println!("================================================================");
    println!("{title}");
    println!("paper: {paper}");
    println!("================================================================");
}

/// Parses a taxonomy class by its label, case-insensitively.
#[deprecated(note = "use iri_store::parse_class_label — the store owns the label grammar now")]
pub fn parse_class(name: &str) -> Result<UpdateClass, String> {
    iri_store::parse_class_label(name)
}

/// Parses a cause by its label, case-insensitively.
#[deprecated(note = "use iri_store::parse_cause_label — the store owns the label grammar now")]
pub fn parse_cause(name: &str) -> Result<Cause, String> {
    iri_store::parse_cause_label(name)
}

/// The open/report options every store-facing binary shares (`--strict`,
/// `--stats`) wrapped around an [`iri_store::Query`].
///
/// Build the query with the store's own builder and wrap it:
///
/// ```
/// use iri_bench::cli::QueryFilter;
/// use iri_core::taxonomy::UpdateClass;
/// use iri_store::Query;
///
/// let f = QueryFilter::from_query(
///     Query::default()
///         .class(UpdateClass::WwDup)
///         .time_range_ms(0, 86_400_000),
/// )
/// .strict(true);
/// assert!(f.is_strict());
/// ```
///
/// or parse a command line with [`QueryFilter::from_args`]. The old
/// per-field builder methods survive as `#[deprecated]` shims over
/// [`iri_store::Query`].
#[derive(Debug, Clone, Default)]
pub struct QueryFilter {
    query: Query,
    strict: bool,
    stats: bool,
}

impl QueryFilter {
    /// A filter matching everything, tolerant, quiet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an already-built store query — the replacement for the
    /// deprecated per-field builder methods below.
    #[must_use]
    pub fn from_query(query: Query) -> Self {
        QueryFilter {
            query,
            strict: false,
            stats: false,
        }
    }

    /// Restricts to `[from_ms, to_ms)`.
    #[deprecated(note = "build an iri_store::Query and use QueryFilter::from_query")]
    #[must_use]
    pub fn time_range_ms(mut self, from_ms: u64, to_ms: u64) -> Self {
        self.query = self.query.time_range_ms(from_ms, to_ms);
        self
    }

    /// Restricts to one simulated day (the day-cache window shorthand).
    #[deprecated(note = "build an iri_store::Query and use QueryFilter::from_query")]
    #[must_use]
    pub fn day(mut self, day: u64) -> Self {
        self.query = self.query.day_window(day);
        self
    }

    /// Restricts to one peer AS.
    #[deprecated(note = "build an iri_store::Query and use QueryFilter::from_query")]
    #[must_use]
    pub fn peer(mut self, asn: Asn) -> Self {
        self.query = self.query.peer(asn);
        self
    }

    /// Restricts to one prefix (exact match).
    #[deprecated(note = "build an iri_store::Query and use QueryFilter::from_query")]
    #[must_use]
    pub fn prefix(mut self, prefix: Prefix) -> Self {
        self.query = self.query.prefix(prefix);
        self
    }

    /// Restricts to one taxonomy class.
    #[deprecated(note = "build an iri_store::Query and use QueryFilter::from_query")]
    #[must_use]
    pub fn class(mut self, class: UpdateClass) -> Self {
        self.query = self.query.class(class);
        self
    }

    /// Restricts to one cause.
    #[deprecated(note = "build an iri_store::Query and use QueryFilter::from_query")]
    #[must_use]
    pub fn cause(mut self, cause: Cause) -> Self {
        self.query = self.query.cause(cause);
        self
    }

    /// Sets strict (fail-fast) store opening: corrupt or crash-recovered
    /// stores error out instead of being repaired and served.
    #[must_use]
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Sets whether scan statistics should be printed.
    #[must_use]
    pub fn stats(mut self, stats: bool) -> Self {
        self.stats = stats;
        self
    }

    /// The store query this filter narrows to.
    #[must_use]
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Whether strict mode was requested.
    #[must_use]
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Whether scan statistics were requested.
    #[must_use]
    pub fn wants_stats(&self) -> bool {
        self.stats
    }

    /// Parses the shared filter grammar from a raw argument vector.
    /// Unknown flags are ignored (binaries layer their own on top);
    /// malformed values for known flags are errors. The grammar is
    /// unchanged from earlier releases; each flag now delegates to the
    /// matching [`iri_store::Query`] builder.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut q = Query::default();
        if let Some(day) = arg_str(args, "--day") {
            let day: u64 = day
                .parse()
                .map_err(|_| format!("--day wants a number, got {day:?}"))?;
            q = q.day_window(day);
        }
        let from = arg_u64(args, "--from-ms", q.from_ms);
        let to = arg_u64(args, "--to-ms", q.to_ms);
        q = q.time_range_ms(from, to);
        if let Some(asn) = arg_str(args, "--peer") {
            q = q.peer_str(&asn).map_err(|e| format!("--{e}"))?;
        }
        if let Some(p) = arg_str(args, "--prefix") {
            q = q.prefix_str(&p).map_err(|e| format!("--{e}"))?;
        }
        if let Some(c) = arg_str(args, "--class") {
            q = q.class_labelled(&c)?;
        }
        if let Some(c) = arg_str(args, "--cause") {
            q = q.cause_labelled(&c)?;
        }
        Ok(QueryFilter::from_query(q)
            .strict(arg_flag(args, "--strict"))
            .stats(arg_flag(args, "--stats")))
    }

    /// Opens a store honouring this filter's strict flag.
    pub fn open(&self, dir: &Path) -> Result<Store, StoreError> {
        Store::open_with(dir, &OpenOptions::new().strict(self.strict))
    }
}

/// Renders one query's [`ScanStats`] the way every binary reports them
/// (the `--stats` flag), including quarantined-segment accounting.
#[must_use]
pub fn render_scan_stats(stats: &ScanStats) -> String {
    let mut out = format!(
        "[scan] {} segments: {} pruned, {} zone-answered, {} scanned \
         (prune ratio {:.1}%); {} of {} KiB read, {} rows tested, {} matched",
        stats.segments_total,
        stats.segments_pruned,
        stats.segments_zone_answered,
        stats.segments_scanned,
        100.0 * stats.prune_ratio(),
        stats.bytes_scanned / 1024,
        stats.bytes_total / 1024,
        stats.rows_scanned,
        stats.rows_matched
    );
    if stats.pages_total > 0 {
        out.push_str(&format!(
            "\n[scan] {} pages: {} pruned, {} zone-answered, {} scanned",
            stats.pages_total, stats.pages_pruned, stats.pages_zone_answered, stats.pages_scanned
        ));
    }
    if stats.segments_quarantined > 0 {
        out.push_str(&format!(
            "\n[scan] {} segment(s) quarantined — results exclude them; \
             re-run with --strict to fail instead",
            stats.segments_quarantined
        ));
    }
    out
}

/// Prints [`render_scan_stats`] when the filter asked for it.
pub fn print_scan_stats(filter: &QueryFilter, stats: &ScanStats) {
    if filter.wants_stats() {
        println!("\n{}", render_scan_stats(stats));
    }
}

/// Prints a store error the standard way and exits with its
/// variant-specific code (I/O 3, corrupt 4, quarantined 5, JSON 6,
/// ingest 7).
pub fn exit_store_error(prog: &str, e: &StoreError) -> ! {
    eprintln!("{prog}: {e}");
    std::process::exit(e.exit_code())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn arg_parsing() {
        let args = argv(&["--scale", "0.2", "--days", "14"]);
        assert_eq!(arg_f64(&args, "--scale", 0.05), 0.2);
        assert_eq!(arg_u64(&args, "--days", 7), 14);
        assert_eq!(arg_u64(&args, "--missing", 9), 9);
        assert_eq!(arg_f64(&args, "--days", 1.0), 14.0);
    }

    #[test]
    fn filter_from_args_parses_every_flag() {
        let args = argv(&[
            "--from-ms",
            "100",
            "--to-ms",
            "200",
            "--peer",
            "AS701",
            "--prefix",
            "10.0.0.0/8",
            "--class",
            "WWDup",
            "--cause",
            "CsuDrift",
            "--strict",
            "--stats",
        ]);
        let f = QueryFilter::from_args(&args).unwrap();
        assert_eq!(f.query().from_ms, 100);
        assert_eq!(f.query().to_ms, 200);
        assert_eq!(f.query().peer_asn, Some(Asn(701)));
        assert_eq!(f.query().prefix, Some("10.0.0.0/8".parse().unwrap()));
        assert_eq!(f.query().class, Some(UpdateClass::WwDup));
        assert_eq!(f.query().cause, Some(Cause::CsuDrift));
        assert!(f.is_strict());
        assert!(f.wants_stats());
    }

    #[test]
    fn filter_day_shorthand_sets_the_window() {
        let f = QueryFilter::from_args(&argv(&["--day", "2"])).unwrap();
        let day_ms = iri_store::DAY_MS;
        assert_eq!(f.query().from_ms, 2 * day_ms);
        assert_eq!(f.query().to_ms, 3 * day_ms);
    }

    #[test]
    fn filter_rejects_bad_values_with_messages() {
        assert!(QueryFilter::from_args(&argv(&["--peer", "abc"]))
            .unwrap_err()
            .contains("--peer"));
        assert!(QueryFilter::from_args(&argv(&["--class", "nope"]))
            .unwrap_err()
            .contains("unknown class"));
        assert!(QueryFilter::from_args(&argv(&["--prefix", "nope"]))
            .unwrap_err()
            .contains("--prefix"));
    }

    #[test]
    fn scan_stats_render_mentions_quarantine_only_when_present() {
        let clean = ScanStats {
            segments_total: 4,
            segments_scanned: 4,
            ..ScanStats::default()
        };
        assert!(!render_scan_stats(&clean).contains("quarantined"));
        let hurt = ScanStats {
            segments_quarantined: 2,
            ..clean
        };
        let text = render_scan_stats(&hurt);
        assert!(text.contains("2 segment(s) quarantined"));
        assert!(text.contains("--strict"));
    }

    #[test]
    fn run_errors_map_onto_the_documented_exit_taxonomy() {
        use iri_scenario::RunError;
        let io = StoreError::io(Path::new("/x"), std::io::Error::other("boom"));
        assert_eq!(run_error_exit_code(&RunError::Store(io)), 3);
        assert_eq!(
            run_error_exit_code(&RunError::RssBudget {
                rss_mb: 900,
                budget_mb: 512
            }),
            EXIT_RSS_BUDGET
        );
        assert_eq!(
            run_error_exit_code(&RunError::Stopped { chunks: 3 }),
            EXIT_STOPPED
        );
        assert_eq!(
            run_error_exit_code(&RunError::Chain(iri_chain::ChainError::Divergence {
                seq: 7,
                expected: "a".into(),
                got: "b".into(),
            })),
            EXIT_CHAIN
        );
        assert_eq!(run_error_exit_code(&RunError::Channel("gone".into())), 1);
    }
}
