//! Figure 2: breakdown of routing updates by class, April–September.
//!
//! Shape targets: AADup and WADup consistently dominate AADiff and WADiff;
//! WWDup (excluded from the plot, reported alongside) is the largest class
//! overall.

use iri_bench::{arg_u64, experiment};
use iri_core::report::render_figure2;
use iri_core::stats::breakdown::ClassBreakdown;
use iri_core::taxonomy::UpdateClass;
use iri_topology::events::Calendar;

fn main() {
    let ex = experiment(
        "Figure 2 — breakdown of Mae-East routing updates (Apr–Sep 1996)",
        "AADup and WADup consistently dominate AADiff/WADiff; WWDup is the \
         overall majority (excluded from the plot)",
        0.1,
    );
    let days_per_month = arg_u64(&ex.args, "--days-per-month", 3) as u32;

    // Sample days from each month April..September.
    let month_starts = [0u32, 30, 61, 91, 122, 153];
    let month_names = ["April", "May", "June", "July", "August", "September"];
    let sample_days: Vec<u32> = month_starts
        .iter()
        .flat_map(|&start| (0..days_per_month).map(move |i| start + 2 + i * 7))
        .collect();
    let summaries = ex.run_days(sample_days.iter().copied());
    let graph = &ex.graph;

    let mut periods: Vec<(String, ClassBreakdown)> = Vec::new();
    for (mi, &start) in month_starts.iter().enumerate() {
        let end = month_starts.get(mi + 1).copied().unwrap_or(u32::MAX);
        let mut b = ClassBreakdown::default();
        for s in summaries.iter().filter(|s| s.day >= start && s.day < end) {
            for (&class, &n) in &s.breakdown.counts {
                *b.counts.entry(class).or_default() += n;
            }
        }
        periods.push((month_names[mi].to_owned(), b));
    }
    println!("{}", render_figure2(&periods));

    // Shape assertions per month.
    for (name, b) in &periods {
        let dup = b.get(UpdateClass::AaDup) + b.get(UpdateClass::WaDup);
        let diff = b.get(UpdateClass::AaDiff) + b.get(UpdateClass::WaDiff);
        assert!(
            dup > 3 * diff,
            "{name}: duplicates ({dup}) must dominate diffs ({diff})"
        );
        let (m, _) =
            Calendar::month_day(month_starts[month_names.iter().position(|n| n == name).unwrap()]);
        assert_eq!(&m, name);
    }
    let total: ClassBreakdown = {
        let mut t = ClassBreakdown::default();
        for (_, b) in &periods {
            for (&c, &n) in &b.counts {
                *t.counts.entry(c).or_default() += n;
            }
        }
        t
    };
    let wwdup = total.get(UpdateClass::WwDup);
    println!(
        "WWDup share of all updates: {:.1}% (largest single class: {})",
        100.0 * wwdup as f64 / total.total() as f64,
        UpdateClass::ALL
            .iter()
            .max_by_key(|&&c| total.get(c))
            .unwrap()
    );
    // The WWDup echo volume is O(N_stateless × flaps): every stateless peer
    // blindly re-withdraws each withdrawal that crosses the exchange. At
    // the paper's Mae-East (60 peers, stateless-vendor majority) that makes
    // WWDup the overwhelming majority; at the simulated peer count the
    // ratio is proportionally smaller, so the scale-free check is the
    // per-stateless-peer echo ratio plus its extrapolation to N=60.
    let stateless = graph.providers.iter().filter(|p| p.pathological).count();
    let window_crossing_flaps = total.get(UpdateClass::WaDup).max(1);
    let echoes_per_flap = wwdup as f64 / window_crossing_flaps as f64;
    println!(
        "stateless peers: {stateless}; WWDup echoes per window-crossing flap: {echoes_per_flap:.2}"
    );
    let full_scale_stateless = 60.0 * stateless as f64 / graph.providers.len() as f64;
    let wwdup_at_60 = window_crossing_flaps as f64 * echoes_per_flap * full_scale_stateless
        / stateless.max(1) as f64;
    let others = (total.total() - wwdup) as f64;
    let share_at_60 = wwdup_at_60 / (wwdup_at_60 + others);
    println!(
        "extrapolated WWDup share at the paper's 60-peer Mae-East: {:.0}%",
        100.0 * share_at_60
    );
    assert!(
        echoes_per_flap > 0.5 * (stateless as f64 - 1.0),
        "each stateless peer must echo most flaps: {echoes_per_flap:.2} vs {stateless} peers"
    );
    assert!(
        share_at_60 > 0.7,
        "at full scale WWDup must be the overwhelming majority (got {share_at_60:.2})"
    );
    // Co-dominance per month, excluding the June upgrade incident whose
    // session re-dumps flood AADup (the paper's June stripe).
    for (name, b) in &periods {
        if name == "June" {
            continue;
        }
        assert!(
            b.get(UpdateClass::WwDup) as f64 > 0.5 * b.get(UpdateClass::AaDup) as f64,
            "{name}: WWDup must be co-dominant ({} vs AADup {})",
            b.get(UpdateClass::WwDup),
            b.get(UpdateClass::AaDup)
        );
    }
    println!("\nOK — shape matches Figure 2.");
}
